//! Case study 1 (paper §IV-B): stress-test pCore with 16 concurrent
//! quick-sort tasks under create/delete churn.
//!
//! With the injected GC defect the kernel eventually dies of memory
//! exhaustion — "the crash of pCore that was caused by the failure of
//! garbage collection". The healthy control run survives the identical
//! command stream.
//!
//! ```sh
//! cargo run --release --example stress_pcore
//! ```

use ptest::faults::stress::{stress_config, stress_setup, StressSpec};
use ptest::{AdaptiveTest, BugKind};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== case study 1: 16-task quick-sort stress ==");
    println!("(128 two-byte elements per task, 512-byte stacks)\n");

    for (label, spec) in [
        ("faulty GC (paper scenario)", StressSpec::paper(1)),
        ("healthy GC (control)", StressSpec::healthy(1)),
    ] {
        let report = AdaptiveTest::run(stress_config(&spec), stress_setup(spec))?;
        println!("--- {label} ---");
        println!("{}", report.summary());
        let crashed = report.found(|k| {
            matches!(
                k,
                BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
            )
        });
        if crashed {
            let bug = &report.bugs[0];
            println!("detected: {bug}");
            println!("state records at detection:");
            let re = ptest::Regex::pcore_task_lifecycle();
            for r in bug.state_records.iter().take(4) {
                println!("  {}", r.render(re.alphabet()));
            }
            println!("trace tail (last 5):");
            for line in bug.trace_tail.iter().rev().take(5).rev() {
                println!("  {line}");
            }
        } else {
            println!(
                "no crash: slave survived {} commands",
                report.commands_issued
            );
        }
        println!();
    }
    Ok(())
}
