//! Memory-model-exploration smoke: detect a store-visibility race that
//! sequential consistency can never reach, then replay it from its
//! recorded `(seed, schedule_seed, memory_seed)` triple.
//!
//! ```sh
//! cargo run --release --example memory_race -- --trials 12 --workers 2
//! ```
//!
//! Runs one campaign round of the Dekker-style store-visibility scenario
//! under the store-buffer memory model (the scenario's default). The
//! race — both slaves entering the critical section because each one's
//! flag store is still buffered when the other loads it — manifests as a
//! guarded task fault on some memory seeds, never under sequential
//! consistency. Exits non-zero if no trial detects it or if the recorded
//! seed triple fails to replay the detection byte-for-byte (the CI smoke
//! criterion).

use ptest::faults::weakmem::{reordering_manifested, StoreVisibilityScenario};
use ptest::{Campaign, CampaignConfig, LearningConfig, Scenario, TrialEngine, TrialScratch};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = StoreVisibilityScenario::buggy();
    let campaign = Campaign::run(
        &CampaignConfig {
            trials_per_round: arg("--trials", 12),
            rounds: 1,
            workers: arg("--workers", 2),
            master_seed: arg("--seed", 2009) as u64,
            learning: LearningConfig {
                enabled: false,
                ..LearningConfig::default()
            },
            ..CampaignConfig::default()
        },
        &scenario,
    )?;
    let round = &campaign.rounds[0];
    for detection in &round.memory_detection {
        println!(
            "memory {}: {}/{} trials detected ({} bugs)",
            detection.memory, detection.trials_with_bugs, detection.trials, detection.bugs
        );
    }
    let hit = round
        .trials
        .iter()
        .find(|t| !t.summary.bugs.is_empty())
        .ok_or("no store-buffer seed revealed the visibility race")?;
    println!(
        "trial {}: seed={} schedule_seed={} memory_seed={} -> {}",
        hit.trial, hit.seed, hit.schedule_seed, hit.memory_seed, hit.summary.bugs[0].detail
    );

    // Replay from the recorded triple alone.
    let replay = TrialEngine::new(scenario.base_config())?.run_scenario_trial_explored(
        &scenario,
        hit.seed,
        hit.schedule_seed,
        hit.memory_seed,
        &mut TrialScratch::new(),
    )?;
    if !reordering_manifested(&replay) || replay.machine_summary().bugs != hit.summary.bugs {
        return Err("recorded seed triple failed to replay the detection".into());
    }
    println!("replayed byte-identically from the recorded seed triple");
    Ok(())
}
