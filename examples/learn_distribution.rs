//! Learning the probability distribution from profiled traces.
//!
//! The paper assumes "most users do not know the probability
//! distributions" and suggests they "can be learned through system
//! profiling". This example plays both roles: a "production system"
//! generates service traces from a hidden distribution; pTest profiles
//! them, learns an explicit per-state distribution, and uses the learned
//! PFA for pattern generation.
//!
//! ```sh
//! cargo run --example learn_distribution
//! ```

use ptest::automata::{learn_assignment, Dfa, GenerateOptions, Pfa, ProbabilityAssignment};
use ptest::{PatternGenerator, Regex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let regex = Regex::pcore_task_lifecycle();
    let dfa = Dfa::from_regex(&regex).minimize();

    // The hidden "real system" behaviour: suspend/resume-heavy tasks.
    let hidden = Pfa::from_dfa(
        &dfa,
        regex.alphabet().clone(),
        &ProbabilityAssignment::weights([
            ("TC", 1.0),
            ("TCH", 0.25),
            ("TS", 0.55),
            ("TD", 0.15),
            ("TY", 0.05),
            ("TR", 1.0),
        ]),
    )?;

    // Profile it: collect service traces as a profiler on the master
    // core would.
    let mut rng = StdRng::seed_from_u64(7);
    let traces: Vec<Vec<_>> = (0..2_000)
        .map(|_| hidden.generate(&mut rng, GenerateOptions::sized(64)))
        .collect();
    println!(
        "profiled {} traces, {} services total",
        traces.len(),
        traces.iter().map(Vec::len).sum::<usize>()
    );

    // Learn the distribution (MLE with light smoothing) and rebuild.
    let learned = learn_assignment(&dfa, regex.alphabet(), &traces, 0.5)?;
    let generator = PatternGenerator::new(Regex::pcore_task_lifecycle(), &learned)?;

    // Compare hidden vs learned branch probabilities at the running state.
    let running = dfa
        .next(
            dfa.start(),
            regex.alphabet().sym("TC").expect("TC interned"),
        )
        .expect("TC leaves the start state");
    println!("\n{:<6} {:>8} {:>8}", "svc", "hidden", "learned");
    for name in ["TCH", "TS", "TD", "TY"] {
        let sym = regex.alphabet().sym(name).expect("service interned");
        println!(
            "{:<6} {:>8.3} {:>8.3}",
            name,
            hidden.probability(running, sym),
            generator.pfa().probability(running, sym)
        );
    }

    // Generate test patterns biased like the real system.
    println!("\npatterns from the learned PFA:");
    let mut rng = StdRng::seed_from_u64(1);
    for i in 0..5 {
        let p = generator.generate(&mut rng, GenerateOptions::sized(12));
        println!("  T[{i}] = {}", p.render(regex.alphabet()));
    }
    Ok(())
}
