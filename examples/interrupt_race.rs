//! Interrupt-exploration smoke: detect an ISR-vs-task lost update that
//! non-preemptive execution can never reach, prove the mask-bracketed
//! fixed variant clean, then replay the detection from its recorded
//! `(seed, schedule_seed, memory_seed, irq_seed)` quadruple.
//!
//! ```sh
//! cargo run --release --example interrupt_race -- --trials 12 --workers 2 --out interrupt_reports
//! ```
//!
//! Runs one campaign round of the ISR shared-variable race under its
//! default seeded interrupt plan. An injection that lands inside the
//! task's read-modify-write window makes the task's stale write-back
//! swallow the ISR's increment; the scenario's final tally check trips a
//! guarded task fault on some irq seeds, never without injections. Exits
//! non-zero if no trial detects the race, if the fixed variant is not
//! clean over the same trial budget, or if the recorded quadruple fails
//! to replay the detection byte-for-byte (the CI smoke criterion). The
//! campaign archive and the replayed report are written under `--out`
//! for upload.

use ptest::faults::timers::{timer_fault_manifested, IsrSharedVarScenario};
use ptest::{
    Campaign, CampaignConfig, LearningConfig, Scenario, TrialEngine, TrialOverrides, TrialScratch,
};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn arg_str(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_string())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out = std::path::PathBuf::from(arg_str("--out", "interrupt_reports"));
    std::fs::create_dir_all(&out)?;
    let config = CampaignConfig {
        trials_per_round: arg("--trials", 12),
        rounds: 1,
        workers: arg("--workers", 2),
        master_seed: arg("--seed", 2009) as u64,
        learning: LearningConfig {
            enabled: false,
            ..LearningConfig::default()
        },
        ..CampaignConfig::default()
    };

    let scenario = IsrSharedVarScenario::buggy();
    let campaign = Campaign::run(&config, &scenario)?;
    let round = &campaign.rounds[0];
    for detection in &round.preemption_detection {
        println!(
            "preemption {}: {}/{} trials detected ({} bugs)",
            detection.preemption, detection.trials_with_bugs, detection.trials, detection.bugs
        );
    }
    std::fs::write(
        out.join("interrupt_campaign.json"),
        ptest::campaign_report_to_json(&campaign)? + "\n",
    )?;
    let hit = round
        .trials
        .iter()
        .find(|t| !t.summary.bugs.is_empty())
        .ok_or("no irq seed revealed the ISR lost update")?;
    println!(
        "trial {}: seed={} schedule_seed={} memory_seed={} irq_seed={} [{}] -> {}",
        hit.trial,
        hit.seed,
        hit.schedule_seed,
        hit.memory_seed,
        hit.irq_seed,
        hit.preemption,
        hit.summary.bugs[0].detail
    );

    // Replay from the recorded quadruple alone.
    let replay = TrialEngine::new(scenario.base_config())?.run_scenario_trial_overridden(
        &scenario,
        hit.seed,
        hit.schedule_seed,
        hit.memory_seed,
        TrialOverrides {
            irq_seed: Some(hit.irq_seed),
            ..TrialOverrides::default()
        },
        &mut TrialScratch::new(),
    )?;
    std::fs::write(
        out.join("interrupt_replay.json"),
        ptest::report_to_json(&replay)? + "\n",
    )?;
    if !timer_fault_manifested(&replay) || replay.machine_summary().bugs != hit.summary.bugs {
        return Err("recorded seed quadruple failed to replay the detection".into());
    }
    println!("replayed byte-identically from the recorded seed quadruple");

    // The mask-bracketed fixed variant must stay clean over the same
    // trial budget: detection is the bug's fault, not the harness's.
    let control = Campaign::run(&config, &IsrSharedVarScenario::fixed())?;
    let dirty = control.rounds[0]
        .trials
        .iter()
        .filter(|t| !t.summary.bugs.is_empty())
        .count();
    if dirty > 0 {
        return Err(format!("fixed variant tripped in {dirty} trials").into());
    }
    println!(
        "fixed variant clean across {} trials",
        control.total_trials()
    );
    Ok(())
}
