//! Figure 1 (paper §II-A): the master's resume order decides whether two
//! spin-waiting slave processes complete or yield to each other forever.
//!
//! ```sh
//! cargo run --example fig1_livelock
//! ```

use ptest::faults::fig1::{run, Fig1Order, Fig1Outcome, Fig1Scenario};

fn main() {
    println!("== Figure 1: the execution-order fault ==\n");
    println!("S1: a: x=1;  b: while(y==1)  c: yield();  d: x=0;  e: end");
    println!("S2: f: y=1;  g: while(x==1)  h: yield();  i: y=0;  j: end\n");

    for (label, order) in [
        (
            "L -> K  (resume S2 first: the completing order)",
            Fig1Order::S2First,
        ),
        (
            "K -> L  (resume S1 first: the fault order)",
            Fig1Order::S1First,
        ),
    ] {
        let outcome = run(Fig1Scenario {
            order,
            ..Fig1Scenario::default()
        });
        match outcome {
            Fig1Outcome::Completed { cycles } => {
                println!("{label}\n  -> completed after {cycles} cycles\n");
            }
            Fig1Outcome::Livelock { tasks } => {
                println!("{label}\n  -> LIVELOCK: tasks {tasks:?} yield to each other forever\n");
            }
        }
    }

    // The fault needs the second resume to land inside S1's window
    // between `a` and `b`; spacing the resumes escapes it.
    let escaped = run(Fig1Scenario {
        order: Fig1Order::S1First,
        resume_gap: 500,
        ..Fig1Scenario::default()
    });
    println!(
        "K -> (500-cycle pause) -> L: {}",
        match escaped {
            Fig1Outcome::Completed { cycles } => format!("completed after {cycles} cycles"),
            Fig1Outcome::Livelock { .. } => "livelock".to_owned(),
        }
    );
}
