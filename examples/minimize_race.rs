//! Minimization smoke: shrink campaign-detected race reproducers and
//! emit their root-cause interleaving reports.
//!
//! ```sh
//! cargo run --release --example minimize_race -- --out minimized_reports
//! ```
//!
//! Runs one minimizing campaign round
//! ([`CampaignConfig::minimize_bugs`]) of three seeded-race scenarios —
//! the schedule-sensitive order violation and atomicity races under the
//! PCT-style `RandomPriorityScheduler`, and the Dekker store-visibility
//! race under the store-buffer memory model — then enforces the shrink
//! contract on every produced reproducer (the CI smoke criteria):
//!
//! 1. the minimized pattern is **strictly shorter**, at most 25% of the
//!    original symbol count;
//! 2. the minimized schedule keeps at most 4 priority-change points;
//! 3. replaying the minimized triple from the serialized reproducer
//!    alone detects the **same bug class byte-identically**.
//!
//! Each reproducer is written to `--out` as pretty JSON (the build
//! artifact CI uploads) plus a human-readable `.txt` rendering of the
//! root-cause window. Exits non-zero if any criterion fails.

use ptest::faults::races::{AtomicityRaceScenario, OrderViolationScenario};
use ptest::faults::weakmem::StoreVisibilityScenario;
use ptest::{
    replay_minimized, Campaign, CampaignConfig, LearningConfig, MinimizedOutcome, Scenario,
    TrialEngine, TrialScratch,
};

fn arg(name: &str, default: &str) -> String {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .cloned()
        .unwrap_or_else(|| default.to_owned())
}

/// One minimizing campaign round; returns every reproducer it shrank.
fn minimize_round_of(
    scenario: &dyn Scenario,
    trials: usize,
    master_seed: u64,
) -> Result<Vec<MinimizedOutcome>, Box<dyn std::error::Error>> {
    let report = Campaign::run(
        &CampaignConfig {
            trials_per_round: trials,
            rounds: 1,
            workers: arg("--workers", "2").parse().unwrap_or(2),
            master_seed,
            learning: LearningConfig {
                enabled: false,
                ..LearningConfig::default()
            },
            minimize_bugs: true,
            ..CampaignConfig::default()
        },
        scenario,
    )?;
    let minimized = report.rounds[0].minimized.clone();
    if minimized.is_empty() {
        return Err(format!(
            "campaign of `{}` detected nothing to minimize",
            scenario.name()
        )
        .into());
    }
    Ok(minimized)
}

/// Enforces the shrink contract on one reproducer and writes its
/// artifacts.
fn check_and_emit(
    scenario: &dyn Scenario,
    outcome: &MinimizedOutcome,
    out_dir: &std::path::Path,
) -> Result<(), Box<dyn std::error::Error>> {
    let repro = &outcome.repro;
    println!(
        "{}: trial {} [{}] {} -> {} symbols, {} -> {} change points ({} candidate trials)",
        repro.scenario,
        outcome.trial,
        repro.bug_class,
        repro.original_symbols,
        repro.minimized_symbols,
        repro.original_change_points,
        repro.minimized_change_points,
        repro.candidates,
    );

    // 1. Strictly shorter, and at most 25% of the original pattern.
    if repro.minimized_symbols >= repro.original_symbols {
        return Err(format!(
            "{}: no pattern shrink ({} -> {} symbols)",
            repro.scenario, repro.original_symbols, repro.minimized_symbols
        )
        .into());
    }
    if repro.minimized_symbols * 4 > repro.original_symbols {
        return Err(format!(
            "{}: minimized pattern above 25% of original ({} of {} symbols)",
            repro.scenario, repro.minimized_symbols, repro.original_symbols
        )
        .into());
    }
    // 2. At most 4 surviving priority-change points.
    if repro.minimized_change_points > 4 {
        return Err(format!(
            "{}: {} change points survived minimization",
            repro.scenario, repro.minimized_change_points
        )
        .into());
    }

    // 3. Round-trip through JSON, then replay from the parsed reproducer
    // alone: same bug class, byte-identical machine summary.
    let json = ptest::minimized_repro_to_json(repro)?;
    let parsed = ptest::minimized_repro_from_json(&json)?;
    if parsed != *repro {
        return Err(format!("{}: reproducer JSON round-trip drifted", repro.scenario).into());
    }
    let engine = TrialEngine::new(scenario.base_config())?;
    let replay = replay_minimized(&engine, scenario, &parsed, &mut TrialScratch::new())?;
    let summary = replay.machine_summary();
    if summary != repro.summary {
        return Err(format!(
            "{}: minimized triple did not replay byte-identically",
            repro.scenario
        )
        .into());
    }
    if !summary.bugs.iter().any(|b| b.class == repro.bug_class) {
        return Err(format!(
            "{}: replay lost the `{}` detection",
            repro.scenario, repro.bug_class
        )
        .into());
    }

    let stem = format!(
        "{}.{}",
        repro.scenario.replace(['/', ' '], "_"),
        repro.bug_class
    );
    std::fs::write(out_dir.join(format!("{stem}.json")), json)?;
    std::fs::write(
        out_dir.join(format!("{stem}.txt")),
        repro.root_cause.render_text(),
    )?;
    println!(
        "  replayed byte-identically; racing vars: [{}]; artifacts: {}/{{{stem}.json,{stem}.txt}}",
        repro.root_cause.racing_vars.join(", "),
        out_dir.display(),
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let out_dir = std::path::PathBuf::from(arg("--out", "minimized_reports"));
    std::fs::create_dir_all(&out_dir)?;

    let order = OrderViolationScenario::buggy();
    let atomicity = AtomicityRaceScenario::buggy();
    let dekker = StoreVisibilityScenario::buggy();
    let scenarios: [(&dyn Scenario, usize, u64); 3] = [
        (&order, 12, 2009),
        (&atomicity, 12, 2009),
        (&dekker, 16, 2009),
    ];
    for (scenario, trials, master_seed) in scenarios {
        for outcome in minimize_round_of(scenario, trials, master_seed)? {
            check_and_emit(scenario, &outcome, &out_dir)?;
        }
    }
    println!("all minimized reproducers satisfied the shrink contract");
    Ok(())
}
