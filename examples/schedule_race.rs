//! Schedule-exploration smoke: detect a seeded cross-core race that the
//! lock-step schedule can never reach, then replay it from its recorded
//! `(seed, schedule_seed)` pair.
//!
//! ```sh
//! cargo run --release --example schedule_race -- --trials 12 --workers 2
//! ```
//!
//! Runs one campaign round of the order-violation scenario under the
//! PCT-style `RandomPriorityScheduler` (the scenario's default
//! schedule). The race — slave 0 consuming a payload slave 1 has not
//! initialized yet — manifests as a guarded task fault on some schedule
//! seeds, never under lock-step. Exits non-zero if no trial detects it
//! or if the recorded seed pair fails to replay the detection
//! byte-for-byte (the CI smoke criterion).

use ptest::faults::races::{race_manifested, OrderViolationScenario};
use ptest::{
    Campaign, CampaignConfig, LearningConfig, Scenario, ScheduleSpec, TrialEngine, TrialScratch,
};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = OrderViolationScenario::buggy();
    let campaign = Campaign::run(
        &CampaignConfig {
            trials_per_round: arg("--trials", 12),
            rounds: 1,
            workers: arg("--workers", 2),
            master_seed: arg("--seed", 2009) as u64,
            learning: LearningConfig {
                enabled: false,
                ..LearningConfig::default()
            },
            ..CampaignConfig::default()
        },
        &scenario,
    )?;
    let round = &campaign.rounds[0];
    for detection in &round.schedule_detection {
        println!(
            "schedule {}: {}/{} trials detected ({} bugs)",
            detection.schedule, detection.trials_with_bugs, detection.trials, detection.bugs
        );
    }
    let hit = round
        .trials
        .iter()
        .find(|t| !t.summary.bugs.is_empty())
        .ok_or("no randomized schedule revealed the seeded race")?;
    println!(
        "trial {}: seed={} schedule_seed={} -> {}",
        hit.trial, hit.seed, hit.schedule_seed, hit.summary.bugs[0].detail
    );

    // Replay from the recorded pair alone.
    let mut cfg = scenario.base_config();
    cfg.schedule = ScheduleSpec::random_priority();
    let replay = TrialEngine::new(cfg)?.run_scenario_trial_scheduled(
        &scenario,
        hit.seed,
        hit.schedule_seed,
        &mut TrialScratch::new(),
    )?;
    if !race_manifested(&replay) || replay.machine_summary().bugs != hit.summary.bugs {
        return Err("recorded seed pair failed to replay the detection".into());
    }
    println!("replayed byte-identically from the recorded seed pair");
    Ok(())
}
