//! Multicore smoke: hunt the cross-core pipeline deadlock on a 3-slave
//! platform.
//!
//! ```sh
//! cargo run --release --example multicore_pipeline -- --trials 6 --seeds 10
//! ```
//!
//! The scenario wires three pipeline stages, one per slave core, handing
//! tokens through cross-core semaphore links; the buggy acquisition
//! order wedges the stages against each other and the wait-for-graph
//! detector reports a deadlock cycle *spanning kernels* — a bug class
//! the dual-core platform cannot express. Exits non-zero if no seed
//! reveals it (the CI smoke criterion).

use ptest::faults::multicore::CrossCorePipelineScenario;
use ptest::{AdaptiveTest, BugKind, Campaign, CampaignConfig};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let scenario = CrossCorePipelineScenario::buggy();

    // One campaign round over the 3-slave scenario: the campaign layer
    // drives multi-slave systems exactly like dual-core ones.
    let campaign = Campaign::run(
        &CampaignConfig {
            trials_per_round: arg("--trials", 6),
            rounds: 1,
            workers: arg("--workers", 2),
            master_seed: arg("--seed", 2009) as u64,
            ..CampaignConfig::default()
        },
        &scenario,
    )?;
    println!(
        "campaign: {} trials, {} with bugs",
        campaign.total_trials(),
        campaign.rounds[0].trials_with_bugs
    );

    // Seed sweep until the cross-core cycle closes.
    for seed in 0..arg("--seeds", 10) as u64 {
        let report = AdaptiveTest::run_scenario(&scenario, seed)?;
        if let Some(bug) = report
            .bugs
            .iter()
            .find(|b| matches!(b.kind, BugKind::CrossCoreDeadlock { .. }))
        {
            println!("seed {seed}: {bug}");
            for record in &bug.state_records {
                println!(
                    "  {}",
                    record.render(
                        ptest::PatternGenerator::pcore_paper()
                            .expect("paper regex parses")
                            .regex()
                            .alphabet()
                    )
                );
            }
            return Ok(());
        }
        println!("seed {seed}: {}", report.summary());
    }
    Err("no seed revealed the cross-core deadlock".into())
}
