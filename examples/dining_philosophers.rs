//! Case study 2 (paper §IV-B): detect the dining-philosophers deadlock.
//!
//! Three pCore tasks share three mutually exclusive resources; each needs
//! two to proceed. The pattern merger's cyclic policy keeps all three
//! alive concurrently, the cyclic acquisition forms, and the bug
//! detector reports the wait-for cycle. The corrected lock order and the
//! sequential merge policy are shown as controls.
//!
//! ```sh
//! cargo run --example dining_philosophers
//! ```

use ptest::faults::philosophers::{case2_config, setup, Variant};
use ptest::{AdaptiveTest, BugKind, MergeOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== case study 2: dining philosophers ==\n");

    // Find a deadlocking seed with the buggy variant under cyclic merge.
    println!("--- buggy variant, cyclic merge (the paper's setup) ---");
    let mut detected = false;
    for seed in 0..10 {
        let report = AdaptiveTest::run(case2_config(seed), setup(Variant::Buggy))?;
        if let Some(bug) = report
            .bugs
            .iter()
            .find(|b| matches!(b.kind, BugKind::Deadlock { .. }))
        {
            println!("seed {seed}: {bug}");
            let re = ptest::Regex::pcore_task_lifecycle();
            for r in &bug.state_records {
                println!("  {}", r.render(re.alphabet()));
            }
            detected = true;
            break;
        }
        println!("seed {seed}: no deadlock ({})", report.summary());
    }
    assert!(
        detected,
        "cyclic merge finds the deadlock within a few seeds"
    );

    println!("\n--- buggy variant, sequential merge (no overlap => no bug) ---");
    for seed in 0..3 {
        let mut cfg = case2_config(seed);
        cfg.op = MergeOp::Sequential;
        let report = AdaptiveTest::run(cfg, setup(Variant::Buggy))?;
        println!(
            "seed {seed}: deadlock={}",
            report.found(|k| matches!(k, BugKind::Deadlock { .. }))
        );
    }

    println!("\n--- fixed lock order, cyclic merge (control) ---");
    for seed in 0..3 {
        let report = AdaptiveTest::run(case2_config(seed), setup(Variant::Fixed))?;
        println!(
            "seed {seed}: deadlock={}",
            report.found(|k| matches!(k, BugKind::Deadlock { .. }))
        );
    }
    Ok(())
}
