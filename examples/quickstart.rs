//! Quickstart: run pTest's adaptive testing procedure (Algorithm 1)
//! against a healthy pCore and print the report.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use ptest::pcore::{Op, Program};
use ptest::{AdaptiveTest, AdaptiveTestConfig, MergeOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // Algorithm 1 inputs: RE (the pCore task life cycle, Eq. 2), the
    // probability distribution (Figure 5), n patterns of size s, and the
    // merge policy `op`.
    let config = AdaptiveTestConfig {
        n: 4,
        s: 10,
        op: MergeOp::cyclic(),
        seed: 2009,
        ..AdaptiveTestConfig::default()
    };

    let report = AdaptiveTest::run(config, |sys| {
        // The slave workload each created task runs: compute long enough
        // to outlive its command lifecycle, then exit.
        let program =
            Program::new(vec![Op::Compute(2_000), Op::Exit]).expect("valid work-model program");
        vec![sys.kernel_mut().register_program(program)]
    })?;

    println!("== pTest quickstart ==");
    println!("{}", report.summary());
    println!();
    println!("generated patterns:");
    let regex = ptest::Regex::pcore_task_lifecycle();
    for (i, p) in report.patterns.iter().enumerate() {
        println!("  T[{i}] = {}", p.render(regex.alphabet()));
    }
    println!();
    println!(
        "merged pattern ({} steps): {}",
        report.merged.len(),
        report.merged.render(regex.alphabet())
    );
    println!();
    println!(
        "coverage: {:.0}% of DFA transitions, {:.0}% of states",
        report.coverage.transition_coverage() * 100.0,
        report.coverage.state_coverage() * 100.0
    );
    if report.bugs.is_empty() {
        println!("no anomalies detected — pCore handled the pattern.");
    } else {
        for bug in &report.bugs {
            println!("BUG: {bug}");
        }
    }
    Ok(())
}
