//! Campaign quick-start: hunt the dining-philosophers deadlock with a
//! parallel, cross-trial-learning fleet.
//!
//! ```sh
//! cargo run --release --example campaign -- --workers 4 --rounds 3 --trials 12
//! ```
//!
//! Results are deterministic: the aggregate report depends only on the
//! scenario, the configuration and the master seed — never on
//! `--workers`.

use ptest::faults::philosophers::PhilosophersScenario;
use ptest::{Campaign, CampaignConfig, LearningConfig};

fn arg(name: &str, default: usize) -> usize {
    let args: Vec<String> = std::env::args().collect();
    args.iter()
        .position(|a| a == name)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
        .unwrap_or(default)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = CampaignConfig {
        trials_per_round: arg("--trials", 12),
        rounds: arg("--rounds", 3),
        workers: arg("--workers", 4),
        master_seed: arg("--seed", 2009) as u64,
        learning: LearningConfig::default(),
        ..CampaignConfig::default()
    };
    println!(
        "hunting the philosophers deadlock: {} rounds x {} trials on {} workers\n",
        cfg.rounds, cfg.trials_per_round, cfg.workers
    );

    let report = Campaign::run(&cfg, &PhilosophersScenario::buggy())?;
    println!("| round | detection rate | mean commands to detection | traces learned |");
    println!("|---|---|---|---|");
    for round in &report.rounds {
        println!(
            "| {} | {:.0}% ({}/{}) | {} | {} |",
            round.round,
            round.detection_rate() * 100.0,
            round.trials_with_bugs,
            round.trials.len(),
            round
                .mean_commands_to_first_bug
                .map_or("—".to_owned(), |m| format!("{m:.1}")),
            round.traces_learned,
        );
    }
    println!("\n{}", report.summary());
    if let Some((round, trial)) = report.first_bug() {
        let outcome = &report.rounds[round].trials[trial];
        println!(
            "first hit: round {round}, trial {trial} (seed {}) -> {}",
            outcome.seed, outcome.summary.bugs[0].detail
        );
    }
    assert!(
        report.trials_with_bugs() > 0,
        "the buggy philosophers must deadlock somewhere in the fleet"
    );
    Ok(())
}
