//! Offline stand-in for the `criterion` crate.
//!
//! Provides the API surface this workspace's benches use — `Criterion`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `Throughput`, and the `criterion_group!`/`criterion_main!` macros — with
//! a simple wall-clock timing loop instead of criterion's statistics.
//!
//! `cargo bench` prints median-of-samples timings; `cargo bench --no-run`
//! (the tier-1 requirement) just needs all of this to compile.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::Instant;

/// Re-export: benches in this workspace use `std::hint::black_box`, but the
/// real criterion also offers its own; keep both paths working.
pub use std::hint::black_box;

/// Declared throughput of a benchmark, printed alongside timings.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// A benchmark identifier composed of a function name and a parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// `name/parameter`.
    pub fn new(name: impl Display, parameter: impl Display) -> Self {
        BenchmarkId {
            id: format!("{name}/{parameter}"),
        }
    }

    /// Just the parameter.
    pub fn from_parameter(parameter: impl Display) -> Self {
        BenchmarkId {
            id: parameter.to_string(),
        }
    }
}

/// Things usable as a benchmark name.
pub trait IntoBenchmarkId {
    /// Renders the full id string.
    fn into_id(self) -> String;
}

impl IntoBenchmarkId for BenchmarkId {
    fn into_id(self) -> String {
        self.id
    }
}

impl IntoBenchmarkId for &str {
    fn into_id(self) -> String {
        self.to_owned()
    }
}

impl IntoBenchmarkId for String {
    fn into_id(self) -> String {
        self
    }
}

/// Timing loop handle passed to benchmark closures.
pub struct Bencher {
    samples: usize,
    nanos: Vec<u128>,
}

impl Bencher {
    /// Times `f`, recording one sample per call.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        // One warm-up, then the measured samples.
        black_box(f());
        for _ in 0..self.samples {
            let start = Instant::now();
            black_box(f());
            self.nanos.push(start.elapsed().as_nanos());
        }
    }

    fn median_nanos(&mut self) -> u128 {
        if self.nanos.is_empty() {
            return 0;
        }
        self.nanos.sort_unstable();
        self.nanos[self.nanos.len() / 2]
    }
}

fn run_one(
    id: &str,
    samples: usize,
    throughput: Option<Throughput>,
    f: &mut dyn FnMut(&mut Bencher),
) {
    let mut bencher = Bencher {
        samples,
        nanos: Vec::with_capacity(samples),
    };
    f(&mut bencher);
    let median = bencher.median_nanos();
    match throughput {
        Some(Throughput::Elements(n)) if median > 0 => {
            let rate = n as f64 * 1e9 / median as f64;
            println!("{id:<48} {median:>12} ns/iter  ({rate:.0} elem/s)");
        }
        Some(Throughput::Bytes(n)) if median > 0 => {
            let rate = n as f64 * 1e9 / median as f64;
            println!("{id:<48} {median:>12} ns/iter  ({rate:.0} B/s)");
        }
        _ => println!("{id:<48} {median:>12} ns/iter"),
    }
}

const DEFAULT_SAMPLES: usize = 20;

/// The benchmark driver.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Runs a single named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        run_one(&id.into_id(), DEFAULT_SAMPLES, None, &mut f);
        self
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            samples: DEFAULT_SAMPLES,
            throughput: None,
        }
    }
}

/// A group of benchmarks sharing a name prefix and settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    samples: usize,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the sample count for subsequent benchmarks.
    pub fn sample_size(&mut self, samples: usize) -> &mut Self {
        self.samples = samples;
        self
    }

    /// Sets the declared throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark in the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        id: impl IntoBenchmarkId,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(&id, self.samples, self.throughput, &mut f);
        self
    }

    /// Runs one benchmark parameterized by `input`.
    pub fn bench_with_input<I, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) -> &mut Self {
        let id = format!("{}/{}", self.name, id.into_id());
        run_one(&id, self.samples, self.throughput, &mut |b| f(b, input));
        self
    }

    /// Ends the group (no-op; mirrors the real API).
    pub fn finish(self) {}
}

/// Bundles benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $( $target(&mut criterion); )+
        }
    };
}

/// Emits `main` running the listed groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick(c: &mut Criterion) {
        c.bench_function("noop", |b| b.iter(|| 1 + 1));
        let mut group = c.benchmark_group("grp");
        group.sample_size(3);
        group.throughput(Throughput::Elements(4));
        group.bench_function("inner", |b| b.iter(|| black_box(2) * 2));
        group.bench_with_input(BenchmarkId::new("param", 8), &8usize, |b, &n| {
            b.iter(|| n * 2)
        });
        group.finish();
    }

    criterion_group!(benches, quick);

    #[test]
    fn harness_runs() {
        benches();
    }
}
