//! Offline stand-in for `serde_json`.
//!
//! Serializes the stub `serde::Value` model to JSON text (compact and
//! pretty) and parses JSON text back. Floats are emitted with Rust's
//! shortest-roundtrip formatting, so `serialize → parse` is lossless for
//! every finite `f64`.

#![forbid(unsafe_code)]

use serde::{Deserialize, Serialize, Value};

/// JSON (de)serialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error(String);

impl Error {
    fn new(msg: impl Into<String>) -> Error {
        Error(msg.into())
    }
}

impl core::fmt::Display for Error {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "JSON error: {}", self.0)
    }
}

impl std::error::Error for Error {}

impl From<serde::DeError> for Error {
    fn from(e: serde::DeError) -> Error {
        Error(e.0)
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_f64(out: &mut String, f: f64) {
    if f.is_finite() {
        let s = format!("{f:?}");
        out.push_str(&s);
    } else {
        // JSON has no NaN/Infinity; match serde_json's `null`.
        out.push_str("null");
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(n) => out.push_str(&n.to_string()),
        Value::I64(n) => out.push_str(&n.to_string()),
        Value::F64(f) => write_f64(out, *f),
        Value::Str(s) => write_escaped(out, s),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push(']');
        }
        Value::Obj(fields) => {
            if fields.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, item)) in fields.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(level) = indent {
                    out.push('\n');
                    out.push_str(&"  ".repeat(level + 1));
                }
                write_escaped(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent.map(|l| l + 1));
            }
            if let Some(level) = indent {
                out.push('\n');
                out.push_str(&"  ".repeat(level));
            }
            out.push('}');
        }
    }
}

/// Serializes to compact JSON.
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors the real API.
pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), None);
    Ok(out)
}

/// Serializes to pretty-printed JSON (two-space indent).
///
/// # Errors
///
/// Infallible in this stub; the `Result` mirrors the real API.
pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String, Error> {
    let mut out = String::new();
    write_value(&mut out, &value.to_value(), Some(0));
    Ok(out)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn skip_ws(&mut self) {
        while let Some(&b) = self.bytes.get(self.pos) {
            if b == b' ' || b == b'\t' || b == b'\n' || b == b'\r' {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(Error::new(format!(
                "expected `{}` at byte {}",
                b as char, self.pos
            )))
        }
    }

    fn parse_value(&mut self) -> Result<Value, Error> {
        self.skip_ws();
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::Str(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(b'-' | b'0'..=b'9') => self.parse_number(),
            other => Err(Error::new(format!(
                "unexpected {:?} at byte {}",
                other.map(|b| b as char),
                self.pos
            ))),
        }
    }

    fn parse_keyword(&mut self, kw: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(kw.as_bytes()) {
            self.pos += kw.len();
            Ok(v)
        } else {
            Err(Error::new(format!("invalid literal at byte {}", self.pos)))
        }
    }

    fn parse_string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            let start = self.pos;
            while let Some(&b) = self.bytes.get(self.pos) {
                if b == b'"' || b == b'\\' {
                    break;
                }
                self.pos += 1;
            }
            out.push_str(
                core::str::from_utf8(&self.bytes[start..self.pos])
                    .map_err(|_| Error::new("invalid UTF-8"))?,
            );
            match self.peek() {
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self
                        .peek()
                        .ok_or_else(|| Error::new("unterminated escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'b' => out.push('\u{8}'),
                        b'f' => out.push('\u{c}'),
                        b'u' => {
                            let code = self.parse_hex4()?;
                            // Non-BMP characters arrive as a UTF-16
                            // surrogate pair: \uD800-\uDBFF then \uDC00-\uDFFF.
                            let code = if (0xD800..=0xDBFF).contains(&code) {
                                if self.bytes.get(self.pos..self.pos + 2) != Some(b"\\u") {
                                    return Err(Error::new("unpaired high surrogate"));
                                }
                                self.pos += 2;
                                let low = self.parse_hex4()?;
                                if !(0xDC00..=0xDFFF).contains(&low) {
                                    return Err(Error::new("invalid low surrogate"));
                                }
                                0x10000 + ((code - 0xD800) << 10) + (low - 0xDC00)
                            } else {
                                code
                            };
                            out.push(
                                char::from_u32(code)
                                    .ok_or_else(|| Error::new("invalid \\u code point"))?,
                            );
                        }
                        other => {
                            return Err(Error::new(format!("unknown escape `\\{}`", other as char)))
                        }
                    }
                }
                _ => return Err(Error::new("unterminated string")),
            }
        }
    }

    fn parse_hex4(&mut self) -> Result<u32, Error> {
        let hex = self
            .bytes
            .get(self.pos..self.pos + 4)
            .ok_or_else(|| Error::new("short \\u escape"))?;
        self.pos += 4;
        u32::from_str_radix(
            core::str::from_utf8(hex).map_err(|_| Error::new("invalid \\u escape"))?,
            16,
        )
        .map_err(|_| Error::new("invalid \\u escape"))
    }

    fn parse_number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        let mut float = false;
        while let Some(&b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = core::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| Error::new("invalid number"))?;
        if float {
            text.parse::<f64>()
                .map(Value::F64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else if text.starts_with('-') {
            text.parse::<i64>()
                .map(Value::I64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        } else {
            text.parse::<u64>()
                .map(Value::U64)
                .map_err(|_| Error::new(format!("invalid number `{text}`")))
        }
    }

    fn parse_array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return Err(Error::new("expected `,` or `]` in array")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut fields = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(fields));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            let value = self.parse_value()?;
            fields.push((key, value));
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(fields));
                }
                _ => return Err(Error::new("expected `,` or `}` in object")),
            }
        }
    }
}

/// Parses JSON text into any `Deserialize` type.
///
/// # Errors
///
/// Malformed JSON or a value-shape mismatch.
pub fn from_str<T: Deserialize>(s: &str) -> Result<T, Error> {
    let mut parser = Parser {
        bytes: s.as_bytes(),
        pos: 0,
    };
    let value = parser.parse_value()?;
    parser.skip_ws();
    if parser.pos != parser.bytes.len() {
        return Err(Error::new(format!(
            "trailing characters at byte {}",
            parser.pos
        )));
    }
    Ok(T::from_value(&value)?)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_value_shapes() {
        let v = Value::Obj(vec![
            ("a".into(), Value::U64(7)),
            ("b".into(), Value::F64(0.125)),
            ("c".into(), Value::Str("hi \"there\"\n".into())),
            (
                "d".into(),
                Value::Arr(vec![Value::Bool(true), Value::Null, Value::I64(-3)]),
            ),
        ]);
        struct Raw(Value);
        impl Serialize for Raw {
            fn to_value(&self) -> Value {
                self.0.clone()
            }
        }
        let compact = to_string(&Raw(v.clone())).unwrap();
        let pretty = to_string_pretty(&Raw(v.clone())).unwrap();
        let mut p = Parser {
            bytes: compact.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
        let mut p = Parser {
            bytes: pretty.as_bytes(),
            pos: 0,
        };
        assert_eq!(p.parse_value().unwrap(), v);
    }

    #[test]
    fn floats_roundtrip_exactly() {
        for f in [0.1, 1.0, 0.333_333_333_333, 1e-9, 123456.789] {
            let mut out = String::new();
            write_f64(&mut out, f);
            assert_eq!(out.parse::<f64>().unwrap(), f);
        }
    }

    #[test]
    fn surrogate_pair_escapes_decode() {
        assert_eq!(
            from_str::<String>("\"\\ud83d\\ude00 ok\"").unwrap(),
            "\u{1F600} ok"
        );
        assert!(from_str::<String>("\"\\ud83d\"").is_err(), "lone high");
        assert!(from_str::<String>("\"\\ud83d\\u0041\"").is_err(), "bad low");
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<f64>("nope").is_err());
        assert!(from_str::<f64>("1.0 trailing").is_err());
    }
}
