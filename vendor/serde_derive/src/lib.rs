//! Offline stand-in for `serde_derive`.
//!
//! Implements `#[derive(Serialize)]` and `#[derive(Deserialize)]` for plain
//! structs with named fields, generating impls of the stub `serde` crate's
//! `Serialize`/`Deserialize` traits (the miniserde-style `Value` model).
//! Written against `proc_macro` directly — the real `syn`/`quote` stack is
//! unavailable offline. Tuple structs, enums and generics are unsupported
//! and produce a compile error naming this limitation.

use proc_macro::{Delimiter, TokenStream, TokenTree};

struct StructDef {
    name: String,
    fields: Vec<String>,
}

/// Parses `[attrs] [vis] struct Name { [attrs] [vis] field: Ty, ... }`.
fn parse_struct(input: TokenStream) -> Result<StructDef, String> {
    let mut iter = input.into_iter().peekable();

    // Skip outer attributes and visibility.
    loop {
        match iter.peek() {
            Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                iter.next();
                iter.next(); // the [...] group
            }
            Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                iter.next();
                if let Some(TokenTree::Group(g)) = iter.peek() {
                    if g.delimiter() == Delimiter::Parenthesis {
                        iter.next(); // pub(crate) etc.
                    }
                }
            }
            _ => break,
        }
    }

    match iter.next() {
        Some(TokenTree::Ident(id)) if id.to_string() == "struct" => {}
        other => {
            return Err(format!(
                "stub serde_derive only supports structs, found {other:?}"
            ))
        }
    }

    let name = match iter.next() {
        Some(TokenTree::Ident(id)) => id.to_string(),
        other => return Err(format!("expected struct name, found {other:?}")),
    };

    let body = loop {
        match iter.next() {
            Some(TokenTree::Group(g)) if g.delimiter() == Delimiter::Brace => break g,
            Some(TokenTree::Punct(p)) if p.as_char() == '<' => {
                return Err("stub serde_derive does not support generic structs".into())
            }
            Some(_) => continue,
            None => return Err("stub serde_derive requires a braced struct body".into()),
        }
    };

    let mut fields = Vec::new();
    let mut toks = body.stream().into_iter().peekable();
    'fields: loop {
        // Skip field attributes and visibility.
        loop {
            match toks.peek() {
                Some(TokenTree::Punct(p)) if p.as_char() == '#' => {
                    toks.next();
                    toks.next();
                }
                Some(TokenTree::Ident(id)) if id.to_string() == "pub" => {
                    toks.next();
                    if let Some(TokenTree::Group(g)) = toks.peek() {
                        if g.delimiter() == Delimiter::Parenthesis {
                            toks.next();
                        }
                    }
                }
                Some(_) => break,
                None => break 'fields,
            }
        }
        let field = match toks.next() {
            Some(TokenTree::Ident(id)) => id.to_string(),
            other => return Err(format!("expected field name, found {other:?}")),
        };
        fields.push(field);
        // Consume `: Type` up to the next top-level comma. Groups nest
        // angle brackets, but `<`/`>` arrive as plain puncts — track depth.
        let mut depth = 0i32;
        for tok in toks.by_ref() {
            match tok {
                TokenTree::Punct(p) if p.as_char() == '<' => depth += 1,
                TokenTree::Punct(p) if p.as_char() == '>' => depth -= 1,
                TokenTree::Punct(p) if p.as_char() == ',' && depth == 0 => continue 'fields,
                _ => {}
            }
        }
        break;
    }

    Ok(StructDef { name, fields })
}

fn compile_error(msg: &str) -> TokenStream {
    format!("compile_error!({msg:?});").parse().unwrap()
}

/// Derives the stub `serde::Serialize` (conversion to `serde::Value`).
#[proc_macro_derive(Serialize)]
pub fn derive_serialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input) {
        Ok(def) => def,
        Err(msg) => return compile_error(&msg),
    };
    let entries: String = def
        .fields
        .iter()
        .map(|f| {
            format!(
                "(::std::string::String::from({f:?}), \
                 ::serde::Serialize::to_value(&self.{f})),"
            )
        })
        .collect();
    format!(
        "impl ::serde::Serialize for {name} {{\n\
             fn to_value(&self) -> ::serde::Value {{\n\
                 ::serde::Value::Obj(::std::vec![{entries}])\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .unwrap()
}

/// Derives the stub `serde::Deserialize` (reconstruction from `serde::Value`).
#[proc_macro_derive(Deserialize)]
pub fn derive_deserialize(input: TokenStream) -> TokenStream {
    let def = match parse_struct(input) {
        Ok(def) => def,
        Err(msg) => return compile_error(&msg),
    };
    let fields: String = def
        .fields
        .iter()
        .map(|f| {
            format!(
                "{f}: ::serde::Deserialize::from_value(v.field({f:?}).ok_or_else(|| \
                 ::serde::DeError::custom(concat!(\"missing field `\", {f:?}, \"`\")))?)?,"
            )
        })
        .collect();
    format!(
        "impl ::serde::Deserialize for {name} {{\n\
             fn from_value(v: &::serde::Value) -> \
                 ::std::result::Result<Self, ::serde::DeError> {{\n\
                 if !matches!(v, ::serde::Value::Obj(_)) {{\n\
                     return ::std::result::Result::Err(::serde::DeError::custom(\
                         concat!(\"expected object for `\", stringify!({name}), \"`\")));\n\
                 }}\n\
                 ::std::result::Result::Ok({name} {{ {fields} }})\n\
             }}\n\
         }}",
        name = def.name,
    )
    .parse()
    .unwrap()
}
