//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this workspace has no network access, so the
//! real `rand` cannot be fetched from crates.io. This crate reimplements the
//! small slice of the rand 0.9 API the workspace actually uses — `RngCore`,
//! `Rng::{random, random_range, random_bool}`, `SeedableRng::seed_from_u64`,
//! and a deterministic `rngs::StdRng` (xoshiro256++ seeded via SplitMix64).
//!
//! Determinism is the only contract: the same seed always yields the same
//! stream, on every platform. The streams do **not** match the real
//! `rand::rngs::StdRng` (ChaCha12); every consumer in this workspace only
//! relies on seed-reproducibility, never on specific values.

#![forbid(unsafe_code)]

use core::ops::{Range, RangeInclusive};

/// A source of uniformly random 64-bit words.
pub trait RngCore {
    /// Returns the next random `u64`.
    fn next_u64(&mut self) -> u64;

    /// Returns the next random `u32` (upper half of a `u64` draw).
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let word = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&word[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Types samplable uniformly from an RNG via [`Rng::random`].
pub trait Standard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges samplable via [`Rng::random_range`].
pub trait SampleRange<T> {
    /// Draws one value uniformly from the range. Panics if empty.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_uint {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}
impl_sample_range_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_range_sint {
    ($($t:ty => $u:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i64).wrapping_sub(self.start as i64) as u64;
                self.start.wrapping_add((rng.next_u64() % span) as $t)
            }
        }
    )*};
}
impl_sample_range_sint!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

impl SampleRange<f64> for Range<f64> {
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        let v = self.start + f64::sample(rng) * (self.end - self.start);
        // Rounding can land exactly on `end` when the span is tiny; keep
        // the half-open contract.
        if v < self.end {
            v
        } else {
            self.end.next_down().max(self.start)
        }
    }
}

/// User-facing extension methods, mirroring rand 0.9's `Rng`.
pub trait Rng: RngCore {
    /// Draws a value of type `T` from the standard distribution.
    fn random<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    /// Draws a value uniformly from `range`. Panics on an empty range.
    fn random_range<T, Rg: SampleRange<T>>(&mut self, range: Rg) -> T {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    fn random_bool(&mut self, p: f64) -> bool {
        f64::sample(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// RNGs constructible from a fixed-width seed.
pub trait SeedableRng: Sized {
    /// The seed byte array type.
    type Seed: Default + AsMut<[u8]>;

    /// Builds the RNG from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Builds the RNG from a `u64`, expanding it with SplitMix64 exactly
    /// like the real rand crate does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(8) {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = z.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

/// Concrete RNG implementations.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic standard RNG: xoshiro256++.
    ///
    /// Not the real `StdRng` algorithm (ChaCha12); chosen for simplicity.
    /// Same seed → same stream, everywhere.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut bytes = [0u8; 8];
                bytes.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(bytes);
            }
            // Guard against the all-zero state, which xoshiro cannot leave.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0x6A09_E667_F3BC_C909,
                    0xBB67_AE85_84CA_A73B,
                    0x3C6E_F372_FE94_F82B,
                ];
            }
            StdRng { s }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.random::<u64>(), b.random::<u64>());
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut a = StdRng::seed_from_u64(1);
        let mut b = StdRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.random()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.random()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn range_bounds_respected() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v = rng.random_range(3usize..17);
            assert!((3..17).contains(&v));
            let f: f64 = rng.random();
            assert!((0.0..1.0).contains(&f));
            let b = rng.random_range(0..16u8);
            assert!(b < 16);
        }
    }

    #[test]
    fn random_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(9);
        assert!(!rng.random_bool(0.0));
        assert!(rng.random_bool(1.0));
    }
}
