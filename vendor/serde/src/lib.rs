//! Offline stand-in for the `serde` crate.
//!
//! The build environment has no network access, so the real serde cannot be
//! fetched. This crate supplies a miniserde-style replacement: a concrete
//! [`Value`] tree plus [`Serialize`]/[`Deserialize`] traits that convert to
//! and from it, and re-exported derive macros from `serde_derive`.
//!
//! It intentionally covers only what this workspace needs — plain structs
//! with primitive, `String`, `Option` and `Vec` fields — not the full serde
//! data model.

#![forbid(unsafe_code)]

pub use serde_derive::{Deserialize, Serialize};

/// A JSON-shaped value tree: the interchange format between `Serialize`,
/// `Deserialize` and `serde_json`.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// `null`
    Null,
    /// `true` / `false`
    Bool(bool),
    /// A non-negative integer.
    U64(u64),
    /// A negative integer.
    I64(i64),
    /// A floating-point number.
    F64(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<Value>),
    /// An object, in insertion order.
    Obj(Vec<(String, Value)>),
}

impl Value {
    /// Looks up a field of an object by name.
    pub fn field(&self, name: &str) -> Option<&Value> {
        match self {
            Value::Obj(fields) => fields.iter().find(|(k, _)| k == name).map(|(_, v)| v),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeError(pub String);

impl DeError {
    /// Builds an error from any message.
    pub fn custom(msg: impl Into<String>) -> DeError {
        DeError(msg.into())
    }
}

impl core::fmt::Display for DeError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "deserialization error: {}", self.0)
    }
}

impl std::error::Error for DeError {}

/// Types convertible into a [`Value`].
pub trait Serialize {
    /// Converts `self` into a value tree.
    fn to_value(&self) -> Value;
}

/// Types reconstructible from a [`Value`].
pub trait Deserialize: Sized {
    /// Rebuilds `Self` from a value tree.
    fn from_value(v: &Value) -> Result<Self, DeError>;
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}

impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Bool(b) => Ok(*b),
            other => Err(DeError::custom(format!("expected bool, got {other:?}"))),
        }
    }
}

macro_rules! impl_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                match v {
                    Value::U64(n) => <$t>::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range"))),
                    other => Err(DeError::custom(format!(
                        "expected unsigned integer, got {other:?}"
                    ))),
                }
            }
        }
    )*};
}
impl_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value {
                let n = *self as i64;
                if n >= 0 { Value::U64(n as u64) } else { Value::I64(n) }
            }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, DeError> {
                let n: i64 = match v {
                    Value::U64(n) => i64::try_from(*n)
                        .map_err(|_| DeError::custom(format!("{n} out of range")))?,
                    Value::I64(n) => *n,
                    other => {
                        return Err(DeError::custom(format!(
                            "expected integer, got {other:?}"
                        )))
                    }
                };
                <$t>::try_from(n).map_err(|_| DeError::custom(format!("{n} out of range")))
            }
        }
    )*};
}
impl_sint!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}

impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::F64(f) => Ok(*f),
            Value::U64(n) => Ok(*n as f64),
            Value::I64(n) => Ok(*n as f64),
            other => Err(DeError::custom(format!("expected number, got {other:?}"))),
        }
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(f64::from(*self))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}

impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Str(s) => Ok(s.clone()),
            other => Err(DeError::custom(format!("expected string, got {other:?}"))),
        }
    }
}

impl Serialize for str {
    fn to_value(&self) -> Value {
        Value::Str(self.to_owned())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(DeError::custom(format!("expected array, got {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(t) => t.to_value(),
            None => Value::Null,
        }
    }
}

impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<V: Serialize> Serialize for std::collections::BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        // BTreeMap iteration is key-ordered, so the object's field order
        // (and its JSON) is deterministic.
        Value::Obj(
            self.iter()
                .map(|(k, v)| (k.clone(), v.to_value()))
                .collect(),
        )
    }
}

impl<V: Deserialize> Deserialize for std::collections::BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, DeError> {
        match v {
            Value::Obj(fields) => fields
                .iter()
                .map(|(k, v)| Ok((k.clone(), V::from_value(v)?)))
                .collect(),
            other => Err(DeError::custom(format!("expected object, got {other:?}"))),
        }
    }
}
