//! Offline stand-in for the `proptest` crate.
//!
//! Implements the slice of proptest this workspace uses: `Strategy` with
//! `prop_map`, range and tuple strategies, `Just`, `prop_oneof!`, the
//! `proptest!` test macro with `#![proptest_config(..)]`, and the
//! `prop_assert!`/`prop_assert_eq!` assertions.
//!
//! Unlike the real proptest there is no shrinking and no persisted failure
//! file: each test runs `cases` deterministic iterations (case `i` derives
//! its RNG from a fixed seed and `i`), and assertion failures panic with the
//! case number so a failure is directly reproducible.

#![forbid(unsafe_code)]

use core::ops::Range;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Runner configuration; `cases` bounds iterations per property.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
    /// Base RNG seed; case `i` uses `seed + i`.
    pub seed: u64,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        ProptestConfig {
            cases: 64,
            seed: 0x5eed_cafe,
        }
    }
}

impl ProptestConfig {
    /// A config running `cases` iterations.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        ProptestConfig {
            cases,
            ..ProptestConfig::default()
        }
    }
}

/// An error a property body may return explicitly
/// (`return Err(TestCaseError::fail(..))`).
#[derive(Debug, Clone)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Fails the current case with a message.
    #[must_use]
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl core::fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut core::fmt::Formatter<'_>) -> core::fmt::Result {
        write!(f, "test case failed: {}", self.0)
    }
}

/// A generator of values of type `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut StdRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { strategy: self, f }
    }

    /// Builds a recursive strategy: at each of `depth` levels, generation
    /// picks uniformly between the base (`self`) and `recurse` applied to
    /// the level below. `_desired_size`/`_expected_branch_size` are
    /// accepted for real-proptest compatibility and ignored.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = BoxedStrategy::new(self);
        let mut strat = leaf.clone();
        for _ in 0..depth {
            let deeper = BoxedStrategy::new(recurse(strat));
            strat = BoxedStrategy::new(Union::new(vec![leaf.clone(), deeper]));
        }
        strat
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy::new(self)
    }
}

/// A cloneable, type-erased strategy.
pub struct BoxedStrategy<T>(std::rc::Rc<dyn Strategy<Value = T>>);

impl<T> BoxedStrategy<T> {
    /// Erases `strategy`'s type.
    pub fn new(strategy: impl Strategy<Value = T> + 'static) -> Self {
        BoxedStrategy(std::rc::Rc::new(strategy))
    }
}

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> Self {
        BoxedStrategy(std::rc::Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        self.0.generate(rng)
    }
}

impl<S: Strategy + ?Sized> Strategy for &S {
    type Value = S::Value;

    fn generate(&self, rng: &mut StdRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Always yields a clone of the wrapped value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut StdRng) -> T {
        self.0.clone()
    }
}

/// [`Strategy::prop_map`] combinator.
#[derive(Debug, Clone)]
pub struct Map<S, F> {
    strategy: S,
    f: F,
}

impl<S, F, O> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> O,
{
    type Value = O;

    fn generate(&self, rng: &mut StdRng) -> O {
        (self.f)(self.strategy.generate(rng))
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_range_inclusive_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;

            fn generate(&self, rng: &mut StdRng) -> $t {
                rng.random_range(self.clone())
            }
        }
    )*};
}
impl_range_inclusive_strategy!(u8, u16, u32, u64, usize);

/// The standard strategy for `T`: uniform over the whole domain.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(core::marker::PhantomData<T>);

/// `any::<T>()` — uniform values over all of `T`.
#[must_use]
pub fn any<T: rand::Standard>() -> Any<T> {
    Any(core::marker::PhantomData)
}

impl<T: rand::Standard> Strategy for Any<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        rng.random()
    }
}

/// Option strategies (`proptest::option::of`).
pub mod option {
    use super::Strategy;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// Generates `None` 25% of the time, `Some(inner)` otherwise.
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// See [`of`].
    #[derive(Debug, Clone)]
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Option<S::Value> {
            if rng.random_bool(0.25) {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

/// Fixed-size array strategies (`proptest::array::uniformN`).
pub mod array {
    use super::Strategy;
    use rand::rngs::StdRng;

    /// An `[S::Value; N]` strategy with independent elements.
    #[derive(Debug, Clone)]
    pub struct ArrayStrategy<S, const N: usize> {
        element: S,
    }

    impl<S: Strategy, const N: usize> Strategy for ArrayStrategy<S, N> {
        type Value = [S::Value; N];

        fn generate(&self, rng: &mut StdRng) -> [S::Value; N] {
            core::array::from_fn(|_| self.element.generate(rng))
        }
    }

    macro_rules! uniform_fns {
        ($($name:ident => $n:literal),*) => {$(
            /// Array of independent draws from `element`.
            pub fn $name<S: Strategy>(element: S) -> ArrayStrategy<S, $n> {
                ArrayStrategy { element }
            }
        )*};
    }
    uniform_fns!(
        uniform4 => 4, uniform8 => 8, uniform16 => 16,
        uniform24 => 24, uniform32 => 32
    );
}

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut StdRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::Strategy;
    use core::ops::Range;
    use rand::rngs::StdRng;
    use rand::Rng;

    /// A length range for generated collections.
    #[derive(Debug, Clone)]
    pub struct SizeRange(Range<usize>);

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange(r)
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange(n..n + 1)
        }
    }

    /// Generates `Vec`s of `element` with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec()`].
    #[derive(Debug, Clone)]
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;

        fn generate(&self, rng: &mut StdRng) -> Vec<S::Value> {
            let len = rng.random_range(self.size.0.clone());
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Uniform choice between type-erased alternative strategies
/// (the engine behind [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union; panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn generate(&self, rng: &mut StdRng) -> T {
        let idx = rng.random_range(0..self.arms.len());
        self.arms[idx].generate(rng)
    }
}

/// Uniform choice between boxed alternatives.
#[macro_export]
macro_rules! prop_oneof {
    ( $( $arm:expr ),+ $(,)? ) => {{
        let arms: ::std::vec::Vec<$crate::BoxedStrategy<_>> =
            ::std::vec![ $( $crate::BoxedStrategy::new($arm) ),+ ];
        $crate::Union::new(arms)
    }};
}

/// Property assertion; panics (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { ::std::assert!($($args)*) };
}

/// Property equality assertion; panics (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { ::std::assert_eq!($($args)*) };
}

/// Property inequality assertion; panics (no shrinking in this stub).
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { ::std::assert_ne!($($args)*) };
}

#[doc(hidden)]
pub fn __case_rng(cfg: &ProptestConfig, case: u32) -> StdRng {
    StdRng::seed_from_u64(cfg.seed.wrapping_add(u64::from(case)))
}

/// Declares property tests: each `fn name(arg in strategy, ..) { body }`
/// becomes a `#[test]` running `cases` deterministic iterations.
#[macro_export]
macro_rules! proptest {
    ( #![proptest_config($cfg:expr)] $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_impl! { ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    ( ($cfg:expr); $(
        $(#[$meta:meta])*
        fn $name:ident( $( $arg:ident in $strategy:expr ),+ $(,)? ) $body:block
    )* ) => {$(
        $(#[$meta])*
        fn $name() {
            let config: $crate::ProptestConfig = $cfg;
            for case in 0..config.cases {
                let mut case_rng = $crate::__case_rng(&config, case);
                $( let $arg = $crate::Strategy::generate(&($strategy), &mut case_rng); )+
                // Bodies may `return Err(TestCaseError::..)` / `Ok(())`
                // early, as with the real proptest; a trailing `Ok(())` is
                // appended for bodies that just fall off the end.
                let run = || -> ::std::result::Result<(), $crate::TestCaseError> {
                    $body
                    ::std::result::Result::Ok(())
                };
                if let ::std::result::Result::Err(e) = run() {
                    ::std::panic!("proptest case {case} failed: {e}");
                }
            }
        }
    )*};
}

/// The usual glob import: strategies, config, and macros.
pub mod prelude {
    pub use crate::{
        any, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy,
        Just, ProptestConfig, Strategy, TestCaseError, Union,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[derive(Debug, Clone, PartialEq)]
    enum Mode {
        A,
        B(usize),
    }

    fn arb_mode() -> impl Strategy<Value = Mode> {
        prop_oneof![Just(Mode::A), (1usize..5).prop_map(Mode::B)]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(16))]

        #[test]
        fn ranges_stay_in_bounds(n in 1usize..6, seed in 0u64..1_000) {
            prop_assert!((1..6).contains(&n));
            prop_assert!(seed < 1_000);
        }

        #[test]
        fn oneof_generates_all_arms(mode in arb_mode()) {
            match mode {
                Mode::A => {}
                Mode::B(n) => prop_assert!((1..5).contains(&n)),
            }
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let cfg = ProptestConfig::with_cases(4);
        let strat = (0u64..100, 1usize..7);
        for case in 0..cfg.cases {
            let a = strat.generate(&mut crate::__case_rng(&cfg, case));
            let b = strat.generate(&mut crate::__case_rng(&cfg, case));
            assert_eq!(a, b);
        }
    }
}
