//! A minimal deterministic **persistent** worker pool.
//!
//! Trials are pure functions of their index (each derives its own seed
//! and runs on a private simulated system), so parallelism only needs to
//! hand out indices and collect results *by index*. A [`WorkerPool`]
//! spawns its OS threads **once** — the campaign owns it for its whole
//! lifetime and dispatches every round as a batch over channels, so no
//! thread is ever respawned between rounds. Workers claim indices in
//! contiguous chunks off one atomic counter (a handful of fetch-adds per
//! worker per batch instead of one per job) and write each result into
//! its own per-index [`OnceLock`] slot — exactly one worker claims any
//! index, so the slots need no lock. The assembled output vector is
//! identical no matter how many workers ran or how the OS scheduled
//! them — the property the campaign determinism tests pin down.

use std::panic::AssertUnwindSafe;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::{Arc, OnceLock};
use std::thread::Scope;

/// One dispatched batch: the job, the shared claim counter and the
/// per-index result slots. Shared with every worker through an `Arc`;
/// the dispatcher reclaims sole ownership (and with it the results) once
/// every worker has reported the batch done.
/// The boxed job a batch fans out: `(worker state, job index) -> result`.
type BatchJob<'env, T, S> = Box<dyn Fn(&mut S, usize) -> T + Send + Sync + 'env>;

struct Batch<'env, T, S> {
    job: BatchJob<'env, T, S>,
    jobs: usize,
    chunk: usize,
    next: AtomicUsize,
    slots: Vec<OnceLock<T>>,
}

impl<T, S> Batch<'_, T, S> {
    /// Claims and runs chunks of indices until the batch is exhausted.
    fn work(&self, state: &mut S) {
        loop {
            let start = self.next.fetch_add(self.chunk, Ordering::Relaxed);
            if start >= self.jobs {
                break;
            }
            let end = (start + self.chunk).min(self.jobs);
            for i in start..end {
                let out = (self.job)(state, i);
                assert!(
                    self.slots[i].set(out).is_ok(),
                    "index {i} claimed by exactly one worker"
                );
            }
        }
    }
}

/// A worker's per-batch completion report: `Ok` or the payload of a
/// panic that escaped a job (re-raised on the dispatching thread).
type BatchDone = std::thread::Result<()>;

/// A pool of persistent worker threads scoped to one campaign.
///
/// Spawned once via [`WorkerPool::start`] inside a [`std::thread::scope`];
/// each worker builds its per-worker state once (`init`) and then serves
/// every batch the campaign dispatches — campaign workers use the state
/// for trial scratch buffers, allocated once per worker and reused across
/// **all rounds**, not just within one. State never influences results
/// (jobs remain pure functions of their index), so the output of
/// [`WorkerPool::run_batch`] is identical for every worker count.
/// Dropping the pool closes the dispatch channels; the workers drain out
/// and the enclosing scope joins them.
pub(crate) struct WorkerPool<'env, T: Send + Sync, S> {
    senders: Vec<Sender<Arc<Batch<'env, T, S>>>>,
    done_rx: Receiver<BatchDone>,
}

impl<'env, T, S> WorkerPool<'env, T, S>
where
    T: Send + Sync + 'env,
    S: 'env,
{
    /// Spawns `workers` persistent threads on `scope` (clamped to at
    /// least one). `init` runs once on each worker thread; the value is
    /// threaded through every job that worker ever claims, across all
    /// batches.
    pub(crate) fn start<'scope>(
        scope: &'scope Scope<'scope, 'env>,
        workers: usize,
        init: impl Fn() -> S + Send + Sync + 'env,
    ) -> WorkerPool<'env, T, S> {
        let workers = workers.max(1);
        let init = Arc::new(init);
        let (done_tx, done_rx) = channel::<BatchDone>();
        let mut senders = Vec::with_capacity(workers);
        for _ in 0..workers {
            let (tx, rx) = channel::<Arc<Batch<'env, T, S>>>();
            senders.push(tx);
            let init = Arc::clone(&init);
            let done_tx = done_tx.clone();
            scope.spawn(move || {
                let mut state = init();
                while let Ok(batch) = rx.recv() {
                    let done = std::panic::catch_unwind(AssertUnwindSafe(|| {
                        batch.work(&mut state);
                    }));
                    // Release the batch handle *before* signalling, so
                    // the dispatcher's `Arc::into_inner` deterministically
                    // reclaims sole ownership of the result slots.
                    drop(batch);
                    // The dispatcher only hangs up when the pool drops;
                    // a send after that has nobody left to notify.
                    let _ = done_tx.send(done);
                }
            });
        }
        WorkerPool { senders, done_rx }
    }

    /// The number of worker threads serving this pool.
    pub(crate) fn workers(&self) -> usize {
        self.senders.len()
    }

    /// Runs `jobs` jobs across the pool and returns the results in
    /// job-index order, independent of how the workers interleaved.
    ///
    /// # Panics
    ///
    /// Re-raises the first panic that escaped a job on any worker (the
    /// remaining workers still finish the batch, so the pool stays
    /// consistent for the unwinding scope to join).
    pub(crate) fn run_batch(
        &self,
        jobs: usize,
        job: impl Fn(&mut S, usize) -> T + Send + Sync + 'env,
    ) -> Vec<T> {
        if jobs == 0 {
            return Vec::new();
        }
        let batch = Arc::new(Batch {
            job: Box::new(job),
            jobs,
            chunk: chunk_size(jobs, self.workers()),
            next: AtomicUsize::new(0),
            slots: std::iter::repeat_with(OnceLock::new).take(jobs).collect(),
        });
        for tx in &self.senders {
            tx.send(Arc::clone(&batch)).expect("pool worker alive");
        }
        let mut panic: Option<Box<dyn std::any::Any + Send>> = None;
        for _ in 0..self.senders.len() {
            match self.done_rx.recv().expect("pool worker alive") {
                Ok(()) => {}
                Err(payload) => panic = Some(payload),
            }
        }
        if let Some(payload) = panic {
            std::panic::resume_unwind(payload);
        }
        let batch = Arc::into_inner(batch).expect("workers released their batch handles");
        batch
            .slots
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("every index was claimed by exactly one worker")
            })
            .collect()
    }
}

/// Indices claimed per `fetch_add`: aim for a few chunks per worker so
/// claiming costs a handful of atomic operations per worker per batch
/// while uneven job durations can still rebalance across workers.
fn chunk_size(jobs: usize, workers: usize) -> usize {
    jobs.div_ceil(workers * 4).max(1)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// One-shot convenience for the legacy-shaped tests: a throwaway
    /// pool for a single batch.
    fn run_indexed_with<T, S>(
        workers: usize,
        jobs: usize,
        init: impl Fn() -> S + Send + Sync,
        job: impl Fn(&mut S, usize) -> T + Send + Sync,
    ) -> Vec<T>
    where
        T: Send + Sync,
    {
        std::thread::scope(|scope| {
            let pool = WorkerPool::start(scope, workers, init);
            pool.run_batch(jobs, job)
        })
    }

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 8, 64] {
            let out = run_indexed_with(workers, 37, || (), |(), i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_yield_empty() {
        let out: Vec<usize> = run_indexed_with(4, 0, || (), |(), i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_pools_are_fine() {
        let out = run_indexed_with(8, 1, || (), |(), i| i + 100);
        assert_eq!(out, vec![100]);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        for workers in [1, 3, 8] {
            // Each worker counts the jobs it ran; results stay index-pure.
            let out = run_indexed_with(
                workers,
                20,
                || 0usize,
                |claimed, i| {
                    *claimed += 1;
                    (i, *claimed >= 1)
                },
            );
            assert_eq!(out.len(), 20);
            for (idx, (i, reused)) in out.into_iter().enumerate() {
                assert_eq!(i, idx);
                assert!(reused);
            }
        }
    }

    #[test]
    fn pool_persists_worker_state_across_batches() {
        // Each `init` call (one per spawned worker thread, ever) takes a
        // fresh id; jobs report (id, cumulative claims of that worker).
        // If threads were respawned or state reset between batches, more
        // than 3 ids would appear, or the per-id claim maxima would not
        // sum to the total job count.
        let next_id = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            let pool = WorkerPool::start(scope, 3, || {
                (next_id.fetch_add(1, Ordering::Relaxed), 0usize)
            });
            assert_eq!(pool.workers(), 3);
            let mut results = Vec::new();
            for batch in 0..3 {
                let out = pool.run_batch(12, |(id, claimed), i| {
                    *claimed += 1;
                    (i, *id, *claimed)
                });
                assert_eq!(
                    out.iter().map(|&(i, _, _)| i).collect::<Vec<_>>(),
                    (0..12).collect::<Vec<_>>(),
                    "batch {batch} results stay in index order"
                );
                results.extend(out);
            }
            let mut per_id_max = std::collections::BTreeMap::<usize, usize>::new();
            for &(_, id, claimed) in &results {
                let slot = per_id_max.entry(id).or_insert(0);
                *slot = (*slot).max(claimed);
            }
            assert!(per_id_max.len() <= 3, "no thread was ever respawned");
            assert_eq!(
                per_id_max.values().sum::<usize>(),
                36,
                "every worker's claim counter accumulated across all batches"
            );
        });
    }

    #[test]
    fn pool_output_is_worker_count_independent() {
        let expected: Vec<usize> = (0..53usize).map(|i| i.wrapping_mul(31) ^ 7).collect();
        for workers in [1, 2, 5, 16] {
            let out = std::thread::scope(|scope| {
                let pool = WorkerPool::start(scope, workers, || ());
                pool.run_batch(53, |(), i| i.wrapping_mul(31) ^ 7)
            });
            assert_eq!(out, expected, "workers={workers}");
        }
    }

    #[test]
    fn more_workers_than_jobs_is_fine() {
        let out = std::thread::scope(|scope| {
            let pool = WorkerPool::start(scope, 8, || ());
            pool.run_batch(3, |(), i| i + 1)
        });
        assert_eq!(out, vec![1, 2, 3]);
    }

    #[test]
    fn empty_batches_are_free() {
        std::thread::scope(|scope| {
            let pool: WorkerPool<'_, usize, ()> = WorkerPool::start(scope, 2, || ());
            assert!(pool.run_batch(0, |(), i| i).is_empty());
            assert_eq!(pool.run_batch(2, |(), i| i), vec![0, 1]);
        });
    }

    #[test]
    fn chunked_claiming_covers_every_index_exactly_once() {
        // 1000 jobs, varied worker counts: the sum over f(i) pins that
        // every index ran exactly once regardless of chunk boundaries.
        let expected: u64 = (0..1000u64).map(|i| i * i).sum();
        for workers in [1, 2, 7, 32] {
            let out = std::thread::scope(|scope| {
                let pool = WorkerPool::start(scope, workers, || ());
                pool.run_batch(1000, |(), i| (i as u64) * (i as u64))
            });
            assert_eq!(out.iter().sum::<u64>(), expected);
        }
    }

    #[test]
    fn job_panics_propagate_to_the_dispatcher() {
        let result = std::panic::catch_unwind(|| {
            std::thread::scope(|scope| {
                let pool = WorkerPool::start(scope, 2, || ());
                pool.run_batch(8, |(), i| {
                    assert!(i != 5, "job 5 exploded");
                    i
                })
            })
        });
        assert!(result.is_err(), "the dispatcher re-raises job panics");
    }

    #[test]
    fn chunk_sizes_cover_the_span() {
        assert_eq!(chunk_size(32, 4), 2);
        assert_eq!(chunk_size(3, 8), 1);
        assert_eq!(chunk_size(1000, 2), 125);
        assert_eq!(chunk_size(1, 1), 1);
    }
}
