//! A minimal deterministic worker pool.
//!
//! Trials are pure functions of their index (each derives its own seed
//! and runs on a private simulated system), so parallelism only needs to
//! hand out indices and collect results *by index*. Workers race for
//! indices through an atomic counter; results land in per-index slots,
//! so the assembled output vector is identical no matter how many
//! workers ran or how the OS scheduled them — the property the campaign
//! determinism tests pin down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `jobs` jobs on up to `workers` OS threads and returns the
/// results in job-index order. `workers` is clamped to `[1, jobs]`; with
/// one worker the jobs run inline on the calling thread.
pub(crate) fn run_indexed<T, F>(workers: usize, jobs: usize, job: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs);
    if workers == 1 {
        return (0..jobs).map(job).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| loop {
                let i = next.fetch_add(1, Ordering::Relaxed);
                if i >= jobs {
                    break;
                }
                let out = job(i);
                *slots[i].lock().expect("result slot lock") = Some(out);
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 8, 64] {
            let out = run_indexed(workers, 37, |i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_yield_empty() {
        let out: Vec<usize> = run_indexed(4, 0, |i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        let out = run_indexed(8, 1, |i| i + 100);
        assert_eq!(out, vec![100]);
    }
}
