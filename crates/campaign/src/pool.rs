//! A minimal deterministic worker pool.
//!
//! Trials are pure functions of their index (each derives its own seed
//! and runs on a private simulated system), so parallelism only needs to
//! hand out indices and collect results *by index*. Workers race for
//! indices through an atomic counter; results land in per-index slots,
//! so the assembled output vector is identical no matter how many
//! workers ran or how the OS scheduled them — the property the campaign
//! determinism tests pin down.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// Runs `jobs` jobs on up to `workers` OS threads and returns the
/// results in job-index order, with per-worker state: `init` runs once
/// on each worker thread and the resulting value is threaded through
/// every job that worker claims. Campaign workers use this for trial
/// scratch buffers — allocated once per worker, reused across all its
/// trials. State never influences results (jobs remain pure functions of
/// their index), so the output is identical for every worker count.
/// `workers` is clamped to `[1, jobs]`; with one worker the jobs run
/// inline on the calling thread.
pub(crate) fn run_indexed_with<T, S, I, F>(workers: usize, jobs: usize, init: I, job: F) -> Vec<T>
where
    T: Send,
    I: Fn() -> S + Sync,
    F: Fn(&mut S, usize) -> T + Sync,
{
    if jobs == 0 {
        return Vec::new();
    }
    let workers = workers.clamp(1, jobs);
    if workers == 1 {
        let mut state = init();
        return (0..jobs).map(|i| job(&mut state, i)).collect();
    }
    let slots: Vec<Mutex<Option<T>>> = (0..jobs).map(|_| Mutex::new(None)).collect();
    let next = AtomicUsize::new(0);
    std::thread::scope(|scope| {
        for _ in 0..workers {
            scope.spawn(|| {
                let mut state = init();
                loop {
                    let i = next.fetch_add(1, Ordering::Relaxed);
                    if i >= jobs {
                        break;
                    }
                    let out = job(&mut state, i);
                    *slots[i].lock().expect("result slot lock") = Some(out);
                }
            });
        }
    });
    slots
        .into_iter()
        .map(|slot| {
            slot.into_inner()
                .expect("result slot lock")
                .expect("every index was claimed by exactly one worker")
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn results_come_back_in_index_order() {
        for workers in [1, 2, 4, 8, 64] {
            let out = run_indexed_with(workers, 37, || (), |(), i| i * i);
            assert_eq!(out, (0..37).map(|i| i * i).collect::<Vec<_>>());
        }
    }

    #[test]
    fn zero_jobs_yield_empty() {
        let out: Vec<usize> = run_indexed_with(4, 0, || (), |(), i| i);
        assert!(out.is_empty());
    }

    #[test]
    fn single_job_runs_inline() {
        let out = run_indexed_with(8, 1, || (), |(), i| i + 100);
        assert_eq!(out, vec![100]);
    }

    #[test]
    fn per_worker_state_is_reused_within_a_worker() {
        for workers in [1, 3, 8] {
            // Each worker counts the jobs it ran; results stay index-pure.
            let out = run_indexed_with(
                workers,
                20,
                || 0usize,
                |claimed, i| {
                    *claimed += 1;
                    (i, *claimed >= 1)
                },
            );
            assert_eq!(out.len(), 20);
            for (idx, (i, reused)) in out.into_iter().enumerate() {
                assert_eq!(i, idx);
                assert!(reused);
            }
        }
    }
}
