//! The campaign engine: Algorithm 1 lifted from one run to a fleet.
//!
//! A campaign executes `rounds × trials_per_round` independent adaptive
//! trials of one [`Scenario`]. The campaign owns a persistent
//! [`WorkerPool`](crate::pool) for its whole lifetime — threads are
//! spawned once and every round is dispatched to them as a batch, so the
//! per-round cost is a channel send per worker, not a pool teardown.
//! Every trial owns a private deterministic
//! [`DualCoreSystem`](ptest_master::DualCoreSystem), so trials
//! embarrassingly parallelize; each trial's trace-derived
//! [`TransitionCounts`] delta is computed *inside its worker*, leaving
//! only an entry-wise `u64` merge (and the PFA re-compile) on the
//! dispatcher between rounds.
//!
//! Between rounds the engine closes the paper's adaptive loop at fleet
//! scale: the merged counts are re-estimated into the probability
//! distribution the *next* round's patterns are generated from. When any
//! trial of a round found bugs and `bug_biased` learning is on, only
//! bug-revealing trials contribute — steering later rounds toward
//! fault-revealing interleavings.
//!
//! Determinism is a hard invariant: trial seeds derive from the master
//! seed by index, results aggregate in index order, count merging is an
//! exact commutative sum, and the report records nothing about the pool
//! — so a campaign's outcome is a pure function of (scenario,
//! configuration, master seed), independent of worker count, shard
//! split ([`Campaign::run_shard`]) or checkpoint/resume boundaries
//! ([`Campaign::resume`]).

use std::fmt;
use std::ops::Range;
use std::sync::Arc;

use ptest_automata::{Pfa, TransitionCounts};
use ptest_core::{
    minimize_scenario_trial, AdaptiveTestConfig, AdaptiveTestError, MemoryModelSpec,
    MinimizeConfig, MinimizeError, PreemptionSpec, RandomPriorityConfig, Scenario, ScheduleSpec,
    TestReport, TrialEngine, TrialScratch,
};

use crate::learning;
use crate::pool;
use crate::report::{
    CampaignReport, LearnedDistribution, MemoryDetection, MinimizedOutcome, PreemptionDetection,
    RoundReport, ScheduleDetection, TrialOutcome,
};

/// Knobs of the cross-trial feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningConfig {
    /// Whether to re-learn the distribution between rounds at all.
    pub enabled: bool,
    /// Laplace smoothing over the skeleton's transitions — keeps rarely
    /// observed services alive in later rounds.
    pub alpha: f64,
    /// When any trial of a round found bugs, learn only from the
    /// bug-revealing trials (the adaptive bias of the paper's loop);
    /// otherwise every trial contributes.
    pub bug_biased: bool,
}

impl Default for LearningConfig {
    fn default() -> LearningConfig {
        LearningConfig {
            enabled: true,
            alpha: 0.5,
            bug_biased: true,
        }
    }
}

/// Configuration of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Independent trials per feedback round.
    ///
    /// This is also the parallelism grain: a round is one batch on the
    /// worker pool, and the serial between-round work (count merging and
    /// the PFA re-compile, microseconds on the paper-sized skeletons) is
    /// paid once per round. For parallel speedup to be measurable, keep
    /// `trials_per_round` well above the worker count — as a floor,
    /// `workers × 8` trials per round keeps the chunked claiming
    /// balanced; hundreds per round make the serial phase vanish
    /// entirely. A campaign of many tiny rounds measures dispatch
    /// latency, not throughput.
    pub trials_per_round: usize,
    /// Feedback rounds (1 = no cross-trial adaptation takes effect).
    pub rounds: usize,
    /// Worker threads. Affects wall-clock time only, never results.
    pub workers: usize,
    /// Master seed; every trial seed derives from it deterministically.
    pub master_seed: u64,
    /// The feedback loop.
    pub learning: LearningConfig,
    /// Schedule-budget rotation. Empty (the default) runs every trial
    /// under the scenario's own
    /// [`schedule`](ptest_core::AdaptiveTestConfig::schedule) spec.
    /// Non-empty, trial `t` of each round runs under a PCT-style
    /// [`RandomPriorityScheduler`](ptest_master::RandomPriorityScheduler)
    /// with `budgets[t % budgets.len()]` priority-change points — so one
    /// campaign sweeps several schedule-search depths and
    /// [`RoundReport::schedule_detection`] reports which budgets find
    /// bugs.
    pub schedule_budgets: Vec<usize>,
    /// Memory-model rotation. Empty (the default) runs every trial under
    /// the scenario's own
    /// [`memory`](ptest_core::AdaptiveTestConfig::memory) spec.
    /// Non-empty, trial `t` of each round runs under
    /// `memory_models[t % memory_models.len()]` — so one campaign probes
    /// the same (pattern × schedule) space under several propagation
    /// semantics and [`RoundReport::memory_detection`] reports which
    /// models surface bugs.
    pub memory_models: Vec<MemoryModelSpec>,
    /// Preemption rotation. Empty (the default) runs every trial under
    /// the scenario's own
    /// [`preemption`](ptest_core::AdaptiveTestConfig::preemption) spec.
    /// Non-empty, trial `t` of each round runs under
    /// `preemption_specs[t % preemption_specs.len()]` — so one campaign
    /// sweeps quantum/clock-skew/interrupt configurations (including the
    /// inert spec as a control lane) and
    /// [`RoundReport::preemption_detection`] reports which specs surface
    /// bugs. Every trial's interrupt plan draws from its own derived
    /// `irq_seed`, recorded on the outcome for quadruple replay.
    pub preemption_specs: Vec<PreemptionSpec>,
    /// Opt-in post-round minimization: after each round closes, the
    /// campaign-wide *first* hit of every not-yet-minimized bug class is
    /// shrunk to a [`MinimizedRepro`](ptest_core::MinimizedRepro) on the
    /// same worker pool and attached to
    /// [`RoundReport::minimized`](crate::RoundReport::minimized).
    /// Shrinking happens while the round's engine (its learned
    /// distribution) is alive, so the reproducer replays the hit
    /// byte-identically. Not supported in sharded campaigns, where no
    /// shard knows the global first hit ([`Campaign::run_shard`]
    /// rejects it).
    pub minimize_bugs: bool,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            trials_per_round: 16,
            rounds: 2,
            workers: 4,
            master_seed: 2009,
            learning: LearningConfig::default(),
            schedule_budgets: Vec::new(),
            memory_models: Vec::new(),
            preemption_specs: Vec::new(),
            minimize_bugs: false,
        }
    }
}

/// Error running a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// A trial (or the round's PFA compilation) failed.
    Adaptive(AdaptiveTestError),
    /// `rounds` or `trials_per_round` was zero.
    EmptyCampaign,
    /// An invalid shard split, or a sharded configuration whose rounds
    /// are coupled by learning (see [`Campaign::run_shard`]).
    Shard(String),
    /// A checkpoint that does not belong to this campaign, or a failure
    /// reading/writing a checkpoint file.
    Checkpoint(String),
    /// The post-round minimization pass failed on a reproducer — a
    /// determinism regression (the recorded hit no longer replays, or
    /// the minimized triple replays unstably), never expected.
    Minimize(String),
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Adaptive(e) => write!(f, "trial error: {e}"),
            CampaignError::EmptyCampaign => {
                write!(f, "campaign needs at least one round and one trial")
            }
            CampaignError::Shard(msg) => write!(f, "shard error: {msg}"),
            CampaignError::Checkpoint(msg) => write!(f, "checkpoint error: {msg}"),
            CampaignError::Minimize(msg) => write!(f, "minimize error: {msg}"),
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<AdaptiveTestError> for CampaignError {
    fn from(e: AdaptiveTestError) -> CampaignError {
        CampaignError::Adaptive(e)
    }
}

/// Derives the seed of `trial` in `round` from the master seed
/// (splitmix64 over the indices — decorrelated, collision-free in
/// practice, and stable across platforms). Re-exported from its single
/// home in [`ptest_soc::seed`] under this historical path.
pub use ptest_soc::seed::campaign_trial_seed as trial_seed;

/// Derives the *schedule* seed of `trial` in `round` from the master
/// seed — a stream independent of [`trial_seed`], so the campaign
/// explores (pattern × schedule) space rather than a diagonal of it:
/// two trials with related pattern seeds still get decorrelated
/// schedules, and a recorded `(seed, schedule_seed)` pair replays any
/// trial byte-for-byte. Re-exported from [`ptest_soc::seed`].
pub use ptest_soc::seed::campaign_schedule_seed as schedule_seed;

/// Derives the *memory* seed of `trial` in `round` from the master seed
/// — a third stream, independent of both [`trial_seed`] and
/// [`schedule_seed`], so a recorded `(seed, schedule_seed, memory_seed)`
/// triple replays any trial byte-for-byte while the campaign explores
/// (pattern × schedule × store-visibility) space. Re-exported from
/// [`ptest_soc::seed`].
pub use ptest_soc::seed::campaign_memory_seed as memory_seed;

/// Derives the *interrupt/preemption* seed of `trial` in `round` from
/// the master seed — the fourth stream, independent of the other three,
/// so a recorded `(seed, schedule_seed, memory_seed, irq_seed)`
/// quadruple replays any trial byte-for-byte while the campaign
/// explores (pattern × schedule × memory × preemption) space.
/// Re-exported from [`ptest_soc::seed`].
pub use ptest_soc::seed::campaign_irq_seed as irq_seed;

/// The schedule spec trial `t` runs under: the scenario's own spec, or
/// the rotated PCT budget when [`CampaignConfig::schedule_budgets`] is
/// non-empty.
fn trial_schedule(cfg: &CampaignConfig, base: ScheduleSpec, trial: usize) -> ScheduleSpec {
    if cfg.schedule_budgets.is_empty() {
        return base;
    }
    let budget = cfg.schedule_budgets[trial % cfg.schedule_budgets.len()];
    let rp = match base {
        ScheduleSpec::RandomPriority(rp) => rp,
        ScheduleSpec::LockStep => RandomPriorityConfig::default(),
    };
    ScheduleSpec::RandomPriority(RandomPriorityConfig {
        change_points: budget,
        ..rp
    })
}

/// The memory model trial `t` runs under: the scenario's own spec, or
/// the rotated model when [`CampaignConfig::memory_models`] is
/// non-empty.
fn trial_memory(cfg: &CampaignConfig, base: MemoryModelSpec, trial: usize) -> MemoryModelSpec {
    if cfg.memory_models.is_empty() {
        return base;
    }
    cfg.memory_models[trial % cfg.memory_models.len()]
}

/// The preemption spec trial `t` runs under: the scenario's own spec, or
/// the rotated spec when [`CampaignConfig::preemption_specs`] is
/// non-empty.
fn trial_preemption(cfg: &CampaignConfig, base: PreemptionSpec, trial: usize) -> PreemptionSpec {
    if cfg.preemption_specs.is_empty() {
        return base;
    }
    cfg.preemption_specs[trial % cfg.preemption_specs.len()]
}

/// The campaign runner.
#[derive(Debug)]
pub struct Campaign;

/// What one trial contributes, computed entirely inside its worker: the
/// serializable outcome plus the trial's private trace-count delta
/// (empty when learning is off).
pub(crate) struct TrialYield {
    pub(crate) outcome: TrialOutcome,
    pub(crate) counts: TransitionCounts,
}

/// What one pool job yields. The pool's result type is fixed for its
/// lifetime, and a campaign dispatches two job shapes to the same
/// persistent pool — ordinary round trials and post-round minimization
/// jobs — so the yield is this enum; each batch folds only its own
/// variant.
pub(crate) enum WorkerYield {
    Trial(Box<TrialYield>),
    Minimized(Box<Result<MinimizedOutcome, MinimizeError>>),
}

pub(crate) type TrialResult = Result<WorkerYield, AdaptiveTestError>;

/// The persistent pool a campaign dispatches its rounds to.
pub(crate) type TrialPool<'env> = pool::WorkerPool<'env, TrialResult, TrialScratch>;

/// The aggregated materials of one round (or one shard of a round):
/// outcomes in trial order plus both learn-fold candidates — the
/// bug-biased choice between them needs the *global* any-bugs signal,
/// which a shard does not have locally.
pub(crate) struct RoundTrials {
    pub(crate) outcomes: Vec<TrialOutcome>,
    pub(crate) counts_all: TransitionCounts,
    pub(crate) counts_bugs: TransitionCounts,
}

/// The dispatcher-side campaign cursor: everything the round loop
/// carries across rounds. This is exactly what a checkpoint snapshots —
/// `pd` is deliberately *not* part of it on disk, because it is a pure
/// function of `counts` (or the scenario's base distribution before any
/// learning round completed).
pub(crate) struct CampaignState {
    pub(crate) pd: ptest_automata::ProbabilityAssignment,
    pub(crate) counts: TransitionCounts,
    pub(crate) rounds: Vec<RoundReport>,
    pub(crate) next_round: usize,
}

impl Campaign {
    /// Runs the full campaign of `scenario` under `cfg` and returns the
    /// aggregate report.
    ///
    /// # Errors
    ///
    /// [`CampaignError::EmptyCampaign`] on a zero-round or zero-trial
    /// configuration; [`CampaignError::Adaptive`] if the scenario's
    /// regex/distribution is invalid or a trial's committer rejects its
    /// configuration.
    pub fn run(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
    ) -> Result<CampaignReport, CampaignError> {
        let state = Campaign::run_rounds(cfg, scenario, None, cfg.rounds, |_| Ok(()))?;
        Ok(report_of(cfg, scenario, state))
    }

    /// The shared round loop: runs rounds `state.next_round..limit`
    /// (`state` fresh unless resuming), invoking `after_round` with the
    /// updated state after each completed round — the checkpoint hook.
    ///
    /// One [`TrialPool`] spans every remaining round: worker threads and
    /// their [`TrialScratch`] buffers are reused across round
    /// boundaries, so per-round dispatch cost is a channel send per
    /// worker.
    pub(crate) fn run_rounds(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
        resume: Option<CampaignState>,
        limit: usize,
        mut after_round: impl FnMut(&CampaignState) -> Result<(), CampaignError>,
    ) -> Result<CampaignState, CampaignError> {
        if cfg.rounds == 0 || cfg.trials_per_round == 0 {
            return Err(CampaignError::EmptyCampaign);
        }
        let base = scenario.base_config();
        let mut state = resume.unwrap_or_else(|| CampaignState {
            pd: base.pd.clone(),
            counts: TransitionCounts::new(),
            rounds: Vec::with_capacity(cfg.rounds),
            next_round: 0,
        });
        let limit = limit.min(cfg.rounds);

        std::thread::scope(|scope| {
            let pool = TrialPool::start(scope, cfg.workers, TrialScratch::new);
            // Bug classes already minimized by completed (possibly
            // checkpointed) rounds — each class is shrunk exactly once
            // per campaign.
            let mut minimized_classes: std::collections::BTreeSet<String> = state
                .rounds
                .iter()
                .flat_map(|r| r.minimized.iter().map(|m| m.repro.bug_class.clone()))
                .collect();
            while state.next_round < limit {
                let round = state.next_round;
                let engine = Arc::new(TrialEngine::new(AdaptiveTestConfig {
                    pd: state.pd.clone(),
                    ..base.clone()
                })?);
                let trials = run_round_trials(
                    &pool,
                    cfg,
                    scenario,
                    &base,
                    &engine,
                    round,
                    0..cfg.trials_per_round,
                )?;
                let mut report = close_round(cfg, &engine, round, trials, &mut state)?;
                if cfg.minimize_bugs {
                    // Must run while this round's engine (its learned
                    // distribution) is alive — the reproducer replays
                    // the hit through exactly the PFA that produced it.
                    report.minimized = minimize_round(
                        &pool,
                        cfg,
                        scenario,
                        &base,
                        &engine,
                        round,
                        &report.trials,
                        &mut minimized_classes,
                    )?;
                }
                state.rounds.push(report);
                state.next_round = round + 1;
                after_round(&state)?;
            }
            Ok::<(), CampaignError>(())
        })?;

        Ok(state)
    }
}

/// Wraps a finished state into the aggregate report.
pub(crate) fn report_of(
    cfg: &CampaignConfig,
    scenario: &dyn Scenario,
    state: CampaignState,
) -> CampaignReport {
    CampaignReport {
        scenario: scenario.name().to_owned(),
        master_seed: cfg.master_seed,
        trials_per_round: cfg.trials_per_round,
        rounds: state.rounds,
    }
}

/// Dispatches trials `trials` (absolute indices within `round`) as one
/// batch on the pool and folds the workers' yields in index order.
///
/// Each worker job runs its trial *and* segments the resulting trace
/// into a private [`TransitionCounts`] delta, so the dispatcher's serial
/// share of the learn fold is an entry-wise integer merge. The fold is
/// order-exact: merging per-trial deltas is algebraically identical to
/// the sequential `observe_report` loop it replaces.
pub(crate) fn run_round_trials<'env>(
    pool: &TrialPool<'env>,
    cfg: &'env CampaignConfig,
    scenario: &'env dyn Scenario,
    base: &AdaptiveTestConfig,
    engine: &Arc<TrialEngine>,
    round: usize,
    trials: Range<usize>,
) -> Result<RoundTrials, CampaignError> {
    let jobs = trials.len();
    let lo = trials.start;
    let master_seed = cfg.master_seed;
    let base_schedule = base.schedule;
    let base_memory = base.memory;
    let learn = cfg.learning.enabled;
    let engine = Arc::clone(engine);
    let base_preemption = base.preemption;
    let results = pool.run_batch(jobs, move |scratch, i| {
        let trial = lo + i;
        let report = engine.run_scenario_trial_overridden(
            scenario,
            trial_seed(master_seed, round, trial),
            schedule_seed(master_seed, round, trial),
            memory_seed(master_seed, round, trial),
            ptest_core::TrialOverrides {
                schedule: Some(trial_schedule(cfg, base_schedule, trial)),
                memory: Some(trial_memory(cfg, base_memory, trial)),
                preemption: Some(trial_preemption(cfg, base_preemption, trial)),
                irq_seed: Some(irq_seed(master_seed, round, trial)),
                ..ptest_core::TrialOverrides::default()
            },
            scratch,
        )?;
        let mut counts = TransitionCounts::new();
        if learn {
            learning::observe_report(&mut counts, &report, engine.generator().dfa());
        }
        Ok(WorkerYield::Trial(Box::new(TrialYield {
            outcome: outcome_of(master_seed, round, trial, &report),
            counts,
        })))
    });

    let mut out = RoundTrials {
        outcomes: Vec::with_capacity(jobs),
        counts_all: TransitionCounts::new(),
        counts_bugs: TransitionCounts::new(),
    };
    for result in results {
        let WorkerYield::Trial(yielded) = result? else {
            unreachable!("trial batches yield trial results");
        };
        out.counts_all.merge(&yielded.counts);
        if !yielded.outcome.summary.bugs.is_empty() {
            out.counts_bugs.merge(&yielded.counts);
        }
        out.outcomes.push(yielded.outcome);
    }
    Ok(out)
}

/// The post-round minimization pass: for every bug class whose
/// campaign-wide *first* hit happened this round, shrink that hit on the
/// worker pool ([`minimize_scenario_trial`]) and return the reproducers
/// in first-hit trial order.
///
/// `seen` carries the classes minimized by earlier rounds (restored from
/// the completed rounds on resume) and is extended with this round's
/// classes — so a class is shrunk exactly once per campaign no matter
/// how often it recurs, and the output is independent of checkpoint
/// boundaries.
#[allow(clippy::too_many_arguments)]
pub(crate) fn minimize_round<'env>(
    pool: &TrialPool<'env>,
    cfg: &'env CampaignConfig,
    scenario: &'env dyn Scenario,
    base: &AdaptiveTestConfig,
    engine: &Arc<TrialEngine>,
    round: usize,
    outcomes: &[TrialOutcome],
    seen: &mut std::collections::BTreeSet<String>,
) -> Result<Vec<MinimizedOutcome>, CampaignError> {
    let mut jobs: Vec<(usize, String)> = Vec::new();
    for outcome in outcomes {
        for bug in &outcome.summary.bugs {
            if seen.insert(bug.class.clone()) {
                jobs.push((outcome.trial, bug.class.clone()));
            }
        }
    }
    if jobs.is_empty() {
        return Ok(Vec::new());
    }
    let master_seed = cfg.master_seed;
    let base_schedule = base.schedule;
    let base_memory = base.memory;
    let base_preemption = base.preemption;
    let engine = Arc::clone(engine);
    let n_jobs = jobs.len();
    let results = pool.run_batch(n_jobs, move |scratch, i| {
        let (trial, class) = &jobs[i];
        let trial = *trial;
        let minimized = minimize_scenario_trial(
            &engine,
            scenario,
            trial_seed(master_seed, round, trial),
            schedule_seed(master_seed, round, trial),
            memory_seed(master_seed, round, trial),
            irq_seed(master_seed, round, trial),
            trial_schedule(cfg, base_schedule, trial),
            trial_memory(cfg, base_memory, trial),
            trial_preemption(cfg, base_preemption, trial),
            Some(class),
            &MinimizeConfig::default(),
            scratch,
        )
        .map(|repro| MinimizedOutcome { trial, repro });
        Ok(WorkerYield::Minimized(Box::new(minimized)))
    });
    let mut out = Vec::with_capacity(n_jobs);
    for result in results {
        let WorkerYield::Minimized(minimized) = result? else {
            unreachable!("minimize batches yield minimize results");
        };
        match *minimized {
            Ok(m) => out.push(m),
            Err(MinimizeError::Trial(e)) => return Err(CampaignError::Adaptive(e)),
            Err(e) => return Err(CampaignError::Minimize(e.to_string())),
        }
    }
    Ok(out)
}

/// Extracts a trial's serializable outcome from its report.
fn outcome_of(master_seed: u64, round: usize, trial: usize, report: &TestReport) -> TrialOutcome {
    TrialOutcome {
        trial,
        seed: trial_seed(master_seed, round, trial),
        schedule_seed: report.schedule_seed,
        schedule: report.config.schedule.label(),
        memory_seed: report.memory_seed,
        memory: report.config.memory.label(),
        irq_seed: report.irq_seed,
        preemption: report.config.preemption.label(),
        commands_to_first_bug: report.commands_to_first_bug(),
        summary: report.machine_summary(),
    }
}

/// Closes one round: applies the (possibly bug-biased) learn fold to the
/// campaign-cumulative counts, re-learns the next round's distribution,
/// and assembles the round report from the outcomes.
pub(crate) fn close_round(
    cfg: &CampaignConfig,
    engine: &TrialEngine,
    round: usize,
    trials: RoundTrials,
    state: &mut CampaignState,
) -> Result<RoundReport, CampaignError> {
    let dfa = engine.generator().dfa();
    let alphabet = engine.generator().regex().alphabet();
    let distribution = LearnedDistribution::from_pfa(engine.generator().pfa(), alphabet);
    let mut traces_learned = 0u64;
    let mut learned = None;
    if cfg.learning.enabled {
        let any_bugs = trials.outcomes.iter().any(|o| !o.summary.bugs.is_empty());
        let chosen = if cfg.learning.bug_biased && any_bugs {
            &trials.counts_bugs
        } else {
            &trials.counts_all
        };
        traces_learned = chosen.trace_count();
        state.counts.merge(chosen);
        state.pd = state
            .counts
            .to_assignment(dfa, alphabet, cfg.learning.alpha);
        // Compile eagerly so an invalid learned assignment fails loudly
        // here, attributed to this round — not on the next round's
        // TrialEngine::new (or, on the final round, never).
        let pfa = Pfa::from_dfa(dfa, alphabet.clone(), &state.pd)
            .map_err(|e| CampaignError::Adaptive(AdaptiveTestError::Pfa(e)))?;
        learned = Some(LearnedDistribution::from_pfa(&pfa, alphabet));
    }
    Ok(assemble_round(
        round,
        distribution,
        trials.outcomes,
        traces_learned,
        learned,
    ))
}

/// Assembles a round report from per-trial outcomes alone — no live
/// [`TestReport`]s involved, which is what lets sharded rounds merge by
/// concatenating their outcome vectors.
pub(crate) fn assemble_round(
    round: usize,
    distribution: LearnedDistribution,
    trials: Vec<TrialOutcome>,
    traces_learned: u64,
    learned: Option<LearnedDistribution>,
) -> RoundReport {
    let mut trials_with_bugs = 0usize;
    let mut bugs = 0usize;
    let mut total_commands = 0u64;
    let mut total_cycles = 0u64;
    let mut first_bug_sum = 0u64;
    let mut schedule_detection: Vec<ScheduleDetection> = Vec::new();
    let mut memory_detection: Vec<MemoryDetection> = Vec::new();
    let mut preemption_detection: Vec<PreemptionDetection> = Vec::new();
    for outcome in &trials {
        let found = outcome.summary.bugs.len();
        if found > 0 {
            trials_with_bugs += 1;
        }
        bugs += found;
        total_commands += outcome.summary.commands_issued;
        total_cycles += outcome.summary.cycles;
        first_bug_sum += outcome.commands_to_first_bug.unwrap_or(0);
        let slot = match schedule_detection
            .iter_mut()
            .find(|d| d.schedule == outcome.schedule)
        {
            Some(slot) => slot,
            None => {
                schedule_detection.push(ScheduleDetection {
                    schedule: outcome.schedule.clone(),
                    trials: 0,
                    trials_with_bugs: 0,
                    bugs: 0,
                });
                schedule_detection.last_mut().expect("just pushed")
            }
        };
        slot.trials += 1;
        if found > 0 {
            slot.trials_with_bugs += 1;
        }
        slot.bugs += found;
        let slot = match memory_detection
            .iter_mut()
            .find(|d| d.memory == outcome.memory)
        {
            Some(slot) => slot,
            None => {
                memory_detection.push(MemoryDetection {
                    memory: outcome.memory.clone(),
                    trials: 0,
                    trials_with_bugs: 0,
                    bugs: 0,
                });
                memory_detection.last_mut().expect("just pushed")
            }
        };
        slot.trials += 1;
        if found > 0 {
            slot.trials_with_bugs += 1;
        }
        slot.bugs += found;
        let slot = match preemption_detection
            .iter_mut()
            .find(|d| d.preemption == outcome.preemption)
        {
            Some(slot) => slot,
            None => {
                preemption_detection.push(PreemptionDetection {
                    preemption: outcome.preemption.clone(),
                    trials: 0,
                    trials_with_bugs: 0,
                    bugs: 0,
                });
                preemption_detection.last_mut().expect("just pushed")
            }
        };
        slot.trials += 1;
        if found > 0 {
            slot.trials_with_bugs += 1;
        }
        slot.bugs += found;
    }
    let mean_commands_to_first_bug = if trials_with_bugs > 0 {
        Some(first_bug_sum as f64 / trials_with_bugs as f64)
    } else {
        None
    };
    RoundReport {
        round,
        distribution,
        trials,
        trials_with_bugs,
        bugs,
        total_commands,
        total_cycles,
        mean_commands_to_first_bug,
        schedule_detection,
        memory_detection,
        preemption_detection,
        traces_learned,
        learned,
        minimized: Vec::new(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::FnScenario;
    use ptest_pcore::{Op, Program};

    fn compute_scenario(n: usize, s: usize) -> impl Scenario {
        FnScenario::new(
            "compute",
            AdaptiveTestConfig {
                n,
                s,
                ..AdaptiveTestConfig::default()
            },
            |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
            },
        )
    }

    #[test]
    fn trial_seeds_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..8 {
            for trial in 0..64 {
                assert!(seen.insert(trial_seed(7, round, trial)));
            }
        }
        assert_eq!(trial_seed(7, 3, 5), trial_seed(7, 3, 5));
        assert_ne!(trial_seed(7, 3, 5), trial_seed(8, 3, 5));
    }

    #[test]
    fn schedule_seeds_are_stable_and_decorrelated_from_trial_seeds() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..8 {
            for trial in 0..64 {
                assert!(seen.insert(schedule_seed(7, round, trial)));
                assert_ne!(
                    schedule_seed(7, round, trial),
                    trial_seed(7, round, trial),
                    "schedule and pattern streams must differ"
                );
            }
        }
        assert_eq!(schedule_seed(7, 3, 5), schedule_seed(7, 3, 5));
        assert_ne!(schedule_seed(7, 3, 5), schedule_seed(8, 3, 5));
    }

    #[test]
    fn memory_seeds_are_stable_and_decorrelated_from_the_other_streams() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..8 {
            for trial in 0..64 {
                assert!(seen.insert(memory_seed(7, round, trial)));
                assert_ne!(
                    memory_seed(7, round, trial),
                    trial_seed(7, round, trial),
                    "memory and pattern streams must differ"
                );
                assert_ne!(
                    memory_seed(7, round, trial),
                    schedule_seed(7, round, trial),
                    "memory and schedule streams must differ"
                );
            }
        }
        assert_eq!(memory_seed(7, 3, 5), memory_seed(7, 3, 5));
        assert_ne!(memory_seed(7, 3, 5), memory_seed(8, 3, 5));
    }

    #[test]
    fn memory_model_rotation_shows_up_in_detection_buckets() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 6,
                rounds: 1,
                workers: 2,
                master_seed: 3,
                memory_models: vec![MemoryModelSpec::SeqCst, MemoryModelSpec::store_buffer()],
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let round = &report.rounds[0];
        let labels: Vec<&str> = round
            .memory_detection
            .iter()
            .map(|d| d.memory.as_str())
            .collect();
        assert_eq!(labels, ["seq-cst", "store-buffer(d=24)"]);
        assert!(round.memory_detection.iter().all(|d| d.trials == 3));
        for outcome in &round.trials {
            assert_eq!(
                outcome.memory,
                ["seq-cst", "store-buffer(d=24)"][outcome.trial % 2]
            );
            assert_eq!(
                outcome.memory_seed,
                memory_seed(3, 0, outcome.trial),
                "outcomes record the replay triple"
            );
        }
    }

    #[test]
    fn memory_model_campaigns_stay_worker_count_independent() {
        let scenario = compute_scenario(2, 4);
        let run = |workers| {
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 6,
                    rounds: 2,
                    workers,
                    master_seed: 77,
                    schedule_budgets: vec![1, 4],
                    memory_models: vec![MemoryModelSpec::SeqCst, MemoryModelSpec::store_buffer()],
                    ..CampaignConfig::default()
                },
                &scenario,
            )
            .unwrap()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn default_campaigns_bucket_everything_under_seq_cst() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 3,
                rounds: 1,
                workers: 1,
                master_seed: 9,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let round = &report.rounds[0];
        assert_eq!(round.memory_detection.len(), 1);
        assert_eq!(round.memory_detection[0].memory, "seq-cst");
        assert_eq!(round.memory_detection[0].trials, 3);
    }

    #[test]
    fn preemption_rotation_shows_up_in_detection_buckets() {
        use ptest_core::{InterruptConfig, PreemptionSpec, QuantumConfig};
        let scenario = compute_scenario(2, 4);
        let spec = PreemptionSpec {
            quantum: Some(QuantumConfig { cycles: 8 }),
            interrupts: Some(InterruptConfig {
                count: 2,
                horizon: 100,
                ..InterruptConfig::default()
            }),
            ..PreemptionSpec::default()
        };
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 6,
                rounds: 1,
                workers: 2,
                master_seed: 3,
                preemption_specs: vec![PreemptionSpec::default(), spec],
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let round = &report.rounds[0];
        let labels: Vec<&str> = round
            .preemption_detection
            .iter()
            .map(|d| d.preemption.as_str())
            .collect();
        assert_eq!(labels, ["none", "quantum(q=8)+irq(n=2)"]);
        assert!(round.preemption_detection.iter().all(|d| d.trials == 3));
        for outcome in &round.trials {
            assert_eq!(
                outcome.preemption,
                ["none", "quantum(q=8)+irq(n=2)"][outcome.trial % 2]
            );
            assert_eq!(
                outcome.irq_seed,
                irq_seed(3, 0, outcome.trial),
                "outcomes record the replay quadruple"
            );
        }
    }

    #[test]
    fn preemption_campaigns_stay_worker_count_independent() {
        use ptest_core::{InterruptConfig, PreemptionSpec, QuantumConfig};
        let scenario = compute_scenario(2, 4);
        let spec = PreemptionSpec {
            quantum: Some(QuantumConfig { cycles: 4 }),
            interrupts: Some(InterruptConfig {
                count: 3,
                horizon: 200,
                ..InterruptConfig::default()
            }),
            ..PreemptionSpec::default()
        };
        let run = |workers| {
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 6,
                    rounds: 2,
                    workers,
                    master_seed: 77,
                    preemption_specs: vec![PreemptionSpec::default(), spec],
                    ..CampaignConfig::default()
                },
                &scenario,
            )
            .unwrap()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn schedule_budget_rotation_shows_up_in_detection_buckets() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 6,
                rounds: 1,
                workers: 2,
                master_seed: 3,
                schedule_budgets: vec![0, 3],
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let round = &report.rounds[0];
        let labels: Vec<&str> = round
            .schedule_detection
            .iter()
            .map(|d| d.schedule.as_str())
            .collect();
        assert_eq!(labels, ["random-priority(d=0)", "random-priority(d=3)"]);
        assert!(round.schedule_detection.iter().all(|d| d.trials == 3));
        for outcome in &round.trials {
            assert_eq!(
                outcome.schedule,
                format!("random-priority(d={})", [0, 3][outcome.trial % 2])
            );
            assert_eq!(
                outcome.schedule_seed,
                schedule_seed(3, 0, outcome.trial),
                "outcomes record the replay pair"
            );
        }
    }

    #[test]
    fn schedule_budget_campaigns_stay_worker_count_independent() {
        let scenario = compute_scenario(2, 4);
        let run = |workers| {
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 6,
                    rounds: 2,
                    workers,
                    master_seed: 77,
                    schedule_budgets: vec![1, 4],
                    ..CampaignConfig::default()
                },
                &scenario,
            )
            .unwrap()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn default_campaigns_bucket_everything_under_lock_step() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 3,
                rounds: 1,
                workers: 1,
                master_seed: 9,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let round = &report.rounds[0];
        assert_eq!(round.schedule_detection.len(), 1);
        assert_eq!(round.schedule_detection[0].schedule, "lock-step");
        assert_eq!(round.schedule_detection[0].trials, 3);
    }

    #[test]
    fn campaign_runs_all_trials_across_rounds() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 5,
                rounds: 3,
                workers: 2,
                master_seed: 1,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        assert_eq!(report.total_trials(), 15);
        assert_eq!(report.rounds.len(), 3);
        for (i, round) in report.rounds.iter().enumerate() {
            assert_eq!(round.round, i);
            assert_eq!(round.trials.len(), 5);
            assert!(round.total_commands > 0);
            assert!(round.learned.is_some(), "learning is on by default");
        }
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let scenario = compute_scenario(2, 4);
        let run = |workers| {
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 6,
                    rounds: 2,
                    workers,
                    master_seed: 99,
                    ..CampaignConfig::default()
                },
                &scenario,
            )
            .unwrap()
        };
        let one = run(1);
        let four = run(4);
        let eight = run(8);
        assert_eq!(one, four);
        assert_eq!(four, eight);
    }

    #[test]
    fn learning_disabled_keeps_the_distribution_fixed() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 3,
                rounds: 3,
                workers: 2,
                master_seed: 5,
                learning: LearningConfig {
                    enabled: false,
                    ..LearningConfig::default()
                },
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        for round in &report.rounds {
            assert_eq!(round.traces_learned, 0);
            assert!(round.learned.is_none());
            assert_eq!(round.distribution, report.rounds[0].distribution);
        }
    }

    #[test]
    fn learning_shifts_the_distribution_between_rounds() {
        let scenario = compute_scenario(3, 6);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 4,
                rounds: 2,
                workers: 2,
                master_seed: 42,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        assert!(report.rounds[0].traces_learned > 0);
        // Round 1 generates from what round 0 learned.
        assert_eq!(
            report.rounds[0].learned.as_ref().unwrap(),
            &report.rounds[1].distribution
        );
    }

    #[test]
    fn empty_campaigns_are_rejected() {
        let scenario = compute_scenario(1, 2);
        assert!(matches!(
            Campaign::run(
                &CampaignConfig {
                    rounds: 0,
                    ..CampaignConfig::default()
                },
                &scenario
            ),
            Err(CampaignError::EmptyCampaign)
        ));
        assert!(matches!(
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 0,
                    ..CampaignConfig::default()
                },
                &scenario
            ),
            Err(CampaignError::EmptyCampaign)
        ));
    }

    #[test]
    fn minimization_shrinks_each_class_once_per_campaign() {
        let scenario = ptest_faults::races::OrderViolationScenario::buggy();
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 8,
                rounds: 2,
                workers: 2,
                master_seed: 2009,
                learning: LearningConfig {
                    enabled: false,
                    ..LearningConfig::default()
                },
                minimize_bugs: true,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let classes: Vec<&str> = report
            .rounds
            .iter()
            .flat_map(|r| r.minimized.iter().map(|m| m.repro.bug_class.as_str()))
            .collect();
        assert!(!classes.is_empty(), "the seeded race was never minimized");
        let mut dedup = classes.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(
            classes.len(),
            dedup.len(),
            "a class was shrunk more than once: {classes:?}"
        );
        for m in report.rounds.iter().flat_map(|r| &r.minimized) {
            assert!(
                m.repro.minimized_symbols < m.repro.original_symbols,
                "{}: no shrink",
                m.repro.bug_class
            );
            assert!(
                m.repro
                    .summary
                    .bugs
                    .iter()
                    .any(|b| b.class == m.repro.bug_class),
                "minimized summary lost its class"
            );
        }
    }

    #[test]
    fn minimizing_campaigns_stay_worker_count_independent() {
        let scenario = ptest_faults::races::OrderViolationScenario::buggy();
        let run = |workers| {
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 6,
                    rounds: 1,
                    workers,
                    master_seed: 2009,
                    learning: LearningConfig {
                        enabled: false,
                        ..LearningConfig::default()
                    },
                    minimize_bugs: true,
                    ..CampaignConfig::default()
                },
                &scenario,
            )
            .unwrap()
        };
        let one = run(1);
        assert!(
            !one.rounds[0].minimized.is_empty(),
            "nothing minimized, the comparison would be vacuous"
        );
        assert_eq!(one, run(4));
    }

    #[test]
    fn unminimized_campaigns_report_empty_minimized_rounds() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 3,
                rounds: 1,
                workers: 1,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        assert!(report.rounds.iter().all(|r| r.minimized.is_empty()));
    }

    #[test]
    fn bad_scenario_regex_is_reported() {
        let scenario = FnScenario::new(
            "bad",
            AdaptiveTestConfig {
                regex_source: "((".to_owned(),
                ..AdaptiveTestConfig::default()
            },
            |_sys| Vec::new(),
        );
        assert!(matches!(
            Campaign::run(&CampaignConfig::default(), &scenario),
            Err(CampaignError::Adaptive(AdaptiveTestError::Regex(_)))
        ));
    }
}
