//! The campaign engine: Algorithm 1 lifted from one run to a fleet.
//!
//! A campaign executes `rounds × trials_per_round` independent adaptive
//! trials of one [`Scenario`]. Within a round the trials run concurrently
//! on a [`std::thread`] worker pool — every trial owns a private
//! deterministic [`DualCoreSystem`](ptest_master::DualCoreSystem), so
//! trials embarrass­ingly parallelize. Between rounds the engine closes
//! the paper's adaptive loop at fleet scale: each trial's execution trace
//! feeds the [`TransitionCounts`] accumulator, and the counts are
//! re-estimated into the probability distribution the *next* round's
//! patterns are generated from. When any trial of a round found bugs and
//! `bug_biased` learning is on, only bug-revealing trials contribute —
//! steering later rounds toward fault-revealing interleavings.
//!
//! Determinism is a hard invariant: trial seeds derive from the master
//! seed by index, results aggregate in index order, and the report
//! records nothing about the pool — so a campaign's outcome is a pure
//! function of (scenario, configuration, master seed), independent of
//! worker count.

use std::fmt;

use ptest_automata::{Pfa, TransitionCounts};
use ptest_core::{
    AdaptiveTestConfig, AdaptiveTestError, Scenario, TestReport, TrialEngine, TrialScratch,
};

use crate::learning;
use crate::pool;
use crate::report::{CampaignReport, LearnedDistribution, RoundReport, TrialOutcome};

/// Knobs of the cross-trial feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningConfig {
    /// Whether to re-learn the distribution between rounds at all.
    pub enabled: bool,
    /// Laplace smoothing over the skeleton's transitions — keeps rarely
    /// observed services alive in later rounds.
    pub alpha: f64,
    /// When any trial of a round found bugs, learn only from the
    /// bug-revealing trials (the adaptive bias of the paper's loop);
    /// otherwise every trial contributes.
    pub bug_biased: bool,
}

impl Default for LearningConfig {
    fn default() -> LearningConfig {
        LearningConfig {
            enabled: true,
            alpha: 0.5,
            bug_biased: true,
        }
    }
}

/// Configuration of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Independent trials per feedback round.
    pub trials_per_round: usize,
    /// Feedback rounds (1 = no cross-trial adaptation takes effect).
    pub rounds: usize,
    /// Worker threads. Affects wall-clock time only, never results.
    pub workers: usize,
    /// Master seed; every trial seed derives from it deterministically.
    pub master_seed: u64,
    /// The feedback loop.
    pub learning: LearningConfig,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            trials_per_round: 16,
            rounds: 2,
            workers: 4,
            master_seed: 2009,
            learning: LearningConfig::default(),
        }
    }
}

/// Error running a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// A trial (or the round's PFA compilation) failed.
    Adaptive(AdaptiveTestError),
    /// `rounds` or `trials_per_round` was zero.
    EmptyCampaign,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Adaptive(e) => write!(f, "trial error: {e}"),
            CampaignError::EmptyCampaign => {
                write!(f, "campaign needs at least one round and one trial")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<AdaptiveTestError> for CampaignError {
    fn from(e: AdaptiveTestError) -> CampaignError {
        CampaignError::Adaptive(e)
    }
}

/// Derives the seed of `trial` in `round` from the master seed
/// (splitmix64 over the indices — decorrelated, collision-free in
/// practice, and stable across platforms).
#[must_use]
pub fn trial_seed(master_seed: u64, round: usize, trial: usize) -> u64 {
    const ROUND_STRIDE: u64 = 0xA24B_AED4_963E_E407;
    let mixed = splitmix64(master_seed ^ (round as u64).wrapping_mul(ROUND_STRIDE));
    splitmix64(mixed ^ trial as u64)
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// The campaign runner.
#[derive(Debug)]
pub struct Campaign;

impl Campaign {
    /// Runs the full campaign of `scenario` under `cfg` and returns the
    /// aggregate report.
    ///
    /// # Errors
    ///
    /// [`CampaignError::EmptyCampaign`] on a zero-round or zero-trial
    /// configuration; [`CampaignError::Adaptive`] if the scenario's
    /// regex/distribution is invalid or a trial's committer rejects its
    /// configuration.
    pub fn run(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
    ) -> Result<CampaignReport, CampaignError> {
        if cfg.rounds == 0 || cfg.trials_per_round == 0 {
            return Err(CampaignError::EmptyCampaign);
        }
        let base = scenario.base_config();
        let mut pd = base.pd.clone();
        let mut counts = TransitionCounts::new();
        let mut rounds = Vec::with_capacity(cfg.rounds);

        for round in 0..cfg.rounds {
            let engine = TrialEngine::new(AdaptiveTestConfig {
                pd: pd.clone(),
                ..base.clone()
            })?;

            // Fan the round's trials across the pool; results come back
            // in trial-index order regardless of scheduling. Each worker
            // owns one trial scratch for its lifetime, so consecutive
            // trials reuse the detector's snapshot buffers.
            let results = pool::run_indexed_with(
                cfg.workers,
                cfg.trials_per_round,
                TrialScratch::new,
                |scratch, trial| {
                    engine.run_scenario_trial_in(
                        scenario,
                        trial_seed(cfg.master_seed, round, trial),
                        scratch,
                    )
                },
            );
            let mut reports: Vec<TestReport> = Vec::with_capacity(results.len());
            for result in results {
                reports.push(result?);
            }

            // Close the feedback loop: fold this round's trace-derived
            // counts into the campaign-cumulative accumulator (bug-biased
            // when bugs exist) and re-learn the distribution the next
            // round generates from.
            let dfa = engine.generator().dfa();
            let alphabet = engine.generator().regex().alphabet();
            let mut traces_learned = 0u64;
            let mut learned = None;
            if cfg.learning.enabled {
                let any_bugs = reports.iter().any(|r| !r.bugs.is_empty());
                for report in &reports {
                    if cfg.learning.bug_biased && any_bugs && report.bugs.is_empty() {
                        continue;
                    }
                    traces_learned += learning::observe_report(&mut counts, report, dfa);
                }
                pd = counts.to_assignment(dfa, alphabet, cfg.learning.alpha);
                // Compile eagerly so an invalid learned assignment fails
                // loudly here, attributed to this round — not on the next
                // round's TrialEngine::new (or, on the final round, never).
                let pfa = Pfa::from_dfa(dfa, alphabet.clone(), &pd)
                    .map_err(|e| CampaignError::Adaptive(AdaptiveTestError::Pfa(e)))?;
                learned = Some(LearnedDistribution::from_pfa(&pfa, alphabet));
            }

            rounds.push(assemble_round(
                round,
                &engine,
                cfg.master_seed,
                &reports,
                traces_learned,
                learned,
            ));
        }

        Ok(CampaignReport {
            scenario: scenario.name().to_owned(),
            master_seed: cfg.master_seed,
            trials_per_round: cfg.trials_per_round,
            rounds,
        })
    }
}

fn assemble_round(
    round: usize,
    engine: &TrialEngine,
    master_seed: u64,
    reports: &[TestReport],
    traces_learned: u64,
    learned: Option<LearnedDistribution>,
) -> RoundReport {
    let alphabet = engine.generator().regex().alphabet();
    let distribution = LearnedDistribution::from_pfa(engine.generator().pfa(), alphabet);
    let mut trials = Vec::with_capacity(reports.len());
    let mut trials_with_bugs = 0usize;
    let mut bugs = 0usize;
    let mut total_commands = 0u64;
    let mut total_cycles = 0u64;
    let mut first_bug_sum = 0u64;
    for (trial, report) in reports.iter().enumerate() {
        if !report.bugs.is_empty() {
            trials_with_bugs += 1;
        }
        bugs += report.bugs.len();
        total_commands += report.commands_issued;
        total_cycles += report.cycles;
        let commands_to_first_bug = report.commands_to_first_bug();
        first_bug_sum += commands_to_first_bug.unwrap_or(0);
        trials.push(TrialOutcome {
            trial,
            seed: trial_seed(master_seed, round, trial),
            commands_to_first_bug,
            summary: report.machine_summary(),
        });
    }
    let mean_commands_to_first_bug = if trials_with_bugs > 0 {
        Some(first_bug_sum as f64 / trials_with_bugs as f64)
    } else {
        None
    };
    RoundReport {
        round,
        distribution,
        trials,
        trials_with_bugs,
        bugs,
        total_commands,
        total_cycles,
        mean_commands_to_first_bug,
        traces_learned,
        learned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::FnScenario;
    use ptest_pcore::{Op, Program};

    fn compute_scenario(n: usize, s: usize) -> impl Scenario {
        FnScenario::new(
            "compute",
            AdaptiveTestConfig {
                n,
                s,
                ..AdaptiveTestConfig::default()
            },
            |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
            },
        )
    }

    #[test]
    fn trial_seeds_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..8 {
            for trial in 0..64 {
                assert!(seen.insert(trial_seed(7, round, trial)));
            }
        }
        assert_eq!(trial_seed(7, 3, 5), trial_seed(7, 3, 5));
        assert_ne!(trial_seed(7, 3, 5), trial_seed(8, 3, 5));
    }

    #[test]
    fn campaign_runs_all_trials_across_rounds() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 5,
                rounds: 3,
                workers: 2,
                master_seed: 1,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        assert_eq!(report.total_trials(), 15);
        assert_eq!(report.rounds.len(), 3);
        for (i, round) in report.rounds.iter().enumerate() {
            assert_eq!(round.round, i);
            assert_eq!(round.trials.len(), 5);
            assert!(round.total_commands > 0);
            assert!(round.learned.is_some(), "learning is on by default");
        }
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let scenario = compute_scenario(2, 4);
        let run = |workers| {
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 6,
                    rounds: 2,
                    workers,
                    master_seed: 99,
                    ..CampaignConfig::default()
                },
                &scenario,
            )
            .unwrap()
        };
        let one = run(1);
        let four = run(4);
        let eight = run(8);
        assert_eq!(one, four);
        assert_eq!(four, eight);
    }

    #[test]
    fn learning_disabled_keeps_the_distribution_fixed() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 3,
                rounds: 3,
                workers: 2,
                master_seed: 5,
                learning: LearningConfig {
                    enabled: false,
                    ..LearningConfig::default()
                },
            },
            &scenario,
        )
        .unwrap();
        for round in &report.rounds {
            assert_eq!(round.traces_learned, 0);
            assert!(round.learned.is_none());
            assert_eq!(round.distribution, report.rounds[0].distribution);
        }
    }

    #[test]
    fn learning_shifts_the_distribution_between_rounds() {
        let scenario = compute_scenario(3, 6);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 4,
                rounds: 2,
                workers: 2,
                master_seed: 42,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        assert!(report.rounds[0].traces_learned > 0);
        // Round 1 generates from what round 0 learned.
        assert_eq!(
            report.rounds[0].learned.as_ref().unwrap(),
            &report.rounds[1].distribution
        );
    }

    #[test]
    fn empty_campaigns_are_rejected() {
        let scenario = compute_scenario(1, 2);
        assert!(matches!(
            Campaign::run(
                &CampaignConfig {
                    rounds: 0,
                    ..CampaignConfig::default()
                },
                &scenario
            ),
            Err(CampaignError::EmptyCampaign)
        ));
        assert!(matches!(
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 0,
                    ..CampaignConfig::default()
                },
                &scenario
            ),
            Err(CampaignError::EmptyCampaign)
        ));
    }

    #[test]
    fn bad_scenario_regex_is_reported() {
        let scenario = FnScenario::new(
            "bad",
            AdaptiveTestConfig {
                regex_source: "((".to_owned(),
                ..AdaptiveTestConfig::default()
            },
            |_sys| Vec::new(),
        );
        assert!(matches!(
            Campaign::run(&CampaignConfig::default(), &scenario),
            Err(CampaignError::Adaptive(AdaptiveTestError::Regex(_)))
        ));
    }
}
