//! The campaign engine: Algorithm 1 lifted from one run to a fleet.
//!
//! A campaign executes `rounds × trials_per_round` independent adaptive
//! trials of one [`Scenario`]. Within a round the trials run concurrently
//! on a [`std::thread`] worker pool — every trial owns a private
//! deterministic [`DualCoreSystem`](ptest_master::DualCoreSystem), so
//! trials embarrass­ingly parallelize. Between rounds the engine closes
//! the paper's adaptive loop at fleet scale: each trial's execution trace
//! feeds the [`TransitionCounts`] accumulator, and the counts are
//! re-estimated into the probability distribution the *next* round's
//! patterns are generated from. When any trial of a round found bugs and
//! `bug_biased` learning is on, only bug-revealing trials contribute —
//! steering later rounds toward fault-revealing interleavings.
//!
//! Determinism is a hard invariant: trial seeds derive from the master
//! seed by index, results aggregate in index order, and the report
//! records nothing about the pool — so a campaign's outcome is a pure
//! function of (scenario, configuration, master seed), independent of
//! worker count.

use std::fmt;

use ptest_automata::{Pfa, TransitionCounts};
use ptest_core::{
    AdaptiveTestConfig, AdaptiveTestError, MemoryModelSpec, RandomPriorityConfig, Scenario,
    ScheduleSpec, TestReport, TrialEngine, TrialScratch,
};

use crate::learning;
use crate::pool;
use crate::report::{
    CampaignReport, LearnedDistribution, MemoryDetection, RoundReport, ScheduleDetection,
    TrialOutcome,
};

/// Knobs of the cross-trial feedback loop.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LearningConfig {
    /// Whether to re-learn the distribution between rounds at all.
    pub enabled: bool,
    /// Laplace smoothing over the skeleton's transitions — keeps rarely
    /// observed services alive in later rounds.
    pub alpha: f64,
    /// When any trial of a round found bugs, learn only from the
    /// bug-revealing trials (the adaptive bias of the paper's loop);
    /// otherwise every trial contributes.
    pub bug_biased: bool,
}

impl Default for LearningConfig {
    fn default() -> LearningConfig {
        LearningConfig {
            enabled: true,
            alpha: 0.5,
            bug_biased: true,
        }
    }
}

/// Configuration of a campaign.
#[derive(Debug, Clone, PartialEq)]
pub struct CampaignConfig {
    /// Independent trials per feedback round.
    pub trials_per_round: usize,
    /// Feedback rounds (1 = no cross-trial adaptation takes effect).
    pub rounds: usize,
    /// Worker threads. Affects wall-clock time only, never results.
    pub workers: usize,
    /// Master seed; every trial seed derives from it deterministically.
    pub master_seed: u64,
    /// The feedback loop.
    pub learning: LearningConfig,
    /// Schedule-budget rotation. Empty (the default) runs every trial
    /// under the scenario's own
    /// [`schedule`](ptest_core::AdaptiveTestConfig::schedule) spec.
    /// Non-empty, trial `t` of each round runs under a PCT-style
    /// [`RandomPriorityScheduler`](ptest_master::RandomPriorityScheduler)
    /// with `budgets[t % budgets.len()]` priority-change points — so one
    /// campaign sweeps several schedule-search depths and
    /// [`RoundReport::schedule_detection`] reports which budgets find
    /// bugs.
    pub schedule_budgets: Vec<usize>,
    /// Memory-model rotation. Empty (the default) runs every trial under
    /// the scenario's own
    /// [`memory`](ptest_core::AdaptiveTestConfig::memory) spec.
    /// Non-empty, trial `t` of each round runs under
    /// `memory_models[t % memory_models.len()]` — so one campaign probes
    /// the same (pattern × schedule) space under several propagation
    /// semantics and [`RoundReport::memory_detection`] reports which
    /// models surface bugs.
    pub memory_models: Vec<MemoryModelSpec>,
}

impl Default for CampaignConfig {
    fn default() -> CampaignConfig {
        CampaignConfig {
            trials_per_round: 16,
            rounds: 2,
            workers: 4,
            master_seed: 2009,
            learning: LearningConfig::default(),
            schedule_budgets: Vec::new(),
            memory_models: Vec::new(),
        }
    }
}

/// Error running a campaign.
#[derive(Debug)]
pub enum CampaignError {
    /// A trial (or the round's PFA compilation) failed.
    Adaptive(AdaptiveTestError),
    /// `rounds` or `trials_per_round` was zero.
    EmptyCampaign,
}

impl fmt::Display for CampaignError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CampaignError::Adaptive(e) => write!(f, "trial error: {e}"),
            CampaignError::EmptyCampaign => {
                write!(f, "campaign needs at least one round and one trial")
            }
        }
    }
}

impl std::error::Error for CampaignError {}

impl From<AdaptiveTestError> for CampaignError {
    fn from(e: AdaptiveTestError) -> CampaignError {
        CampaignError::Adaptive(e)
    }
}

/// Derives the seed of `trial` in `round` from the master seed
/// (splitmix64 over the indices — decorrelated, collision-free in
/// practice, and stable across platforms).
#[must_use]
pub fn trial_seed(master_seed: u64, round: usize, trial: usize) -> u64 {
    const ROUND_STRIDE: u64 = 0xA24B_AED4_963E_E407;
    let mixed = splitmix64(master_seed ^ (round as u64).wrapping_mul(ROUND_STRIDE));
    splitmix64(mixed ^ trial as u64)
}

/// Derives the *schedule* seed of `trial` in `round` from the master
/// seed — a stream independent of [`trial_seed`], so the campaign
/// explores (pattern × schedule) space rather than a diagonal of it:
/// two trials with related pattern seeds still get decorrelated
/// schedules, and a recorded `(seed, schedule_seed)` pair replays any
/// trial byte-for-byte.
#[must_use]
pub fn schedule_seed(master_seed: u64, round: usize, trial: usize) -> u64 {
    const SCHEDULE_STRIDE: u64 = 0x9FB2_1C65_1E98_DF25;
    let mixed = splitmix64(master_seed ^ SCHEDULE_STRIDE ^ (round as u64).rotate_left(17));
    splitmix64(mixed ^ (trial as u64).wrapping_mul(SCHEDULE_STRIDE))
}

/// Derives the *memory* seed of `trial` in `round` from the master seed
/// — a third stream, independent of both [`trial_seed`] and
/// [`schedule_seed`], so a recorded `(seed, schedule_seed, memory_seed)`
/// triple replays any trial byte-for-byte while the campaign explores
/// (pattern × schedule × store-visibility) space.
#[must_use]
pub fn memory_seed(master_seed: u64, round: usize, trial: usize) -> u64 {
    const MEMORY_STRIDE: u64 = 0x2545_F491_4F6C_DD1D;
    let mixed = splitmix64(master_seed ^ MEMORY_STRIDE ^ (round as u64).rotate_left(29));
    splitmix64(mixed ^ (trial as u64).wrapping_mul(MEMORY_STRIDE))
}

/// The schedule spec trial `t` runs under: the scenario's own spec, or
/// the rotated PCT budget when [`CampaignConfig::schedule_budgets`] is
/// non-empty.
fn trial_schedule(cfg: &CampaignConfig, base: ScheduleSpec, trial: usize) -> ScheduleSpec {
    if cfg.schedule_budgets.is_empty() {
        return base;
    }
    let budget = cfg.schedule_budgets[trial % cfg.schedule_budgets.len()];
    let rp = match base {
        ScheduleSpec::RandomPriority(rp) => rp,
        ScheduleSpec::LockStep => RandomPriorityConfig::default(),
    };
    ScheduleSpec::RandomPriority(RandomPriorityConfig {
        change_points: budget,
        ..rp
    })
}

/// The memory model trial `t` runs under: the scenario's own spec, or
/// the rotated model when [`CampaignConfig::memory_models`] is
/// non-empty.
fn trial_memory(cfg: &CampaignConfig, base: MemoryModelSpec, trial: usize) -> MemoryModelSpec {
    if cfg.memory_models.is_empty() {
        return base;
    }
    cfg.memory_models[trial % cfg.memory_models.len()]
}

use ptest_master::sched::splitmix64;

/// The campaign runner.
#[derive(Debug)]
pub struct Campaign;

impl Campaign {
    /// Runs the full campaign of `scenario` under `cfg` and returns the
    /// aggregate report.
    ///
    /// # Errors
    ///
    /// [`CampaignError::EmptyCampaign`] on a zero-round or zero-trial
    /// configuration; [`CampaignError::Adaptive`] if the scenario's
    /// regex/distribution is invalid or a trial's committer rejects its
    /// configuration.
    pub fn run(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
    ) -> Result<CampaignReport, CampaignError> {
        if cfg.rounds == 0 || cfg.trials_per_round == 0 {
            return Err(CampaignError::EmptyCampaign);
        }
        let base = scenario.base_config();
        let mut pd = base.pd.clone();
        let mut counts = TransitionCounts::new();
        let mut rounds = Vec::with_capacity(cfg.rounds);

        for round in 0..cfg.rounds {
            let engine = TrialEngine::new(AdaptiveTestConfig {
                pd: pd.clone(),
                ..base.clone()
            })?;

            // Fan the round's trials across the pool; results come back
            // in trial-index order regardless of scheduling. Each worker
            // owns one trial scratch for its lifetime, so consecutive
            // trials reuse the detector's snapshot buffers.
            let base_schedule = base.schedule;
            let base_memory = base.memory;
            let results = pool::run_indexed_with(
                cfg.workers,
                cfg.trials_per_round,
                TrialScratch::new,
                |scratch, trial| {
                    engine.run_scenario_trial_explored_as(
                        scenario,
                        trial_seed(cfg.master_seed, round, trial),
                        schedule_seed(cfg.master_seed, round, trial),
                        memory_seed(cfg.master_seed, round, trial),
                        trial_schedule(cfg, base_schedule, trial),
                        trial_memory(cfg, base_memory, trial),
                        scratch,
                    )
                },
            );
            let mut reports: Vec<TestReport> = Vec::with_capacity(results.len());
            for result in results {
                reports.push(result?);
            }

            // Close the feedback loop: fold this round's trace-derived
            // counts into the campaign-cumulative accumulator (bug-biased
            // when bugs exist) and re-learn the distribution the next
            // round generates from.
            let dfa = engine.generator().dfa();
            let alphabet = engine.generator().regex().alphabet();
            let mut traces_learned = 0u64;
            let mut learned = None;
            if cfg.learning.enabled {
                let any_bugs = reports.iter().any(|r| !r.bugs.is_empty());
                for report in &reports {
                    if cfg.learning.bug_biased && any_bugs && report.bugs.is_empty() {
                        continue;
                    }
                    traces_learned += learning::observe_report(&mut counts, report, dfa);
                }
                pd = counts.to_assignment(dfa, alphabet, cfg.learning.alpha);
                // Compile eagerly so an invalid learned assignment fails
                // loudly here, attributed to this round — not on the next
                // round's TrialEngine::new (or, on the final round, never).
                let pfa = Pfa::from_dfa(dfa, alphabet.clone(), &pd)
                    .map_err(|e| CampaignError::Adaptive(AdaptiveTestError::Pfa(e)))?;
                learned = Some(LearnedDistribution::from_pfa(&pfa, alphabet));
            }

            rounds.push(assemble_round(
                round,
                &engine,
                cfg,
                &reports,
                traces_learned,
                learned,
            ));
        }

        Ok(CampaignReport {
            scenario: scenario.name().to_owned(),
            master_seed: cfg.master_seed,
            trials_per_round: cfg.trials_per_round,
            rounds,
        })
    }
}

fn assemble_round(
    round: usize,
    engine: &TrialEngine,
    cfg: &CampaignConfig,
    reports: &[TestReport],
    traces_learned: u64,
    learned: Option<LearnedDistribution>,
) -> RoundReport {
    let master_seed = cfg.master_seed;
    let alphabet = engine.generator().regex().alphabet();
    let distribution = LearnedDistribution::from_pfa(engine.generator().pfa(), alphabet);
    let mut trials = Vec::with_capacity(reports.len());
    let mut trials_with_bugs = 0usize;
    let mut bugs = 0usize;
    let mut total_commands = 0u64;
    let mut total_cycles = 0u64;
    let mut first_bug_sum = 0u64;
    let mut schedule_detection: Vec<ScheduleDetection> = Vec::new();
    let mut memory_detection: Vec<MemoryDetection> = Vec::new();
    for (trial, report) in reports.iter().enumerate() {
        if !report.bugs.is_empty() {
            trials_with_bugs += 1;
        }
        bugs += report.bugs.len();
        total_commands += report.commands_issued;
        total_cycles += report.cycles;
        let commands_to_first_bug = report.commands_to_first_bug();
        first_bug_sum += commands_to_first_bug.unwrap_or(0);
        let schedule = report.config.schedule.label();
        let slot = match schedule_detection
            .iter_mut()
            .find(|d| d.schedule == schedule)
        {
            Some(slot) => slot,
            None => {
                schedule_detection.push(ScheduleDetection {
                    schedule: schedule.clone(),
                    trials: 0,
                    trials_with_bugs: 0,
                    bugs: 0,
                });
                schedule_detection.last_mut().expect("just pushed")
            }
        };
        slot.trials += 1;
        if !report.bugs.is_empty() {
            slot.trials_with_bugs += 1;
        }
        slot.bugs += report.bugs.len();
        let memory = report.config.memory.label();
        let slot = match memory_detection.iter_mut().find(|d| d.memory == memory) {
            Some(slot) => slot,
            None => {
                memory_detection.push(MemoryDetection {
                    memory: memory.clone(),
                    trials: 0,
                    trials_with_bugs: 0,
                    bugs: 0,
                });
                memory_detection.last_mut().expect("just pushed")
            }
        };
        slot.trials += 1;
        if !report.bugs.is_empty() {
            slot.trials_with_bugs += 1;
        }
        slot.bugs += report.bugs.len();
        trials.push(TrialOutcome {
            trial,
            seed: trial_seed(master_seed, round, trial),
            schedule_seed: report.schedule_seed,
            schedule,
            memory_seed: report.memory_seed,
            memory,
            commands_to_first_bug,
            summary: report.machine_summary(),
        });
    }
    let mean_commands_to_first_bug = if trials_with_bugs > 0 {
        Some(first_bug_sum as f64 / trials_with_bugs as f64)
    } else {
        None
    };
    RoundReport {
        round,
        distribution,
        trials,
        trials_with_bugs,
        bugs,
        total_commands,
        total_cycles,
        mean_commands_to_first_bug,
        schedule_detection,
        memory_detection,
        traces_learned,
        learned,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::FnScenario;
    use ptest_pcore::{Op, Program};

    fn compute_scenario(n: usize, s: usize) -> impl Scenario {
        FnScenario::new(
            "compute",
            AdaptiveTestConfig {
                n,
                s,
                ..AdaptiveTestConfig::default()
            },
            |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
            },
        )
    }

    #[test]
    fn trial_seeds_are_unique_and_stable() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..8 {
            for trial in 0..64 {
                assert!(seen.insert(trial_seed(7, round, trial)));
            }
        }
        assert_eq!(trial_seed(7, 3, 5), trial_seed(7, 3, 5));
        assert_ne!(trial_seed(7, 3, 5), trial_seed(8, 3, 5));
    }

    #[test]
    fn schedule_seeds_are_stable_and_decorrelated_from_trial_seeds() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..8 {
            for trial in 0..64 {
                assert!(seen.insert(schedule_seed(7, round, trial)));
                assert_ne!(
                    schedule_seed(7, round, trial),
                    trial_seed(7, round, trial),
                    "schedule and pattern streams must differ"
                );
            }
        }
        assert_eq!(schedule_seed(7, 3, 5), schedule_seed(7, 3, 5));
        assert_ne!(schedule_seed(7, 3, 5), schedule_seed(8, 3, 5));
    }

    #[test]
    fn memory_seeds_are_stable_and_decorrelated_from_the_other_streams() {
        let mut seen = std::collections::BTreeSet::new();
        for round in 0..8 {
            for trial in 0..64 {
                assert!(seen.insert(memory_seed(7, round, trial)));
                assert_ne!(
                    memory_seed(7, round, trial),
                    trial_seed(7, round, trial),
                    "memory and pattern streams must differ"
                );
                assert_ne!(
                    memory_seed(7, round, trial),
                    schedule_seed(7, round, trial),
                    "memory and schedule streams must differ"
                );
            }
        }
        assert_eq!(memory_seed(7, 3, 5), memory_seed(7, 3, 5));
        assert_ne!(memory_seed(7, 3, 5), memory_seed(8, 3, 5));
    }

    #[test]
    fn memory_model_rotation_shows_up_in_detection_buckets() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 6,
                rounds: 1,
                workers: 2,
                master_seed: 3,
                memory_models: vec![MemoryModelSpec::SeqCst, MemoryModelSpec::store_buffer()],
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let round = &report.rounds[0];
        let labels: Vec<&str> = round
            .memory_detection
            .iter()
            .map(|d| d.memory.as_str())
            .collect();
        assert_eq!(labels, ["seq-cst", "store-buffer(d=24)"]);
        assert!(round.memory_detection.iter().all(|d| d.trials == 3));
        for outcome in &round.trials {
            assert_eq!(
                outcome.memory,
                ["seq-cst", "store-buffer(d=24)"][outcome.trial % 2]
            );
            assert_eq!(
                outcome.memory_seed,
                memory_seed(3, 0, outcome.trial),
                "outcomes record the replay triple"
            );
        }
    }

    #[test]
    fn memory_model_campaigns_stay_worker_count_independent() {
        let scenario = compute_scenario(2, 4);
        let run = |workers| {
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 6,
                    rounds: 2,
                    workers,
                    master_seed: 77,
                    schedule_budgets: vec![1, 4],
                    memory_models: vec![MemoryModelSpec::SeqCst, MemoryModelSpec::store_buffer()],
                    ..CampaignConfig::default()
                },
                &scenario,
            )
            .unwrap()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn default_campaigns_bucket_everything_under_seq_cst() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 3,
                rounds: 1,
                workers: 1,
                master_seed: 9,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let round = &report.rounds[0];
        assert_eq!(round.memory_detection.len(), 1);
        assert_eq!(round.memory_detection[0].memory, "seq-cst");
        assert_eq!(round.memory_detection[0].trials, 3);
    }

    #[test]
    fn schedule_budget_rotation_shows_up_in_detection_buckets() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 6,
                rounds: 1,
                workers: 2,
                master_seed: 3,
                schedule_budgets: vec![0, 3],
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let round = &report.rounds[0];
        let labels: Vec<&str> = round
            .schedule_detection
            .iter()
            .map(|d| d.schedule.as_str())
            .collect();
        assert_eq!(labels, ["random-priority(d=0)", "random-priority(d=3)"]);
        assert!(round.schedule_detection.iter().all(|d| d.trials == 3));
        for outcome in &round.trials {
            assert_eq!(
                outcome.schedule,
                format!("random-priority(d={})", [0, 3][outcome.trial % 2])
            );
            assert_eq!(
                outcome.schedule_seed,
                schedule_seed(3, 0, outcome.trial),
                "outcomes record the replay pair"
            );
        }
    }

    #[test]
    fn schedule_budget_campaigns_stay_worker_count_independent() {
        let scenario = compute_scenario(2, 4);
        let run = |workers| {
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 6,
                    rounds: 2,
                    workers,
                    master_seed: 77,
                    schedule_budgets: vec![1, 4],
                    ..CampaignConfig::default()
                },
                &scenario,
            )
            .unwrap()
        };
        assert_eq!(run(1), run(4));
    }

    #[test]
    fn default_campaigns_bucket_everything_under_lock_step() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 3,
                rounds: 1,
                workers: 1,
                master_seed: 9,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        let round = &report.rounds[0];
        assert_eq!(round.schedule_detection.len(), 1);
        assert_eq!(round.schedule_detection[0].schedule, "lock-step");
        assert_eq!(round.schedule_detection[0].trials, 3);
    }

    #[test]
    fn campaign_runs_all_trials_across_rounds() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 5,
                rounds: 3,
                workers: 2,
                master_seed: 1,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        assert_eq!(report.total_trials(), 15);
        assert_eq!(report.rounds.len(), 3);
        for (i, round) in report.rounds.iter().enumerate() {
            assert_eq!(round.round, i);
            assert_eq!(round.trials.len(), 5);
            assert!(round.total_commands > 0);
            assert!(round.learned.is_some(), "learning is on by default");
        }
    }

    #[test]
    fn worker_count_does_not_change_the_report() {
        let scenario = compute_scenario(2, 4);
        let run = |workers| {
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 6,
                    rounds: 2,
                    workers,
                    master_seed: 99,
                    ..CampaignConfig::default()
                },
                &scenario,
            )
            .unwrap()
        };
        let one = run(1);
        let four = run(4);
        let eight = run(8);
        assert_eq!(one, four);
        assert_eq!(four, eight);
    }

    #[test]
    fn learning_disabled_keeps_the_distribution_fixed() {
        let scenario = compute_scenario(2, 4);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 3,
                rounds: 3,
                workers: 2,
                master_seed: 5,
                learning: LearningConfig {
                    enabled: false,
                    ..LearningConfig::default()
                },
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        for round in &report.rounds {
            assert_eq!(round.traces_learned, 0);
            assert!(round.learned.is_none());
            assert_eq!(round.distribution, report.rounds[0].distribution);
        }
    }

    #[test]
    fn learning_shifts_the_distribution_between_rounds() {
        let scenario = compute_scenario(3, 6);
        let report = Campaign::run(
            &CampaignConfig {
                trials_per_round: 4,
                rounds: 2,
                workers: 2,
                master_seed: 42,
                ..CampaignConfig::default()
            },
            &scenario,
        )
        .unwrap();
        assert!(report.rounds[0].traces_learned > 0);
        // Round 1 generates from what round 0 learned.
        assert_eq!(
            report.rounds[0].learned.as_ref().unwrap(),
            &report.rounds[1].distribution
        );
    }

    #[test]
    fn empty_campaigns_are_rejected() {
        let scenario = compute_scenario(1, 2);
        assert!(matches!(
            Campaign::run(
                &CampaignConfig {
                    rounds: 0,
                    ..CampaignConfig::default()
                },
                &scenario
            ),
            Err(CampaignError::EmptyCampaign)
        ));
        assert!(matches!(
            Campaign::run(
                &CampaignConfig {
                    trials_per_round: 0,
                    ..CampaignConfig::default()
                },
                &scenario
            ),
            Err(CampaignError::EmptyCampaign)
        ));
    }

    #[test]
    fn bad_scenario_regex_is_reported() {
        let scenario = FnScenario::new(
            "bad",
            AdaptiveTestConfig {
                regex_source: "((".to_owned(),
                ..AdaptiveTestConfig::default()
            },
            |_sys| Vec::new(),
        );
        assert!(matches!(
            Campaign::run(&CampaignConfig::default(), &scenario),
            Err(CampaignError::Adaptive(AdaptiveTestError::Regex(_)))
        ));
    }
}
