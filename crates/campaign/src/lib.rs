//! # ptest-campaign — parallel multi-trial adaptive testing with
//! # cross-trial learning
//!
//! The paper's pTest is adaptive across *runs*: execution feedback
//! retrains the PFA's probability distribution so later test patterns
//! steer toward fault-revealing interleavings. This crate lifts that
//! loop from one run to a **fleet**: a [`Campaign`] executes
//! `rounds × trials_per_round` independent trials of one
//! [`Scenario`] across a worker-thread pool (each trial on a private
//! deterministic simulated SoC), aggregates each trial's trace-derived
//! [`TransitionCounts`](ptest_automata::TransitionCounts), and
//! re-learns the [`ProbabilityAssignment`](ptest_automata::ProbabilityAssignment)
//! between rounds.
//!
//! Determinism is the load-bearing guarantee: a campaign's aggregate
//! [`CampaignReport`] is a pure function of (scenario, configuration,
//! master seed) — the worker count changes wall-clock time, never
//! results.
//!
//! ## Quick start
//!
//! ```
//! use ptest_campaign::{Campaign, CampaignConfig};
//! use ptest_core::{AdaptiveTestConfig, FnScenario};
//! use ptest_pcore::{Op, Program};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let scenario = FnScenario::new(
//!     "compute-worker",
//!     AdaptiveTestConfig { n: 2, s: 4, ..AdaptiveTestConfig::default() },
//!     |sys| {
//!         vec![sys.kernel_mut().register_program(
//!             Program::new(vec![Op::Compute(20), Op::Exit]).expect("valid"),
//!         )]
//!     },
//! );
//! let report = Campaign::run(
//!     &CampaignConfig { trials_per_round: 4, rounds: 2, workers: 2, ..CampaignConfig::default() },
//!     &scenario,
//! )?;
//! assert_eq!(report.total_trials(), 8);
//! println!("{}", report.summary());
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod checkpoint;
mod engine;
pub mod learning;
mod pool;
mod report;
mod shard;

pub use checkpoint::{
    config_fingerprint, CampaignCheckpoint, CountEntry, CountsSnapshot, CHECKPOINT_SCHEMA,
};
pub use engine::{
    irq_seed, memory_seed, schedule_seed, trial_seed, Campaign, CampaignConfig, CampaignError,
    LearningConfig,
};
pub use report::{
    CampaignReport, DistributionEntry, LearnedDistribution, MemoryDetection, MinimizedOutcome,
    PreemptionDetection, RoundReport, ScheduleDetection, TrialOutcome,
};
pub use shard::{ShardReport, ShardRound, ShardSpec};

// The Scenario abstraction campaigns are written against.
pub use ptest_core::{Configured, FnScenario, Scenario};
