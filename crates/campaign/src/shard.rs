//! Seed-space sharding: splitting one campaign across processes or
//! machines without giving up byte-identical reports.
//!
//! A shard is a contiguous range of trial indices within every round.
//! Because each trial's seeds derive from its *absolute* index, a shard
//! runs exactly the trials the unsharded campaign would have run at
//! those indices — and because round reports are assembled from
//! per-trial outcomes alone, merging shards is concatenation (outcomes)
//! plus an exact integer merge (learning counts). The merged
//! [`CampaignReport`] is **byte-identical** to the unsharded run's; the
//! shard proptests compare exactly those JSON strings.
//!
//! The one coupling is cross-round learning: round `r + 1`'s
//! distribution depends on *every* shard's round-`r` traces, so a shard
//! cannot run ahead on its own. [`Campaign::run_shard`] therefore
//! rejects configurations with learning enabled across multiple rounds —
//! shard either a learning-off campaign (any number of rounds) or a
//! single round of a learning campaign; the merge re-learns the
//! distribution from the merged counts in both cases.

use ptest_core::{Scenario, TrialEngine, TrialScratch};

use crate::engine::{
    self, Campaign, CampaignConfig, CampaignError, CampaignState, RoundTrials, TrialPool,
};
use crate::report::{CampaignReport, TrialOutcome};
use ptest_automata::TransitionCounts;
use std::ops::Range;
use std::sync::Arc;

/// Which contiguous slice of every round's trial indices a shard owns.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardSpec {
    /// This shard's index, `0 <= index < of`.
    pub index: usize,
    /// Total number of shards.
    pub of: usize,
}

impl ShardSpec {
    /// The absolute trial indices this shard owns out of
    /// `trials_per_round`: a balanced contiguous split, with the
    /// remainder spread over the leading shards. May be empty when there
    /// are more shards than trials.
    #[must_use]
    pub fn trials(&self, trials_per_round: usize) -> Range<usize> {
        let per = trials_per_round / self.of;
        let rem = trials_per_round % self.of;
        let lo = self.index * per + self.index.min(rem);
        let len = per + usize::from(self.index < rem);
        lo..lo + len
    }

    fn validate(&self) -> Result<(), CampaignError> {
        if self.of == 0 || self.index >= self.of {
            return Err(CampaignError::Shard(format!(
                "shard {}/{} is not a valid split",
                self.index, self.of
            )));
        }
        Ok(())
    }
}

/// One round's raw materials as produced by a single shard.
///
/// Carries both learn-fold candidates (all trials / bug-revealing trials
/// only) because the bug-biased choice between them needs the *global*
/// any-bugs signal, which only the merge has.
#[derive(Debug)]
pub struct ShardRound {
    /// Round index.
    pub round: usize,
    /// Outcomes of this shard's trials, in absolute trial-index order.
    pub outcomes: Vec<TrialOutcome>,
    pub(crate) counts_all: TransitionCounts,
    pub(crate) counts_bugs: TransitionCounts,
}

/// The result of one shard of a campaign, input to
/// [`Campaign::merge_shard_reports`].
#[derive(Debug)]
pub struct ShardReport {
    /// Scenario name.
    pub scenario: String,
    /// Fingerprint of the campaign configuration the shard ran under
    /// (see [`config_fingerprint`](crate::config_fingerprint)) — the
    /// merge refuses shards from differing campaigns.
    pub config_fingerprint: String,
    /// Which slice of the campaign this shard ran.
    pub shard: ShardSpec,
    /// Per-round raw materials, in round order.
    pub rounds: Vec<ShardRound>,
}

impl Campaign {
    /// Runs one shard of the campaign: trials
    /// `shard.trials(cfg.trials_per_round)` of every round.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Shard`] on an invalid split, or when
    /// `cfg.learning.enabled` with `cfg.rounds > 1` — cross-round
    /// learning makes round `r + 1` depend on every shard's round-`r`
    /// traces, which a standalone shard cannot know. Otherwise same as
    /// [`Campaign::run`].
    pub fn run_shard(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
        shard: ShardSpec,
    ) -> Result<ShardReport, CampaignError> {
        shard.validate()?;
        if cfg.rounds == 0 || cfg.trials_per_round == 0 {
            return Err(CampaignError::EmptyCampaign);
        }
        if cfg.learning.enabled && cfg.rounds > 1 {
            return Err(CampaignError::Shard(
                "cross-round learning couples shards: shard a learning-off campaign \
                 or a single learning round"
                    .to_owned(),
            ));
        }
        if cfg.minimize_bugs {
            return Err(CampaignError::Shard(
                "minimization needs the campaign-wide first hit per bug class, \
                 which no standalone shard knows: minimize on the merged report's \
                 recorded triples instead"
                    .to_owned(),
            ));
        }
        let base = scenario.base_config();
        let trials = shard.trials(cfg.trials_per_round);
        // Learning never advances past the only round that could use it,
        // so every round generates from the scenario's base distribution
        // — exactly as the unsharded run would.
        let engine = Arc::new(TrialEngine::new(base.clone())?);
        let rounds = std::thread::scope(|scope| {
            let pool = TrialPool::start(scope, cfg.workers, TrialScratch::new);
            let mut rounds = Vec::with_capacity(cfg.rounds);
            for round in 0..cfg.rounds {
                let materials = engine::run_round_trials(
                    &pool,
                    cfg,
                    scenario,
                    &base,
                    &engine,
                    round,
                    trials.clone(),
                )?;
                rounds.push(ShardRound {
                    round,
                    outcomes: materials.outcomes,
                    counts_all: materials.counts_all,
                    counts_bugs: materials.counts_bugs,
                });
            }
            Ok::<Vec<ShardRound>, CampaignError>(rounds)
        })?;
        Ok(ShardReport {
            scenario: scenario.name().to_owned(),
            config_fingerprint: crate::checkpoint::config_fingerprint(cfg),
            shard,
            rounds,
        })
    }

    /// Merges the reports of every shard of a campaign into the
    /// aggregate report — byte-identical to what the unsharded
    /// [`Campaign::run`] produces: outcomes concatenate in shard order
    /// (restoring absolute trial order), learning counts merge as exact
    /// integer sums, and the learned distribution is re-estimated from
    /// the merged counts.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Shard`] when the set of shards is not exactly
    /// `0..of` of this campaign (missing/duplicate shards, differing
    /// configuration fingerprints or scenario); otherwise same as
    /// [`Campaign::run`].
    pub fn merge_shard_reports(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
        shards: Vec<ShardReport>,
    ) -> Result<CampaignReport, CampaignError> {
        let of = shards.len();
        let fingerprint = crate::checkpoint::config_fingerprint(cfg);
        let mut slots: Vec<Option<ShardReport>> = (0..of).map(|_| None).collect();
        for report in shards {
            if report.scenario != scenario.name() || report.config_fingerprint != fingerprint {
                return Err(CampaignError::Shard(format!(
                    "shard {}/{} belongs to a different campaign",
                    report.shard.index, report.shard.of
                )));
            }
            if report.shard.of != of || report.shard.index >= of {
                return Err(CampaignError::Shard(format!(
                    "got {of} shards but shard {}/{} among them",
                    report.shard.index, report.shard.of
                )));
            }
            let slot = &mut slots[report.shard.index];
            if slot.is_some() {
                return Err(CampaignError::Shard(format!(
                    "duplicate shard {}/{of}",
                    report.shard.index
                )));
            }
            *slot = Some(report);
        }
        let shards: Vec<ShardReport> = slots
            .into_iter()
            .map(|slot| slot.ok_or_else(|| CampaignError::Shard("missing shard".to_owned())))
            .collect::<Result<_, _>>()?;
        if shards.is_empty() {
            return Err(CampaignError::Shard("no shards to merge".to_owned()));
        }

        let base = scenario.base_config();
        let base_pd = base.pd.clone();
        let probe = TrialEngine::new(base)?;
        let mut state = CampaignState {
            pd: base_pd,
            counts: TransitionCounts::new(),
            rounds: Vec::with_capacity(cfg.rounds),
            next_round: 0,
        };
        for round in 0..cfg.rounds {
            let mut materials = RoundTrials {
                outcomes: Vec::with_capacity(cfg.trials_per_round),
                counts_all: TransitionCounts::new(),
                counts_bugs: TransitionCounts::new(),
            };
            for shard in &shards {
                let part = shard.rounds.get(round).ok_or_else(|| {
                    CampaignError::Shard(format!(
                        "shard {} is missing round {round}",
                        shard.shard.index
                    ))
                })?;
                materials.outcomes.extend(part.outcomes.iter().cloned());
                materials.counts_all.merge(&part.counts_all);
                materials.counts_bugs.merge(&part.counts_bugs);
            }
            // Every shardable configuration generates all rounds from the
            // base distribution, so the probe engine's PFA is exactly the
            // distribution snapshot close_round records.
            let report = engine::close_round(cfg, &probe, round, materials, &mut state)?;
            state.rounds.push(report);
            state.next_round = round + 1;
        }
        Ok(engine::report_of(cfg, scenario, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::AdaptiveTestConfig;
    use ptest_pcore::{Op, Program};

    use crate::engine::LearningConfig;
    use crate::FnScenario;

    fn scenario() -> impl Scenario {
        FnScenario::new(
            "compute",
            AdaptiveTestConfig {
                n: 2,
                s: 5,
                ..AdaptiveTestConfig::default()
            },
            |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
            },
        )
    }

    fn run_sharded(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
        of: usize,
    ) -> Result<CampaignReport, CampaignError> {
        let shards = (0..of)
            .map(|index| Campaign::run_shard(cfg, scenario, ShardSpec { index, of }))
            .collect::<Result<Vec<_>, _>>()?;
        Campaign::merge_shard_reports(cfg, scenario, shards)
    }

    #[test]
    fn minimizing_campaigns_cannot_shard() {
        let scenario = scenario();
        let cfg = CampaignConfig {
            rounds: 1,
            minimize_bugs: true,
            learning: LearningConfig {
                enabled: false,
                ..LearningConfig::default()
            },
            ..CampaignConfig::default()
        };
        assert!(matches!(
            Campaign::run_shard(&cfg, &scenario, ShardSpec { index: 0, of: 2 }),
            Err(CampaignError::Shard(_))
        ));
    }

    #[test]
    fn shard_ranges_partition_the_trials() {
        for (trials, of) in [(10, 3), (7, 7), (3, 8), (16, 1), (100, 9)] {
            let mut covered = Vec::new();
            for index in 0..of {
                covered.extend(ShardSpec { index, of }.trials(trials));
            }
            assert_eq!(covered, (0..trials).collect::<Vec<_>>(), "{trials}/{of}");
        }
    }

    #[test]
    fn merged_shards_match_the_unsharded_run() {
        let scenario = scenario();
        // Single learning round: the merge re-learns from merged counts.
        let learning = CampaignConfig {
            trials_per_round: 9,
            rounds: 1,
            workers: 2,
            master_seed: 77,
            ..CampaignConfig::default()
        };
        // Learning off: sharding is legal across multiple rounds.
        let fixed = CampaignConfig {
            trials_per_round: 8,
            rounds: 3,
            workers: 2,
            master_seed: 78,
            learning: LearningConfig {
                enabled: false,
                ..LearningConfig::default()
            },
            ..CampaignConfig::default()
        };
        for cfg in [learning, fixed] {
            let whole = Campaign::run(&cfg, &scenario).unwrap();
            for of in [1, 2, 3, 5] {
                assert_eq!(
                    run_sharded(&cfg, &scenario, of).unwrap(),
                    whole,
                    "{of} shards"
                );
            }
        }
    }

    #[test]
    fn sharded_multi_round_learning_is_rejected() {
        let scenario = scenario();
        let cfg = CampaignConfig {
            rounds: 2,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            Campaign::run_shard(&cfg, &scenario, ShardSpec { index: 0, of: 2 }),
            Err(CampaignError::Shard(_))
        ));
    }

    #[test]
    fn invalid_splits_and_foreign_shards_are_rejected() {
        let scenario = scenario();
        let cfg = CampaignConfig {
            trials_per_round: 4,
            rounds: 1,
            ..CampaignConfig::default()
        };
        assert!(matches!(
            Campaign::run_shard(&cfg, &scenario, ShardSpec { index: 2, of: 2 }),
            Err(CampaignError::Shard(_))
        ));
        assert!(matches!(
            Campaign::run_shard(&cfg, &scenario, ShardSpec { index: 0, of: 0 }),
            Err(CampaignError::Shard(_))
        ));

        let shard0 = Campaign::run_shard(&cfg, &scenario, ShardSpec { index: 0, of: 2 }).unwrap();
        // Missing shard 1.
        assert!(matches!(
            Campaign::merge_shard_reports(&cfg, &scenario, vec![shard0]),
            Err(CampaignError::Shard(_))
        ));
        // Duplicate shard 0.
        let a = Campaign::run_shard(&cfg, &scenario, ShardSpec { index: 0, of: 2 }).unwrap();
        let b = Campaign::run_shard(&cfg, &scenario, ShardSpec { index: 0, of: 2 }).unwrap();
        assert!(matches!(
            Campaign::merge_shard_reports(&cfg, &scenario, vec![a, b]),
            Err(CampaignError::Shard(_))
        ));
        // A shard of a different campaign (other master seed).
        let other = CampaignConfig {
            master_seed: cfg.master_seed + 1,
            ..cfg.clone()
        };
        let foreign =
            Campaign::run_shard(&other, &scenario, ShardSpec { index: 0, of: 1 }).unwrap();
        assert!(matches!(
            Campaign::merge_shard_reports(&cfg, &scenario, vec![foreign]),
            Err(CampaignError::Shard(_))
        ));
        assert!(matches!(
            Campaign::merge_shard_reports(&cfg, &scenario, Vec::new()),
            Err(CampaignError::Shard(_))
        ));
    }

    #[test]
    fn more_shards_than_trials_still_merge_cleanly() {
        let scenario = scenario();
        let cfg = CampaignConfig {
            trials_per_round: 3,
            rounds: 1,
            workers: 1,
            master_seed: 5,
            ..CampaignConfig::default()
        };
        let whole = Campaign::run(&cfg, &scenario).unwrap();
        assert_eq!(run_sharded(&cfg, &scenario, 6).unwrap(), whole);
    }
}
