//! Cross-trial feedback: turning executed trials back into probability
//! distributions.
//!
//! The paper's tool is adaptive across runs — "the probability
//! distribution can be learned through system profiling" — and this
//! module is that loop at campaign scale. Each trial's *execution trace*
//! (the services actually committed to the slave, per controlled task,
//! truncated where a crash or hang stopped the committer) is segmented
//! into legal lifecycle walks over the DFA skeleton and accumulated into
//! [`TransitionCounts`]; between rounds the counts are re-estimated into
//! the next round's [`ProbabilityAssignment`].
//!
//! [`ProbabilityAssignment`]: ptest_automata::ProbabilityAssignment

use ptest_automata::{Dfa, Sym, TransitionCounts};
use ptest_core::TestReport;

/// Extracts the delivered service trace of each controlled slave task
/// from a trial report, segmented into DFA-legal walks.
///
/// Only steps the committer actually issued count (skipped steps and
/// steps after a fatal stop do not); cyclically generated patterns are
/// split at lifecycle boundaries, so every returned trace is a legal
/// walk from the skeleton's start state.
#[must_use]
pub fn delivered_traces(report: &TestReport, dfa: &Dfa) -> Vec<Vec<Sym>> {
    let mut per_pattern: Vec<Vec<Sym>> = vec![Vec::new(); report.config.n.max(1)];
    for (step, rec) in report.merged.steps().iter().zip(report.exec_records.iter()) {
        if rec.request.is_some() && step.pattern < per_pattern.len() {
            per_pattern[step.pattern].push(step.sym);
        }
    }

    let mut traces = Vec::new();
    for symbols in per_pattern {
        let mut segment: Vec<Sym> = Vec::new();
        let mut q = dfa.start();
        for sym in symbols {
            if let Some(next) = dfa.next(q, sym) {
                segment.push(sym);
                q = next;
                continue;
            }
            // Lifecycle boundary (or absorbed final state): close the
            // segment and restart the walk from q0 with this symbol.
            if !segment.is_empty() {
                traces.push(std::mem::take(&mut segment));
            }
            if let Some(next) = dfa.next(dfa.start(), sym) {
                segment.push(sym);
                q = next;
            } else {
                q = dfa.start();
            }
        }
        if !segment.is_empty() {
            traces.push(segment);
        }
    }
    traces
}

/// Feeds every delivered trace of `report` into `counts`. Returns how
/// many traces were accumulated.
pub fn observe_report(counts: &mut TransitionCounts, report: &TestReport, dfa: &Dfa) -> u64 {
    let mut added = 0u64;
    for trace in delivered_traces(report, dfa) {
        let index = usize::try_from(counts.trace_count()).unwrap_or(usize::MAX);
        if counts.observe(dfa, index, &trace).is_ok() {
            added += 1;
        }
    }
    added
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::{AdaptiveTest, AdaptiveTestConfig, PatternGenerator};
    use ptest_master::DualCoreSystem;
    use ptest_pcore::{Op, Program, ProgramId};

    fn quick_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        vec![sys
            .kernel_mut()
            .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
    }

    #[test]
    fn completed_run_yields_one_trace_per_lifecycle() {
        let report = AdaptiveTest::run(
            AdaptiveTestConfig {
                n: 3,
                s: 6,
                seed: 11,
                ..AdaptiveTestConfig::default()
            },
            quick_setup,
        )
        .unwrap();
        assert!(report.completed);
        let g = PatternGenerator::pcore_paper().unwrap();
        let traces = delivered_traces(&report, g.dfa());
        // Non-cyclic generation: each pattern is one lifecycle walk.
        assert_eq!(traces.len(), 3);
        for trace in &traces {
            assert!(g.is_legal_prefix(trace), "every trace is a legal walk");
            assert!(!trace.is_empty());
        }
    }

    #[test]
    fn cyclic_patterns_are_split_at_lifecycle_boundaries() {
        let report = AdaptiveTest::run(
            AdaptiveTestConfig {
                n: 2,
                s: 24,
                cyclic_generation: true,
                seed: 5,
                ..AdaptiveTestConfig::default()
            },
            quick_setup,
        )
        .unwrap();
        let g = PatternGenerator::pcore_paper().unwrap();
        let traces = delivered_traces(&report, g.dfa());
        assert!(
            traces.len() > 2,
            "24 cyclic services per pattern must span several lifecycles"
        );
        let mut counts = TransitionCounts::new();
        let added = observe_report(&mut counts, &report, g.dfa());
        assert_eq!(added, traces.len() as u64, "every segment is observable");
        assert_eq!(
            counts.symbol_count(),
            traces.iter().map(Vec::len).sum::<usize>() as u64
        );
    }
}
