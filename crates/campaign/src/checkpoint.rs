//! Campaign checkpoint/resume: surviving a kill without losing
//! determinism.
//!
//! A long campaign is worth checkpointing — at real scale (millions of
//! trials) the run outlives CI timeouts, spot instances and operator
//! patience. A [`CampaignCheckpoint`] snapshots the campaign cursor at a
//! round boundary: the completed [`RoundReport`]s, the cumulative
//! [`TransitionCounts`] the learning loop has folded so far, and the
//! next round to run. That is *sufficient*: the next round's probability
//! distribution is a pure function of the counts (or the scenario's base
//! distribution before any learning round), so it is deliberately **not**
//! stored — resuming re-derives it exactly, and a resumed campaign's
//! final report is byte-identical to the uninterrupted run's (the
//! checkpoint proptests compare exactly those JSON strings).
//!
//! The snapshot is exact because everything in it is integral: counts
//! are `u64` sums and the report's floating-point aggregates are stored,
//! not recomputed. With the `serde` feature the checkpoint serializes to
//! JSON ([`CampaignCheckpoint::to_json`]) and
//! [`Campaign::run_with_checkpoint_file`] runs a campaign that
//! checkpoints after every round (atomically, via a temp-file rename)
//! and resumes from the file if it already exists.

use ptest_automata::{Sym, TransitionCounts};
use ptest_core::{Scenario, TrialEngine};

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use crate::engine::{Campaign, CampaignConfig, CampaignError, CampaignState};
use crate::report::{CampaignReport, RoundReport};

/// Schema identifier stamped into every serialized checkpoint.
///
/// v3: trial outcomes carry their `irq_seed` and preemption label (the
/// replay quadruple), rounds carry `preemption_detection` aggregates,
/// and minimized reproducers record the interrupt-injection shrink.
/// Earlier checkpoints are rejected (their round reports cannot express
/// the fields).
///
/// v2: completed rounds carry their `minimized` reproducers
/// ([`RoundReport::minimized`]), so resumed campaigns skip re-shrinking
/// classes a checkpointed round already minimized.
pub const CHECKPOINT_SCHEMA: &str = "ptest-campaign/checkpoint-v3";

/// One `(state, symbol, count)` entry of a counts snapshot.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CountEntry {
    /// Source DFA state.
    pub state: usize,
    /// Interned symbol id (see [`Sym`]).
    pub sym: u16,
    /// Times the transition was observed.
    pub count: u64,
}

/// A deterministic, serializable snapshot of a [`TransitionCounts`]
/// accumulator: entries in ascending `(state, symbol)` order plus the
/// trace/symbol totals.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CountsSnapshot {
    /// Traces consumed.
    pub traces: u64,
    /// Symbols consumed.
    pub symbols: u64,
    /// Per-transition counts, sorted by `(state, sym)`.
    pub entries: Vec<CountEntry>,
}

impl CountsSnapshot {
    /// Snapshots an accumulator.
    #[must_use]
    pub fn capture(counts: &TransitionCounts) -> CountsSnapshot {
        CountsSnapshot {
            traces: counts.trace_count(),
            symbols: counts.symbol_count(),
            entries: counts
                .entries()
                .into_iter()
                .map(|(state, sym, count)| CountEntry {
                    state,
                    sym: sym.0,
                    count,
                })
                .collect(),
        }
    }

    /// Rebuilds the accumulator. Exact: counts are integers, so the
    /// roundtrip loses nothing.
    #[must_use]
    pub fn restore(&self) -> TransitionCounts {
        TransitionCounts::from_parts(
            self.entries.iter().map(|e| (e.state, Sym(e.sym), e.count)),
            self.traces,
            self.symbols,
        )
    }
}

/// A resumable snapshot of a campaign at a round boundary.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CampaignCheckpoint {
    /// Always [`CHECKPOINT_SCHEMA`].
    pub schema: String,
    /// Scenario name the campaign runs.
    pub scenario: String,
    /// Master seed of the campaign.
    pub master_seed: u64,
    /// Trials per round of the campaign.
    pub trials_per_round: usize,
    /// Total rounds of the campaign.
    pub rounds: usize,
    /// Fingerprint of the full campaign configuration with `workers`
    /// normalized to 0 — worker count never affects results, so a
    /// checkpoint taken at 8 workers resumes fine at 2.
    pub config_fingerprint: String,
    /// The next round to run (== number of completed rounds).
    pub next_round: usize,
    /// The campaign-cumulative learning counts after the completed
    /// rounds.
    pub counts: CountsSnapshot,
    /// Reports of the completed rounds, in round order.
    pub completed: Vec<RoundReport>,
}

/// The configuration fingerprint recorded in (and checked against)
/// checkpoints: the full `Debug` rendering with the result-neutral
/// `workers` field normalized out.
#[must_use]
pub fn config_fingerprint(cfg: &CampaignConfig) -> String {
    format!(
        "{:?}",
        CampaignConfig {
            workers: 0,
            ..cfg.clone()
        }
    )
}

impl CampaignCheckpoint {
    /// Snapshots the running state of a campaign.
    pub(crate) fn capture(
        cfg: &CampaignConfig,
        scenario: &str,
        state: &CampaignState,
    ) -> CampaignCheckpoint {
        CampaignCheckpoint {
            schema: CHECKPOINT_SCHEMA.to_owned(),
            scenario: scenario.to_owned(),
            master_seed: cfg.master_seed,
            trials_per_round: cfg.trials_per_round,
            rounds: cfg.rounds,
            config_fingerprint: config_fingerprint(cfg),
            next_round: state.next_round,
            counts: CountsSnapshot::capture(&state.counts),
            completed: state.rounds.clone(),
        }
    }

    /// Checks that this checkpoint belongs to `(cfg, scenario)`.
    fn validate(&self, cfg: &CampaignConfig, scenario: &dyn Scenario) -> Result<(), CampaignError> {
        let mismatch = |what: &str, ckpt: &str, now: &str| {
            Err(CampaignError::Checkpoint(format!(
                "{what} mismatch: checkpoint has {ckpt}, campaign has {now}"
            )))
        };
        if self.schema != CHECKPOINT_SCHEMA {
            return mismatch("schema", &self.schema, CHECKPOINT_SCHEMA);
        }
        if self.scenario != scenario.name() {
            return mismatch("scenario", &self.scenario, scenario.name());
        }
        let fingerprint = config_fingerprint(cfg);
        if self.config_fingerprint != fingerprint {
            return mismatch("configuration", &self.config_fingerprint, &fingerprint);
        }
        if self.next_round > cfg.rounds || self.completed.len() != self.next_round {
            return Err(CampaignError::Checkpoint(format!(
                "inconsistent cursor: next_round {} with {} completed rounds of {}",
                self.next_round,
                self.completed.len(),
                cfg.rounds
            )));
        }
        Ok(())
    }

    /// Rebuilds the campaign cursor this checkpoint snapshot captured.
    ///
    /// The probability distribution is re-derived rather than stored:
    /// identical integer counts re-estimate to the identical assignment,
    /// so the resumed rounds generate the same patterns the
    /// uninterrupted run would have.
    fn restore_state(
        &self,
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
    ) -> Result<CampaignState, CampaignError> {
        let base = scenario.base_config();
        let counts = self.counts.restore();
        let pd = if cfg.learning.enabled && self.next_round > 0 {
            let probe = TrialEngine::new(base.clone())?;
            let dfa = probe.generator().dfa();
            let alphabet = probe.generator().regex().alphabet();
            counts.to_assignment(dfa, alphabet, cfg.learning.alpha)
        } else {
            base.pd.clone()
        };
        Ok(CampaignState {
            pd,
            counts,
            rounds: self.completed.clone(),
            next_round: self.next_round,
        })
    }
}

impl Campaign {
    /// Runs the first `rounds_to_run` rounds of the campaign and returns
    /// the checkpoint a kill at that boundary would leave behind —
    /// primarily a test/operations hook for exercising resume paths
    /// without actually killing a process.
    ///
    /// # Errors
    ///
    /// Same as [`Campaign::run`].
    pub fn run_until(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
        rounds_to_run: usize,
    ) -> Result<CampaignCheckpoint, CampaignError> {
        let state = Campaign::run_rounds(cfg, scenario, None, rounds_to_run, |_| Ok(()))?;
        Ok(CampaignCheckpoint::capture(cfg, scenario.name(), &state))
    }

    /// Resumes a campaign from `checkpoint` and runs it to completion.
    /// The final report is byte-identical to what the uninterrupted
    /// [`Campaign::run`] produces.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] when the checkpoint does not belong
    /// to `(cfg, scenario)` (differing configuration fingerprint,
    /// scenario name or an inconsistent cursor); otherwise same as
    /// [`Campaign::run`].
    pub fn resume(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
        checkpoint: &CampaignCheckpoint,
    ) -> Result<CampaignReport, CampaignError> {
        checkpoint.validate(cfg, scenario)?;
        let resume = checkpoint.restore_state(cfg, scenario)?;
        let state = Campaign::run_rounds(cfg, scenario, Some(resume), cfg.rounds, |_| Ok(()))?;
        Ok(crate::engine::report_of(cfg, scenario, state))
    }
}

#[cfg(feature = "serde")]
impl CampaignCheckpoint {
    /// Serializes the checkpoint as pretty JSON.
    ///
    /// # Errors
    ///
    /// Propagates `serde_json` errors (practically unreachable for this
    /// data).
    pub fn to_json(&self) -> Result<String, serde_json::Error> {
        serde_json::to_string_pretty(self)
    }

    /// Parses a checkpoint back from JSON.
    ///
    /// # Errors
    ///
    /// `serde_json` errors on malformed input.
    pub fn from_json(json: &str) -> Result<CampaignCheckpoint, serde_json::Error> {
        serde_json::from_str(json)
    }
}

#[cfg(feature = "serde")]
impl Campaign {
    /// Runs the campaign with a JSON checkpoint file: if `path` exists
    /// the campaign resumes from it, and after every completed round the
    /// file is rewritten atomically (temp file + rename in the same
    /// directory). The file is left in place on success — delete it to
    /// start the campaign over.
    ///
    /// # Errors
    ///
    /// [`CampaignError::Checkpoint`] on I/O or JSON failures and on a
    /// checkpoint that does not belong to `(cfg, scenario)`; otherwise
    /// same as [`Campaign::run`].
    pub fn run_with_checkpoint_file(
        cfg: &CampaignConfig,
        scenario: &dyn Scenario,
        path: &std::path::Path,
    ) -> Result<CampaignReport, CampaignError> {
        let io_err = |what: &str, e: &dyn std::fmt::Display| {
            CampaignError::Checkpoint(format!("{what} {}: {e}", path.display()))
        };
        let resume = if path.exists() {
            let json = std::fs::read_to_string(path).map_err(|e| io_err("reading", &e))?;
            let checkpoint =
                CampaignCheckpoint::from_json(&json).map_err(|e| io_err("parsing", &e))?;
            checkpoint.validate(cfg, scenario)?;
            Some(checkpoint.restore_state(cfg, scenario)?)
        } else {
            None
        };
        let state = Campaign::run_rounds(cfg, scenario, resume, cfg.rounds, |state| {
            let checkpoint = CampaignCheckpoint::capture(cfg, scenario.name(), state);
            let json = checkpoint
                .to_json()
                .map_err(|e| io_err("serializing", &e))?;
            let tmp = path.with_extension("tmp");
            std::fs::write(&tmp, json).map_err(|e| io_err("writing", &e))?;
            std::fs::rename(&tmp, path).map_err(|e| io_err("committing", &e))?;
            Ok(())
        })?;
        Ok(crate::engine::report_of(cfg, scenario, state))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::AdaptiveTestConfig;
    use ptest_pcore::{Op, Program};

    use crate::engine::LearningConfig;
    use crate::FnScenario;

    fn scenario() -> impl Scenario {
        FnScenario::new(
            "compute",
            AdaptiveTestConfig {
                n: 2,
                s: 5,
                ..AdaptiveTestConfig::default()
            },
            |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
            },
        )
    }

    fn cfg() -> CampaignConfig {
        CampaignConfig {
            trials_per_round: 5,
            rounds: 3,
            workers: 2,
            master_seed: 31,
            ..CampaignConfig::default()
        }
    }

    #[test]
    fn resume_at_every_round_boundary_matches_the_uninterrupted_run() {
        let scenario = scenario();
        let cfg = cfg();
        let full = Campaign::run(&cfg, &scenario).unwrap();
        for kill_after in 0..=cfg.rounds {
            let checkpoint = Campaign::run_until(&cfg, &scenario, kill_after).unwrap();
            assert_eq!(checkpoint.next_round, kill_after);
            assert_eq!(checkpoint.completed.len(), kill_after);
            let resumed = Campaign::resume(&cfg, &scenario, &checkpoint).unwrap();
            assert_eq!(resumed, full, "killed after round {kill_after}");
        }
    }

    #[test]
    fn resume_is_worker_count_independent() {
        let scenario = scenario();
        let mut cfg = cfg();
        let full = Campaign::run(&cfg, &scenario).unwrap();
        cfg.workers = 8;
        let checkpoint = Campaign::run_until(&cfg, &scenario, 1).unwrap();
        cfg.workers = 1;
        let resumed = Campaign::resume(&cfg, &scenario, &checkpoint).unwrap();
        assert_eq!(resumed, full);
    }

    #[test]
    fn minimizing_campaigns_resume_without_reshrinking() {
        let scenario = ptest_faults::races::OrderViolationScenario::buggy();
        let cfg = CampaignConfig {
            trials_per_round: 6,
            rounds: 2,
            workers: 2,
            master_seed: 2009,
            learning: LearningConfig {
                enabled: false,
                ..LearningConfig::default()
            },
            minimize_bugs: true,
            ..CampaignConfig::default()
        };
        let full = Campaign::run(&cfg, &scenario).unwrap();
        assert!(
            !full.rounds[0].minimized.is_empty(),
            "round 0 should shrink the seeded race"
        );
        // Resume after round 0: the checkpointed round's reproducers are
        // restored, their classes are not re-shrunk, and the final
        // report is byte-identical to the uninterrupted run's.
        let checkpoint = Campaign::run_until(&cfg, &scenario, 1).unwrap();
        let resumed = Campaign::resume(&cfg, &scenario, &checkpoint).unwrap();
        assert_eq!(resumed, full);
        let round0: std::collections::BTreeSet<&str> = full.rounds[0]
            .minimized
            .iter()
            .map(|m| m.repro.bug_class.as_str())
            .collect();
        for m in &full.rounds[1].minimized {
            assert!(
                !round0.contains(m.repro.bug_class.as_str()),
                "class `{}` was shrunk twice",
                m.repro.bug_class
            );
        }
    }

    #[test]
    fn counts_snapshot_roundtrips() {
        let scenario = scenario();
        let checkpoint = Campaign::run_until(&cfg(), &scenario, 2).unwrap();
        assert!(checkpoint.counts.traces > 0, "learning is on by default");
        let restored = checkpoint.counts.restore();
        assert_eq!(CountsSnapshot::capture(&restored), checkpoint.counts);
    }

    #[test]
    fn foreign_checkpoints_are_rejected() {
        let scenario = scenario();
        let cfg = cfg();
        let checkpoint = Campaign::run_until(&cfg, &scenario, 1).unwrap();

        let other_seed = CampaignConfig {
            master_seed: 32,
            ..cfg.clone()
        };
        assert!(matches!(
            Campaign::resume(&other_seed, &scenario, &checkpoint),
            Err(CampaignError::Checkpoint(_))
        ));

        let other_learning = CampaignConfig {
            learning: LearningConfig {
                alpha: 0.25,
                ..LearningConfig::default()
            },
            ..cfg.clone()
        };
        assert!(matches!(
            Campaign::resume(&other_learning, &scenario, &checkpoint),
            Err(CampaignError::Checkpoint(_))
        ));

        // Worker count is result-neutral and must NOT be rejected.
        let other_workers = CampaignConfig {
            workers: 7,
            ..cfg.clone()
        };
        assert!(Campaign::resume(&other_workers, &scenario, &checkpoint).is_ok());

        let mut stale = checkpoint.clone();
        stale.schema = "something-else".to_owned();
        assert!(matches!(
            Campaign::resume(&cfg, &scenario, &stale),
            Err(CampaignError::Checkpoint(_))
        ));
    }

    #[cfg(feature = "serde")]
    #[test]
    fn checkpoint_json_roundtrips() {
        let scenario = scenario();
        let checkpoint = Campaign::run_until(&cfg(), &scenario, 2).unwrap();
        let json = checkpoint.to_json().unwrap();
        assert!(json.contains(CHECKPOINT_SCHEMA));
        let parsed = CampaignCheckpoint::from_json(&json).unwrap();
        assert_eq!(parsed, checkpoint);
        // The resumed-from-JSON report still matches the uninterrupted
        // run — the roundtrip loses nothing that affects results.
        let resumed = Campaign::resume(&cfg(), &scenario, &parsed).unwrap();
        assert_eq!(resumed, Campaign::run(&cfg(), &scenario).unwrap());
    }
}
