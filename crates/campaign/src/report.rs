//! Serializable campaign reports.
//!
//! A campaign's aggregate report is a **pure function of (scenario,
//! campaign configuration, master seed)** — it deliberately records
//! nothing about the worker pool that produced it, so the same campaign
//! run on 1 or 8 threads serializes to byte-identical JSON (the repo's
//! determinism property tests compare exactly that). Floating-point
//! aggregates are computed in trial-index order for the same reason.

#[cfg(feature = "serde")]
use serde::{Deserialize, Serialize};

use ptest_automata::{Alphabet, Pfa};
use ptest_core::{MinimizedRepro, ReportSummary};

/// One transition probability of a rendered distribution.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct DistributionEntry {
    /// Source DFA state.
    pub state: usize,
    /// Service name (e.g. `"TCH"`).
    pub service: String,
    /// Transition probability in `[0, 1]`.
    pub probability: f64,
}

/// A probability distribution rendered over the DFA skeleton in a
/// stable, serializable order (by state, then by interned symbol).
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct LearnedDistribution {
    /// Per-transition probabilities, sorted by `(state, symbol)`.
    pub entries: Vec<DistributionEntry>,
}

impl LearnedDistribution {
    /// Renders a compiled PFA's transition probabilities.
    #[must_use]
    pub fn from_pfa(pfa: &Pfa, alphabet: &Alphabet) -> LearnedDistribution {
        let mut entries = Vec::new();
        for state in 0..pfa.len() {
            for &(sym, _, probability) in pfa.transitions_from(state) {
                entries.push(DistributionEntry {
                    state,
                    service: alphabet.name(sym).unwrap_or("?").to_owned(),
                    probability,
                });
            }
        }
        LearnedDistribution { entries }
    }

    /// The probability of `service` out of `state`, if present.
    #[must_use]
    pub fn probability(&self, state: usize, service: &str) -> Option<f64> {
        self.entries
            .iter()
            .find(|e| e.state == state && e.service == service)
            .map(|e| e.probability)
    }
}

/// The outcome of one trial within a campaign round.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct TrialOutcome {
    /// Trial index within the round.
    pub trial: usize,
    /// The derived per-trial pattern seed (reproduce with
    /// [`AdaptiveTest::run`](ptest_core::AdaptiveTest::run) at this
    /// seed).
    pub seed: u64,
    /// The derived per-trial schedule seed. Together with `seed` and
    /// the distribution the trial's round generated from
    /// ([`RoundReport::distribution`] — the scenario's base
    /// distribution for round 0 or any learning-disabled campaign, the
    /// re-learned one for later learning rounds), this replays the
    /// trial — any reported bug included — byte for byte.
    pub schedule_seed: u64,
    /// Stable label of the schedule the trial ran under (e.g.
    /// `"lock-step"`, `"random-priority(d=3)"`).
    pub schedule: String,
    /// The derived per-trial memory seed — the third element of the
    /// replay triple. Recorded even under sequential consistency, where
    /// it has no behavioural effect.
    pub memory_seed: u64,
    /// Stable label of the memory model the trial ran under (e.g.
    /// `"seq-cst"`, `"store-buffer(d=24)"`).
    pub memory: String,
    /// The derived per-trial interrupt/preemption seed — the fourth
    /// element of the replay quadruple. Recorded even under the inert
    /// preemption spec, where it has no behavioural effect.
    pub irq_seed: u64,
    /// Stable label of the preemption spec the trial ran under (e.g.
    /// `"none"`, `"quantum(q=8)+irq(n=4)"`).
    pub preemption: String,
    /// Commands issued before the first bug, if any was found.
    pub commands_to_first_bug: Option<u64>,
    /// The stable machine summary of the trial's report.
    pub summary: ReportSummary,
}

/// One minimized reproducer produced by a campaign's opt-in post-round
/// minimization pass ([`CampaignConfig::minimize_bugs`](crate::CampaignConfig::minimize_bugs)):
/// the round's first trial that hit a not-yet-minimized bug class,
/// shrunk to a [`MinimizedRepro`] on the campaign's worker pool. Like
/// every other report ingredient it is a pure function of (scenario,
/// configuration, master seed) — worker count, shard split and
/// checkpoint boundaries never show through.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct MinimizedOutcome {
    /// Trial index (within the round) of the first hit of this class.
    pub trial: usize,
    /// The shrunk, explained, replayable reproducer.
    pub repro: MinimizedRepro,
}

/// Detection statistics of one schedule (identified by its stable
/// label) within a round — the signal the adaptive loop can use to bias
/// future rounds toward bug-finding schedule budgets.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct ScheduleDetection {
    /// The schedule label (see
    /// [`ScheduleSpec::label`](ptest_master::ScheduleSpec::label)).
    pub schedule: String,
    /// Trials run under this schedule this round.
    pub trials: usize,
    /// Of those, trials that detected at least one bug.
    pub trials_with_bugs: usize,
    /// Total bugs across those trials.
    pub bugs: usize,
}

/// Detection statistics of one memory model (identified by its stable
/// label) within a round — which propagation semantics surfaced bugs,
/// the memory-axis counterpart of [`ScheduleDetection`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct MemoryDetection {
    /// The memory-model label (see
    /// [`MemoryModelSpec::label`](ptest_master::MemoryModelSpec::label)).
    pub memory: String,
    /// Trials run under this memory model this round.
    pub trials: usize,
    /// Of those, trials that detected at least one bug.
    pub trials_with_bugs: usize,
    /// Total bugs across those trials.
    pub bugs: usize,
}

/// Detection statistics of one preemption spec (identified by its
/// stable label) within a round — which quantum/clock-skew/interrupt
/// configuration surfaced bugs, the preemption-axis counterpart of
/// [`ScheduleDetection`].
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct PreemptionDetection {
    /// The preemption label (see
    /// [`PreemptionSpec::label`](ptest_master::PreemptionSpec::label)).
    pub preemption: String,
    /// Trials run under this preemption spec this round.
    pub trials: usize,
    /// Of those, trials that detected at least one bug.
    pub trials_with_bugs: usize,
    /// Total bugs across those trials.
    pub bugs: usize,
}

/// Aggregate of one feedback round.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct RoundReport {
    /// Round index (0-based).
    pub round: usize,
    /// The probability distribution the round's patterns were generated
    /// from.
    pub distribution: LearnedDistribution,
    /// Per-trial outcomes, in trial order.
    pub trials: Vec<TrialOutcome>,
    /// Trials that detected at least one bug.
    pub trials_with_bugs: usize,
    /// Total bugs across the round.
    pub bugs: usize,
    /// Total remote commands issued across the round.
    pub total_commands: u64,
    /// Total simulated cycles across the round.
    pub total_cycles: u64,
    /// Mean of `commands_to_first_bug` over bug-finding trials.
    pub mean_commands_to_first_bug: Option<f64>,
    /// Per-schedule detection aggregates, in first-seen trial order (one
    /// entry per distinct schedule label run this round).
    pub schedule_detection: Vec<ScheduleDetection>,
    /// Per-memory-model detection aggregates, in first-seen trial order
    /// (one entry per distinct memory-model label run this round).
    pub memory_detection: Vec<MemoryDetection>,
    /// Per-preemption-spec detection aggregates, in first-seen trial
    /// order (one entry per distinct preemption label run this round).
    pub preemption_detection: Vec<PreemptionDetection>,
    /// Execution traces this round contributed to the feedback counts
    /// (0 when learning is disabled).
    pub traces_learned: u64,
    /// The distribution re-learned after this round from the campaign's
    /// *cumulative* trace counts — every learning round so far, not this
    /// round alone. This is what the next round generates with; `None`
    /// when learning is disabled.
    pub learned: Option<LearnedDistribution>,
    /// Minimized reproducers of the bug classes whose campaign-wide
    /// first hit happened this round — empty unless
    /// [`CampaignConfig::minimize_bugs`](crate::CampaignConfig::minimize_bugs)
    /// is on. In first-hit trial order.
    pub minimized: Vec<MinimizedOutcome>,
}

impl RoundReport {
    /// Fraction of trials that found at least one bug.
    #[must_use]
    pub fn detection_rate(&self) -> f64 {
        if self.trials.is_empty() {
            return 0.0;
        }
        self.trials_with_bugs as f64 / self.trials.len() as f64
    }
}

/// The aggregate result of a whole campaign.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(Serialize, Deserialize))]
pub struct CampaignReport {
    /// Scenario name.
    pub scenario: String,
    /// Master seed all trial seeds derive from.
    pub master_seed: u64,
    /// Trials per round.
    pub trials_per_round: usize,
    /// Per-round aggregates, in round order.
    pub rounds: Vec<RoundReport>,
}

impl CampaignReport {
    /// Total trials executed.
    #[must_use]
    pub fn total_trials(&self) -> usize {
        self.rounds.iter().map(|r| r.trials.len()).sum()
    }

    /// Total bugs detected.
    #[must_use]
    pub fn total_bugs(&self) -> usize {
        self.rounds.iter().map(|r| r.bugs).sum()
    }

    /// Trials that detected at least one bug.
    #[must_use]
    pub fn trials_with_bugs(&self) -> usize {
        self.rounds.iter().map(|r| r.trials_with_bugs).sum()
    }

    /// `(round, trial)` of the first bug-finding trial, if any.
    #[must_use]
    pub fn first_bug(&self) -> Option<(usize, usize)> {
        for round in &self.rounds {
            for outcome in &round.trials {
                if !outcome.summary.bugs.is_empty() {
                    return Some((round.round, outcome.trial));
                }
            }
        }
        None
    }

    /// One-line human summary.
    #[must_use]
    pub fn summary(&self) -> String {
        format!(
            "campaign `{}`: {} rounds x {} trials (seed {}): {} bugs in {}/{} trials",
            self.scenario,
            self.rounds.len(),
            self.trials_per_round,
            self.master_seed,
            self.total_bugs(),
            self.trials_with_bugs(),
            self.total_trials(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_automata::{Dfa, ProbabilityAssignment, Regex};

    #[test]
    fn rendered_distribution_is_sorted_and_queryable() {
        let re = Regex::pcore_task_lifecycle();
        let dfa = Dfa::from_regex(&re).minimize();
        let pfa = Pfa::from_dfa(
            &dfa,
            re.alphabet().clone(),
            &ProbabilityAssignment::weights([
                ("TC", 1.0),
                ("TCH", 0.6),
                ("TS", 0.2),
                ("TD", 0.1),
                ("TY", 0.1),
                ("TR", 1.0),
            ]),
        )
        .unwrap();
        let dist = LearnedDistribution::from_pfa(&pfa, re.alphabet());
        assert_eq!(dist.entries.len(), dfa.transition_count());
        let mut sorted = dist.entries.clone();
        sorted.sort_by(|a, b| (a.state, &a.service).cmp(&(b.state, &b.service)));
        // Entries are emitted state-major; within a state the DFA's
        // BTreeMap ordering (interned symbol id) applies, which for this
        // alphabet need not be alphabetical — but it must be stable.
        let again = LearnedDistribution::from_pfa(&pfa, re.alphabet());
        assert_eq!(dist, again, "rendering is deterministic");
        let running = dfa
            .next(dfa.start(), re.alphabet().sym("TC").unwrap())
            .unwrap();
        let p = dist.probability(running, "TCH").unwrap();
        assert!((p - 0.6).abs() < 1e-9, "weights renormalize to 0.6: {p}");
        assert!(dist.probability(99, "TCH").is_none());
    }
}
