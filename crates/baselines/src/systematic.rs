//! A CHESS-style bounded systematic explorer.
//!
//! CHESS "uses model checking techniques to provide higher fault
//! coverage" by enumerating thread schedules, but "model checking is not
//! efficient when searching infinite state spaces" (paper §I). The
//! command-level equivalent here enumerates **every order-preserving
//! interleaving** of the given test patterns (optionally capped) and
//! executes each on a fresh deterministic system. It is exhaustive on
//! small inputs — and visibly explodes beyond them, which is precisely
//! the trade-off the paper positions pTest against.

use ptest_automata::Alphabet;
use ptest_core::{BugKind, MergedPattern, PatternMerger, TestPattern};
use ptest_master::DualCoreSystem;
use ptest_pcore::ProgramId;

use crate::harness::{run_merged, RunKnobs};

/// Configuration of the systematic explorer.
#[derive(Debug, Clone)]
pub struct SystematicConfig {
    /// Refuse to enumerate more than this many interleavings.
    pub interleaving_limit: usize,
    /// Stop at the first fatal bug instead of exhausting the space.
    pub stop_at_first_bug: bool,
    /// Per-run knobs.
    pub knobs: RunKnobs,
}

impl Default for SystematicConfig {
    fn default() -> SystematicConfig {
        SystematicConfig {
            interleaving_limit: 2_000,
            stop_at_first_bug: true,
            knobs: RunKnobs::default(),
        }
    }
}

/// Outcome of a systematic exploration.
#[derive(Debug)]
pub struct SystematicReport {
    /// Interleavings executed.
    pub runs: usize,
    /// Total interleavings in the space (`None` if it exceeded the
    /// limit and exploration was refused).
    pub space_size: Option<usize>,
    /// Index of the first run that found a fatal bug.
    pub first_bug_run: Option<usize>,
    /// All `(run index, bug kind)` pairs observed.
    pub bugs: Vec<(usize, BugKind)>,
    /// Total commands issued across runs.
    pub total_commands: u64,
    /// Total cycles simulated across runs.
    pub total_cycles: u64,
}

impl SystematicReport {
    /// Whether any run found a bug matching the predicate.
    #[must_use]
    pub fn found<F: Fn(&BugKind) -> bool>(&self, pred: F) -> bool {
        self.bugs.iter().any(|(_, k)| pred(k))
    }
}

/// The explorer.
#[derive(Debug)]
pub struct SystematicExplorer {
    cfg: SystematicConfig,
}

impl SystematicExplorer {
    /// Creates an explorer.
    #[must_use]
    pub fn new(cfg: SystematicConfig) -> SystematicExplorer {
        SystematicExplorer { cfg }
    }

    /// Enumerates and executes the interleavings of `patterns`.
    ///
    /// `setup` must be callable once per run (each run gets a fresh
    /// system). Returns a report; if the interleaving space exceeds the
    /// configured limit, `space_size` is `None` and zero runs execute.
    pub fn explore(
        &self,
        patterns: &[TestPattern],
        alphabet: &Alphabet,
        mut setup: impl FnMut(&mut DualCoreSystem) -> Vec<ProgramId>,
    ) -> SystematicReport {
        let merger = PatternMerger::new();
        let Some(all) = merger.enumerate_all(patterns, self.cfg.interleaving_limit) else {
            return SystematicReport {
                runs: 0,
                space_size: None,
                first_bug_run: None,
                bugs: Vec::new(),
                total_commands: 0,
                total_cycles: 0,
            };
        };
        let space = all.len();
        let mut report = SystematicReport {
            runs: 0,
            space_size: Some(space),
            first_bug_run: None,
            bugs: Vec::new(),
            total_commands: 0,
            total_cycles: 0,
        };
        for (i, merged) in all.into_iter().enumerate() {
            let outcome = self.run_one(merged, alphabet, &mut setup);
            report.runs += 1;
            report.total_commands += outcome.commands;
            report.total_cycles += outcome.cycles;
            let mut fatal = false;
            for bug in outcome.bugs {
                fatal |= matches!(
                    bug.kind,
                    BugKind::SlaveCrash { .. }
                        | BugKind::CommandTimeout { .. }
                        | BugKind::Deadlock { .. }
                        | BugKind::Livelock { .. }
                );
                report.bugs.push((i, bug.kind));
            }
            if fatal && report.first_bug_run.is_none() {
                report.first_bug_run = Some(i);
                if self.cfg.stop_at_first_bug {
                    break;
                }
            }
        }
        report
    }

    /// Enumerates and executes the interleavings of `patterns`, preparing
    /// each fresh system from `scenario` — the [`Scenario`]-first face of
    /// [`SystematicExplorer::explore`].
    ///
    /// [`Scenario`]: ptest_core::Scenario
    pub fn explore_scenario(
        &self,
        patterns: &[TestPattern],
        alphabet: &Alphabet,
        scenario: &dyn ptest_core::Scenario,
    ) -> SystematicReport {
        self.explore(patterns, alphabet, |sys| scenario.setup(sys))
    }

    fn run_one(
        &self,
        merged: MergedPattern,
        alphabet: &Alphabet,
        setup: &mut impl FnMut(&mut DualCoreSystem) -> Vec<ProgramId>,
    ) -> crate::harness::RunOutcome {
        run_merged(merged, alphabet, &self.cfg.knobs, |sys| setup(sys))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_automata::Regex;
    use ptest_core::PatternGenerator;
    use ptest_faults::philosophers::{self, Variant};
    use ptest_pcore::{Op, Program};

    /// Hand-built patterns: each task gets `TC TCH TD` so it stays alive
    /// across a few commands.
    fn lifecycle_patterns(n: usize) -> (Vec<TestPattern>, Alphabet) {
        let g = PatternGenerator::pcore_paper().unwrap();
        let a = g.regex().alphabet().clone();
        let tc = a.sym("TC").unwrap();
        let tch = a.sym("TCH").unwrap();
        let td = a.sym("TD").unwrap();
        let patterns = (0..n)
            .map(|_| TestPattern::new(vec![tc, tch, td]))
            .collect();
        (patterns, a)
    }

    #[test]
    fn explorer_finds_ab_ba_deadlock() {
        // Two tasks, two mutexes, opposite acquisition order: the classic
        // AB-BA deadlock, built from the philosopher program over a
        // 2-fork "table". C(6;3,3) = 20 interleavings — small enough to
        // exhaust, and only those where both creates precede the first
        // delete can deadlock.
        let (patterns, alphabet) = lifecycle_patterns(2);
        let explorer = SystematicExplorer::new(SystematicConfig::default());
        let report = explorer.explore(&patterns, &alphabet, |sys| {
            let kernel = sys.kernel_mut();
            let forks = vec![kernel.create_mutex(), kernel.create_mutex()];
            (0..2)
                .map(|i| {
                    kernel.register_program(philosophers::philosopher_program(
                        i,
                        &forks,
                        Variant::Buggy,
                    ))
                })
                .collect()
        });
        assert_eq!(report.space_size, Some(20));
        assert!(
            report.found(|k| matches!(k, BugKind::Deadlock { .. })),
            "exhaustive search must find the AB-BA deadlock: {} runs",
            report.runs
        );
        assert!(report.first_bug_run.is_some());
    }

    #[test]
    fn explorer_respects_limit() {
        let (patterns, alphabet) = lifecycle_patterns(3);
        // C(9; 3,3,3) = 1680 interleavings > 100.
        let explorer = SystematicExplorer::new(SystematicConfig {
            interleaving_limit: 100,
            ..SystematicConfig::default()
        });
        let report = explorer.explore(&patterns, &alphabet, |sys| {
            philosophers::setup(Variant::Buggy)(sys)
        });
        assert_eq!(report.space_size, None, "space explosion must be refused");
        assert_eq!(report.runs, 0);
    }

    #[test]
    fn scenario_exploration_matches_closure_exploration() {
        let (patterns, alphabet) = lifecycle_patterns(2);
        let explorer = SystematicExplorer::new(SystematicConfig::default());
        let scenario = philosophers::PhilosophersScenario::buggy();
        let via_scenario = explorer.explore_scenario(&patterns, &alphabet, &scenario);
        let via_closure = explorer.explore(&patterns, &alphabet, |sys| {
            philosophers::setup(Variant::Buggy)(sys)
        });
        assert_eq!(via_scenario.runs, via_closure.runs);
        assert_eq!(via_scenario.total_commands, via_closure.total_commands);
        assert_eq!(via_scenario.first_bug_run, via_closure.first_bug_run);
    }

    #[test]
    fn explorer_exhausts_clean_space_without_bugs() {
        let re = Regex::pcore_task_lifecycle();
        let a = re.alphabet().clone();
        let tc = a.sym("TC").unwrap();
        let td = a.sym("TD").unwrap();
        let patterns = vec![
            TestPattern::new(vec![tc, td]),
            TestPattern::new(vec![tc, td]),
        ];
        let explorer = SystematicExplorer::new(SystematicConfig::default());
        let report = explorer.explore(&patterns, &a, |sys| {
            vec![sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Compute(5), Op::Exit]).unwrap())]
        });
        assert_eq!(report.space_size, Some(6), "C(4,2) = 6 interleavings");
        assert_eq!(report.runs, 6);
        assert!(report.bugs.is_empty());
        assert_eq!(report.first_bug_run, None);
    }
}
