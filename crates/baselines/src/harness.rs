//! Shared run loop: execute one merged pattern on a fresh system with a
//! detector attached. Used by the systematic explorer and by ablation
//! experiments that bypass pattern generation.

use ptest_automata::Alphabet;
use ptest_core::{
    Bug, BugDetector, BugKind, Committer, CommitterConfig, CommitterStatus, DetectorConfig,
    MergedPattern, Scenario,
};
use ptest_master::{DualCoreSystem, SystemConfig};
use ptest_pcore::ProgramId;

/// Knobs of a single merged-pattern run.
#[derive(Debug, Clone)]
pub struct RunKnobs {
    /// System configuration.
    pub system: SystemConfig,
    /// Detector thresholds.
    pub detector: DetectorConfig,
    /// Detector cadence in cycles.
    pub check_interval: u64,
    /// Simulation budget.
    pub max_cycles: u64,
    /// Cycles to keep draining after the pattern completes.
    pub drain_cycles: u64,
    /// Master-side pacing between commands.
    pub inter_command_gap: u64,
    /// Stack size for created tasks.
    pub stack_bytes: Option<u32>,
    /// How long a command may stay unanswered before the committer
    /// declares a timeout.
    pub response_timeout: ptest_soc::Cycles,
}

impl RunKnobs {
    /// Derives run knobs from a scenario's adaptive configuration, so a
    /// baseline executes a scenario under the same environmental
    /// conditions (system, detector, pacing, budgets) the adaptive
    /// tester would.
    #[must_use]
    pub fn from_scenario(scenario: &dyn Scenario) -> RunKnobs {
        let cfg = scenario.base_config();
        RunKnobs {
            system: cfg.system,
            detector: cfg.detector,
            check_interval: cfg.check_interval,
            max_cycles: cfg.max_cycles,
            drain_cycles: cfg.drain_cycles,
            inter_command_gap: cfg.inter_command_gap,
            stack_bytes: cfg.stack_bytes,
            response_timeout: cfg.response_timeout,
        }
    }
}

impl Default for RunKnobs {
    fn default() -> RunKnobs {
        RunKnobs {
            system: SystemConfig::default(),
            detector: DetectorConfig::default(),
            check_interval: 25,
            max_cycles: 1_000_000,
            drain_cycles: 60_000,
            inter_command_gap: 30,
            stack_bytes: None,
            response_timeout: ptest_soc::Cycles::new(50_000),
        }
    }
}

/// Result of one merged-pattern run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Bugs detected.
    pub bugs: Vec<Bug>,
    /// Commands issued.
    pub commands: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Final committer status.
    pub status: CommitterStatus,
}

impl RunOutcome {
    /// Whether a bug matching the predicate was found.
    #[must_use]
    pub fn found<F: Fn(&BugKind) -> bool>(&self, pred: F) -> bool {
        self.bugs.iter().any(|b| pred(&b.kind))
    }
}

/// Executes `merged` on a fresh system.
///
/// # Panics
///
/// Panics if the committer rejects the pattern (unknown symbols / no
/// programs) — a caller bug, not a runtime condition.
#[must_use]
pub fn run_merged(
    merged: MergedPattern,
    alphabet: &Alphabet,
    knobs: &RunKnobs,
    setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
) -> RunOutcome {
    let mut sys = DualCoreSystem::new(knobs.system.clone());
    let programs = setup(&mut sys);
    let mut committer = Committer::new(
        merged,
        alphabet,
        CommitterConfig {
            programs,
            stack_bytes: knobs.stack_bytes,
            inter_command_gap: knobs.inter_command_gap,
            response_timeout: knobs.response_timeout,
            ..CommitterConfig::default()
        },
    )
    .expect("caller-provided pattern is valid");
    let mut detector = BugDetector::new(knobs.detector);
    let mut bugs = Vec::new();
    let mut cycles = 0u64;
    let mut done_at = None;
    while cycles < knobs.max_cycles {
        cycles += 1;
        sys.step();
        let status = committer.step(&mut sys);
        let done = status != CommitterStatus::Running;
        if done && done_at.is_none() {
            done_at = Some(cycles);
        }
        if cycles.is_multiple_of(knobs.check_interval) {
            bugs.extend(detector.observe(&sys, Some(&committer), done));
        }
        let fatal = bugs.iter().any(|b| {
            matches!(
                b.kind,
                BugKind::SlaveCrash { .. }
                    | BugKind::CommandTimeout { .. }
                    | BugKind::Deadlock { .. }
                    | BugKind::CrossCoreDeadlock { .. }
                    | BugKind::Livelock { .. }
            )
        });
        if fatal {
            break;
        }
        if let Some(done) = done_at {
            if sys.snapshot().live_tasks() == 0 || cycles - done >= knobs.drain_cycles {
                bugs.extend(detector.observe(&sys, Some(&committer), true));
                break;
            }
        }
    }
    RunOutcome {
        bugs,
        commands: committer.commands_issued(),
        cycles,
        status: committer.status(),
    }
}

/// Executes `merged` on a fresh system prepared by `scenario` — the
/// [`Scenario`]-first face of [`run_merged`], giving the systematic
/// explorer and ablation experiments the same repeatable setup the
/// adaptive engine and campaigns use.
///
/// # Panics
///
/// As for [`run_merged`].
#[must_use]
pub fn run_merged_scenario(
    merged: MergedPattern,
    alphabet: &Alphabet,
    knobs: &RunKnobs,
    scenario: &dyn Scenario,
) -> RunOutcome {
    run_merged(merged, alphabet, knobs, |sys| scenario.setup(sys))
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_automata::GenerateOptions;
    use ptest_core::{FnScenario, MergeOp, PatternGenerator, PatternMerger};
    use ptest_pcore::{Op, Program};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn healthy_run_completes_without_bugs() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let patterns = g.generate_batch(&mut rng, 2, GenerateOptions::sized(6));
        let merged = PatternMerger::new().merge(&patterns, MergeOp::cyclic());
        let outcome = run_merged(merged, g.regex().alphabet(), &RunKnobs::default(), |sys| {
            vec![sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Compute(10), Op::Exit]).unwrap())]
        });
        assert_eq!(outcome.status, CommitterStatus::Done);
        assert!(outcome.bugs.is_empty());
        assert!(outcome.commands > 0);
    }

    #[test]
    fn scenario_run_matches_closure_run() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let patterns = g.generate_batch(&mut rng, 2, GenerateOptions::sized(6));
        let merged = PatternMerger::new().merge(&patterns, MergeOp::cyclic());
        let setup = |sys: &mut DualCoreSystem| {
            vec![sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Compute(10), Op::Exit]).unwrap())]
        };
        let scenario = FnScenario::new("compute", ptest_core::AdaptiveTestConfig::default(), setup);
        let knobs = RunKnobs::from_scenario(&scenario);
        let via_scenario =
            run_merged_scenario(merged.clone(), g.regex().alphabet(), &knobs, &scenario);
        let via_closure = run_merged(merged, g.regex().alphabet(), &knobs, setup);
        assert_eq!(via_scenario.commands, via_closure.commands);
        assert_eq!(via_scenario.cycles, via_closure.cycles);
        assert_eq!(via_scenario.status, via_closure.status);
    }
}
