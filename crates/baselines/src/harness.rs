//! Shared run loop: execute one merged pattern on a fresh system with a
//! detector attached. Used by the systematic explorer and by ablation
//! experiments that bypass pattern generation.

use ptest_automata::Alphabet;
use ptest_core::{
    Bug, BugDetector, BugKind, Committer, CommitterConfig, CommitterStatus, DetectorConfig,
    MergedPattern,
};
use ptest_master::{DualCoreSystem, SystemConfig};
use ptest_pcore::ProgramId;

/// Knobs of a single merged-pattern run.
#[derive(Debug, Clone)]
pub struct RunKnobs {
    /// System configuration.
    pub system: SystemConfig,
    /// Detector thresholds.
    pub detector: DetectorConfig,
    /// Detector cadence in cycles.
    pub check_interval: u64,
    /// Simulation budget.
    pub max_cycles: u64,
    /// Cycles to keep draining after the pattern completes.
    pub drain_cycles: u64,
    /// Master-side pacing between commands.
    pub inter_command_gap: u64,
    /// Stack size for created tasks.
    pub stack_bytes: Option<u32>,
}

impl Default for RunKnobs {
    fn default() -> RunKnobs {
        RunKnobs {
            system: SystemConfig::default(),
            detector: DetectorConfig::default(),
            check_interval: 25,
            max_cycles: 1_000_000,
            drain_cycles: 60_000,
            inter_command_gap: 30,
            stack_bytes: None,
        }
    }
}

/// Result of one merged-pattern run.
#[derive(Debug)]
pub struct RunOutcome {
    /// Bugs detected.
    pub bugs: Vec<Bug>,
    /// Commands issued.
    pub commands: u64,
    /// Cycles consumed.
    pub cycles: u64,
    /// Final committer status.
    pub status: CommitterStatus,
}

impl RunOutcome {
    /// Whether a bug matching the predicate was found.
    #[must_use]
    pub fn found<F: Fn(&BugKind) -> bool>(&self, pred: F) -> bool {
        self.bugs.iter().any(|b| pred(&b.kind))
    }
}

/// Executes `merged` on a fresh system.
///
/// # Panics
///
/// Panics if the committer rejects the pattern (unknown symbols / no
/// programs) — a caller bug, not a runtime condition.
#[must_use]
pub fn run_merged(
    merged: MergedPattern,
    alphabet: &Alphabet,
    knobs: &RunKnobs,
    setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
) -> RunOutcome {
    let mut sys = DualCoreSystem::new(knobs.system.clone());
    let programs = setup(&mut sys);
    let mut committer = Committer::new(
        merged,
        alphabet,
        CommitterConfig {
            programs,
            stack_bytes: knobs.stack_bytes,
            inter_command_gap: knobs.inter_command_gap,
            ..CommitterConfig::default()
        },
    )
    .expect("caller-provided pattern is valid");
    let mut detector = BugDetector::new(knobs.detector);
    let mut bugs = Vec::new();
    let mut cycles = 0u64;
    let mut done_at = None;
    while cycles < knobs.max_cycles {
        cycles += 1;
        sys.step();
        let status = committer.step(&mut sys);
        let done = status != CommitterStatus::Running;
        if done && done_at.is_none() {
            done_at = Some(cycles);
        }
        if cycles.is_multiple_of(knobs.check_interval) {
            bugs.extend(detector.observe(&sys, Some(&committer), done));
        }
        let fatal = bugs.iter().any(|b| {
            matches!(
                b.kind,
                BugKind::SlaveCrash { .. }
                    | BugKind::CommandTimeout { .. }
                    | BugKind::Deadlock { .. }
                    | BugKind::Livelock { .. }
            )
        });
        if fatal {
            break;
        }
        if let Some(done) = done_at {
            if sys.snapshot().live_tasks() == 0 || cycles - done >= knobs.drain_cycles {
                bugs.extend(detector.observe(&sys, Some(&committer), true));
                break;
            }
        }
    }
    RunOutcome {
        bugs,
        commands: committer.commands_issued(),
        cycles,
        status: committer.status(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_automata::GenerateOptions;
    use ptest_core::{MergeOp, PatternGenerator, PatternMerger};
    use ptest_pcore::{Op, Program};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn healthy_run_completes_without_bugs() {
        let g = PatternGenerator::pcore_paper().unwrap();
        let mut rng = StdRng::seed_from_u64(3);
        let patterns = g.generate_batch(&mut rng, 2, GenerateOptions::sized(6));
        let merged = PatternMerger::new().merge(&patterns, MergeOp::cyclic());
        let outcome = run_merged(merged, g.regex().alphabet(), &RunKnobs::default(), |sys| {
            vec![sys
                .kernel_mut()
                .register_program(Program::new(vec![Op::Compute(10), Op::Exit]).unwrap())]
        });
        assert_eq!(outcome.status, CommitterStatus::Done);
        assert!(outcome.bugs.is_empty());
        assert!(outcome.commands > 0);
    }
}
