//! # ptest-baselines — the testers pTest is compared against
//!
//! The paper positions pTest against two families of concurrency-testing
//! tools (§I):
//!
//! * **ConTest-style random testing** — [`RandomTester`]: uniformly
//!   random commands with no legality discipline. Simple and eventually
//!   effective, but wasteful: a measurable fraction of its budget is
//!   rejected by the slave as illegal service orders.
//! * **CHESS-style systematic exploration** — [`SystematicExplorer`]:
//!   enumerates every order-preserving interleaving of a set of test
//!   patterns and executes each deterministically. Exhaustive on small
//!   spaces, combinatorially explosive beyond them.
//!
//! [`harness`] provides the shared single-run executor used by the
//! explorer and by ablation experiments.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod harness;
mod random;
mod systematic;

pub use harness::{run_merged, run_merged_scenario, RunKnobs, RunOutcome};
pub use random::{RandomTestReport, RandomTester, RandomTesterConfig};
pub use systematic::{SystematicConfig, SystematicExplorer, SystematicReport};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::RandomTester>();
        assert_send_sync::<super::SystematicExplorer>();
    }
}
