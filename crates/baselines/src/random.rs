//! A ConTest-style random tester.
//!
//! ConTest "debugs multi-threaded programs by randomly interleaving the
//! execution of threads" (paper §I). Lifted to pTest's command level,
//! the equivalent baseline issues *uniformly random* service commands at
//! random targets, with no PFA to keep service orders legal and no
//! merge discipline. It finds concurrency bugs eventually, but burns a
//! large share of its budget on illegal orders the slave rejects — the
//! comparison that motivates pTest's "rational order" patterns.

use ptest_core::{Bug, BugDetector, BugKind, DetectorConfig};
use ptest_master::{DualCoreSystem, SystemConfig};
use ptest_pcore::{Priority, ProgramId, Service, SvcError, SvcRequest, TaskId};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Configuration of the random tester.
#[derive(Debug, Clone)]
pub struct RandomTesterConfig {
    /// Commands to issue before giving up.
    pub command_budget: u64,
    /// Number of "virtual threads" (priority bands / target slots).
    pub workers: usize,
    /// RNG seed.
    pub seed: u64,
    /// Master-side pacing between commands.
    pub inter_command_gap: u64,
    /// Detector thresholds.
    pub detector: DetectorConfig,
    /// Detector cadence.
    pub check_interval: u64,
    /// Simulation budget.
    pub max_cycles: u64,
    /// System configuration.
    pub system: SystemConfig,
    /// Stack size for created tasks.
    pub stack_bytes: Option<u32>,
}

impl Default for RandomTesterConfig {
    fn default() -> RandomTesterConfig {
        RandomTesterConfig {
            command_budget: 200,
            workers: 3,
            seed: 1,
            inter_command_gap: 30,
            detector: DetectorConfig::default(),
            check_interval: 25,
            max_cycles: 2_000_000,
            system: SystemConfig::default(),
            stack_bytes: None,
        }
    }
}

/// Outcome of a random-tester session.
#[derive(Debug)]
pub struct RandomTestReport {
    /// Bugs detected.
    pub bugs: Vec<Bug>,
    /// Commands issued.
    pub commands_issued: u64,
    /// Commands the slave rejected (illegal orders, dead targets, …).
    pub error_replies: u64,
    /// Rejections specifically due to illegal service orders (suspend
    /// twice, resume a running task, duplicate priorities) — the class
    /// pTest's PFA rules out by construction.
    pub ordering_errors: u64,
    /// Cycles consumed.
    pub cycles: u64,
}

impl RandomTestReport {
    /// Whether a bug matching the predicate was found.
    #[must_use]
    pub fn found<F: Fn(&BugKind) -> bool>(&self, pred: F) -> bool {
        self.bugs.iter().any(|b| pred(&b.kind))
    }

    /// Fraction of the command budget wasted on rejected commands.
    #[must_use]
    pub fn waste_ratio(&self) -> f64 {
        if self.commands_issued == 0 {
            return 0.0;
        }
        self.error_replies as f64 / self.commands_issued as f64
    }
}

/// The ConTest-style random tester.
#[derive(Debug)]
pub struct RandomTester {
    cfg: RandomTesterConfig,
}

impl RandomTester {
    /// Creates a tester.
    #[must_use]
    pub fn new(cfg: RandomTesterConfig) -> RandomTester {
        RandomTester { cfg }
    }

    /// Runs the session against a [`Scenario`]'s setup — the entry point
    /// campaigns and comparisons share with the adaptive tester. The
    /// random tester keeps its own command budget and pacing (`cfg`);
    /// only the scenario's slave preparation is reused.
    ///
    /// [`Scenario`]: ptest_core::Scenario
    pub fn run_scenario(&self, scenario: &dyn ptest_core::Scenario) -> RandomTestReport {
        self.run(|sys| scenario.setup(sys))
    }

    /// Runs the session: `setup` registers scenario programs (one per
    /// worker, cycled).
    pub fn run(
        &self,
        setup: impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId>,
    ) -> RandomTestReport {
        let cfg = &self.cfg;
        let mut sys = DualCoreSystem::new(cfg.system.clone());
        let programs = setup(&mut sys);
        let mut rng = StdRng::seed_from_u64(cfg.seed);
        let mut detector = BugDetector::new(cfg.detector);

        // Per-worker state: created task (if any) and priority rotation.
        let band = 15u8;
        let mut created: Vec<Option<TaskId>> = vec![None; cfg.workers];
        let mut prio_counter = vec![0u8; cfg.workers];

        let mut bugs: Vec<Bug> = Vec::new();
        let mut commands_issued = 0u64;
        let mut error_replies = 0u64;
        let mut ordering_errors = 0u64;
        let mut cycles = 0u64;
        let mut awaiting = false;
        let mut next_issue_at = 0u64;
        let mut budget_done_at: Option<u64> = None;

        while cycles < cfg.max_cycles {
            cycles += 1;
            sys.step();
            for resp in sys.take_responses() {
                awaiting = false;
                next_issue_at = sys.now().get() + cfg.inter_command_gap;
                match resp.result {
                    Ok(ptest_pcore::SvcReply::Created(task)) => {
                        if let SvcRequest::Create { priority, .. } = resp.request {
                            // Track which worker band the task belongs to.
                            let worker =
                                usize::from((priority.level() - 1) / band).min(cfg.workers - 1);
                            created[worker] = Some(task);
                        }
                    }
                    Ok(_) => {}
                    Err(
                        SvcError::AlreadySuspended(_)
                        | SvcError::NotSuspended(_)
                        | SvcError::PriorityInUse(_)
                        | SvcError::NoSuchProgram(_),
                    ) => {
                        error_replies += 1;
                        ordering_errors += 1;
                    }
                    Err(_) => error_replies += 1,
                }
            }
            if cycles.is_multiple_of(cfg.check_interval) {
                let budget_exhausted = commands_issued >= cfg.command_budget && !awaiting;
                bugs.extend(detector.observe(&sys, None, budget_exhausted));
            }
            let fatal = bugs.iter().any(|b| {
                matches!(
                    b.kind,
                    BugKind::SlaveCrash { .. }
                        | BugKind::CommandTimeout { .. }
                        | BugKind::Deadlock { .. }
                        | BugKind::Livelock { .. }
                )
            });
            if fatal {
                break;
            }
            if commands_issued >= cfg.command_budget {
                if !awaiting && budget_done_at.is_none() {
                    budget_done_at = Some(cycles);
                }
                if let Some(done) = budget_done_at {
                    if cycles - done >= 60_000 || sys.snapshot().live_tasks() == 0 {
                        bugs.extend(detector.observe(&sys, None, true));
                        break;
                    }
                }
                continue;
            }
            if awaiting || sys.now().get() < next_issue_at {
                continue;
            }
            // Issue a uniformly random command.
            let worker = rng.random_range(0..cfg.workers);
            let service = Service::ALL[rng.random_range(0..Service::ALL.len())];
            let request = match service {
                Service::Create => {
                    let offset = prio_counter[worker] % band;
                    prio_counter[worker] = prio_counter[worker].wrapping_add(1);
                    SvcRequest::Create {
                        program: programs[worker % programs.len()],
                        priority: Priority::new(1 + (worker as u8) * band + offset),
                        stack_bytes: cfg.stack_bytes,
                    }
                }
                other => {
                    // Random target: the worker's task if it has one, else
                    // a random slot (which the slave will likely reject).
                    let task =
                        created[worker].unwrap_or_else(|| TaskId::new(rng.random_range(0..16u8)));
                    match other {
                        Service::Delete => SvcRequest::Delete { task },
                        Service::Suspend => SvcRequest::Suspend { task },
                        Service::Resume => SvcRequest::Resume { task },
                        Service::ChangePriority => {
                            let offset = prio_counter[worker] % band;
                            prio_counter[worker] = prio_counter[worker].wrapping_add(1);
                            SvcRequest::ChangePriority {
                                task,
                                priority: Priority::new(1 + (worker as u8) * band + offset),
                            }
                        }
                        Service::Yield => SvcRequest::Yield { task },
                        Service::Create => unreachable!("handled above"),
                    }
                }
            };
            if sys.issue(request).is_ok() {
                commands_issued += 1;
                awaiting = true;
            }
        }
        RandomTestReport {
            bugs,
            commands_issued,
            error_replies,
            ordering_errors,
            cycles,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{Op, Program};

    fn worker_setup(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        vec![sys
            .kernel_mut()
            .register_program(Program::new(vec![Op::Compute(30), Op::Exit]).unwrap())]
    }

    #[test]
    fn random_tester_wastes_commands_on_illegal_orders() {
        let report = RandomTester::new(RandomTesterConfig {
            command_budget: 150,
            seed: 5,
            ..RandomTesterConfig::default()
        })
        .run(worker_setup);
        assert!(report.commands_issued >= 150);
        assert!(
            report.error_replies > 20,
            "uniform random must hit many illegal orders: {} errors",
            report.error_replies
        );
        assert!(report.waste_ratio() > 0.1);
    }

    #[test]
    fn random_tester_is_deterministic_per_seed() {
        let run = |seed| {
            let r = RandomTester::new(RandomTesterConfig {
                command_budget: 60,
                seed,
                ..RandomTesterConfig::default()
            })
            .run(worker_setup);
            (r.commands_issued, r.error_replies, r.cycles)
        };
        assert_eq!(run(9), run(9));
        assert_ne!(run(9), run(10));
    }

    #[test]
    fn random_tester_finds_gc_crash_eventually() {
        let mut cfg = RandomTesterConfig {
            command_budget: 3_000,
            seed: 2,
            max_cycles: 20_000_000,
            ..RandomTesterConfig::default()
        };
        cfg.system.kernel.heap_bytes = 4 * 1024;
        cfg.system.kernel.gc_fault = ptest_pcore::GcFaultMode::LeakDeadBlocks { leak_every: 1 };
        let report = RandomTester::new(cfg).run(worker_setup);
        assert!(
            report.found(|k| matches!(
                k,
                BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
            )),
            "churn from random creates/deletes must eventually leak the heap dry: {} cmds, {} errs",
            report.commands_issued,
            report.error_replies,
        );
    }
}
