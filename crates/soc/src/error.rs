//! Error types for the hardware model.

use std::error::Error;
use std::fmt;

/// Error accessing the shared SRAM window.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SramError {
    /// The access touched bytes outside the SRAM window.
    OutOfBounds {
        /// First byte of the attempted access.
        offset: usize,
        /// Length of the attempted access in bytes.
        len: usize,
        /// Total size of the SRAM window.
        capacity: usize,
    },
}

impl fmt::Display for SramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SramError::OutOfBounds {
                offset,
                len,
                capacity,
            } => write!(
                f,
                "sram access of {len} bytes at offset {offset} exceeds capacity {capacity}"
            ),
        }
    }
}

impl Error for SramError {}

/// Error posting to a hardware mailbox.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MailboxError {
    /// The target mailbox FIFO is full; the sender must retry later.
    Full {
        /// Index of the mailbox within the bank.
        mailbox: usize,
    },
    /// The mailbox index does not exist in this bank.
    NoSuchMailbox {
        /// Index of the mailbox within the bank.
        mailbox: usize,
    },
}

impl fmt::Display for MailboxError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MailboxError::Full { mailbox } => write!(f, "mailbox {mailbox} fifo is full"),
            MailboxError::NoSuchMailbox { mailbox } => {
                write!(f, "mailbox {mailbox} does not exist")
            }
        }
    }
}

impl Error for MailboxError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sram_error_displays_fields() {
        let e = SramError::OutOfBounds {
            offset: 10,
            len: 4,
            capacity: 12,
        };
        let s = e.to_string();
        assert!(
            s.contains("10") && s.contains('4') && s.contains("12"),
            "{s}"
        );
    }

    #[test]
    fn mailbox_error_displays() {
        assert!(MailboxError::Full { mailbox: 2 }.to_string().contains('2'));
        assert!(MailboxError::NoSuchMailbox { mailbox: 7 }
            .to_string()
            .contains('7'));
    }

    #[test]
    fn errors_implement_std_error() {
        fn takes_error<E: Error>(_e: E) {}
        takes_error(SramError::OutOfBounds {
            offset: 0,
            len: 0,
            capacity: 0,
        });
        takes_error(MailboxError::Full { mailbox: 0 });
    }
}
