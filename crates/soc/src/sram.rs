//! The shared internal SRAM window visible to both cores.

use crate::error::SramError;

/// Byte-addressable shared memory, modelled after the 250 KB of internal
/// SRAM that the OMAP5912's ARM and DSP cores exchange data through.
///
/// All accesses are bounds-checked and return [`SramError::OutOfBounds`] on
/// violation — the simulated equivalent of a bus fault, which the upper
/// layers surface as a crash of the offending core.
///
/// ```
/// use ptest_soc::SharedSram;
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut sram = SharedSram::new(64);
/// sram.write_bytes(0, &[1, 2, 3])?;
/// assert_eq!(sram.read_u8(1)?, 2);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct SharedSram {
    bytes: Vec<u8>,
}

impl SharedSram {
    /// The shared internal SRAM size of the OMAP5912: 250 KB.
    pub const OMAP5912_BYTES: usize = 250 * 1024;

    /// Creates a zero-initialised SRAM window of `capacity` bytes.
    #[must_use]
    pub fn new(capacity: usize) -> SharedSram {
        SharedSram {
            bytes: vec![0; capacity],
        }
    }

    /// Creates the OMAP5912-sized 250 KB window.
    #[must_use]
    pub fn omap5912() -> SharedSram {
        SharedSram::new(Self::OMAP5912_BYTES)
    }

    /// Total size of the window in bytes.
    #[must_use]
    pub fn capacity(&self) -> usize {
        self.bytes.len()
    }

    fn check(&self, offset: usize, len: usize) -> Result<(), SramError> {
        if offset
            .checked_add(len)
            .is_none_or(|end| end > self.bytes.len())
        {
            return Err(SramError::OutOfBounds {
                offset,
                len,
                capacity: self.bytes.len(),
            });
        }
        Ok(())
    }

    /// Reads one byte.
    ///
    /// # Errors
    ///
    /// [`SramError::OutOfBounds`] if `offset` is outside the window.
    pub fn read_u8(&self, offset: usize) -> Result<u8, SramError> {
        self.check(offset, 1)?;
        Ok(self.bytes[offset])
    }

    /// Writes one byte.
    ///
    /// # Errors
    ///
    /// [`SramError::OutOfBounds`] if `offset` is outside the window.
    pub fn write_u8(&mut self, offset: usize, value: u8) -> Result<(), SramError> {
        self.check(offset, 1)?;
        self.bytes[offset] = value;
        Ok(())
    }

    /// Reads a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SramError::OutOfBounds`] if any of the four bytes fall outside the
    /// window.
    pub fn read_u32_le(&self, offset: usize) -> Result<u32, SramError> {
        self.check(offset, 4)?;
        let b = &self.bytes[offset..offset + 4];
        Ok(u32::from_le_bytes([b[0], b[1], b[2], b[3]]))
    }

    /// Writes a little-endian `u32`.
    ///
    /// # Errors
    ///
    /// [`SramError::OutOfBounds`] if any of the four bytes fall outside the
    /// window.
    pub fn write_u32_le(&mut self, offset: usize, value: u32) -> Result<(), SramError> {
        self.check(offset, 4)?;
        self.bytes[offset..offset + 4].copy_from_slice(&value.to_le_bytes());
        Ok(())
    }

    /// Copies `buf.len()` bytes out of the window starting at `offset`.
    ///
    /// # Errors
    ///
    /// [`SramError::OutOfBounds`] if the range exceeds the window.
    pub fn read_bytes(&self, offset: usize, buf: &mut [u8]) -> Result<(), SramError> {
        self.check(offset, buf.len())?;
        buf.copy_from_slice(&self.bytes[offset..offset + buf.len()]);
        Ok(())
    }

    /// Copies `data` into the window starting at `offset`.
    ///
    /// # Errors
    ///
    /// [`SramError::OutOfBounds`] if the range exceeds the window.
    pub fn write_bytes(&mut self, offset: usize, data: &[u8]) -> Result<(), SramError> {
        self.check(offset, data.len())?;
        self.bytes[offset..offset + data.len()].copy_from_slice(data);
        Ok(())
    }

    /// Fills `len` bytes starting at `offset` with `value`.
    ///
    /// # Errors
    ///
    /// [`SramError::OutOfBounds`] if the range exceeds the window.
    pub fn fill(&mut self, offset: usize, len: usize, value: u8) -> Result<(), SramError> {
        self.check(offset, len)?;
        self.bytes[offset..offset + len].fill(value);
        Ok(())
    }

    /// Carves `count` equally sized per-slave windows of `stride` bytes out
    /// of the SRAM, starting at `base`, returning each window's base
    /// offset. This is how the bridge middleware partitions the shared
    /// memory so every slave gets its own command/response region.
    ///
    /// # Errors
    ///
    /// [`SramError::OutOfBounds`] if the combined windows exceed the SRAM
    /// capacity (the error reports the full carved range).
    pub fn carve_windows(
        &self,
        base: usize,
        stride: usize,
        count: usize,
    ) -> Result<Vec<usize>, SramError> {
        let total = stride.checked_mul(count).ok_or(SramError::OutOfBounds {
            offset: base,
            len: usize::MAX,
            capacity: self.bytes.len(),
        })?;
        self.check(base, total)?;
        Ok((0..count).map(|i| base + i * stride).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn omap_size_matches_datasheet() {
        assert_eq!(SharedSram::omap5912().capacity(), 250 * 1024);
    }

    #[test]
    fn u8_roundtrip() {
        let mut s = SharedSram::new(8);
        s.write_u8(3, 0xab).unwrap();
        assert_eq!(s.read_u8(3).unwrap(), 0xab);
    }

    #[test]
    fn u32_roundtrip_is_little_endian() {
        let mut s = SharedSram::new(8);
        s.write_u32_le(0, 0x0102_0304).unwrap();
        assert_eq!(s.read_u8(0).unwrap(), 0x04);
        assert_eq!(s.read_u8(3).unwrap(), 0x01);
        assert_eq!(s.read_u32_le(0).unwrap(), 0x0102_0304);
    }

    #[test]
    fn bytes_roundtrip() {
        let mut s = SharedSram::new(16);
        s.write_bytes(4, &[9, 8, 7]).unwrap();
        let mut out = [0u8; 3];
        s.read_bytes(4, &mut out).unwrap();
        assert_eq!(out, [9, 8, 7]);
    }

    #[test]
    fn out_of_bounds_read_is_rejected() {
        let s = SharedSram::new(4);
        assert!(matches!(
            s.read_u32_le(1),
            Err(SramError::OutOfBounds {
                offset: 1,
                len: 4,
                capacity: 4
            })
        ));
        assert!(s.read_u8(4).is_err());
    }

    #[test]
    fn out_of_bounds_write_is_rejected() {
        let mut s = SharedSram::new(4);
        assert!(s.write_u32_le(2, 0).is_err());
        assert!(s.write_bytes(0, &[0; 5]).is_err());
    }

    #[test]
    fn overflowing_offset_is_rejected_not_panicking() {
        let s = SharedSram::new(4);
        assert!(s.read_u8(usize::MAX).is_err());
    }

    #[test]
    fn fill_works_and_checks_bounds() {
        let mut s = SharedSram::new(8);
        s.fill(2, 4, 0xff).unwrap();
        assert_eq!(s.read_u8(1).unwrap(), 0);
        assert_eq!(s.read_u8(2).unwrap(), 0xff);
        assert_eq!(s.read_u8(5).unwrap(), 0xff);
        assert_eq!(s.read_u8(6).unwrap(), 0);
        assert!(s.fill(6, 4, 0).is_err());
    }

    #[test]
    fn carve_windows_partitions_the_sram() {
        let s = SharedSram::new(1024);
        let windows = s.carve_windows(0x100, 0x80, 4).unwrap();
        assert_eq!(windows, vec![0x100, 0x180, 0x200, 0x280]);
        // Windows that overflow the capacity are rejected.
        assert!(s.carve_windows(0x100, 0x80, 8).is_err());
        assert!(s.carve_windows(0, usize::MAX, 2).is_err());
        // Zero windows carve nothing and always fit.
        assert_eq!(s.carve_windows(0, 0x80, 0).unwrap(), Vec::<usize>::new());
    }

    #[test]
    fn fresh_sram_is_zeroed() {
        let s = SharedSram::new(32);
        for i in 0..32 {
            assert_eq!(s.read_u8(i).unwrap(), 0);
        }
    }
}
