//! Seed-derivation streams shared by every exploration axis.
//!
//! Each trial of the adaptive tester is addressed by a seed *quadruple*
//! `(pattern, schedule, memory, irq)`; recording the quadruple replays
//! the trial bit-for-bit. The streams that derive the quadruple from a
//! single pattern seed (or, in campaigns, from a master seed and a
//! `(round, trial)` index) were historically scattered across
//! `ptest-master`, `ptest-core` and `ptest-campaign`, each crate
//! re-declaring the same splitmix64 finalizer. This module is the single
//! home of all of them: the upper layers re-export these functions under
//! their historical paths, and the unit tests below pin every stream
//! byte-identical to the values those scattered copies produced.
//!
//! All derivations are built on splitmix64 (Vigna's fixed-increment
//! SplitMix finalizer): statistically decorrelated output even for
//! adjacent inputs, collision-free over the index ranges campaigns use
//! in practice, dependency-free, and identical on every platform.

/// One round of the splitmix64 output function over an arbitrary seed.
///
/// Used wherever a single decorrelated value is needed from a
/// structured input (seed XOR stream-constant, mixed indices, …).
#[must_use]
pub fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Advances a splitmix64 generator state and returns the next output.
///
/// This is the sequential form used by seeded generators (priority
/// draws, change-point draws, interrupt plans): the state advances by
/// the golden-gamma increment and each output is the finalizer of the
/// new state.
#[must_use]
pub fn splitmix64_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Derives the default *schedule* seed of a trial from its pattern seed.
///
/// Used when a configuration carries no explicit schedule seed: the
/// schedule stream is decorrelated from the pattern stream so related
/// pattern seeds still explore unrelated schedules.
#[must_use]
pub fn derived_schedule_seed(seed: u64) -> u64 {
    const SCHEDULE_STREAM: u64 = 0xC2B2_AE3D_27D4_EB4F;
    splitmix64(seed ^ SCHEDULE_STREAM)
}

/// Derives the default *memory* seed of a trial from its pattern seed,
/// on a third stream decorrelated from both the pattern and the
/// schedule streams.
#[must_use]
pub fn derived_memory_seed(seed: u64) -> u64 {
    const MEMORY_STREAM: u64 = 0xD6E8_FEB8_6659_FD93;
    splitmix64(seed ^ MEMORY_STREAM)
}

/// Derives the default *interrupt/preemption* seed of a trial from its
/// pattern seed — the fourth stream of the replay quadruple, feeding
/// interrupt plans and clock-skew rates. Decorrelated from the pattern,
/// schedule and memory streams.
#[must_use]
pub fn derived_irq_seed(seed: u64) -> u64 {
    const IRQ_STREAM: u64 = 0xA076_1D64_78BD_642F;
    splitmix64(seed ^ IRQ_STREAM)
}

/// Derives the pattern seed of `trial` in `round` of a campaign from
/// the campaign's master seed (splitmix64 over the indices —
/// decorrelated, collision-free in practice, and stable across
/// platforms).
#[must_use]
pub fn campaign_trial_seed(master_seed: u64, round: usize, trial: usize) -> u64 {
    const ROUND_STRIDE: u64 = 0xA24B_AED4_963E_E407;
    let mixed = splitmix64(master_seed ^ (round as u64).wrapping_mul(ROUND_STRIDE));
    splitmix64(mixed ^ trial as u64)
}

/// Derives the *schedule* seed of `trial` in `round` from the master
/// seed — a stream independent of [`campaign_trial_seed`], so the
/// campaign explores (pattern × schedule) space rather than a diagonal
/// of it.
#[must_use]
pub fn campaign_schedule_seed(master_seed: u64, round: usize, trial: usize) -> u64 {
    const SCHEDULE_STRIDE: u64 = 0x9FB2_1C65_1E98_DF25;
    let mixed = splitmix64(master_seed ^ SCHEDULE_STRIDE ^ (round as u64).rotate_left(17));
    splitmix64(mixed ^ (trial as u64).wrapping_mul(SCHEDULE_STRIDE))
}

/// Derives the *memory* seed of `trial` in `round` from the master seed
/// — a third campaign stream, independent of both
/// [`campaign_trial_seed`] and [`campaign_schedule_seed`].
#[must_use]
pub fn campaign_memory_seed(master_seed: u64, round: usize, trial: usize) -> u64 {
    const MEMORY_STRIDE: u64 = 0x2545_F491_4F6C_DD1D;
    let mixed = splitmix64(master_seed ^ MEMORY_STRIDE ^ (round as u64).rotate_left(29));
    splitmix64(mixed ^ (trial as u64).wrapping_mul(MEMORY_STRIDE))
}

/// Derives the *interrupt/preemption* seed of `trial` in `round` from
/// the master seed — the fourth campaign stream, independent of the
/// pattern, schedule and memory streams, so campaigns explore
/// (pattern × schedule × memory × preemption) space and any recorded
/// quadruple replays its trial byte-for-byte.
#[must_use]
pub fn campaign_irq_seed(master_seed: u64, round: usize, trial: usize) -> u64 {
    const IRQ_STRIDE: u64 = 0xE703_7ED1_A0B4_28DB;
    let mixed = splitmix64(master_seed ^ IRQ_STRIDE ^ (round as u64).rotate_left(43));
    splitmix64(mixed ^ (trial as u64).wrapping_mul(IRQ_STRIDE))
}

#[cfg(test)]
mod tests {
    use super::*;

    // The pins below are the values the pre-consolidation copies of
    // these streams produced (splitmix64 in ptest-master::sched, the
    // derived_* helpers in ptest-core::trial, the campaign streams in
    // ptest-campaign::engine). They must never change: recorded seed
    // quadruples in archived reports and checkpoints replay through
    // them.

    #[test]
    fn splitmix64_matches_reference_vector() {
        // Reference values for the SplitMix64 output function.
        assert_eq!(splitmix64(0), 0xE220_A839_7B1D_CDAF);
        assert_eq!(splitmix64(1), 0x910A_2DEC_8902_5CC1);
        assert_eq!(splitmix64(0x9E37_79B9_7F4A_7C15), 0x6E78_9E6A_A1B9_65F4);
    }

    #[test]
    fn splitmix64_next_is_the_sequential_form() {
        let mut state = 42u64;
        let a = splitmix64_next(&mut state);
        assert_eq!(state, 42u64.wrapping_add(0x9E37_79B9_7F4A_7C15));
        assert_eq!(a, splitmix64(42));
        let b = splitmix64_next(&mut state);
        assert_ne!(a, b);
        assert_eq!(b, splitmix64(42u64.wrapping_add(0x9E37_79B9_7F4A_7C15)));
    }

    #[test]
    fn derived_streams_are_pinned() {
        assert_eq!(
            derived_schedule_seed(2009),
            splitmix64(2009 ^ 0xC2B2_AE3D_27D4_EB4F)
        );
        assert_eq!(
            derived_memory_seed(2009),
            splitmix64(2009 ^ 0xD6E8_FEB8_6659_FD93)
        );
        assert_eq!(
            derived_irq_seed(2009),
            splitmix64(2009 ^ 0xA076_1D64_78BD_642F)
        );
        // Concrete values so the formulas themselves are pinned, not
        // just their shape.
        assert_eq!(derived_schedule_seed(0), 0xDF30_F36F_6B91_D29C);
        assert_eq!(derived_memory_seed(0), 0xA7B7_7319_D39F_7883);
        assert_eq!(derived_irq_seed(0), 0x4396_D60D_BD85_37AF);
    }

    #[test]
    fn campaign_streams_are_pinned() {
        assert_eq!(campaign_trial_seed(7, 3, 5), {
            let mixed = splitmix64(7 ^ 3u64.wrapping_mul(0xA24B_AED4_963E_E407));
            splitmix64(mixed ^ 5)
        });
        assert_eq!(campaign_schedule_seed(7, 3, 5), {
            let mixed = splitmix64(7 ^ 0x9FB2_1C65_1E98_DF25 ^ 3u64.rotate_left(17));
            splitmix64(mixed ^ 5u64.wrapping_mul(0x9FB2_1C65_1E98_DF25))
        });
        assert_eq!(campaign_memory_seed(7, 3, 5), {
            let mixed = splitmix64(7 ^ 0x2545_F491_4F6C_DD1D ^ 3u64.rotate_left(29));
            splitmix64(mixed ^ 5u64.wrapping_mul(0x2545_F491_4F6C_DD1D))
        });
        assert_eq!(campaign_irq_seed(7, 3, 5), {
            let mixed = splitmix64(7 ^ 0xE703_7ED1_A0B4_28DB ^ 3u64.rotate_left(43));
            splitmix64(mixed ^ 5u64.wrapping_mul(0xE703_7ED1_A0B4_28DB))
        });
    }

    #[test]
    fn four_streams_are_mutually_decorrelated() {
        for round in 0..4 {
            for trial in 0..16 {
                let seeds = [
                    campaign_trial_seed(7, round, trial),
                    campaign_schedule_seed(7, round, trial),
                    campaign_memory_seed(7, round, trial),
                    campaign_irq_seed(7, round, trial),
                ];
                for i in 0..seeds.len() {
                    for j in (i + 1)..seeds.len() {
                        assert_ne!(seeds[i], seeds[j], "streams {i} and {j} collide");
                    }
                }
            }
        }
        let derived = [
            derived_schedule_seed(7),
            derived_memory_seed(7),
            derived_irq_seed(7),
        ];
        assert_ne!(derived[0], derived[1]);
        assert_ne!(derived[0], derived[2]);
        assert_ne!(derived[1], derived[2]);
    }
}
