//! A deterministic discrete-event queue keyed by virtual time.

use std::cmp::Reverse;
use std::collections::{BinaryHeap, HashSet};

use crate::clock::Cycles;

/// Opaque handle identifying a scheduled event so it can be cancelled.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct EventId(u64);

/// A min-heap of `(deadline, payload)` pairs with stable FIFO ordering for
/// events scheduled at the same virtual time, plus O(1) cancellation via
/// tombstones.
///
/// Used by the upper layers for watchdog deadlines, command timeouts and
/// periodic pollers. Determinism matters: two events at the same deadline
/// always pop in the order they were pushed.
///
/// ```
/// use ptest_soc::{Cycles, EventQueue};
/// let mut q = EventQueue::new();
/// q.schedule(Cycles::new(10), "b");
/// q.schedule(Cycles::new(5), "a");
/// assert_eq!(q.pop_due(Cycles::new(7)), vec![(Cycles::new(5), "a")]);
/// assert_eq!(q.pop_due(Cycles::new(20)), vec![(Cycles::new(10), "b")]);
/// ```
#[derive(Debug, Clone)]
pub struct EventQueue<T> {
    heap: BinaryHeap<Reverse<Entry<T>>>,
    cancelled: HashSet<EventId>,
    next_seq: u64,
}

#[derive(Debug, Clone)]
struct Entry<T> {
    at: Cycles,
    seq: u64,
    payload: T,
}

impl<T> PartialEq for Entry<T> {
    fn eq(&self, other: &Self) -> bool {
        self.at == other.at && self.seq == other.seq
    }
}
impl<T> Eq for Entry<T> {}
impl<T> PartialOrd for Entry<T> {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl<T> Ord for Entry<T> {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        self.at.cmp(&other.at).then(self.seq.cmp(&other.seq))
    }
}

impl<T> EventQueue<T> {
    /// An empty event queue.
    #[must_use]
    pub fn new() -> EventQueue<T> {
        EventQueue {
            heap: BinaryHeap::new(),
            cancelled: HashSet::new(),
            next_seq: 0,
        }
    }

    /// Schedules `payload` to fire at virtual time `at`; returns a handle
    /// usable with [`EventQueue::cancel`].
    pub fn schedule(&mut self, at: Cycles, payload: T) -> EventId {
        let id = EventId(self.next_seq);
        self.heap.push(Reverse(Entry {
            at,
            seq: self.next_seq,
            payload,
        }));
        self.next_seq += 1;
        id
    }

    /// Cancels a previously scheduled event. Returns `true` if the event had
    /// not yet fired (or been cancelled).
    pub fn cancel(&mut self, id: EventId) -> bool {
        if id.0 >= self.next_seq {
            return false;
        }
        self.cancelled.insert(id)
    }

    /// The deadline of the earliest live event, if any.
    #[must_use]
    pub fn next_deadline(&mut self) -> Option<Cycles> {
        self.drop_cancelled_head();
        self.heap.peek().map(|Reverse(e)| e.at)
    }

    /// Pops and returns every event with deadline `<= now`, in deadline
    /// order (FIFO among equal deadlines). Cancelled events are skipped.
    pub fn pop_due(&mut self, now: Cycles) -> Vec<(Cycles, T)> {
        let mut due = Vec::new();
        loop {
            self.drop_cancelled_head();
            match self.heap.peek() {
                Some(Reverse(e)) if e.at <= now => {
                    let Reverse(e) = self.heap.pop().expect("peeked entry exists");
                    due.push((e.at, e.payload));
                }
                _ => break,
            }
        }
        due
    }

    /// Number of live (non-cancelled) events still queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.heap
            .iter()
            .filter(|Reverse(e)| !self.cancelled.contains(&EventId(e.seq)))
            .count()
    }

    /// Whether no live events remain.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn drop_cancelled_head(&mut self) {
        while let Some(Reverse(e)) = self.heap.peek() {
            let id = EventId(e.seq);
            if self.cancelled.contains(&id) {
                self.heap.pop();
                self.cancelled.remove(&id);
            } else {
                break;
            }
        }
    }
}

impl<T> Default for EventQueue<T> {
    fn default() -> EventQueue<T> {
        EventQueue::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pops_in_deadline_order() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(30), 3);
        q.schedule(Cycles::new(10), 1);
        q.schedule(Cycles::new(20), 2);
        let fired: Vec<i32> = q
            .pop_due(Cycles::new(100))
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        assert_eq!(fired, vec![1, 2, 3]);
    }

    #[test]
    fn equal_deadlines_pop_fifo() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(5), "first");
        q.schedule(Cycles::new(5), "second");
        q.schedule(Cycles::new(5), "third");
        let fired: Vec<&str> = q
            .pop_due(Cycles::new(5))
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        assert_eq!(fired, vec!["first", "second", "third"]);
    }

    #[test]
    fn only_due_events_fire() {
        let mut q = EventQueue::new();
        q.schedule(Cycles::new(10), "early");
        q.schedule(Cycles::new(20), "late");
        assert_eq!(q.pop_due(Cycles::new(15)).len(), 1);
        assert_eq!(q.len(), 1);
        assert_eq!(q.next_deadline(), Some(Cycles::new(20)));
    }

    #[test]
    fn cancel_prevents_firing() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(10), "a");
        q.schedule(Cycles::new(10), "b");
        assert!(q.cancel(a));
        assert!(!q.cancel(a), "double cancel reports false");
        let fired: Vec<&str> = q
            .pop_due(Cycles::new(10))
            .into_iter()
            .map(|(_, p)| p)
            .collect();
        assert_eq!(fired, vec!["b"]);
    }

    #[test]
    fn cancel_unknown_id_is_false() {
        let mut q: EventQueue<()> = EventQueue::new();
        assert!(!q.cancel(EventId(99)));
    }

    #[test]
    fn len_ignores_cancelled() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(1), ());
        q.schedule(Cycles::new(2), ());
        q.cancel(a);
        assert_eq!(q.len(), 1);
        assert!(!q.is_empty());
    }

    #[test]
    fn next_deadline_skips_cancelled_head() {
        let mut q = EventQueue::new();
        let a = q.schedule(Cycles::new(1), ());
        q.schedule(Cycles::new(5), ());
        q.cancel(a);
        assert_eq!(q.next_deadline(), Some(Cycles::new(5)));
    }

    #[test]
    fn empty_queue_behaviour() {
        let mut q: EventQueue<u8> = EventQueue::new();
        assert!(q.is_empty());
        assert_eq!(q.next_deadline(), None);
        assert!(q.pop_due(Cycles::new(1000)).is_empty());
    }
}
