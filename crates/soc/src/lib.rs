//! # ptest-soc — a deterministic, discrete-event simulated dual-core SoC
//!
//! This crate models the hardware substrate that the pTest paper ran on: a
//! TI OMAP5912-like system-on-chip with two 192-MHz cores (an ARM "master"
//! and a DSP "slave"), four inter-processor **mailboxes**, and a block of
//! **shared internal SRAM** used by the communication middleware.
//!
//! Nothing in this crate knows about kernels, threads, or test patterns; it
//! only provides the hardware-shaped pieces the upper layers are built on:
//!
//! * [`Cycles`] and [`VirtualClock`] — virtual time, advanced by the
//!   simulation loop rather than a wall clock, so every run is
//!   deterministic and every detected bug replayable.
//! * [`SharedSram`] — a bounds-checked byte-addressable memory window
//!   (250 KB on the OMAP5912) shared by both cores.
//! * [`MailboxBank`] — four one-word-deep (configurable) hardware FIFOs
//!   with per-core interrupt lines, mirroring the OMAP mailbox peripheral.
//! * [`EventQueue`] — a generic timer/event wheel for deadline-driven
//!   components (watchdogs, timeouts, periodic pollers).
//! * [`TraceBuffer`] — a bounded ring of timestamped hardware/software
//!   events that the bug detector dumps when a failure is found.
//!
//! ## Example
//!
//! ```
//! use ptest_soc::{Cycles, MailboxBank, SharedSram, CoreId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sram = SharedSram::omap5912();
//! sram.write_u32_le(0x100, 0xdead_beef)?;
//! assert_eq!(sram.read_u32_le(0x100)?, 0xdead_beef);
//!
//! let mut mboxes = MailboxBank::omap5912();
//! mboxes.post(MailboxBank::ARM_TO_DSP_CMD, 42)?;
//! assert!(mboxes.irq_pending(CoreId::Dsp));
//! assert_eq!(mboxes.take(MailboxBank::ARM_TO_DSP_CMD), Some(42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod error;
mod mailbox;
mod queue;
mod sram;
mod trace;

pub use clock::{Cycles, VirtualClock};
pub use error::{MailboxError, SramError};
pub use mailbox::{Mailbox, MailboxBank};
pub use queue::{EventId, EventQueue};
pub use sram::SharedSram;
pub use trace::{TraceBuffer, TraceEvent};

/// Identifies one of the two processing cores of the simulated SoC.
///
/// The pTest paper's master–slave model maps the *master* onto the ARM core
/// (running Linux) and the *slave* onto the DSP core (running pCore).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoreId {
    /// The ARM926EJ-S master core.
    Arm,
    /// The TI C55x DSP slave core.
    Dsp,
}

impl CoreId {
    /// The opposite core: the DSP for the ARM and vice versa.
    ///
    /// ```
    /// use ptest_soc::CoreId;
    /// assert_eq!(CoreId::Arm.peer(), CoreId::Dsp);
    /// assert_eq!(CoreId::Dsp.peer(), CoreId::Arm);
    /// ```
    #[must_use]
    pub fn peer(self) -> CoreId {
        match self {
            CoreId::Arm => CoreId::Dsp,
            CoreId::Dsp => CoreId::Arm,
        }
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreId::Arm => write!(f, "ARM"),
            CoreId::Dsp => write!(f, "DSP"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_peer_is_involutive() {
        assert_eq!(CoreId::Arm.peer().peer(), CoreId::Arm);
        assert_eq!(CoreId::Dsp.peer().peer(), CoreId::Dsp);
    }

    #[test]
    fn core_id_display() {
        assert_eq!(CoreId::Arm.to_string(), "ARM");
        assert_eq!(CoreId::Dsp.to_string(), "DSP");
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Cycles>();
        assert_send_sync::<VirtualClock>();
        assert_send_sync::<SharedSram>();
        assert_send_sync::<MailboxBank>();
        assert_send_sync::<TraceBuffer>();
        assert_send_sync::<EventQueue<u32>>();
        assert_send_sync::<CoreId>();
    }
}
