//! # ptest-soc — a deterministic, discrete-event simulated multicore SoC
//!
//! This crate models the hardware substrate that the pTest paper ran on —
//! a TI OMAP5912-like system-on-chip with an ARM "master" core, originally
//! one DSP "slave" core, inter-processor **mailboxes**, and a block of
//! **shared internal SRAM** used by the communication middleware — and
//! generalizes it from the dual-core part to an *N-slave* topology: one
//! master ([`CoreId::Master`]) plus any number of slaves
//! ([`CoreId::Slave`]), each with its own mailbox block and its own bridge
//! window carved out of the shared SRAM.
//!
//! Nothing in this crate knows about kernels, threads, or test patterns; it
//! only provides the hardware-shaped pieces the upper layers are built on:
//!
//! * [`Cycles`] and [`VirtualClock`] — virtual time, advanced by the
//!   simulation loop rather than a wall clock, so every run is
//!   deterministic and every detected bug replayable.
//! * [`SharedSram`] — a bounds-checked byte-addressable memory window
//!   (250 KB on the OMAP5912) shared by all cores, with
//!   [`SharedSram::carve_windows`] to partition it into per-slave regions.
//! * [`MailboxBank`] — per-slave blocks of four hardware FIFOs
//!   (command/data doorbells inbound, response/event doorbells outbound)
//!   with per-core interrupt lines, mirroring the OMAP mailbox peripheral;
//!   [`MailboxBank::omap5912`] is the one-slave original.
//! * [`EventQueue`] — a generic timer/event wheel for deadline-driven
//!   components (watchdogs, timeouts, periodic pollers).
//! * [`TraceBuffer`] — a bounded ring of timestamped hardware/software
//!   events that the bug detector dumps when a failure is found.
//!
//! ## Example
//!
//! ```
//! use ptest_soc::{Cycles, MailboxBank, SharedSram, CoreId};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut sram = SharedSram::omap5912();
//! sram.write_u32_le(0x100, 0xdead_beef)?;
//! assert_eq!(sram.read_u32_le(0x100)?, 0xdead_beef);
//!
//! // A two-slave bank: slave 1's command doorbell interrupts core DSP1.
//! let mut mboxes = MailboxBank::for_slaves(2);
//! mboxes.post(MailboxBank::cmd_index(1), 42)?;
//! assert!(mboxes.irq_pending(CoreId::Slave(1)));
//! assert!(!mboxes.irq_pending(CoreId::Dsp));
//! assert_eq!(mboxes.take(MailboxBank::cmd_index(1)), Some(42));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod clock;
mod error;
mod mailbox;
mod queue;
pub mod seed;
mod sram;
mod trace;

pub use clock::{Cycles, VirtualClock};
pub use error::{MailboxError, SramError};
pub use mailbox::{Mailbox, MailboxBank};
pub use queue::{EventId, EventQueue};
pub use sram::SharedSram;
pub use trace::{TraceBuffer, TraceEvent};

/// Identifies one processing core of the simulated SoC.
///
/// The pTest paper's master–slave model maps the *master* onto the ARM core
/// (running Linux) and each *slave* onto a DSP core (running pCore). The
/// original OMAP5912 platform had exactly one slave; the generalized
/// platform supports up to 256 slaves, identified by index.
///
/// The legacy dual-core names are kept as constants: [`CoreId::Arm`] is the
/// master and [`CoreId::Dsp`] is slave 0, so existing call sites (and
/// match patterns) keep compiling unchanged.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum CoreId {
    /// The ARM926EJ-S master core.
    Master,
    /// The `i`-th TI C55x DSP slave core.
    Slave(u8),
}

impl CoreId {
    /// The ARM926EJ-S master core (legacy dual-core name).
    #[allow(non_upper_case_globals)]
    pub const Arm: CoreId = CoreId::Master;

    /// The first (index 0) DSP slave core (legacy dual-core name).
    #[allow(non_upper_case_globals)]
    pub const Dsp: CoreId = CoreId::Slave(0);

    /// The slave core with the given index.
    ///
    /// # Panics
    ///
    /// Panics if `index` exceeds 255 — the platform addresses slaves with
    /// a single byte, and real configurations stay far below that.
    #[must_use]
    pub fn slave(index: usize) -> CoreId {
        assert!(index <= usize::from(u8::MAX), "slave index out of range");
        CoreId::Slave(index as u8)
    }

    /// The slave index, or `None` for the master.
    #[must_use]
    pub fn slave_index(self) -> Option<usize> {
        match self {
            CoreId::Master => None,
            CoreId::Slave(i) => Some(usize::from(i)),
        }
    }

    /// Whether this is the master core.
    #[must_use]
    pub fn is_master(self) -> bool {
        self == CoreId::Master
    }

    /// The opposite core of the *dual-core* configuration: slave 0 for the
    /// master and the master for any slave. Kept for the legacy two-core
    /// call sites; multi-slave code should address slaves by index.
    ///
    /// ```
    /// use ptest_soc::CoreId;
    /// assert_eq!(CoreId::Arm.peer(), CoreId::Dsp);
    /// assert_eq!(CoreId::Dsp.peer(), CoreId::Arm);
    /// ```
    #[must_use]
    pub fn peer(self) -> CoreId {
        match self {
            CoreId::Master => CoreId::Slave(0),
            CoreId::Slave(_) => CoreId::Master,
        }
    }
}

impl std::fmt::Display for CoreId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CoreId::Master => write!(f, "ARM"),
            CoreId::Slave(0) => write!(f, "DSP"),
            CoreId::Slave(i) => write!(f, "DSP{i}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn core_id_peer_is_involutive() {
        assert_eq!(CoreId::Arm.peer().peer(), CoreId::Arm);
        assert_eq!(CoreId::Dsp.peer().peer(), CoreId::Dsp);
    }

    #[test]
    fn core_id_display() {
        assert_eq!(CoreId::Arm.to_string(), "ARM");
        assert_eq!(CoreId::Dsp.to_string(), "DSP");
        assert_eq!(CoreId::Slave(0).to_string(), "DSP");
        assert_eq!(CoreId::Slave(3).to_string(), "DSP3");
    }

    #[test]
    fn legacy_names_alias_the_generalized_cores() {
        assert_eq!(CoreId::Arm, CoreId::Master);
        assert_eq!(CoreId::Dsp, CoreId::Slave(0));
        assert_eq!(CoreId::slave(2), CoreId::Slave(2));
        assert_eq!(CoreId::Slave(2).slave_index(), Some(2));
        assert_eq!(CoreId::Master.slave_index(), None);
        assert!(CoreId::Master.is_master());
        assert!(!CoreId::Slave(1).is_master());
    }

    #[test]
    #[should_panic(expected = "slave index")]
    fn oversized_slave_index_panics() {
        let _ = CoreId::slave(256);
    }

    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Cycles>();
        assert_send_sync::<VirtualClock>();
        assert_send_sync::<SharedSram>();
        assert_send_sync::<MailboxBank>();
        assert_send_sync::<TraceBuffer>();
        assert_send_sync::<EventQueue<u32>>();
        assert_send_sync::<CoreId>();
    }
}
