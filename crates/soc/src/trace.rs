//! Bounded event tracing used for bug reproduction dumps.

use std::collections::VecDeque;
use std::fmt;

use crate::clock::Cycles;
use crate::CoreId;

/// One timestamped trace record.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TraceEvent {
    /// Virtual time at which the event occurred.
    pub at: Cycles,
    /// Core on which the event occurred.
    pub core: CoreId,
    /// Short machine-readable category, e.g. `"svc"`, `"irq"`, `"sched"`.
    pub kind: &'static str,
    /// Human-readable detail, e.g. `"task_create slot=3 prio=7"`.
    pub detail: String,
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "[{} {} {}] {}",
            self.at, self.core, self.kind, self.detail
        )
    }
}

/// A bounded ring buffer of [`TraceEvent`]s.
///
/// Every layer of the simulated system appends here; when the bug detector
/// fires it dumps the tail of this buffer into the [`BugReport`] so a user
/// can see the exact command/schedule history that led to the failure —
/// the paper's "helps users reproduce the bugs".
///
/// The buffer keeps only the most recent `capacity` events; older ones are
/// discarded (`dropped()` counts them).
///
/// [`BugReport`]: https://docs.rs/ptest-core
///
/// ```
/// use ptest_soc::{Cycles, CoreId, TraceBuffer};
/// let mut tb = TraceBuffer::new(2);
/// tb.record(Cycles::new(1), CoreId::Arm, "cmd", "issue TC".into());
/// tb.record(Cycles::new(2), CoreId::Dsp, "svc", "task_create".into());
/// tb.record(Cycles::new(3), CoreId::Dsp, "sched", "run slot 0".into());
/// assert_eq!(tb.len(), 2); // oldest evicted
/// assert_eq!(tb.dropped(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct TraceBuffer {
    events: VecDeque<TraceEvent>,
    capacity: usize,
    dropped: u64,
}

impl TraceBuffer {
    /// Default capacity used by the system wiring: generous enough to hold
    /// the full history of the paper-scale experiments.
    pub const DEFAULT_CAPACITY: usize = 65_536;

    /// Creates a buffer keeping at most `capacity` events.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: usize) -> TraceBuffer {
        assert!(capacity > 0, "trace buffer capacity must be at least 1");
        TraceBuffer {
            events: VecDeque::with_capacity(capacity.min(4096)),
            capacity,
            dropped: 0,
        }
    }

    /// Appends an event, evicting the oldest if the buffer is full.
    pub fn record(&mut self, at: Cycles, core: CoreId, kind: &'static str, detail: String) {
        if self.events.len() == self.capacity {
            self.events.pop_front();
            self.dropped += 1;
        }
        self.events.push_back(TraceEvent {
            at,
            core,
            kind,
            detail,
        });
    }

    /// Number of events currently held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.events.len()
    }

    /// Whether the buffer holds no events.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// How many events have been evicted since creation.
    #[must_use]
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// Iterates over held events from oldest to newest.
    pub fn iter(&self) -> impl Iterator<Item = &TraceEvent> {
        self.events.iter()
    }

    /// The most recent `n` events, oldest first.
    #[must_use]
    pub fn tail(&self, n: usize) -> Vec<TraceEvent> {
        let skip = self.events.len().saturating_sub(n);
        self.events.iter().skip(skip).cloned().collect()
    }

    /// Events matching a `kind` filter, oldest first.
    #[must_use]
    pub fn of_kind(&self, kind: &str) -> Vec<TraceEvent> {
        self.events
            .iter()
            .filter(|e| e.kind == kind)
            .cloned()
            .collect()
    }

    /// Discards all held events (the drop counter is preserved).
    pub fn clear(&mut self) {
        self.events.clear();
    }
}

impl Default for TraceBuffer {
    fn default() -> TraceBuffer {
        TraceBuffer::new(Self::DEFAULT_CAPACITY)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(tb: &mut TraceBuffer, t: u64, detail: &str) {
        tb.record(Cycles::new(t), CoreId::Dsp, "test", detail.to_owned());
    }

    #[test]
    fn records_in_order() {
        let mut tb = TraceBuffer::new(10);
        ev(&mut tb, 1, "a");
        ev(&mut tb, 2, "b");
        let all: Vec<&str> = tb.iter().map(|e| e.detail.as_str()).collect();
        assert_eq!(all, vec!["a", "b"]);
    }

    #[test]
    fn evicts_oldest_and_counts_drops() {
        let mut tb = TraceBuffer::new(2);
        ev(&mut tb, 1, "a");
        ev(&mut tb, 2, "b");
        ev(&mut tb, 3, "c");
        assert_eq!(tb.len(), 2);
        assert_eq!(tb.dropped(), 1);
        assert_eq!(tb.iter().next().unwrap().detail, "b");
    }

    #[test]
    fn tail_returns_most_recent() {
        let mut tb = TraceBuffer::new(10);
        for i in 0..5 {
            ev(&mut tb, i, &format!("e{i}"));
        }
        let t = tb.tail(2);
        assert_eq!(t.len(), 2);
        assert_eq!(t[0].detail, "e3");
        assert_eq!(t[1].detail, "e4");
        assert_eq!(tb.tail(99).len(), 5);
    }

    #[test]
    fn of_kind_filters() {
        let mut tb = TraceBuffer::new(10);
        tb.record(Cycles::new(1), CoreId::Arm, "cmd", "x".into());
        tb.record(Cycles::new(2), CoreId::Dsp, "svc", "y".into());
        tb.record(Cycles::new(3), CoreId::Arm, "cmd", "z".into());
        let cmds = tb.of_kind("cmd");
        assert_eq!(cmds.len(), 2);
        assert!(cmds.iter().all(|e| e.kind == "cmd"));
    }

    #[test]
    fn display_contains_fields() {
        let e = TraceEvent {
            at: Cycles::new(7),
            core: CoreId::Arm,
            kind: "irq",
            detail: "mailbox 0".into(),
        };
        let s = e.to_string();
        assert!(
            s.contains("7cy") && s.contains("ARM") && s.contains("irq") && s.contains("mailbox 0")
        );
    }

    #[test]
    fn clear_keeps_drop_counter() {
        let mut tb = TraceBuffer::new(1);
        ev(&mut tb, 1, "a");
        ev(&mut tb, 2, "b");
        tb.clear();
        assert!(tb.is_empty());
        assert_eq!(tb.dropped(), 1);
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = TraceBuffer::new(0);
    }
}
