//! The inter-processor mailbox peripheral.

use std::collections::VecDeque;

use crate::error::MailboxError;
use crate::CoreId;

/// A single hardware mailbox: a small FIFO of 32-bit words flowing in one
/// direction between the two cores, raising an interrupt at the receiver
/// whenever it is non-empty.
#[derive(Debug, Clone)]
pub struct Mailbox {
    fifo: VecDeque<u32>,
    capacity: usize,
    receiver: CoreId,
}

impl Mailbox {
    /// Creates a mailbox delivering to `receiver` with the given FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero — a zero-deep mailbox cannot transfer
    /// anything and always indicates a configuration bug.
    #[must_use]
    pub fn new(receiver: CoreId, capacity: usize) -> Mailbox {
        assert!(capacity > 0, "mailbox capacity must be at least 1");
        Mailbox {
            fifo: VecDeque::with_capacity(capacity),
            capacity,
            receiver,
        }
    }

    /// The core that receives (and is interrupted by) this mailbox.
    #[must_use]
    pub fn receiver(&self) -> CoreId {
        self.receiver
    }

    /// Number of words currently queued.
    #[must_use]
    pub fn len(&self) -> usize {
        self.fifo.len()
    }

    /// Whether the FIFO is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.fifo.is_empty()
    }

    /// Whether the FIFO is full (a post would fail).
    #[must_use]
    pub fn is_full(&self) -> bool {
        self.fifo.len() == self.capacity
    }

    /// Posts one word into the FIFO.
    ///
    /// # Errors
    ///
    /// [`MailboxError::Full`] if the FIFO has no room; real firmware retries
    /// after the receiver drains a word.
    pub fn post(&mut self, word: u32) -> Result<(), MailboxError> {
        if self.is_full() {
            return Err(MailboxError::Full {
                mailbox: usize::MAX,
            });
        }
        self.fifo.push_back(word);
        Ok(())
    }

    /// Pops the oldest word, or `None` if the FIFO is empty.
    pub fn take(&mut self) -> Option<u32> {
        self.fifo.pop_front()
    }

    /// Peeks at the oldest word without consuming it.
    #[must_use]
    pub fn peek(&self) -> Option<u32> {
        self.fifo.front().copied()
    }
}

/// A bank of inter-processor mailboxes: one block of four per slave.
///
/// Every slave `i` owns a contiguous block of [`MailboxBank::BOXES_PER_SLAVE`]
/// mailboxes, mirroring how the OMAP5912 dedicated its four mailboxes to
/// its single DSP (that original bank is exactly [`MailboxBank::omap5912`],
/// i.e. `for_slaves(1)`):
///
/// | block offset | accessor | direction | purpose |
/// |---|---|---|---|
/// | 0 | [`MailboxBank::cmd_index`]   | master → slave *i* | command doorbells |
/// | 1 | [`MailboxBank::data_index`]  | master → slave *i* | auxiliary data |
/// | 2 | [`MailboxBank::resp_index`]  | slave *i* → master | command responses |
/// | 3 | [`MailboxBank::event_index`] | slave *i* → master | asynchronous events |
///
/// (The pre-N-slave `ARM_TO_DSP_*`/`DSP_TO_ARM_*` raw-index constants
/// were deprecated when the per-slave accessors landed and have since
/// been removed; slave 0's block still occupies indices 0..=3 in
/// cmd/data/resp/event order.)
#[derive(Debug, Clone)]
pub struct MailboxBank {
    boxes: Vec<Mailbox>,
}

impl MailboxBank {
    /// Mailboxes per slave block: command, data, response, event.
    pub const BOXES_PER_SLAVE: usize = 4;

    /// Index of slave `slave`'s command doorbell (master → slave).
    #[must_use]
    pub const fn cmd_index(slave: usize) -> usize {
        slave * Self::BOXES_PER_SLAVE
    }

    /// Index of slave `slave`'s auxiliary data mailbox (master → slave).
    #[must_use]
    pub const fn data_index(slave: usize) -> usize {
        slave * Self::BOXES_PER_SLAVE + 1
    }

    /// Index of slave `slave`'s response doorbell (slave → master).
    #[must_use]
    pub const fn resp_index(slave: usize) -> usize {
        slave * Self::BOXES_PER_SLAVE + 2
    }

    /// Index of slave `slave`'s asynchronous event doorbell (slave → master).
    #[must_use]
    pub const fn event_index(slave: usize) -> usize {
        slave * Self::BOXES_PER_SLAVE + 3
    }

    /// The OMAP5912 bank: one slave block of four mailboxes with a FIFO
    /// depth of 4 words.
    #[must_use]
    pub fn omap5912() -> MailboxBank {
        MailboxBank::with_depth(4)
    }

    /// A single-slave bank with the given per-mailbox FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics if `depth` is zero (see [`Mailbox::new`]).
    #[must_use]
    pub fn with_depth(depth: usize) -> MailboxBank {
        MailboxBank::for_slaves_with_depth(1, depth)
    }

    /// A bank serving `slaves` slave cores with the OMAP FIFO depth of 4.
    ///
    /// # Panics
    ///
    /// Panics if `slaves` is zero or exceeds 256.
    #[must_use]
    pub fn for_slaves(slaves: usize) -> MailboxBank {
        MailboxBank::for_slaves_with_depth(slaves, 4)
    }

    /// A bank serving `slaves` slave cores with the given FIFO depth.
    ///
    /// # Panics
    ///
    /// Panics if `slaves` is zero or exceeds 256, or if `depth` is zero.
    #[must_use]
    pub fn for_slaves_with_depth(slaves: usize, depth: usize) -> MailboxBank {
        assert!(slaves > 0, "a mailbox bank needs at least one slave block");
        assert!(slaves <= 256, "slave count exceeds the addressable range");
        let mut boxes = Vec::with_capacity(slaves * Self::BOXES_PER_SLAVE);
        for slave in 0..slaves {
            let core = CoreId::slave(slave);
            boxes.push(Mailbox::new(core, depth)); // command doorbell
            boxes.push(Mailbox::new(core, depth)); // auxiliary data
            boxes.push(Mailbox::new(CoreId::Master, depth)); // responses
            boxes.push(Mailbox::new(CoreId::Master, depth)); // events
        }
        MailboxBank { boxes }
    }

    /// Number of slave blocks in the bank.
    #[must_use]
    pub fn slave_count(&self) -> usize {
        self.boxes.len() / Self::BOXES_PER_SLAVE
    }

    /// Number of mailboxes in the bank (four per slave).
    #[must_use]
    pub fn len(&self) -> usize {
        self.boxes.len()
    }

    /// Whether the bank has no mailboxes (never true for constructed banks).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.boxes.is_empty()
    }

    fn get(&self, mailbox: usize) -> Result<&Mailbox, MailboxError> {
        self.boxes
            .get(mailbox)
            .ok_or(MailboxError::NoSuchMailbox { mailbox })
    }

    /// Posts a word to mailbox `mailbox`.
    ///
    /// # Errors
    ///
    /// [`MailboxError::NoSuchMailbox`] for an invalid index, or
    /// [`MailboxError::Full`] if the FIFO has no room.
    pub fn post(&mut self, mailbox: usize, word: u32) -> Result<(), MailboxError> {
        let slot = self
            .boxes
            .get_mut(mailbox)
            .ok_or(MailboxError::NoSuchMailbox { mailbox })?;
        slot.post(word).map_err(|_| MailboxError::Full { mailbox })
    }

    /// Pops the oldest word of mailbox `mailbox`, or `None` if it is empty
    /// or the index is invalid.
    pub fn take(&mut self, mailbox: usize) -> Option<u32> {
        self.boxes.get_mut(mailbox)?.take()
    }

    /// Peeks at the oldest word of mailbox `mailbox` without consuming it.
    #[must_use]
    pub fn peek(&self, mailbox: usize) -> Option<u32> {
        self.get(mailbox).ok()?.peek()
    }

    /// Number of queued words in mailbox `mailbox` (0 for invalid indices).
    #[must_use]
    pub fn pending(&self, mailbox: usize) -> usize {
        self.get(mailbox).map_or(0, Mailbox::len)
    }

    /// Whether any mailbox delivering to `core` holds at least one word —
    /// i.e. whether the mailbox interrupt line of `core` is asserted.
    #[must_use]
    pub fn irq_pending(&self, core: CoreId) -> bool {
        self.boxes
            .iter()
            .any(|m| m.receiver() == core && !m.is_empty())
    }

    /// Whether any mailbox in the bank, in either direction, holds at
    /// least one word — i.e. whether any doorbell anywhere is still
    /// ringing. `false` means no interrupt-driven work is pending on
    /// the whole platform.
    #[must_use]
    pub fn any_pending(&self) -> bool {
        self.boxes.iter().any(|m| !m.is_empty())
    }

    /// Indices of the mailboxes delivering to `core`.
    #[must_use]
    pub fn inbound_for(&self, core: CoreId) -> Vec<usize> {
        self.boxes
            .iter()
            .enumerate()
            .filter(|(_, m)| m.receiver() == core)
            .map(|(i, _)| i)
            .collect()
    }
}

impl Default for MailboxBank {
    fn default() -> MailboxBank {
        MailboxBank::omap5912()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_is_preserved() {
        let mut m = Mailbox::new(CoreId::Dsp, 4);
        m.post(1).unwrap();
        m.post(2).unwrap();
        m.post(3).unwrap();
        assert_eq!(m.take(), Some(1));
        assert_eq!(m.take(), Some(2));
        assert_eq!(m.take(), Some(3));
        assert_eq!(m.take(), None);
    }

    #[test]
    fn full_mailbox_rejects_posts() {
        let mut m = Mailbox::new(CoreId::Arm, 2);
        m.post(1).unwrap();
        m.post(2).unwrap();
        assert!(m.is_full());
        assert!(m.post(3).is_err());
        assert_eq!(m.take(), Some(1));
        m.post(3).unwrap();
    }

    #[test]
    #[should_panic(expected = "capacity")]
    fn zero_capacity_panics() {
        let _ = Mailbox::new(CoreId::Arm, 0);
    }

    #[test]
    fn bank_directions_match_omap_convention() {
        let bank = MailboxBank::omap5912();
        assert_eq!(bank.len(), 4);
        assert_eq!(bank.inbound_for(CoreId::Dsp), vec![0, 1]);
        assert_eq!(bank.inbound_for(CoreId::Arm), vec![2, 3]);
    }

    #[test]
    fn irq_tracks_pending_words() {
        let mut bank = MailboxBank::omap5912();
        assert!(!bank.irq_pending(CoreId::Dsp));
        assert!(!bank.irq_pending(CoreId::Arm));
        bank.post(MailboxBank::cmd_index(0), 5).unwrap();
        assert!(bank.irq_pending(CoreId::Dsp));
        assert!(!bank.irq_pending(CoreId::Arm));
        assert_eq!(bank.take(MailboxBank::cmd_index(0)), Some(5));
        assert!(!bank.irq_pending(CoreId::Dsp));
    }

    #[test]
    fn multi_slave_bank_routes_per_block() {
        let mut bank = MailboxBank::for_slaves(3);
        assert_eq!(bank.slave_count(), 3);
        assert_eq!(bank.len(), 12);
        assert_eq!(
            bank.inbound_for(CoreId::Slave(1)),
            vec![MailboxBank::cmd_index(1), MailboxBank::data_index(1)]
        );
        assert_eq!(
            bank.inbound_for(CoreId::Master),
            vec![
                MailboxBank::resp_index(0),
                MailboxBank::event_index(0),
                MailboxBank::resp_index(1),
                MailboxBank::event_index(1),
                MailboxBank::resp_index(2),
                MailboxBank::event_index(2),
            ]
        );
        bank.post(MailboxBank::cmd_index(2), 9).unwrap();
        assert!(bank.irq_pending(CoreId::Slave(2)));
        assert!(!bank.irq_pending(CoreId::Slave(0)));
        assert!(!bank.irq_pending(CoreId::Slave(1)));
        bank.post(MailboxBank::resp_index(1), 3).unwrap();
        assert!(bank.irq_pending(CoreId::Master));
    }

    #[test]
    #[should_panic(expected = "at least one slave")]
    fn zero_slave_bank_panics() {
        let _ = MailboxBank::for_slaves(0);
    }

    #[test]
    fn invalid_index_errors() {
        let mut bank = MailboxBank::omap5912();
        assert!(matches!(
            bank.post(9, 0),
            Err(MailboxError::NoSuchMailbox { mailbox: 9 })
        ));
        assert_eq!(bank.take(9), None);
        assert_eq!(bank.pending(9), 0);
        assert_eq!(bank.peek(9), None);
    }

    #[test]
    fn peek_does_not_consume() {
        let mut bank = MailboxBank::omap5912();
        bank.post(2, 77).unwrap();
        assert_eq!(bank.peek(2), Some(77));
        assert_eq!(bank.pending(2), 1);
        assert_eq!(bank.take(2), Some(77));
    }

    #[test]
    fn full_bank_error_reports_index() {
        let mut bank = MailboxBank::with_depth(1);
        bank.post(3, 1).unwrap();
        assert_eq!(bank.post(3, 2), Err(MailboxError::Full { mailbox: 3 }));
    }
}
