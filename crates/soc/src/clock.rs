//! Virtual time for the discrete-event simulation.

use std::fmt;
use std::ops::{Add, AddAssign, Sub};

/// A point in (or span of) virtual time, measured in simulated core cycles.
///
/// Both cores of the OMAP5912 run at 192 MHz, so one global cycle count is
/// shared by the whole SoC. `Cycles` is a transparent ordering-aware newtype
/// so that cycle counts cannot be accidentally mixed with other `u64`
/// quantities such as byte offsets or task identifiers.
///
/// ```
/// use ptest_soc::Cycles;
/// let a = Cycles::new(100);
/// let b = a + Cycles::new(20);
/// assert_eq!(b.get(), 120);
/// assert!(b > a);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Cycles(u64);

impl Cycles {
    /// The zero point of virtual time.
    pub const ZERO: Cycles = Cycles(0);

    /// Creates a cycle count from a raw `u64`.
    #[must_use]
    pub fn new(raw: u64) -> Cycles {
        Cycles(raw)
    }

    /// Returns the raw cycle count.
    #[must_use]
    pub fn get(self) -> u64 {
        self.0
    }

    /// Saturating subtraction: the span from `earlier` to `self`, or zero
    /// if `earlier` is in the future.
    #[must_use]
    pub fn since(self, earlier: Cycles) -> Cycles {
        Cycles(self.0.saturating_sub(earlier.0))
    }

    /// Checked addition, `None` on overflow.
    #[must_use]
    pub fn checked_add(self, rhs: Cycles) -> Option<Cycles> {
        self.0.checked_add(rhs.0).map(Cycles)
    }
}

impl Add for Cycles {
    type Output = Cycles;
    fn add(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 + rhs.0)
    }
}

impl AddAssign for Cycles {
    fn add_assign(&mut self, rhs: Cycles) {
        self.0 += rhs.0;
    }
}

impl Sub for Cycles {
    type Output = Cycles;
    /// # Panics
    ///
    /// Panics in debug builds if `rhs > self`; use [`Cycles::since`] for a
    /// saturating difference.
    fn sub(self, rhs: Cycles) -> Cycles {
        Cycles(self.0 - rhs.0)
    }
}

impl fmt::Display for Cycles {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}cy", self.0)
    }
}

impl From<u64> for Cycles {
    fn from(raw: u64) -> Cycles {
        Cycles(raw)
    }
}

/// The monotonically advancing virtual clock of the simulated SoC.
///
/// The simulation loop is the only writer; every component reads the same
/// clock, which is what makes watchdog timeouts and trace timestamps
/// deterministic across runs.
///
/// ```
/// use ptest_soc::{Cycles, VirtualClock};
/// let mut clock = VirtualClock::new();
/// clock.advance(Cycles::new(10));
/// assert_eq!(clock.now(), Cycles::new(10));
/// ```
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Cycles,
}

impl VirtualClock {
    /// A fresh clock at time zero.
    #[must_use]
    pub fn new() -> VirtualClock {
        VirtualClock { now: Cycles::ZERO }
    }

    /// The current virtual time.
    #[must_use]
    pub fn now(&self) -> Cycles {
        self.now
    }

    /// Advances the clock by `delta` cycles.
    pub fn advance(&mut self, delta: Cycles) {
        self.now += delta;
    }

    /// Advances the clock by exactly one cycle; convenience for tick loops.
    pub fn tick(&mut self) {
        self.now += Cycles::new(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cycles_arithmetic() {
        let a = Cycles::new(5);
        let b = Cycles::new(7);
        assert_eq!((a + b).get(), 12);
        assert_eq!((b - a).get(), 2);
        let mut c = a;
        c += b;
        assert_eq!(c.get(), 12);
    }

    #[test]
    fn since_saturates() {
        assert_eq!(Cycles::new(3).since(Cycles::new(10)), Cycles::ZERO);
        assert_eq!(Cycles::new(10).since(Cycles::new(3)), Cycles::new(7));
    }

    #[test]
    fn checked_add_detects_overflow() {
        assert_eq!(Cycles::new(u64::MAX).checked_add(Cycles::new(1)), None);
        assert_eq!(
            Cycles::new(1).checked_add(Cycles::new(2)),
            Some(Cycles::new(3))
        );
    }

    #[test]
    fn clock_advances_monotonically() {
        let mut clock = VirtualClock::new();
        assert_eq!(clock.now(), Cycles::ZERO);
        clock.tick();
        clock.advance(Cycles::new(9));
        assert_eq!(clock.now(), Cycles::new(10));
    }

    #[test]
    fn display_formats() {
        assert_eq!(Cycles::new(42).to_string(), "42cy");
    }

    #[test]
    fn from_u64_roundtrip() {
        let c: Cycles = 99u64.into();
        assert_eq!(c.get(), 99);
    }
}
