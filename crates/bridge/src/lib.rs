//! # ptest-bridge — the pCore-Bridge communication middleware
//!
//! The paper's master and slave systems talk through "pCore Bridge", a
//! middleware built on the OMAP5912's two native inter-processor
//! mechanisms: *shared-memory polling* and *mailbox interrupts*. This
//! crate reproduces that middleware:
//!
//! * [`codec`] — fixed-size little-endian wire records for remote
//!   commands ([`SvcRequest`](ptest_pcore::SvcRequest)) and responses.
//! * [`ring`] — single-producer single-consumer rings laid out in shared
//!   SRAM, accessed only through bounds-checked SRAM reads/writes.
//! * [`BridgeLayout`] — where one slave's command/response ring pair
//!   lives; [`BridgeLayout::for_slaves`] partitions the shared SRAM into
//!   one disjoint window per slave of an N-slave platform
//!   ([`BridgeLayout::standard`] is slave 0's window, unchanged from the
//!   dual-core original).
//! * [`MasterPort`] — the ARM-side endpoint: encodes commands, rings the
//!   target slave's doorbell mailbox, polls responses from every lane,
//!   and tracks outstanding commands both in aggregate and per slave
//!   ([`MasterPort::overdue`]/[`MasterPort::overdue_for`]) so a silent
//!   (crashed) slave becomes observable as command timeouts.
//! * [`SlaveEndpoint`] — one DSP-side interrupt handler per slave: drains
//!   that slave's command ring, dispatches into its
//!   [`Kernel`](ptest_pcore::Kernel), and writes responses. It goes
//!   silent when the kernel panics, exactly like firmware dying with its
//!   kernel.
//!
//! ## Example
//!
//! ```
//! use ptest_bridge::{BridgeLayout, MasterPort, SlaveEndpoint};
//! use ptest_pcore::{Kernel, KernelConfig, Priority, Program, SvcRequest};
//! use ptest_soc::{Cycles, MailboxBank, SharedSram};
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let layout = BridgeLayout::standard();
//! let mut sram = SharedSram::omap5912();
//! layout.init(&mut sram)?;
//! let mut mailboxes = MailboxBank::omap5912();
//! let mut kernel = Kernel::new(KernelConfig::default());
//! let prog = kernel.register_program(Program::exit_immediately());
//!
//! let mut master = MasterPort::new(layout);
//! let mut slave = SlaveEndpoint::new(layout);
//!
//! let req = SvcRequest::Create { program: prog, priority: Priority::new(5), stack_bytes: None };
//! master.issue(&mut sram, &mut mailboxes, req, Cycles::new(1))?;
//! slave.service(&mut sram, &mut mailboxes, &mut kernel, Cycles::new(2), 16);
//! let responses = master.poll_responses(&mut sram, &mut mailboxes, Cycles::new(3));
//! assert_eq!(responses.len(), 1);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod ring;

mod port;

pub use codec::{CmdId, CodecError, CMD_RECORD_BYTES, RESP_RECORD_BYTES};
pub use port::{
    BridgeError, BridgeLayout, CmdResponse, EndpointStats, MasterPort, PortStats, SlaveEndpoint,
};
pub use ring::{RingError, SramRing};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::MasterPort>();
        assert_send_sync::<super::SlaveEndpoint>();
        assert_send_sync::<super::CmdResponse>();
    }
}
