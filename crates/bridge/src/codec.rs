//! Wire encoding of remote commands and responses.
//!
//! Commands travel master→slave as fixed 24-byte records, responses
//! slave→master as fixed 16-byte records, both through rings in shared
//! SRAM (see [`crate::ring`]). The encoding is explicit little-endian so a
//! record written by the ARM side reads back identically on the DSP side.

use ptest_pcore::{Priority, ProgramId, SvcError, SvcReply, SvcRequest, TaskId, VarId};

/// Size of an encoded command record in bytes.
pub const CMD_RECORD_BYTES: usize = 24;
/// Size of an encoded response record in bytes.
pub const RESP_RECORD_BYTES: usize = 16;

/// A monotonically increasing identifier correlating commands with
/// responses.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct CmdId(pub u32);

impl std::fmt::Display for CmdId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "cmd{}", self.0)
    }
}

/// Error decoding a wire record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CodecError {
    /// Unknown command opcode.
    BadOpcode(u8),
    /// Unknown response status code.
    BadStatus(u8),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::BadOpcode(op) => write!(f, "unknown command opcode {op}"),
            CodecError::BadStatus(st) => write!(f, "unknown response status {st}"),
        }
    }
}

impl std::error::Error for CodecError {}

const OP_PEEK: u8 = 100;
const OP_POKE: u8 = 101;

/// Encodes `(id, request)` into a command record.
#[must_use]
pub fn encode_cmd(id: CmdId, req: &SvcRequest) -> [u8; CMD_RECORD_BYTES] {
    let mut buf = [0u8; CMD_RECORD_BYTES];
    buf[0..4].copy_from_slice(&id.0.to_le_bytes());
    match *req {
        SvcRequest::Create {
            program,
            priority,
            stack_bytes,
        } => {
            buf[4] = 1;
            buf[5] = priority.level();
            buf[6..8].copy_from_slice(&program.0.to_le_bytes());
            buf[8..12].copy_from_slice(&stack_bytes.unwrap_or(0).to_le_bytes());
        }
        SvcRequest::Delete { task } => {
            buf[4] = 2;
            buf[5] = task.index() as u8;
        }
        SvcRequest::Suspend { task } => {
            buf[4] = 3;
            buf[5] = task.index() as u8;
        }
        SvcRequest::Resume { task } => {
            buf[4] = 4;
            buf[5] = task.index() as u8;
        }
        SvcRequest::ChangePriority { task, priority } => {
            buf[4] = 5;
            buf[5] = task.index() as u8;
            buf[6] = priority.level();
        }
        SvcRequest::Yield { task } => {
            buf[4] = 6;
            buf[5] = task.index() as u8;
        }
        SvcRequest::PeekVar { var } => {
            buf[4] = OP_PEEK;
            buf[6..8].copy_from_slice(&var.0.to_le_bytes());
        }
        SvcRequest::PokeVar { var, value } => {
            buf[4] = OP_POKE;
            buf[6..8].copy_from_slice(&var.0.to_le_bytes());
            buf[8..16].copy_from_slice(&value.to_le_bytes());
        }
    }
    buf
}

/// Decodes a command record.
///
/// # Errors
///
/// [`CodecError::BadOpcode`] if the opcode byte is unknown.
pub fn decode_cmd(buf: &[u8; CMD_RECORD_BYTES]) -> Result<(CmdId, SvcRequest), CodecError> {
    let id = CmdId(u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]));
    let task = TaskId::new(buf[5]);
    let req = match buf[4] {
        1 => {
            let program = ProgramId(u16::from_le_bytes([buf[6], buf[7]]));
            let stack = u32::from_le_bytes([buf[8], buf[9], buf[10], buf[11]]);
            SvcRequest::Create {
                program,
                priority: Priority::new(buf[5].max(1)),
                stack_bytes: if stack == 0 { None } else { Some(stack) },
            }
        }
        2 => SvcRequest::Delete { task },
        3 => SvcRequest::Suspend { task },
        4 => SvcRequest::Resume { task },
        5 => SvcRequest::ChangePriority {
            task,
            priority: Priority::new(buf[6].max(1)),
        },
        6 => SvcRequest::Yield { task },
        OP_PEEK => SvcRequest::PeekVar {
            var: VarId(u16::from_le_bytes([buf[6], buf[7]])),
        },
        OP_POKE => SvcRequest::PokeVar {
            var: VarId(u16::from_le_bytes([buf[6], buf[7]])),
            value: i64::from_le_bytes([
                buf[8], buf[9], buf[10], buf[11], buf[12], buf[13], buf[14], buf[15],
            ]),
        },
        op => return Err(CodecError::BadOpcode(op)),
    };
    Ok((id, req))
}

/// Encodes `(id, result)` into a response record.
#[must_use]
pub fn encode_resp(id: CmdId, result: &Result<SvcReply, SvcError>) -> [u8; RESP_RECORD_BYTES] {
    let mut buf = [0u8; RESP_RECORD_BYTES];
    buf[0..4].copy_from_slice(&id.0.to_le_bytes());
    let (status, payload): (u8, i64) = match result {
        Ok(SvcReply::Done) => (0, 0),
        Ok(SvcReply::Created(t)) => (1, t.index() as i64),
        Ok(SvcReply::Value(v)) => (2, *v),
        Err(SvcError::NoFreeSlot) => (10, 0),
        Err(SvcError::PriorityInUse(p)) => (11, i64::from(p.level())),
        Err(SvcError::NoSuchTask(t)) => (12, t.index() as i64),
        Err(SvcError::TaskNotLive(t)) => (13, t.index() as i64),
        Err(SvcError::AlreadySuspended(t)) => (14, t.index() as i64),
        Err(SvcError::NotSuspended(t)) => (15, t.index() as i64),
        Err(SvcError::NoSuchProgram(p)) => (16, i64::from(p.0)),
        Err(SvcError::NoSuchVar(v)) => (17, i64::from(v.0)),
        Err(SvcError::KernelPanicked) => (18, 0),
    };
    buf[4] = status;
    buf[8..16].copy_from_slice(&payload.to_le_bytes());
    buf
}

/// Decodes a response record.
///
/// # Errors
///
/// [`CodecError::BadStatus`] if the status byte is unknown.
pub fn decode_resp(
    buf: &[u8; RESP_RECORD_BYTES],
) -> Result<(CmdId, Result<SvcReply, SvcError>), CodecError> {
    let id = CmdId(u32::from_le_bytes([buf[0], buf[1], buf[2], buf[3]]));
    let payload = i64::from_le_bytes([
        buf[8], buf[9], buf[10], buf[11], buf[12], buf[13], buf[14], buf[15],
    ]);
    let task = TaskId::new((payload & 0xff) as u8);
    let result = match buf[4] {
        0 => Ok(SvcReply::Done),
        1 => Ok(SvcReply::Created(task)),
        2 => Ok(SvcReply::Value(payload)),
        10 => Err(SvcError::NoFreeSlot),
        11 => Err(SvcError::PriorityInUse(Priority::new(
            (payload as u8).max(1),
        ))),
        12 => Err(SvcError::NoSuchTask(task)),
        13 => Err(SvcError::TaskNotLive(task)),
        14 => Err(SvcError::AlreadySuspended(task)),
        15 => Err(SvcError::NotSuspended(task)),
        16 => Err(SvcError::NoSuchProgram(ProgramId(payload as u16))),
        17 => Err(SvcError::NoSuchVar(VarId(payload as u16))),
        18 => Err(SvcError::KernelPanicked),
        st => return Err(CodecError::BadStatus(st)),
    };
    Ok((id, result))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn roundtrip_cmd(req: SvcRequest) {
        let id = CmdId(77);
        let buf = encode_cmd(id, &req);
        let (id2, req2) = decode_cmd(&buf).unwrap();
        assert_eq!(id, id2);
        assert_eq!(req, req2, "command roundtrip");
    }

    #[test]
    fn all_commands_roundtrip() {
        roundtrip_cmd(SvcRequest::Create {
            program: ProgramId(3),
            priority: Priority::new(9),
            stack_bytes: Some(512),
        });
        roundtrip_cmd(SvcRequest::Create {
            program: ProgramId(0),
            priority: Priority::new(1),
            stack_bytes: None,
        });
        roundtrip_cmd(SvcRequest::Delete {
            task: TaskId::new(4),
        });
        roundtrip_cmd(SvcRequest::Suspend {
            task: TaskId::new(15),
        });
        roundtrip_cmd(SvcRequest::Resume {
            task: TaskId::new(0),
        });
        roundtrip_cmd(SvcRequest::ChangePriority {
            task: TaskId::new(2),
            priority: Priority::new(200),
        });
        roundtrip_cmd(SvcRequest::Yield {
            task: TaskId::new(7),
        });
        roundtrip_cmd(SvcRequest::PeekVar { var: VarId(12) });
        roundtrip_cmd(SvcRequest::PokeVar {
            var: VarId(1),
            value: -99,
        });
    }

    fn roundtrip_resp(result: Result<SvcReply, SvcError>) {
        let id = CmdId(123_456);
        let buf = encode_resp(id, &result);
        let (id2, r2) = decode_resp(&buf).unwrap();
        assert_eq!(id, id2);
        assert_eq!(result, r2, "response roundtrip");
    }

    #[test]
    fn all_responses_roundtrip() {
        roundtrip_resp(Ok(SvcReply::Done));
        roundtrip_resp(Ok(SvcReply::Created(TaskId::new(15))));
        roundtrip_resp(Ok(SvcReply::Value(-1_234_567_890_123)));
        roundtrip_resp(Err(SvcError::NoFreeSlot));
        roundtrip_resp(Err(SvcError::PriorityInUse(Priority::new(7))));
        roundtrip_resp(Err(SvcError::NoSuchTask(TaskId::new(3))));
        roundtrip_resp(Err(SvcError::TaskNotLive(TaskId::new(3))));
        roundtrip_resp(Err(SvcError::AlreadySuspended(TaskId::new(1))));
        roundtrip_resp(Err(SvcError::NotSuspended(TaskId::new(1))));
        roundtrip_resp(Err(SvcError::NoSuchProgram(ProgramId(9))));
        roundtrip_resp(Err(SvcError::NoSuchVar(VarId(30))));
        roundtrip_resp(Err(SvcError::KernelPanicked));
    }

    #[test]
    fn bad_opcode_and_status_detected() {
        let mut buf = [0u8; CMD_RECORD_BYTES];
        buf[4] = 250;
        assert_eq!(decode_cmd(&buf), Err(CodecError::BadOpcode(250)));
        let mut rbuf = [0u8; RESP_RECORD_BYTES];
        rbuf[4] = 99;
        assert_eq!(decode_resp(&rbuf), Err(CodecError::BadStatus(99)));
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// Compile-time exhaustiveness guard: the strategies below must cover
    /// *every* variant of the wire enums. Adding a variant to
    /// `SvcRequest`, `SvcReply` or `SvcError` makes these matches
    /// non-exhaustive and breaks the build until the corresponding
    /// strategy (and codec arm) is extended.
    #[allow(dead_code)]
    fn strategies_cover_every_variant(req: &SvcRequest, result: &Result<SvcReply, SvcError>) {
        match req {
            SvcRequest::Create { .. }
            | SvcRequest::Delete { .. }
            | SvcRequest::Suspend { .. }
            | SvcRequest::Resume { .. }
            | SvcRequest::ChangePriority { .. }
            | SvcRequest::Yield { .. }
            | SvcRequest::PeekVar { .. }
            | SvcRequest::PokeVar { .. } => {}
        }
        match result {
            Ok(SvcReply::Done | SvcReply::Created(_) | SvcReply::Value(_)) => {}
            Err(
                SvcError::NoFreeSlot
                | SvcError::PriorityInUse(_)
                | SvcError::NoSuchTask(_)
                | SvcError::TaskNotLive(_)
                | SvcError::AlreadySuspended(_)
                | SvcError::NotSuspended(_)
                | SvcError::NoSuchProgram(_)
                | SvcError::NoSuchVar(_)
                | SvcError::KernelPanicked,
            ) => {}
        }
    }

    fn arb_request() -> impl Strategy<Value = SvcRequest> {
        prop_oneof![
            (0u16..64, 1u8..=255, proptest::option::of(1u32..100_000)).prop_map(
                |(prog, prio, stack)| SvcRequest::Create {
                    program: ProgramId(prog),
                    priority: Priority::new(prio),
                    stack_bytes: stack,
                }
            ),
            (0u8..16).prop_map(|t| SvcRequest::Delete {
                task: TaskId::new(t)
            }),
            (0u8..16).prop_map(|t| SvcRequest::Suspend {
                task: TaskId::new(t)
            }),
            (0u8..16).prop_map(|t| SvcRequest::Resume {
                task: TaskId::new(t)
            }),
            (0u8..16, 1u8..=255).prop_map(|(t, p)| SvcRequest::ChangePriority {
                task: TaskId::new(t),
                priority: Priority::new(p),
            }),
            (0u8..16).prop_map(|t| SvcRequest::Yield {
                task: TaskId::new(t)
            }),
            (0u16..1024).prop_map(|v| SvcRequest::PeekVar { var: VarId(v) }),
            (0u16..1024, any::<i64>()).prop_map(|(v, val)| SvcRequest::PokeVar {
                var: VarId(v),
                value: val
            }),
        ]
    }

    fn arb_result() -> impl Strategy<Value = Result<SvcReply, SvcError>> {
        prop_oneof![
            Just(Ok(SvcReply::Done)),
            (0u8..16).prop_map(|t| Ok(SvcReply::Created(TaskId::new(t)))),
            any::<i64>().prop_map(|v| Ok(SvcReply::Value(v))),
            Just(Err(SvcError::NoFreeSlot)),
            (1u8..=255).prop_map(|p| Err(SvcError::PriorityInUse(Priority::new(p)))),
            (0u8..16).prop_map(|t| Err(SvcError::NoSuchTask(TaskId::new(t)))),
            (0u8..16).prop_map(|t| Err(SvcError::TaskNotLive(TaskId::new(t)))),
            (0u8..16).prop_map(|t| Err(SvcError::AlreadySuspended(TaskId::new(t)))),
            (0u8..16).prop_map(|t| Err(SvcError::NotSuspended(TaskId::new(t)))),
            (0u16..64).prop_map(|p| Err(SvcError::NoSuchProgram(ProgramId(p)))),
            (0u16..1024).prop_map(|v| Err(SvcError::NoSuchVar(VarId(v)))),
            Just(Err(SvcError::KernelPanicked)),
        ]
    }

    proptest! {
        /// Every command survives an encode/decode roundtrip.
        #[test]
        fn command_roundtrip(id in any::<u32>(), req in arb_request()) {
            let buf = encode_cmd(CmdId(id), &req);
            let (id2, req2) = decode_cmd(&buf).unwrap();
            prop_assert_eq!(CmdId(id), id2);
            prop_assert_eq!(req, req2);
        }

        /// Every response survives an encode/decode roundtrip.
        #[test]
        fn response_roundtrip(id in any::<u32>(), result in arb_result()) {
            let buf = encode_resp(CmdId(id), &result);
            let (id2, r2) = decode_resp(&buf).unwrap();
            prop_assert_eq!(CmdId(id), id2);
            prop_assert_eq!(result, r2);
        }

        /// Decoding arbitrary bytes never panics: it either produces a
        /// request or a codec error (hardened against a corrupted ring).
        #[test]
        fn decode_never_panics(bytes in proptest::array::uniform24(any::<u8>())) {
            let _ = decode_cmd(&bytes);
            let mut resp = [0u8; RESP_RECORD_BYTES];
            resp.copy_from_slice(&bytes[..RESP_RECORD_BYTES]);
            let _ = decode_resp(&resp);
        }
    }
}
