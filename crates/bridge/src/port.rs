//! The two endpoints of the bridge: the master-side command port and the
//! slave-side interrupt service endpoint.

use std::collections::HashMap;

use ptest_pcore::{Kernel, SvcError, SvcReply, SvcRequest};
use ptest_soc::{CoreId, Cycles, MailboxBank, SharedSram};

use crate::codec::{
    decode_cmd, decode_resp, encode_cmd, encode_resp, CmdId, CMD_RECORD_BYTES, RESP_RECORD_BYTES,
};
use crate::ring::{RingError, SramRing};

/// Where the bridge's rings live in shared SRAM.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeLayout {
    /// Command ring (master → slave).
    pub cmd_ring: SramRing,
    /// Response ring (slave → master).
    pub resp_ring: SramRing,
}

impl BridgeLayout {
    /// The default layout used by the system wiring: a 32-deep command
    /// ring at offset `0x100` and a 32-deep response ring right after it.
    #[must_use]
    pub fn standard() -> BridgeLayout {
        let cmd_ring = SramRing {
            base: 0x100,
            record_bytes: CMD_RECORD_BYTES,
            capacity: 32,
        };
        let resp_ring = SramRing {
            base: cmd_ring.base + cmd_ring.footprint().next_multiple_of(16),
            record_bytes: RESP_RECORD_BYTES,
            capacity: 32,
        };
        BridgeLayout {
            cmd_ring,
            resp_ring,
        }
    }

    /// Initialises both ring headers in SRAM.
    ///
    /// # Errors
    ///
    /// [`ptest_soc::SramError`] if the layout exceeds the SRAM window.
    pub fn init(&self, sram: &mut SharedSram) -> Result<(), ptest_soc::SramError> {
        self.cmd_ring.init(sram)?;
        self.resp_ring.init(sram)?;
        Ok(())
    }
}

impl Default for BridgeLayout {
    fn default() -> BridgeLayout {
        BridgeLayout::standard()
    }
}

/// Error issuing a command from the master side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeError {
    /// The command ring is full (more than 32 unserviced commands).
    CommandRingFull,
    /// An SRAM layout violation (configuration bug).
    Sram(ptest_soc::SramError),
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::CommandRingFull => write!(f, "command ring is full"),
            BridgeError::Sram(e) => write!(f, "bridge sram access failed: {e}"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<RingError> for BridgeError {
    fn from(e: RingError) -> BridgeError {
        match e {
            RingError::Full => BridgeError::CommandRingFull,
            RingError::Sram(s) => BridgeError::Sram(s),
        }
    }
}

impl From<ptest_soc::SramError> for BridgeError {
    fn from(e: ptest_soc::SramError) -> BridgeError {
        BridgeError::Sram(e)
    }
}

/// A completed command: its id, the original request, the slave's answer,
/// and the issue/completion times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdResponse {
    /// Correlation id.
    pub id: CmdId,
    /// The request as originally issued.
    pub request: SvcRequest,
    /// The slave's reply.
    pub result: Result<SvcReply, SvcError>,
    /// When the command was issued (master clock).
    pub issued_at: Cycles,
    /// When the response was observed (master clock).
    pub completed_at: Cycles,
}

/// Statistics counters of a [`MasterPort`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Commands issued.
    pub issued: u64,
    /// Responses received.
    pub completed: u64,
    /// Issue attempts rejected because the ring was full.
    pub ring_full_rejections: u64,
}

/// The master-side endpoint: issues commands and collects responses.
///
/// The port does not own the hardware; the system wiring passes the shared
/// [`SharedSram`] and [`MailboxBank`] into each call, mirroring how real
/// firmware banks on memory-mapped peripherals.
#[derive(Debug, Clone)]
pub struct MasterPort {
    layout: BridgeLayout,
    next_id: u32,
    pending: HashMap<CmdId, (SvcRequest, Cycles)>,
    stats: PortStats,
}

impl MasterPort {
    /// Creates a port over the given layout.
    #[must_use]
    pub fn new(layout: BridgeLayout) -> MasterPort {
        MasterPort {
            layout,
            next_id: 1,
            pending: HashMap::new(),
            stats: PortStats::default(),
        }
    }

    /// Issue counterstats.
    #[must_use]
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Number of commands awaiting a response.
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Commands issued before `now - timeout` that are still unanswered —
    /// the master-side symptom of a crashed or wedged slave.
    #[must_use]
    pub fn overdue(&self, now: Cycles, timeout: Cycles) -> Vec<CmdId> {
        let mut ids: Vec<CmdId> = self
            .pending
            .iter()
            .filter(|(_, (_, at))| now.since(*at) > timeout)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Issues a command: writes the record into the command ring and rings
    /// the doorbell mailbox (coalesced — the doorbell is only posted when
    /// the mailbox is empty, since one interrupt drains the whole ring).
    ///
    /// # Errors
    ///
    /// [`BridgeError::CommandRingFull`] if 32 commands are already queued.
    pub fn issue(
        &mut self,
        sram: &mut SharedSram,
        mailboxes: &mut MailboxBank,
        req: SvcRequest,
        now: Cycles,
    ) -> Result<CmdId, BridgeError> {
        let id = CmdId(self.next_id);
        let record = encode_cmd(id, &req);
        match self.layout.cmd_ring.push(sram, &record) {
            Ok(()) => {}
            Err(e) => {
                if matches!(e, RingError::Full) {
                    self.stats.ring_full_rejections += 1;
                }
                return Err(e.into());
            }
        }
        self.next_id += 1;
        if mailboxes.pending(MailboxBank::ARM_TO_DSP_CMD) == 0 {
            // Coalesced doorbell; the FIFO can only be full transiently.
            let _ = mailboxes.post(MailboxBank::ARM_TO_DSP_CMD, id.0);
        }
        self.pending.insert(id, (req, now));
        self.stats.issued += 1;
        Ok(id)
    }

    /// Drains the response ring, matching responses to pending commands.
    pub fn poll_responses(
        &mut self,
        sram: &mut SharedSram,
        mailboxes: &mut MailboxBank,
        now: Cycles,
    ) -> Vec<CmdResponse> {
        // Acknowledge the response doorbell(s).
        while mailboxes.take(MailboxBank::DSP_TO_ARM_RESP).is_some() {}
        let mut out = Vec::new();
        let mut buf = [0u8; RESP_RECORD_BYTES];
        while let Ok(true) = self.layout.resp_ring.pop(sram, &mut buf) {
            let Ok((id, result)) = decode_resp(&buf) else {
                continue; // corrupt record: drop, keep draining
            };
            if let Some((request, issued_at)) = self.pending.remove(&id) {
                self.stats.completed += 1;
                out.push(CmdResponse {
                    id,
                    request,
                    result,
                    issued_at,
                    completed_at: now,
                });
            }
        }
        out
    }
}

/// Statistics counters of a [`SlaveEndpoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Commands dispatched into the kernel.
    pub serviced: u64,
    /// Responses dropped because the response ring was full.
    pub resp_drops: u64,
}

/// The slave-side endpoint: drains the command ring on doorbell
/// interrupts, dispatches requests into the kernel and writes responses.
///
/// When the kernel has panicked the endpoint goes silent (the firmware
/// died with the kernel) — the master then observes *command timeouts*,
/// which is exactly how pTest's bug detector notices a slave crash.
#[derive(Debug, Clone)]
pub struct SlaveEndpoint {
    layout: BridgeLayout,
    stats: EndpointStats,
}

impl SlaveEndpoint {
    /// Creates an endpoint over the given layout.
    #[must_use]
    pub fn new(layout: BridgeLayout) -> SlaveEndpoint {
        SlaveEndpoint {
            layout,
            stats: EndpointStats::default(),
        }
    }

    /// Endpoint counters.
    #[must_use]
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// Services the command doorbell: if the mailbox interrupt is pending,
    /// drains the command ring (up to `budget` commands), dispatching each
    /// into `kernel` and pushing a response. Returns the number serviced.
    pub fn service(
        &mut self,
        sram: &mut SharedSram,
        mailboxes: &mut MailboxBank,
        kernel: &mut Kernel,
        now: Cycles,
        budget: usize,
    ) -> usize {
        if kernel.panic().is_some() {
            return 0; // dead slave: leave doorbells unanswered
        }
        if !mailboxes.irq_pending(CoreId::Dsp) {
            return 0;
        }
        // Acknowledge all queued doorbells; one service drains the ring.
        while mailboxes.take(MailboxBank::ARM_TO_DSP_CMD).is_some() {}
        while mailboxes.take(MailboxBank::ARM_TO_DSP_DATA).is_some() {}

        let mut serviced = 0;
        let mut buf = [0u8; CMD_RECORD_BYTES];
        while serviced < budget {
            match self.layout.cmd_ring.pop(sram, &mut buf) {
                Ok(true) => {
                    let Ok((id, req)) = decode_cmd(&buf) else {
                        continue;
                    };
                    let result = kernel.dispatch(req, now);
                    let resp = encode_resp(id, &result);
                    if self.layout.resp_ring.push(sram, &resp).is_err() {
                        self.stats.resp_drops += 1;
                    } else if mailboxes.pending(MailboxBank::DSP_TO_ARM_RESP) == 0 {
                        let _ = mailboxes.post(MailboxBank::DSP_TO_ARM_RESP, id.0);
                    }
                    self.stats.serviced += 1;
                    serviced += 1;
                    if kernel.panic().is_some() {
                        break; // the dispatch killed the kernel
                    }
                }
                Ok(false) | Err(_) => break,
            }
        }
        serviced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{KernelConfig, Priority, Program, TaskId};

    struct Rig {
        sram: SharedSram,
        mailboxes: MailboxBank,
        kernel: Kernel,
        master: MasterPort,
        slave: SlaveEndpoint,
    }

    fn rig() -> Rig {
        let layout = BridgeLayout::standard();
        let mut sram = SharedSram::omap5912();
        layout.init(&mut sram).unwrap();
        let mut kernel = Kernel::new(KernelConfig::default());
        kernel.register_program(Program::exit_immediately());
        Rig {
            sram,
            mailboxes: MailboxBank::omap5912(),
            kernel,
            master: MasterPort::new(layout),
            slave: SlaveEndpoint::new(layout),
        }
    }

    #[test]
    fn end_to_end_create_roundtrip() {
        let mut r = rig();
        let req = SvcRequest::Create {
            program: ptest_pcore::ProgramId(0),
            priority: Priority::new(5),
            stack_bytes: None,
        };
        let id = r
            .master
            .issue(&mut r.sram, &mut r.mailboxes, req, Cycles::new(1))
            .unwrap();
        assert_eq!(r.master.pending_count(), 1);
        let n = r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(2),
            16,
        );
        assert_eq!(n, 1);
        let resps = r
            .master
            .poll_responses(&mut r.sram, &mut r.mailboxes, Cycles::new(3));
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].id, id);
        assert_eq!(resps[0].result, Ok(SvcReply::Created(TaskId::new(0))));
        assert_eq!(resps[0].request, req);
        assert_eq!(r.master.pending_count(), 0);
    }

    #[test]
    fn doorbell_is_coalesced() {
        let mut r = rig();
        for _ in 0..6 {
            r.master
                .issue(
                    &mut r.sram,
                    &mut r.mailboxes,
                    SvcRequest::PeekVar {
                        var: ptest_pcore::VarId(0),
                    },
                    Cycles::new(1),
                )
                .unwrap();
        }
        // Only one doorbell word despite six commands.
        assert_eq!(r.mailboxes.pending(MailboxBank::ARM_TO_DSP_CMD), 1);
        let n = r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(2),
            16,
        );
        assert_eq!(n, 6, "one interrupt drains the whole ring");
    }

    #[test]
    fn ring_full_is_reported() {
        let mut r = rig();
        for _ in 0..32 {
            r.master
                .issue(
                    &mut r.sram,
                    &mut r.mailboxes,
                    SvcRequest::PeekVar {
                        var: ptest_pcore::VarId(0),
                    },
                    Cycles::new(1),
                )
                .unwrap();
        }
        let err = r
            .master
            .issue(
                &mut r.sram,
                &mut r.mailboxes,
                SvcRequest::PeekVar {
                    var: ptest_pcore::VarId(0),
                },
                Cycles::new(1),
            )
            .unwrap_err();
        assert_eq!(err, BridgeError::CommandRingFull);
        assert_eq!(r.master.stats().ring_full_rejections, 1);
    }

    #[test]
    fn service_budget_limits_batch() {
        let mut r = rig();
        for _ in 0..10 {
            r.master
                .issue(
                    &mut r.sram,
                    &mut r.mailboxes,
                    SvcRequest::PeekVar {
                        var: ptest_pcore::VarId(0),
                    },
                    Cycles::new(1),
                )
                .unwrap();
        }
        let n = r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(2),
            4,
        );
        assert_eq!(n, 4);
        // Remaining commands require a fresh doorbell or pending irq; the
        // first service consumed the doorbell, so re-post.
        let _ = r.mailboxes.post(MailboxBank::ARM_TO_DSP_CMD, 0);
        let n2 = r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(3),
            100,
        );
        assert_eq!(n2, 6);
    }

    #[test]
    fn error_replies_propagate() {
        let mut r = rig();
        r.master
            .issue(
                &mut r.sram,
                &mut r.mailboxes,
                SvcRequest::Delete {
                    task: TaskId::new(3),
                },
                Cycles::new(1),
            )
            .unwrap();
        r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(2),
            16,
        );
        let resps = r
            .master
            .poll_responses(&mut r.sram, &mut r.mailboxes, Cycles::new(3));
        assert_eq!(resps[0].result, Err(SvcError::NoSuchTask(TaskId::new(3))));
    }

    #[test]
    fn overdue_detects_silent_slave() {
        let mut r = rig();
        r.master
            .issue(
                &mut r.sram,
                &mut r.mailboxes,
                SvcRequest::PeekVar {
                    var: ptest_pcore::VarId(0),
                },
                Cycles::new(10),
            )
            .unwrap();
        // Slave never services. After the timeout the command is overdue.
        assert!(r
            .master
            .overdue(Cycles::new(20), Cycles::new(100))
            .is_empty());
        let overdue = r.master.overdue(Cycles::new(200), Cycles::new(100));
        assert_eq!(overdue.len(), 1);
    }

    #[test]
    fn panicked_kernel_goes_silent() {
        let cfg = KernelConfig {
            heap_bytes: 1024,
            ..KernelConfig::default()
        };
        let mut kernel = Kernel::new(cfg);
        let prog = kernel.register_program(Program::exit_immediately());
        let layout = BridgeLayout::standard();
        let mut sram = SharedSram::omap5912();
        layout.init(&mut sram).unwrap();
        let mut mailboxes = MailboxBank::omap5912();
        let mut master = MasterPort::new(layout);
        let mut slave = SlaveEndpoint::new(layout);

        // Two creates: 2 * (64 + 512) = 1152 > 1024, so the second one
        // panics the kernel (OOM with no garbage to collect).
        for p in [1u8, 2] {
            master
                .issue(
                    &mut sram,
                    &mut mailboxes,
                    SvcRequest::Create {
                        program: prog,
                        priority: Priority::new(p),
                        stack_bytes: None,
                    },
                    Cycles::new(1),
                )
                .unwrap();
        }
        slave.service(&mut sram, &mut mailboxes, &mut kernel, Cycles::new(2), 16);
        assert!(kernel.panic().is_some());
        let resps = master.poll_responses(&mut sram, &mut mailboxes, Cycles::new(3));
        // First command succeeded; the panicking one got its error out
        // before the firmware died.
        assert_eq!(resps.len(), 2);
        // From now on the slave is silent.
        master
            .issue(
                &mut sram,
                &mut mailboxes,
                SvcRequest::PeekVar {
                    var: ptest_pcore::VarId(0),
                },
                Cycles::new(4),
            )
            .unwrap();
        let n = slave.service(&mut sram, &mut mailboxes, &mut kernel, Cycles::new(5), 16);
        assert_eq!(n, 0);
        assert_eq!(
            master.overdue(Cycles::new(10_000), Cycles::new(100)).len(),
            1
        );
    }
}
