//! The two endpoints of the bridge: the master-side command port and the
//! slave-side interrupt service endpoint.

use std::collections::HashMap;

use ptest_pcore::{Kernel, SvcError, SvcReply, SvcRequest};
use ptest_soc::{CoreId, Cycles, MailboxBank, SharedSram};

use crate::codec::{
    decode_cmd, decode_resp, encode_cmd, encode_resp, CmdId, CMD_RECORD_BYTES, RESP_RECORD_BYTES,
};
use crate::ring::{RingError, SramRing};

/// Where one slave's bridge rings live in shared SRAM.
///
/// An N-slave platform uses N layouts, one per slave, occupying disjoint
/// windows carved out of the shared SRAM (see [`BridgeLayout::for_slaves`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct BridgeLayout {
    /// Command ring (master → slave).
    pub cmd_ring: SramRing,
    /// Response ring (slave → master).
    pub resp_ring: SramRing,
}

const fn align16(x: usize) -> usize {
    (x + 15) & !15
}

impl BridgeLayout {
    /// Records per ring.
    pub const RING_CAPACITY: u32 = 32;

    /// SRAM offset of slave 0's window (below it live the boot vectors of
    /// the original firmware image).
    pub const BASE_OFFSET: usize = 0x100;

    /// Bytes of shared SRAM one slave's window occupies: a
    /// [`RING_CAPACITY`](Self::RING_CAPACITY)-deep command ring plus an
    /// equally deep response ring, each 16-byte aligned.
    pub const SLAVE_WINDOW_BYTES: usize =
        align16(8 + CMD_RECORD_BYTES * Self::RING_CAPACITY as usize)
            + align16(8 + RESP_RECORD_BYTES * Self::RING_CAPACITY as usize);

    /// The default layout used by the legacy dual-core wiring: slave 0's
    /// window — a 32-deep command ring at offset `0x100` and a 32-deep
    /// response ring right after it.
    #[must_use]
    pub fn standard() -> BridgeLayout {
        BridgeLayout::for_slave(0)
    }

    /// The layout of slave `slave`'s window. Windows are laid out
    /// back-to-back from [`BridgeLayout::BASE_OFFSET`] with a stride of
    /// [`BridgeLayout::SLAVE_WINDOW_BYTES`]; `for_slave(0)` is bit-identical
    /// to the historical [`BridgeLayout::standard`].
    #[must_use]
    pub fn for_slave(slave: usize) -> BridgeLayout {
        let base = Self::BASE_OFFSET + slave * Self::SLAVE_WINDOW_BYTES;
        let cmd_ring = SramRing {
            base,
            record_bytes: CMD_RECORD_BYTES,
            capacity: Self::RING_CAPACITY,
        };
        let resp_ring = SramRing {
            base: base + align16(cmd_ring.footprint()),
            record_bytes: RESP_RECORD_BYTES,
            capacity: Self::RING_CAPACITY,
        };
        BridgeLayout {
            cmd_ring,
            resp_ring,
        }
    }

    /// Partitioned layouts for an `slaves`-slave platform: one
    /// command/response ring pair per slave in disjoint SRAM windows.
    #[must_use]
    pub fn for_slaves(slaves: usize) -> Vec<BridgeLayout> {
        (0..slaves).map(BridgeLayout::for_slave).collect()
    }

    /// Initialises both ring headers in SRAM.
    ///
    /// # Errors
    ///
    /// [`ptest_soc::SramError`] if the layout exceeds the SRAM window.
    pub fn init(&self, sram: &mut SharedSram) -> Result<(), ptest_soc::SramError> {
        self.cmd_ring.init(sram)?;
        self.resp_ring.init(sram)?;
        Ok(())
    }
}

impl Default for BridgeLayout {
    fn default() -> BridgeLayout {
        BridgeLayout::standard()
    }
}

/// Error issuing a command from the master side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BridgeError {
    /// The command ring is full (more than 32 unserviced commands).
    CommandRingFull,
    /// The target slave index exceeds the port's lane count.
    NoSuchSlave {
        /// The requested slave index.
        slave: usize,
    },
    /// An SRAM layout violation (configuration bug).
    Sram(ptest_soc::SramError),
}

impl std::fmt::Display for BridgeError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BridgeError::CommandRingFull => write!(f, "command ring is full"),
            BridgeError::NoSuchSlave { slave } => write!(f, "no bridge lane for slave {slave}"),
            BridgeError::Sram(e) => write!(f, "bridge sram access failed: {e}"),
        }
    }
}

impl std::error::Error for BridgeError {}

impl From<RingError> for BridgeError {
    fn from(e: RingError) -> BridgeError {
        match e {
            RingError::Full => BridgeError::CommandRingFull,
            RingError::Sram(s) => BridgeError::Sram(s),
        }
    }
}

impl From<ptest_soc::SramError> for BridgeError {
    fn from(e: ptest_soc::SramError) -> BridgeError {
        BridgeError::Sram(e)
    }
}

/// A completed command: its id, the original request, the slave's answer,
/// and the issue/completion times.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CmdResponse {
    /// Correlation id.
    pub id: CmdId,
    /// The slave that answered.
    pub slave: usize,
    /// The request as originally issued.
    pub request: SvcRequest,
    /// The slave's reply.
    pub result: Result<SvcReply, SvcError>,
    /// When the command was issued (master clock).
    pub issued_at: Cycles,
    /// When the response was observed (master clock).
    pub completed_at: Cycles,
}

/// Statistics counters of a [`MasterPort`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortStats {
    /// Commands issued.
    pub issued: u64,
    /// Responses received.
    pub completed: u64,
    /// Issue attempts rejected because the ring was full.
    pub ring_full_rejections: u64,
}

/// One in-flight command on the master side.
#[derive(Debug, Clone)]
struct PendingCmd {
    slave: usize,
    request: SvcRequest,
    issued_at: Cycles,
}

/// The master-side endpoint: issues commands to any slave over per-slave
/// lanes (one command/response ring pair each) and collects responses.
/// Command ids are unique across lanes, and issue/poll/overdue tracking is
/// kept both in aggregate and per slave.
///
/// The port does not own the hardware; the system wiring passes the shared
/// [`SharedSram`] and [`MailboxBank`] into each call, mirroring how real
/// firmware banks on memory-mapped peripherals.
#[derive(Debug, Clone)]
pub struct MasterPort {
    lanes: Vec<BridgeLayout>,
    next_id: u32,
    pending: HashMap<CmdId, PendingCmd>,
    stats: PortStats,
    lane_stats: Vec<PortStats>,
}

impl MasterPort {
    /// Creates a single-lane port over the given layout (the legacy
    /// dual-core wiring: everything targets slave 0).
    #[must_use]
    pub fn new(layout: BridgeLayout) -> MasterPort {
        MasterPort::for_slaves(vec![layout])
    }

    /// Creates a port with one lane per slave layout.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is empty — a master with nothing to command is a
    /// wiring bug.
    #[must_use]
    pub fn for_slaves(lanes: Vec<BridgeLayout>) -> MasterPort {
        assert!(!lanes.is_empty(), "master port needs at least one lane");
        let lane_stats = vec![PortStats::default(); lanes.len()];
        MasterPort {
            lanes,
            next_id: 1,
            pending: HashMap::new(),
            stats: PortStats::default(),
            lane_stats,
        }
    }

    /// Number of slave lanes.
    #[must_use]
    pub fn slave_count(&self) -> usize {
        self.lanes.len()
    }

    /// Aggregate issue counters across all lanes.
    #[must_use]
    pub fn stats(&self) -> PortStats {
        self.stats
    }

    /// Issue counters of one slave's lane, or `None` for an unknown slave.
    #[must_use]
    pub fn stats_for(&self, slave: usize) -> Option<PortStats> {
        self.lane_stats.get(slave).copied()
    }

    /// Number of commands awaiting a response (all slaves).
    #[must_use]
    pub fn pending_count(&self) -> usize {
        self.pending.len()
    }

    /// Number of commands awaiting a response from one slave.
    #[must_use]
    pub fn pending_count_for(&self, slave: usize) -> usize {
        self.pending.values().filter(|p| p.slave == slave).count()
    }

    /// The slave a pending command targets, or `None` if it is not in
    /// flight.
    #[must_use]
    pub fn slave_of(&self, id: CmdId) -> Option<usize> {
        self.pending.get(&id).map(|p| p.slave)
    }

    /// Commands issued before `now - timeout` that are still unanswered —
    /// the master-side symptom of a crashed or wedged slave.
    #[must_use]
    pub fn overdue(&self, now: Cycles, timeout: Cycles) -> Vec<CmdId> {
        let mut ids: Vec<CmdId> = self
            .pending
            .iter()
            .filter(|(_, p)| now.since(p.issued_at) > timeout)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Number of commands overdue on `slave`'s lane, without allocating
    /// the id list ([`MasterPort::overdue_for`] for callers that only
    /// need the count).
    #[must_use]
    pub fn overdue_count_for(&self, slave: usize, now: Cycles, timeout: Cycles) -> usize {
        self.pending
            .iter()
            .filter(|(_, p)| p.slave == slave && now.since(p.issued_at) > timeout)
            .count()
    }

    /// [`MasterPort::overdue`], restricted to commands targeting `slave`.
    #[must_use]
    pub fn overdue_for(&self, slave: usize, now: Cycles, timeout: Cycles) -> Vec<CmdId> {
        let mut ids: Vec<CmdId> = self
            .pending
            .iter()
            .filter(|(_, p)| p.slave == slave && now.since(p.issued_at) > timeout)
            .map(|(id, _)| *id)
            .collect();
        ids.sort();
        ids
    }

    /// Issues a command to slave 0 (the legacy dual-core path).
    ///
    /// # Errors
    ///
    /// As for [`MasterPort::issue_to`].
    pub fn issue(
        &mut self,
        sram: &mut SharedSram,
        mailboxes: &mut MailboxBank,
        req: SvcRequest,
        now: Cycles,
    ) -> Result<CmdId, BridgeError> {
        self.issue_to(0, sram, mailboxes, req, now)
    }

    /// Issues a command to slave `slave`: writes the record into that
    /// lane's command ring and rings the slave's doorbell mailbox
    /// (coalesced — the doorbell is only posted when the mailbox is empty,
    /// since one interrupt drains the whole ring).
    ///
    /// # Errors
    ///
    /// [`BridgeError::NoSuchSlave`] for an out-of-range slave index;
    /// [`BridgeError::CommandRingFull`] if 32 commands are already queued
    /// on the lane.
    pub fn issue_to(
        &mut self,
        slave: usize,
        sram: &mut SharedSram,
        mailboxes: &mut MailboxBank,
        req: SvcRequest,
        now: Cycles,
    ) -> Result<CmdId, BridgeError> {
        let Some(lane) = self.lanes.get(slave) else {
            return Err(BridgeError::NoSuchSlave { slave });
        };
        let id = CmdId(self.next_id);
        let record = encode_cmd(id, &req);
        match lane.cmd_ring.push(sram, &record) {
            Ok(()) => {}
            Err(e) => {
                if matches!(e, RingError::Full) {
                    self.stats.ring_full_rejections += 1;
                    self.lane_stats[slave].ring_full_rejections += 1;
                }
                return Err(e.into());
            }
        }
        self.next_id += 1;
        if mailboxes.pending(MailboxBank::cmd_index(slave)) == 0 {
            // Coalesced doorbell; the FIFO can only be full transiently.
            let _ = mailboxes.post(MailboxBank::cmd_index(slave), id.0);
        }
        self.pending.insert(
            id,
            PendingCmd {
                slave,
                request: req,
                issued_at: now,
            },
        );
        self.stats.issued += 1;
        self.lane_stats[slave].issued += 1;
        Ok(id)
    }

    /// Drains every lane's response ring in slave order, matching
    /// responses to pending commands.
    pub fn poll_responses(
        &mut self,
        sram: &mut SharedSram,
        mailboxes: &mut MailboxBank,
        now: Cycles,
    ) -> Vec<CmdResponse> {
        let mut out = Vec::new();
        for slave in 0..self.lanes.len() {
            self.poll_slave_responses(slave, sram, mailboxes, now, &mut out);
        }
        out
    }

    fn poll_slave_responses(
        &mut self,
        slave: usize,
        sram: &mut SharedSram,
        mailboxes: &mut MailboxBank,
        now: Cycles,
        out: &mut Vec<CmdResponse>,
    ) {
        // Acknowledge the lane's response doorbell(s).
        while mailboxes.take(MailboxBank::resp_index(slave)).is_some() {}
        let resp_ring = self.lanes[slave].resp_ring;
        let mut buf = [0u8; RESP_RECORD_BYTES];
        while let Ok(true) = resp_ring.pop(sram, &mut buf) {
            let Ok((id, result)) = decode_resp(&buf) else {
                continue; // corrupt record: drop, keep draining
            };
            if let Some(p) = self.pending.remove(&id) {
                self.stats.completed += 1;
                self.lane_stats[slave].completed += 1;
                out.push(CmdResponse {
                    id,
                    slave: p.slave,
                    request: p.request,
                    result,
                    issued_at: p.issued_at,
                    completed_at: now,
                });
            }
        }
    }
}

/// Statistics counters of a [`SlaveEndpoint`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EndpointStats {
    /// Commands dispatched into the kernel.
    pub serviced: u64,
    /// Responses dropped because the response ring was full.
    pub resp_drops: u64,
}

/// The slave-side endpoint: drains the command ring on doorbell
/// interrupts, dispatches requests into the kernel and writes responses.
///
/// When the kernel has panicked the endpoint goes silent (the firmware
/// died with the kernel) — the master then observes *command timeouts*,
/// which is exactly how pTest's bug detector notices a slave crash.
#[derive(Debug, Clone)]
pub struct SlaveEndpoint {
    layout: BridgeLayout,
    slave: usize,
    stats: EndpointStats,
}

impl SlaveEndpoint {
    /// Creates the slave-0 endpoint over the given layout (the legacy
    /// dual-core wiring).
    #[must_use]
    pub fn new(layout: BridgeLayout) -> SlaveEndpoint {
        SlaveEndpoint::for_slave(layout, 0)
    }

    /// Creates the endpoint of slave `slave`, listening on that slave's
    /// mailbox block.
    #[must_use]
    pub fn for_slave(layout: BridgeLayout, slave: usize) -> SlaveEndpoint {
        SlaveEndpoint {
            layout,
            slave,
            stats: EndpointStats::default(),
        }
    }

    /// The slave index this endpoint serves.
    #[must_use]
    pub fn slave(&self) -> usize {
        self.slave
    }

    /// Endpoint counters.
    #[must_use]
    pub fn stats(&self) -> EndpointStats {
        self.stats
    }

    /// Services the command doorbell: if the slave's mailbox interrupt is
    /// pending, drains the command ring (up to `budget` commands),
    /// dispatching each into `kernel` and pushing a response. Returns the
    /// number serviced.
    pub fn service(
        &mut self,
        sram: &mut SharedSram,
        mailboxes: &mut MailboxBank,
        kernel: &mut Kernel,
        now: Cycles,
        budget: usize,
    ) -> usize {
        if kernel.panic().is_some() {
            return 0; // dead slave: leave doorbells unanswered
        }
        if !mailboxes.irq_pending(CoreId::slave(self.slave)) {
            return 0;
        }
        // Acknowledge all queued doorbells; one service drains the ring.
        while mailboxes.take(MailboxBank::cmd_index(self.slave)).is_some() {}
        while mailboxes
            .take(MailboxBank::data_index(self.slave))
            .is_some()
        {}

        let mut serviced = 0;
        let mut buf = [0u8; CMD_RECORD_BYTES];
        while serviced < budget {
            match self.layout.cmd_ring.pop(sram, &mut buf) {
                Ok(true) => {
                    let Ok((id, req)) = decode_cmd(&buf) else {
                        continue;
                    };
                    let result = kernel.dispatch(req, now);
                    let resp = encode_resp(id, &result);
                    if self.layout.resp_ring.push(sram, &resp).is_err() {
                        self.stats.resp_drops += 1;
                    } else if mailboxes.pending(MailboxBank::resp_index(self.slave)) == 0 {
                        let _ = mailboxes.post(MailboxBank::resp_index(self.slave), id.0);
                    }
                    self.stats.serviced += 1;
                    serviced += 1;
                    if kernel.panic().is_some() {
                        break; // the dispatch killed the kernel
                    }
                }
                Ok(false) | Err(_) => break,
            }
        }
        serviced
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{KernelConfig, Priority, Program, TaskId};

    struct Rig {
        sram: SharedSram,
        mailboxes: MailboxBank,
        kernel: Kernel,
        master: MasterPort,
        slave: SlaveEndpoint,
    }

    fn rig() -> Rig {
        let layout = BridgeLayout::standard();
        let mut sram = SharedSram::omap5912();
        layout.init(&mut sram).unwrap();
        let mut kernel = Kernel::new(KernelConfig::default());
        kernel.register_program(Program::exit_immediately());
        Rig {
            sram,
            mailboxes: MailboxBank::omap5912(),
            kernel,
            master: MasterPort::new(layout),
            slave: SlaveEndpoint::new(layout),
        }
    }

    #[test]
    fn end_to_end_create_roundtrip() {
        let mut r = rig();
        let req = SvcRequest::Create {
            program: ptest_pcore::ProgramId(0),
            priority: Priority::new(5),
            stack_bytes: None,
        };
        let id = r
            .master
            .issue(&mut r.sram, &mut r.mailboxes, req, Cycles::new(1))
            .unwrap();
        assert_eq!(r.master.pending_count(), 1);
        let n = r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(2),
            16,
        );
        assert_eq!(n, 1);
        let resps = r
            .master
            .poll_responses(&mut r.sram, &mut r.mailboxes, Cycles::new(3));
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].id, id);
        assert_eq!(resps[0].result, Ok(SvcReply::Created(TaskId::new(0))));
        assert_eq!(resps[0].request, req);
        assert_eq!(r.master.pending_count(), 0);
    }

    #[test]
    fn doorbell_is_coalesced() {
        let mut r = rig();
        for _ in 0..6 {
            r.master
                .issue(
                    &mut r.sram,
                    &mut r.mailboxes,
                    SvcRequest::PeekVar {
                        var: ptest_pcore::VarId(0),
                    },
                    Cycles::new(1),
                )
                .unwrap();
        }
        // Only one doorbell word despite six commands.
        assert_eq!(r.mailboxes.pending(MailboxBank::cmd_index(0)), 1);
        let n = r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(2),
            16,
        );
        assert_eq!(n, 6, "one interrupt drains the whole ring");
    }

    #[test]
    fn ring_full_is_reported() {
        let mut r = rig();
        for _ in 0..32 {
            r.master
                .issue(
                    &mut r.sram,
                    &mut r.mailboxes,
                    SvcRequest::PeekVar {
                        var: ptest_pcore::VarId(0),
                    },
                    Cycles::new(1),
                )
                .unwrap();
        }
        let err = r
            .master
            .issue(
                &mut r.sram,
                &mut r.mailboxes,
                SvcRequest::PeekVar {
                    var: ptest_pcore::VarId(0),
                },
                Cycles::new(1),
            )
            .unwrap_err();
        assert_eq!(err, BridgeError::CommandRingFull);
        assert_eq!(r.master.stats().ring_full_rejections, 1);
    }

    #[test]
    fn service_budget_limits_batch() {
        let mut r = rig();
        for _ in 0..10 {
            r.master
                .issue(
                    &mut r.sram,
                    &mut r.mailboxes,
                    SvcRequest::PeekVar {
                        var: ptest_pcore::VarId(0),
                    },
                    Cycles::new(1),
                )
                .unwrap();
        }
        let n = r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(2),
            4,
        );
        assert_eq!(n, 4);
        // Remaining commands require a fresh doorbell or pending irq; the
        // first service consumed the doorbell, so re-post.
        let _ = r.mailboxes.post(MailboxBank::cmd_index(0), 0);
        let n2 = r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(3),
            100,
        );
        assert_eq!(n2, 6);
    }

    #[test]
    fn error_replies_propagate() {
        let mut r = rig();
        r.master
            .issue(
                &mut r.sram,
                &mut r.mailboxes,
                SvcRequest::Delete {
                    task: TaskId::new(3),
                },
                Cycles::new(1),
            )
            .unwrap();
        r.slave.service(
            &mut r.sram,
            &mut r.mailboxes,
            &mut r.kernel,
            Cycles::new(2),
            16,
        );
        let resps = r
            .master
            .poll_responses(&mut r.sram, &mut r.mailboxes, Cycles::new(3));
        assert_eq!(resps[0].result, Err(SvcError::NoSuchTask(TaskId::new(3))));
    }

    #[test]
    fn overdue_detects_silent_slave() {
        let mut r = rig();
        r.master
            .issue(
                &mut r.sram,
                &mut r.mailboxes,
                SvcRequest::PeekVar {
                    var: ptest_pcore::VarId(0),
                },
                Cycles::new(10),
            )
            .unwrap();
        // Slave never services. After the timeout the command is overdue.
        assert!(r
            .master
            .overdue(Cycles::new(20), Cycles::new(100))
            .is_empty());
        let overdue = r.master.overdue(Cycles::new(200), Cycles::new(100));
        assert_eq!(overdue.len(), 1);
    }

    #[test]
    fn panicked_kernel_goes_silent() {
        let cfg = KernelConfig {
            heap_bytes: 1024,
            ..KernelConfig::default()
        };
        let mut kernel = Kernel::new(cfg);
        let prog = kernel.register_program(Program::exit_immediately());
        let layout = BridgeLayout::standard();
        let mut sram = SharedSram::omap5912();
        layout.init(&mut sram).unwrap();
        let mut mailboxes = MailboxBank::omap5912();
        let mut master = MasterPort::new(layout);
        let mut slave = SlaveEndpoint::new(layout);

        // Two creates: 2 * (64 + 512) = 1152 > 1024, so the second one
        // panics the kernel (OOM with no garbage to collect).
        for p in [1u8, 2] {
            master
                .issue(
                    &mut sram,
                    &mut mailboxes,
                    SvcRequest::Create {
                        program: prog,
                        priority: Priority::new(p),
                        stack_bytes: None,
                    },
                    Cycles::new(1),
                )
                .unwrap();
        }
        slave.service(&mut sram, &mut mailboxes, &mut kernel, Cycles::new(2), 16);
        assert!(kernel.panic().is_some());
        let resps = master.poll_responses(&mut sram, &mut mailboxes, Cycles::new(3));
        // First command succeeded; the panicking one got its error out
        // before the firmware died.
        assert_eq!(resps.len(), 2);
        // From now on the slave is silent.
        master
            .issue(
                &mut sram,
                &mut mailboxes,
                SvcRequest::PeekVar {
                    var: ptest_pcore::VarId(0),
                },
                Cycles::new(4),
            )
            .unwrap();
        let n = slave.service(&mut sram, &mut mailboxes, &mut kernel, Cycles::new(5), 16);
        assert_eq!(n, 0);
        assert_eq!(
            master.overdue(Cycles::new(10_000), Cycles::new(100)).len(),
            1
        );
    }

    #[test]
    fn slave_windows_are_disjoint_and_standard_is_slave0() {
        assert_eq!(BridgeLayout::standard(), BridgeLayout::for_slave(0));
        let layouts = BridgeLayout::for_slaves(4);
        for pair in layouts.windows(2) {
            let end = pair[0].resp_ring.base + pair[0].resp_ring.footprint();
            assert!(end <= pair[1].cmd_ring.base, "windows overlap: {pair:?}");
        }
        // The historical offsets of slave 0 are preserved.
        assert_eq!(layouts[0].cmd_ring.base, 0x100);
        assert_eq!(layouts[0].resp_ring.base, 0x100 + 784);
    }

    #[test]
    fn two_slave_lanes_route_independently() {
        let layouts = BridgeLayout::for_slaves(2);
        let mut sram = SharedSram::omap5912();
        let mut mailboxes = MailboxBank::for_slaves(2);
        let mut master = MasterPort::for_slaves(layouts.clone());
        let mut kernels = [
            Kernel::with_core(KernelConfig::default(), ptest_soc::CoreId::Slave(0)),
            Kernel::with_core(KernelConfig::default(), ptest_soc::CoreId::Slave(1)),
        ];
        let mut endpoints = [
            SlaveEndpoint::for_slave(layouts[0], 0),
            SlaveEndpoint::for_slave(layouts[1], 1),
        ];
        for (slave, kernel) in kernels.iter_mut().enumerate() {
            layouts[slave].init(&mut sram).unwrap();
            kernel.register_program(Program::exit_immediately());
            master
                .issue_to(
                    slave,
                    &mut sram,
                    &mut mailboxes,
                    SvcRequest::PokeVar {
                        var: ptest_pcore::VarId(0),
                        value: slave as i64 + 10,
                    },
                    Cycles::new(1),
                )
                .unwrap();
        }
        assert_eq!(master.pending_count(), 2);
        assert_eq!(master.pending_count_for(0), 1);
        assert_eq!(master.pending_count_for(1), 1);
        // Service only slave 1: slave 0's command must stay untouched.
        let n = endpoints[1].service(
            &mut sram,
            &mut mailboxes,
            &mut kernels[1],
            Cycles::new(2),
            16,
        );
        assert_eq!(n, 1);
        assert_eq!(kernels[1].var(ptest_pcore::VarId(0)), Some(11));
        assert_eq!(kernels[0].var(ptest_pcore::VarId(0)), Some(0));
        let resps = master.poll_responses(&mut sram, &mut mailboxes, Cycles::new(3));
        assert_eq!(resps.len(), 1);
        assert_eq!(resps[0].slave, 1);
        assert_eq!(master.pending_count_for(0), 1);
        assert_eq!(master.pending_count_for(1), 0);
        // Only slave 0's lane is overdue.
        assert_eq!(
            master
                .overdue_for(0, Cycles::new(1_000), Cycles::new(100))
                .len(),
            1
        );
        assert!(master
            .overdue_for(1, Cycles::new(1_000), Cycles::new(100))
            .is_empty());
        assert_eq!(master.stats_for(0).unwrap().completed, 0);
        assert_eq!(master.stats_for(1).unwrap().completed, 1);
    }

    #[test]
    fn issue_to_unknown_slave_is_rejected() {
        let mut sram = SharedSram::omap5912();
        let mut mailboxes = MailboxBank::omap5912();
        let mut master = MasterPort::new(BridgeLayout::standard());
        let err = master
            .issue_to(
                3,
                &mut sram,
                &mut mailboxes,
                SvcRequest::PeekVar {
                    var: ptest_pcore::VarId(0),
                },
                Cycles::new(1),
            )
            .unwrap_err();
        assert_eq!(err, BridgeError::NoSuchSlave { slave: 3 });
    }
}
