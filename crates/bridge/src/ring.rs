//! Single-producer single-consumer rings laid out in shared SRAM.
//!
//! Layout at `base`:
//!
//! ```text
//! base + 0 : head (u32) — total records ever pushed
//! base + 4 : tail (u32) — total records ever popped
//! base + 8 : capacity * record_bytes of slot storage
//! ```
//!
//! Head and tail are free-running counters; the ring is full when
//! `head - tail == capacity`. Both sides access the ring only through
//! bounds-checked [`SharedSram`] operations, exactly as the real firmware
//! accesses the OMAP's shared SRAM window.

use ptest_soc::{SharedSram, SramError};

/// Error from ring operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RingError {
    /// The ring is full; the producer must retry after the consumer
    /// drains.
    Full,
    /// The underlying SRAM access failed (mis-sized layout).
    Sram(SramError),
}

impl std::fmt::Display for RingError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            RingError::Full => write!(f, "ring is full"),
            RingError::Sram(e) => write!(f, "ring sram access failed: {e}"),
        }
    }
}

impl std::error::Error for RingError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            RingError::Sram(e) => Some(e),
            RingError::Full => None,
        }
    }
}

impl From<SramError> for RingError {
    fn from(e: SramError) -> RingError {
        RingError::Sram(e)
    }
}

/// Descriptor of one SPSC ring in shared SRAM (the ring itself lives in
/// the [`SharedSram`]; this struct is just the geometry).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SramRing {
    /// Byte offset of the ring header in SRAM.
    pub base: usize,
    /// Bytes per record.
    pub record_bytes: usize,
    /// Maximum records queued at once.
    pub capacity: u32,
}

impl SramRing {
    /// Total SRAM bytes this ring occupies (header + slots).
    #[must_use]
    pub fn footprint(&self) -> usize {
        8 + self.record_bytes * self.capacity as usize
    }

    /// Zeroes the ring header (both counters).
    ///
    /// # Errors
    ///
    /// [`SramError`] if the layout exceeds the SRAM window.
    pub fn init(&self, sram: &mut SharedSram) -> Result<(), SramError> {
        sram.write_u32_le(self.base, 0)?;
        sram.write_u32_le(self.base + 4, 0)?;
        Ok(())
    }

    fn head(&self, sram: &SharedSram) -> Result<u32, SramError> {
        sram.read_u32_le(self.base)
    }

    fn tail(&self, sram: &SharedSram) -> Result<u32, SramError> {
        sram.read_u32_le(self.base + 4)
    }

    /// Number of records currently queued.
    ///
    /// # Errors
    ///
    /// [`SramError`] on layout violation.
    pub fn len(&self, sram: &SharedSram) -> Result<u32, SramError> {
        Ok(self.head(sram)?.wrapping_sub(self.tail(sram)?))
    }

    /// Whether no records are queued.
    ///
    /// # Errors
    ///
    /// [`SramError`] on layout violation.
    pub fn is_empty(&self, sram: &SharedSram) -> Result<bool, SramError> {
        Ok(self.len(sram)? == 0)
    }

    fn slot_offset(&self, index: u32) -> usize {
        self.base + 8 + (index % self.capacity) as usize * self.record_bytes
    }

    /// Pushes one record.
    ///
    /// # Errors
    ///
    /// [`RingError::Full`] when `capacity` records are queued;
    /// [`RingError::Sram`] on layout violation.
    pub fn push(&self, sram: &mut SharedSram, record: &[u8]) -> Result<(), RingError> {
        debug_assert_eq!(record.len(), self.record_bytes);
        let head = self.head(sram)?;
        let tail = self.tail(sram)?;
        if head.wrapping_sub(tail) >= self.capacity {
            return Err(RingError::Full);
        }
        sram.write_bytes(self.slot_offset(head), record)?;
        sram.write_u32_le(self.base, head.wrapping_add(1))?;
        Ok(())
    }

    /// Pops one record into `buf`, returning `true` if a record was
    /// available.
    ///
    /// # Errors
    ///
    /// [`SramError`] on layout violation.
    pub fn pop(&self, sram: &mut SharedSram, buf: &mut [u8]) -> Result<bool, SramError> {
        debug_assert_eq!(buf.len(), self.record_bytes);
        let head = self.head(sram)?;
        let tail = self.tail(sram)?;
        if head == tail {
            return Ok(false);
        }
        sram.read_bytes(self.slot_offset(tail), buf)?;
        sram.write_u32_le(self.base + 4, tail.wrapping_add(1))?;
        Ok(true)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ring() -> (SramRing, SharedSram) {
        let r = SramRing {
            base: 16,
            record_bytes: 8,
            capacity: 4,
        };
        let mut sram = SharedSram::new(256);
        r.init(&mut sram).unwrap();
        (r, sram)
    }

    #[test]
    fn push_pop_fifo() {
        let (r, mut sram) = ring();
        r.push(&mut sram, &[1u8; 8]).unwrap();
        r.push(&mut sram, &[2u8; 8]).unwrap();
        let mut buf = [0u8; 8];
        assert!(r.pop(&mut sram, &mut buf).unwrap());
        assert_eq!(buf, [1u8; 8]);
        assert!(r.pop(&mut sram, &mut buf).unwrap());
        assert_eq!(buf, [2u8; 8]);
        assert!(!r.pop(&mut sram, &mut buf).unwrap());
    }

    #[test]
    fn full_ring_rejects_push() {
        let (r, mut sram) = ring();
        for i in 0..4u8 {
            r.push(&mut sram, &[i; 8]).unwrap();
        }
        assert_eq!(r.push(&mut sram, &[9; 8]), Err(RingError::Full));
        let mut buf = [0u8; 8];
        r.pop(&mut sram, &mut buf).unwrap();
        r.push(&mut sram, &[9; 8]).unwrap();
        assert_eq!(r.len(&sram).unwrap(), 4);
    }

    #[test]
    fn wraps_many_times() {
        let (r, mut sram) = ring();
        let mut buf = [0u8; 8];
        for round in 0u32..100 {
            let rec = [(round % 251) as u8; 8];
            r.push(&mut sram, &rec).unwrap();
            assert!(r.pop(&mut sram, &mut buf).unwrap());
            assert_eq!(buf, rec, "round {round}");
        }
        assert!(r.is_empty(&sram).unwrap());
    }

    #[test]
    fn footprint_accounts_header_and_slots() {
        let (r, _) = ring();
        assert_eq!(r.footprint(), 8 + 4 * 8);
    }

    #[test]
    fn layout_violation_is_an_error_not_a_panic() {
        let r = SramRing {
            base: 240,
            record_bytes: 8,
            capacity: 4,
        };
        let mut sram = SharedSram::new(250);
        // header (240..248) fits, slot 0 (248..256) does not
        r.init(&mut sram).unwrap();
        assert!(matches!(
            r.push(&mut sram, &[0u8; 8]),
            Err(RingError::Sram(_))
        ));
    }
}
