//! Learning probability distributions from profiled traces.
//!
//! The paper assumes "most users do not know the probability
//! distributions" and suggests the knowledge "can be learned through
//! system profiling". This module implements that path: feed observed
//! service traces through the DFA skeleton, count transitions, and turn
//! the maximum-likelihood estimates (optionally Laplace-smoothed) into an
//! explicit [`ProbabilityAssignment`].

use std::collections::HashMap;
use std::fmt;

use crate::alphabet::{Alphabet, Sym};
use crate::dfa::{Dfa, DfaStateId};
use crate::pfa::ProbabilityAssignment;

/// Error while counting traces.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TrainError {
    /// A trace leaves the DFA skeleton (illegal service order).
    IllegalTrace {
        /// Index of the offending trace in the input.
        trace: usize,
        /// Position of the offending symbol within the trace.
        position: usize,
    },
}

impl fmt::Display for TrainError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TrainError::IllegalTrace { trace, position } => {
                write!(
                    f,
                    "trace {trace} leaves the skeleton at position {position}"
                )
            }
        }
    }
}

impl std::error::Error for TrainError {}

/// Accumulated transition counts over the DFA skeleton.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct TransitionCounts {
    counts: HashMap<(DfaStateId, Sym), u64>,
    traces: u64,
    symbols: u64,
}

impl TransitionCounts {
    /// An empty accumulator.
    #[must_use]
    pub fn new() -> TransitionCounts {
        TransitionCounts::default()
    }

    /// Number of traces consumed.
    #[must_use]
    pub fn trace_count(&self) -> u64 {
        self.traces
    }

    /// Total symbols consumed.
    #[must_use]
    pub fn symbol_count(&self) -> u64 {
        self.symbols
    }

    /// The raw count of `(state, symbol)`.
    #[must_use]
    pub fn count(&self, state: DfaStateId, sym: Sym) -> u64 {
        self.counts.get(&(state, sym)).copied().unwrap_or(0)
    }

    /// Runs one trace through the skeleton, incrementing counts.
    ///
    /// # Errors
    ///
    /// [`TrainError::IllegalTrace`] if the trace takes a transition the
    /// skeleton does not have (counts accumulated up to that point are
    /// rolled back).
    pub fn observe(
        &mut self,
        dfa: &Dfa,
        trace_index: usize,
        trace: &[Sym],
    ) -> Result<(), TrainError> {
        let mut staged: Vec<(DfaStateId, Sym)> = Vec::with_capacity(trace.len());
        let mut q = dfa.start();
        for (position, &sym) in trace.iter().enumerate() {
            let Some(next) = dfa.next(q, sym) else {
                return Err(TrainError::IllegalTrace {
                    trace: trace_index,
                    position,
                });
            };
            staged.push((q, sym));
            q = next;
        }
        for key in staged {
            *self.counts.entry(key).or_insert(0) += 1;
        }
        self.traces += 1;
        self.symbols += trace.len() as u64;
        Ok(())
    }

    /// Converts the counts into an explicit per-(state, symbol)
    /// assignment with additive (Laplace) smoothing `alpha` over the
    /// skeleton's transitions.
    ///
    /// The result is always a **valid** PFA distribution (Eq. 1 demands
    /// strictly positive transition probabilities): a state never
    /// observed falls back to uniform, and with `alpha == 0` a
    /// transition with zero counts at an otherwise-observed state keeps
    /// a floor probability of [`Self::MIN_PROBABILITY`] (the observed
    /// transitions are rescaled accordingly) instead of dropping to an
    /// illegal hard zero.
    #[must_use]
    pub fn to_assignment(
        &self,
        dfa: &Dfa,
        alphabet: &Alphabet,
        alpha: f64,
    ) -> ProbabilityAssignment {
        let mut map: HashMap<(DfaStateId, String), f64> = HashMap::new();
        for state in 0..dfa.len() {
            let outgoing = dfa.transitions_from(state);
            if outgoing.is_empty() {
                continue;
            }
            let total: f64 = outgoing
                .iter()
                .map(|(sym, _)| self.count(state, *sym) as f64 + alpha)
                .sum();
            let zeros = outgoing
                .iter()
                .filter(|(sym, _)| self.count(state, *sym) as f64 + alpha <= 0.0)
                .count();
            let rescale = 1.0 - zeros as f64 * Self::MIN_PROBABILITY;
            for (sym, _) in &outgoing {
                let name = alphabet.name(*sym).unwrap_or("?").to_owned();
                let c = self.count(state, *sym) as f64 + alpha;
                let p = if total <= 0.0 {
                    1.0 / outgoing.len() as f64
                } else if c <= 0.0 {
                    Self::MIN_PROBABILITY
                } else {
                    (c / total) * rescale
                };
                map.insert((state, name), p);
            }
        }
        ProbabilityAssignment::Explicit(map)
    }

    /// Floor probability kept on never-observed transitions when
    /// converting unsmoothed (`alpha == 0`) counts — small enough not to
    /// disturb the maximum-likelihood estimates, large enough to keep
    /// the assignment strictly positive as Eq. 1 requires.
    pub const MIN_PROBABILITY: f64 = 1e-9;

    /// Folds another accumulator into this one (entry-wise `u64` sums).
    ///
    /// Because [`observe`](Self::observe) only ever *adds*, observing a
    /// set of traces through per-subset accumulators and merging them is
    /// exactly equivalent to observing them all through one accumulator,
    /// in any order — the algebraic fact parallel and sharded campaign
    /// learning relies on.
    pub fn merge(&mut self, other: &TransitionCounts) {
        for (&key, &n) in &other.counts {
            *self.counts.entry(key).or_insert(0) += n;
        }
        self.traces += other.traces;
        self.symbols += other.symbols;
    }

    /// The raw `(state, symbol, count)` entries in ascending
    /// `(state, symbol)` order — a deterministic snapshot suitable for
    /// serialization.
    #[must_use]
    pub fn entries(&self) -> Vec<(DfaStateId, Sym, u64)> {
        let mut out: Vec<(DfaStateId, Sym, u64)> = self
            .counts
            .iter()
            .map(|(&(state, sym), &n)| (state, sym, n))
            .collect();
        out.sort_unstable();
        out
    }

    /// Rebuilds an accumulator from a snapshot previously taken with
    /// [`entries`](Self::entries), [`trace_count`](Self::trace_count)
    /// and [`symbol_count`](Self::symbol_count). Entries with a zero
    /// count are dropped, and duplicate `(state, symbol)` keys sum, so
    /// the reconstruction is total.
    #[must_use]
    pub fn from_parts(
        entries: impl IntoIterator<Item = (DfaStateId, Sym, u64)>,
        traces: u64,
        symbols: u64,
    ) -> TransitionCounts {
        let mut counts: HashMap<(DfaStateId, Sym), u64> = HashMap::new();
        for (state, sym, n) in entries {
            if n > 0 {
                *counts.entry((state, sym)).or_insert(0) += n;
            }
        }
        TransitionCounts {
            counts,
            traces,
            symbols,
        }
    }
}

/// One-shot convenience: count every trace and build the assignment.
///
/// # Errors
///
/// [`TrainError::IllegalTrace`] naming the first offending trace.
pub fn learn_assignment(
    dfa: &Dfa,
    alphabet: &Alphabet,
    traces: &[Vec<Sym>],
    alpha: f64,
) -> Result<ProbabilityAssignment, TrainError> {
    let mut counts = TransitionCounts::new();
    for (i, trace) in traces.iter().enumerate() {
        counts.observe(dfa, i, trace)?;
    }
    Ok(counts.to_assignment(dfa, alphabet, alpha))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfa::{GenerateOptions, Pfa};
    use crate::regex::Regex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn pcore() -> (Regex, Dfa) {
        let re = Regex::pcore_task_lifecycle();
        let dfa = Dfa::from_regex(&re).minimize();
        (re, dfa)
    }

    fn trace(re: &Regex, names: &[&str]) -> Vec<Sym> {
        names
            .iter()
            .map(|n| re.alphabet().sym(n).unwrap())
            .collect()
    }

    #[test]
    fn counts_accumulate_along_paths() {
        let (re, dfa) = pcore();
        let mut counts = TransitionCounts::new();
        counts
            .observe(&dfa, 0, &trace(&re, &["TC", "TCH", "TCH", "TD"]))
            .unwrap();
        counts.observe(&dfa, 1, &trace(&re, &["TC", "TY"])).unwrap();
        assert_eq!(counts.trace_count(), 2);
        assert_eq!(counts.symbol_count(), 6);
        let running = dfa
            .next(dfa.start(), re.alphabet().sym("TC").unwrap())
            .unwrap();
        assert_eq!(counts.count(running, re.alphabet().sym("TCH").unwrap()), 2);
        assert_eq!(counts.count(running, re.alphabet().sym("TD").unwrap()), 1);
        assert_eq!(counts.count(running, re.alphabet().sym("TY").unwrap()), 1);
    }

    #[test]
    fn illegal_trace_is_rejected_and_rolled_back() {
        let (re, dfa) = pcore();
        let mut counts = TransitionCounts::new();
        let err = counts
            .observe(&dfa, 5, &trace(&re, &["TC", "TR", "TD"]))
            .unwrap_err();
        assert_eq!(
            err,
            TrainError::IllegalTrace {
                trace: 5,
                position: 1
            }
        );
        assert_eq!(counts.trace_count(), 0);
        let running = dfa
            .next(dfa.start(), re.alphabet().sym("TC").unwrap())
            .unwrap();
        let _ = running;
        assert_eq!(counts.symbol_count(), 0);
        assert_eq!(
            counts.count(dfa.start(), re.alphabet().sym("TC").unwrap()),
            0,
            "partial observation must be rolled back"
        );
    }

    #[test]
    fn learned_assignment_recovers_generating_distribution() {
        // Generate traces from a known PFA, relearn, compare.
        let (re, dfa) = pcore();
        let pd = ProbabilityAssignment::weights([
            ("TC", 1.0),
            ("TCH", 0.6),
            ("TS", 0.2),
            ("TD", 0.1),
            ("TY", 0.1),
            ("TR", 1.0),
        ]);
        let truth = Pfa::from_dfa(&dfa, re.alphabet().clone(), &pd).unwrap();
        let mut rng = StdRng::seed_from_u64(11);
        let traces: Vec<Vec<Sym>> = (0..5_000)
            .map(|_| truth.generate(&mut rng, GenerateOptions::sized(64)))
            .collect();
        let learned = learn_assignment(&dfa, re.alphabet(), &traces, 0.0).unwrap();
        let relearned = Pfa::from_dfa(&dfa, re.alphabet().clone(), &learned).unwrap();
        let running = dfa
            .next(dfa.start(), re.alphabet().sym("TC").unwrap())
            .unwrap();
        for name in ["TCH", "TS", "TD", "TY"] {
            let sym = re.alphabet().sym(name).unwrap();
            let p_true = truth.probability(running, sym);
            let p_learned = relearned.probability(running, sym);
            assert!(
                (p_true - p_learned).abs() < 0.02,
                "{name}: learned {p_learned} vs true {p_true}"
            );
        }
    }

    #[test]
    fn smoothing_covers_unseen_transitions() {
        let (re, dfa) = pcore();
        // Only TD-terminated traces: TY never observed.
        let traces = vec![trace(&re, &["TC", "TD"]); 10];
        let learned = learn_assignment(&dfa, re.alphabet(), &traces, 1.0).unwrap();
        let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &learned).unwrap();
        let running = dfa
            .next(dfa.start(), re.alphabet().sym("TC").unwrap())
            .unwrap();
        let ty = re.alphabet().sym("TY").unwrap();
        assert!(
            pfa.probability(running, ty) > 0.0,
            "smoothing keeps TY alive"
        );
    }

    #[test]
    fn unsmoothed_partial_observations_stay_strictly_positive() {
        // Only TD-terminated traces with alpha = 0: TCH/TS/TY have zero
        // counts at the running state, but the assignment must still
        // build a valid PFA (Eq. 1 forbids hard-zero transitions).
        let (re, dfa) = pcore();
        let traces = vec![trace(&re, &["TC", "TD"]); 10];
        let learned = learn_assignment(&dfa, re.alphabet(), &traces, 0.0).unwrap();
        let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &learned).unwrap();
        pfa.validate().unwrap();
        let running = dfa
            .next(dfa.start(), re.alphabet().sym("TC").unwrap())
            .unwrap();
        let td = re.alphabet().sym("TD").unwrap();
        let ty = re.alphabet().sym("TY").unwrap();
        assert!(pfa.probability(running, td) > 0.99, "MLE mass stays on TD");
        let p_ty = pfa.probability(running, ty);
        assert!(p_ty > 0.0, "unseen transitions keep a floor");
        assert!(p_ty < 1e-6, "but no meaningful mass");
    }

    #[test]
    fn merged_partial_accumulators_equal_one_sequential_fold() {
        let (re, dfa) = pcore();
        let traces: Vec<Vec<Sym>> = vec![
            trace(&re, &["TC", "TCH", "TCH", "TD"]),
            trace(&re, &["TC", "TY"]),
            trace(&re, &["TC", "TS", "TR", "TD"]),
            trace(&re, &["TC", "TD"]),
        ];
        let mut sequential = TransitionCounts::new();
        for (i, t) in traces.iter().enumerate() {
            sequential.observe(&dfa, i, t).unwrap();
        }
        // One accumulator per trace, merged in a scrambled order.
        let mut merged = TransitionCounts::new();
        for &i in &[2usize, 0, 3, 1] {
            let mut part = TransitionCounts::new();
            part.observe(&dfa, i, &traces[i]).unwrap();
            merged.merge(&part);
        }
        assert_eq!(merged, sequential);
        assert_eq!(merged.entries(), sequential.entries());
    }

    #[test]
    fn entries_roundtrip_through_from_parts() {
        let (re, dfa) = pcore();
        let mut counts = TransitionCounts::new();
        counts
            .observe(&dfa, 0, &trace(&re, &["TC", "TCH", "TCH", "TD"]))
            .unwrap();
        counts.observe(&dfa, 1, &trace(&re, &["TC", "TY"])).unwrap();
        let entries = counts.entries();
        assert!(entries.windows(2).all(|w| w[0].0 <= w[1].0), "sorted");
        let rebuilt =
            TransitionCounts::from_parts(entries, counts.trace_count(), counts.symbol_count());
        assert_eq!(rebuilt, counts);
        // Zero-count entries vanish instead of polluting the map.
        let padded = TransitionCounts::from_parts([(0, Sym(0), 0)], 0, 0);
        assert_eq!(padded, TransitionCounts::new());
    }

    #[test]
    fn zero_observations_fall_back_to_uniform() {
        let (re, dfa) = pcore();
        let learned = learn_assignment(&dfa, re.alphabet(), &[], 0.0).unwrap();
        let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &learned).unwrap();
        pfa.validate().unwrap();
        let running = dfa
            .next(dfa.start(), re.alphabet().sym("TC").unwrap())
            .unwrap();
        let out = pfa.transitions_from(running);
        for &(_, _, p) in out {
            assert!((p - 1.0 / out.len() as f64).abs() < 1e-12);
        }
    }
}
