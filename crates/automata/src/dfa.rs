//! Subset construction and Hopcroft-style minimization.
//!
//! The DFA serves two roles in the reproduction: it is the deterministic
//! skeleton the PFA attaches probabilities to, and it is the *legality
//! oracle* used by tests and experiments to check that every generated
//! test pattern is a prefix of the language of the paper's Eq. 2.

use std::collections::{BTreeMap, BTreeSet, HashMap};

use crate::alphabet::Sym;
use crate::nfa::Nfa;
use crate::regex::Regex;

/// A DFA state index.
pub type DfaStateId = usize;

/// A deterministic finite automaton over an interned alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Dfa {
    /// `transitions[q]` = symbol → target, deterministic.
    transitions: Vec<BTreeMap<Sym, DfaStateId>>,
    accepting: Vec<bool>,
    start: DfaStateId,
}

impl Dfa {
    /// Builds a DFA from an NFA by subset construction.
    #[must_use]
    pub fn from_nfa(nfa: &Nfa) -> Dfa {
        let start_set = nfa.epsilon_closure(&BTreeSet::from([nfa.start()]));
        let mut index: HashMap<BTreeSet<usize>, DfaStateId> = HashMap::new();
        let mut transitions: Vec<BTreeMap<Sym, DfaStateId>> = Vec::new();
        let mut accepting: Vec<bool> = Vec::new();
        let mut worklist: Vec<BTreeSet<usize>> = Vec::new();

        index.insert(start_set.clone(), 0);
        transitions.push(BTreeMap::new());
        accepting.push(start_set.contains(&nfa.accept()));
        worklist.push(start_set);

        while let Some(set) = worklist.pop() {
            let from = index[&set];
            // All symbols leaving this subset.
            let mut symbols: BTreeSet<Sym> = BTreeSet::new();
            for &q in &set {
                for &(label, _) in nfa.transitions_from(q) {
                    if let Some(s) = label {
                        symbols.insert(s);
                    }
                }
            }
            for sym in symbols {
                let stepped = nfa.step(&set, sym);
                if stepped.is_empty() {
                    continue;
                }
                let closure = nfa.epsilon_closure(&stepped);
                let to = *index.entry(closure.clone()).or_insert_with(|| {
                    transitions.push(BTreeMap::new());
                    accepting.push(closure.contains(&nfa.accept()));
                    worklist.push(closure.clone());
                    transitions.len() - 1
                });
                transitions[from].insert(sym, to);
            }
        }
        Dfa {
            transitions,
            accepting,
            start: 0,
        }
    }

    /// Convenience: regex → NFA → DFA.
    #[must_use]
    pub fn from_regex(re: &Regex) -> Dfa {
        Dfa::from_nfa(&Nfa::from_regex(re))
    }

    /// The initial state.
    #[must_use]
    pub fn start(&self) -> DfaStateId {
        self.start
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the DFA has no states (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Whether `state` is accepting.
    #[must_use]
    pub fn is_accepting(&self, state: DfaStateId) -> bool {
        self.accepting[state]
    }

    /// The transition `state --sym-->`, if defined.
    #[must_use]
    pub fn next(&self, state: DfaStateId, sym: Sym) -> Option<DfaStateId> {
        self.transitions[state].get(&sym).copied()
    }

    /// Outgoing transitions of `state` in symbol order.
    #[must_use]
    pub fn transitions_from(&self, state: DfaStateId) -> Vec<(Sym, DfaStateId)> {
        self.transitions[state]
            .iter()
            .map(|(&s, &t)| (s, t))
            .collect()
    }

    /// Runs the DFA over `seq`; `None` if a transition is missing.
    #[must_use]
    pub fn run(&self, seq: &[Sym]) -> Option<DfaStateId> {
        let mut q = self.start;
        for &sym in seq {
            q = self.next(q, sym)?;
        }
        Some(q)
    }

    /// Whether the DFA accepts `seq` exactly.
    #[must_use]
    pub fn accepts(&self, seq: &[Sym]) -> bool {
        self.run(seq).is_some_and(|q| self.accepting[q])
    }

    /// Whether `seq` is a prefix of some accepted string (every generated
    /// test pattern must satisfy this — the paper's "rational order").
    #[must_use]
    pub fn is_valid_prefix(&self, seq: &[Sym]) -> bool {
        self.run(seq).is_some()
    }

    /// Total number of transitions.
    #[must_use]
    pub fn transition_count(&self) -> usize {
        self.transitions.iter().map(BTreeMap::len).sum()
    }

    /// Moore-style partition-refinement minimization.
    ///
    /// States are first trimmed to the reachable set (subset construction
    /// already guarantees that), then merged by behavioural equivalence.
    #[must_use]
    pub fn minimize(&self) -> Dfa {
        // Initial partition: accepting vs non-accepting.
        let n = self.transitions.len();
        let mut class: Vec<usize> = self.accepting.iter().map(|&a| usize::from(a)).collect();
        loop {
            // Signature = (class, sorted (sym, class-of-target) list).
            let mut sig_index: HashMap<(usize, Vec<(Sym, usize)>), usize> = HashMap::new();
            let mut next_class = vec![0usize; n];
            for q in 0..n {
                let sig: Vec<(Sym, usize)> = self.transitions[q]
                    .iter()
                    .map(|(&s, &t)| (s, class[t]))
                    .collect();
                let key = (class[q], sig);
                let fresh = sig_index.len();
                let id = *sig_index.entry(key).or_insert(fresh);
                next_class[q] = id;
            }
            if next_class == class {
                break;
            }
            class = next_class;
        }
        let class_count = class.iter().max().map_or(0, |m| m + 1);
        let mut transitions = vec![BTreeMap::new(); class_count];
        let mut accepting = vec![false; class_count];
        for q in 0..n {
            accepting[class[q]] = self.accepting[q];
            for (&s, &t) in &self.transitions[q] {
                transitions[class[q]].insert(s, class[t]);
            }
        }
        Dfa {
            transitions,
            accepting,
            start: class[self.start],
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn syms(re: &Regex, names: &[&str]) -> Vec<Sym> {
        names
            .iter()
            .map(|n| re.alphabet().sym(n).expect("symbol interned"))
            .collect()
    }

    #[test]
    fn fig3_dfa_structure() {
        let re = Regex::parse("(a c* d) | b").unwrap();
        let dfa = Dfa::from_regex(&re).minimize();
        // Figure 3 has exactly three states: q0, q1, q2.
        assert_eq!(dfa.len(), 3);
        assert_eq!(dfa.transition_count(), 4);
        assert!(dfa.accepts(&syms(&re, &["b"])));
        assert!(dfa.accepts(&syms(&re, &["a", "c", "c", "d"])));
        assert!(!dfa.accepts(&syms(&re, &["a", "c"])));
        assert!(dfa.is_valid_prefix(&syms(&re, &["a", "c"])));
        assert!(!dfa.is_valid_prefix(&syms(&re, &["b", "a"])));
    }

    #[test]
    fn pcore_dfa_structure() {
        let re = Regex::pcore_task_lifecycle();
        let dfa = Dfa::from_regex(&re).minimize();
        // start --TC--> running; running --TCH--> running, --TS--> waiting,
        // --TD/TY--> done; waiting --TR--> running. Four states.
        assert_eq!(dfa.len(), 4, "minimal pCore lifecycle DFA has 4 states");
        let running = dfa
            .next(dfa.start(), re.alphabet().sym("TC").unwrap())
            .unwrap();
        assert_eq!(
            dfa.next(running, re.alphabet().sym("TCH").unwrap()),
            Some(running),
            "TCH self-loops on the running state"
        );
        let waiting = dfa.next(running, re.alphabet().sym("TS").unwrap()).unwrap();
        assert_eq!(
            dfa.next(waiting, re.alphabet().sym("TR").unwrap()),
            Some(running),
            "TR returns to running"
        );
        assert_eq!(
            dfa.transitions_from(waiting).len(),
            1,
            "only TR leaves waiting"
        );
        let done = dfa.next(running, re.alphabet().sym("TD").unwrap()).unwrap();
        assert!(dfa.is_accepting(done));
        assert!(dfa.transitions_from(done).is_empty(), "done is absorbing");
    }

    #[test]
    fn dfa_agrees_with_nfa_on_pcore_strings() {
        let re = Regex::pcore_task_lifecycle();
        let nfa = Nfa::from_regex(&re);
        let dfa = Dfa::from_regex(&re);
        let cases: Vec<Vec<&str>> = vec![
            vec!["TC", "TD"],
            vec!["TC", "TY"],
            vec!["TC", "TCH", "TD"],
            vec!["TC", "TS", "TR", "TY"],
            vec!["TC", "TS", "TR", "TCH", "TCH", "TD"],
            vec!["TC", "TR"],
            vec!["TC", "TS", "TS"],
            vec!["TD"],
            vec!["TC"],
            vec!["TC", "TS"],
        ];
        for case in cases {
            let seq = syms(&re, &case);
            assert_eq!(
                nfa.accepts(&seq),
                dfa.accepts(&seq),
                "nfa/dfa disagree on {case:?}"
            );
        }
    }

    #[test]
    fn minimization_preserves_language() {
        let re = Regex::parse("(a b | a b) (c | c)*").unwrap();
        let dfa = Dfa::from_regex(&re);
        let min = dfa.minimize();
        assert!(min.len() <= dfa.len());
        for case in [
            vec!["a", "b"],
            vec!["a", "b", "c", "c"],
            vec!["a"],
            vec!["b"],
        ] {
            let seq = syms(&re, &case);
            assert_eq!(dfa.accepts(&seq), min.accepts(&seq), "{case:?}");
        }
    }

    #[test]
    fn missing_transition_is_rejection_not_panic() {
        let re = Regex::parse("a b").unwrap();
        let dfa = Dfa::from_regex(&re);
        let b = re.alphabet().sym("b").unwrap();
        assert_eq!(dfa.run(&[b]), None);
        assert!(!dfa.accepts(&[b]));
    }

    #[test]
    fn epsilon_language_accepts_empty() {
        let re = Regex::parse("a?").unwrap();
        let dfa = Dfa::from_regex(&re);
        assert!(dfa.accepts(&[]));
        assert!(dfa.is_accepting(dfa.start()));
    }
}
