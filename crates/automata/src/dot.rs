//! Graphviz DOT export for automata — regenerates the paper's Figure 3
//! and Figure 5 style drawings from the built structures.

use std::fmt::Write as _;

use crate::alphabet::Alphabet;
use crate::dfa::Dfa;
use crate::pfa::Pfa;

/// Renders a DFA as a Graphviz digraph. Accepting states are drawn with
/// double circles; the start state gets an inbound arrow from a point
/// node, as in the paper's figures.
#[must_use]
pub fn dfa_to_dot(dfa: &Dfa, alphabet: &Alphabet, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  __start [shape=point];");
    let _ = writeln!(out, "  __start -> q{};", dfa.start());
    for q in 0..dfa.len() {
        if dfa.is_accepting(q) {
            let _ = writeln!(out, "  q{q} [shape=doublecircle];");
        }
        for (sym, target) in dfa.transitions_from(q) {
            let _ = writeln!(
                out,
                "  q{q} -> q{target} [label=\"{}\"];",
                escape(alphabet.name(sym).unwrap_or("?"))
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

/// Renders a PFA as a Graphviz digraph with probability-annotated edges —
/// the exact shape of the paper's Figure 3 / Figure 5 drawings.
#[must_use]
pub fn pfa_to_dot(pfa: &Pfa, title: &str) -> String {
    let mut out = String::new();
    let _ = writeln!(out, "digraph \"{}\" {{", escape(title));
    let _ = writeln!(out, "  rankdir=LR;");
    let _ = writeln!(out, "  node [shape=circle];");
    let _ = writeln!(out, "  __start [shape=point];");
    let _ = writeln!(out, "  __start -> q{};", pfa.start());
    for q in 0..pfa.len() {
        if pfa.is_accepting(q) {
            let _ = writeln!(out, "  q{q} [shape=doublecircle];");
        }
        for &(sym, target, p) in pfa.transitions_from(q) {
            let _ = writeln!(
                out,
                "  q{q} -> q{target} [label=\"{} ({p:.2})\"];",
                escape(pfa.alphabet().name(sym).unwrap_or("?"))
            );
        }
    }
    let _ = writeln!(out, "}}");
    out
}

fn escape(s: &str) -> String {
    s.replace('\\', "\\\\").replace('"', "\\\"")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::pfa::ProbabilityAssignment;
    use crate::regex::Regex;

    fn fig3() -> (Regex, Dfa, Pfa) {
        let re = Regex::parse("(a c* d) | b").unwrap();
        let dfa = Dfa::from_regex(&re).minimize();
        let pfa = Pfa::from_dfa(
            &dfa,
            re.alphabet().clone(),
            &ProbabilityAssignment::weights([("a", 0.6), ("b", 0.4), ("c", 0.3), ("d", 0.7)]),
        )
        .unwrap();
        (re, dfa, pfa)
    }

    #[test]
    fn dfa_dot_contains_all_transitions() {
        let (re, dfa, _) = fig3();
        let dot = dfa_to_dot(&dfa, re.alphabet(), "fig3");
        assert!(dot.starts_with("digraph \"fig3\""));
        for sym in ["a", "b", "c", "d"] {
            assert!(dot.contains(&format!("label=\"{sym}\"")), "{dot}");
        }
        assert!(dot.contains("doublecircle"), "accepting state drawn");
        assert!(dot.contains("__start ->"));
        assert!(dot.trim_end().ends_with('}'));
    }

    #[test]
    fn pfa_dot_contains_probabilities() {
        let (_, _, pfa) = fig3();
        let dot = pfa_to_dot(&pfa, "fig3-pfa");
        assert!(dot.contains("a (0.60)"), "{dot}");
        assert!(dot.contains("b (0.40)"));
        assert!(dot.contains("c (0.30)"));
        assert!(dot.contains("d (0.70)"));
    }

    #[test]
    fn titles_are_escaped() {
        let (_, dfa, _) = fig3();
        let mut alphabet = Alphabet::new();
        alphabet.intern("x");
        let dot = dfa_to_dot(&dfa, &alphabet, "a \"quoted\" title");
        assert!(dot.contains("a \\\"quoted\\\" title"));
    }

    #[test]
    fn pcore_pfa_renders_fig5_shape() {
        let re = Regex::pcore_task_lifecycle();
        let dfa = Dfa::from_regex(&re).minimize();
        let pfa = Pfa::from_dfa(
            &dfa,
            re.alphabet().clone(),
            &ProbabilityAssignment::weights([
                ("TC", 1.0),
                ("TCH", 0.6),
                ("TS", 0.2),
                ("TD", 0.1),
                ("TY", 0.1),
                ("TR", 1.0),
            ]),
        )
        .unwrap();
        let dot = pfa_to_dot(&pfa, "pcore");
        assert!(dot.contains("TCH (0.60)"));
        assert!(dot.contains("TR (1.00)"));
        assert_eq!(dot.matches("->").count(), 7, "6 transitions + start arrow");
    }
}
