//! Probabilistic finite-state automata (paper Definition 1).
//!
//! A PFA is the six-tuple `(Q, Σ, δ, q0, F, P)` where `P : δ → R+`
//! satisfies Eq. 1: for every state with outgoing transitions the
//! probabilities sum to 1. pTest builds the PFA by attaching a
//! *probability distribution* to the deterministic skeleton obtained from
//! the user's regular expression (`ConstructPFA` in Algorithm 2), then
//! walks it to generate test patterns (`MakeChoice`).

use std::collections::HashMap;
use std::fmt;

use rand::Rng;

use crate::alphabet::{Alphabet, Sym};
use crate::dfa::{Dfa, DfaStateId};
use crate::sampler::{AliasTable, ALIAS_MIN_OUT_DEGREE};

/// How transition probabilities are assigned to the DFA skeleton.
#[derive(Debug, Clone, PartialEq)]
pub enum ProbabilityAssignment {
    /// Every outgoing transition of a state is equally likely.
    Uniform,
    /// Per-symbol weights (e.g. `TCH → 0.6`), renormalized per state over
    /// the symbols actually available there. Symbols without an entry get
    /// weight 1.
    SymbolWeights(HashMap<String, f64>),
    /// Exact per-(state, symbol) probabilities; every transition of the
    /// skeleton must be covered and each state must sum to 1.
    Explicit(HashMap<(DfaStateId, String), f64>),
}

impl ProbabilityAssignment {
    /// Convenience constructor for [`ProbabilityAssignment::SymbolWeights`].
    #[must_use]
    pub fn weights<I, S>(pairs: I) -> ProbabilityAssignment
    where
        I: IntoIterator<Item = (S, f64)>,
        S: Into<String>,
    {
        ProbabilityAssignment::SymbolWeights(
            pairs.into_iter().map(|(s, w)| (s.into(), w)).collect(),
        )
    }
}

/// Error constructing or validating a PFA.
#[derive(Debug, Clone, PartialEq)]
pub enum PfaError {
    /// A state's outgoing probabilities do not sum to 1 (Eq. 1).
    NotNormalized {
        /// The offending state.
        state: DfaStateId,
        /// The actual sum.
        sum: f64,
    },
    /// A weight was negative or non-finite.
    BadWeight {
        /// The offending state.
        state: DfaStateId,
        /// The symbol whose weight is bad.
        symbol: String,
        /// The offending weight.
        weight: f64,
    },
    /// An explicit assignment is missing a probability for a transition
    /// present in the skeleton.
    MissingProbability {
        /// The offending state.
        state: DfaStateId,
        /// The uncovered symbol.
        symbol: String,
    },
    /// A non-final state has no outgoing transitions: generation would
    /// strand there without ever completing a pattern.
    DeadNonFinal {
        /// The offending state.
        state: DfaStateId,
    },
}

impl fmt::Display for PfaError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PfaError::NotNormalized { state, sum } => {
                write!(f, "state {state} probabilities sum to {sum}, expected 1")
            }
            PfaError::BadWeight {
                state,
                symbol,
                weight,
            } => {
                write!(
                    f,
                    "state {state} symbol {symbol} has invalid weight {weight}"
                )
            }
            PfaError::MissingProbability { state, symbol } => {
                write!(
                    f,
                    "state {state} symbol {symbol} has no probability assigned"
                )
            }
            PfaError::DeadNonFinal { state } => {
                write!(f, "non-final state {state} has no outgoing transitions")
            }
        }
    }
}

impl std::error::Error for PfaError {}

/// Options for [`Pfa::generate`] (the paper's Algorithm 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct GenerateOptions {
    /// Pattern size `s`: number of symbols to emit.
    pub size: usize,
    /// When the walk reaches an absorbing final state before emitting `s`
    /// symbols, restart from `q0` (modelling a task life cycle repeating,
    /// as the stress test of case study 1 does) instead of stopping.
    pub restart_on_final: bool,
}

impl GenerateOptions {
    /// Exactly the paper's Algorithm 2: emit up to `size` symbols, stop
    /// early if the walk is absorbed.
    #[must_use]
    pub fn sized(size: usize) -> GenerateOptions {
        GenerateOptions {
            size,
            restart_on_final: false,
        }
    }

    /// Stress-test variant: restart the life cycle until `size` symbols
    /// have been emitted.
    #[must_use]
    pub fn cyclic(size: usize) -> GenerateOptions {
        GenerateOptions {
            size,
            restart_on_final: true,
        }
    }
}

/// A probabilistic finite-state automaton (Definition 1).
///
/// ```
/// use ptest_automata::{Dfa, GenerateOptions, Pfa, ProbabilityAssignment, Regex};
/// use rand::SeedableRng;
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Figure 3: (ac*d)|b with P(a)=.6, P(b)=.4, P(c)=.3, P(d)=.7
/// let re = Regex::parse("(a c* d) | b")?;
/// let dfa = Dfa::from_regex(&re).minimize();
/// let pd = ProbabilityAssignment::weights([("a", 0.6), ("b", 0.4), ("c", 0.3), ("d", 0.7)]);
/// let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &pd)?;
///
/// let mut rng = rand::rngs::StdRng::seed_from_u64(1);
/// let pattern = pfa.generate(&mut rng, GenerateOptions::sized(8));
/// assert!(!pattern.is_empty());
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq)]
pub struct Pfa {
    alphabet: Alphabet,
    /// `transitions[q]` = `(symbol, target, probability)` in symbol order.
    transitions: Vec<Vec<(Sym, DfaStateId, f64)>>,
    /// `samplers[q]` = the state's compiled O(1) alias table. Empty for
    /// out-degrees 0 and 1 (which never consume randomness) and for
    /// narrow states where the inline scan measures faster. Sampling
    /// through the table is stream-identical to
    /// [`Pfa::make_choice_reference`] — see [`crate::sampler`].
    samplers: Vec<AliasTable>,
    accepting: Vec<bool>,
    start: DfaStateId,
}

/// Tolerance used when checking Eq. 1.
const NORMALIZATION_EPS: f64 = 1e-9;

impl Pfa {
    /// Attaches probabilities to a DFA skeleton (`ConstructPFA`).
    ///
    /// # Errors
    ///
    /// Any [`PfaError`]: bad weights, missing explicit probabilities,
    /// normalization violations, or dead non-final states.
    pub fn from_dfa(
        dfa: &Dfa,
        alphabet: Alphabet,
        pd: &ProbabilityAssignment,
    ) -> Result<Pfa, PfaError> {
        let mut transitions = Vec::with_capacity(dfa.len());
        for state in 0..dfa.len() {
            let outgoing = dfa.transitions_from(state);
            if outgoing.is_empty() {
                if !dfa.is_accepting(state) {
                    return Err(PfaError::DeadNonFinal { state });
                }
                transitions.push(Vec::new());
                continue;
            }
            let mut weighted: Vec<(Sym, DfaStateId, f64)> = Vec::with_capacity(outgoing.len());
            for (sym, target) in outgoing {
                let name = alphabet.name(sym).unwrap_or("?").to_owned();
                let w = match pd {
                    ProbabilityAssignment::Uniform => 1.0,
                    ProbabilityAssignment::SymbolWeights(map) => {
                        map.get(&name).copied().unwrap_or(1.0)
                    }
                    ProbabilityAssignment::Explicit(map) => map
                        .get(&(state, name.clone()))
                        .copied()
                        .ok_or(PfaError::MissingProbability {
                            state,
                            symbol: name.clone(),
                        })?,
                };
                if !w.is_finite() || w <= 0.0 {
                    return Err(PfaError::BadWeight {
                        state,
                        symbol: name,
                        weight: w,
                    });
                }
                weighted.push((sym, target, w));
            }
            let sum: f64 = weighted.iter().map(|(_, _, w)| w).sum();
            match pd {
                ProbabilityAssignment::Explicit(_) => {
                    if (sum - 1.0).abs() > 1e-6 {
                        return Err(PfaError::NotNormalized { state, sum });
                    }
                    // Renormalize away rounding noise.
                    for entry in &mut weighted {
                        entry.2 /= sum;
                    }
                }
                _ => {
                    for entry in &mut weighted {
                        entry.2 /= sum;
                    }
                }
            }
            transitions.push(weighted);
        }
        // Adaptive sampler compilation: states wide enough for the O(1)
        // table to beat the early-exit scan get one; narrow states keep
        // the inline scan (see `ALIAS_MIN_OUT_DEGREE`). Both samplers
        // are exactly stream-identical, so the choice is invisible to
        // seeds.
        let samplers = transitions
            .iter()
            .map(|out| {
                if out.len() >= ALIAS_MIN_OUT_DEGREE {
                    let probabilities: Vec<f64> = out.iter().map(|&(_, _, p)| p).collect();
                    AliasTable::build(&probabilities)
                } else {
                    AliasTable::default()
                }
            })
            .collect();
        let pfa = Pfa {
            alphabet,
            transitions,
            samplers,
            accepting: (0..dfa.len()).map(|q| dfa.is_accepting(q)).collect(),
            start: dfa.start(),
        };
        pfa.validate()?;
        Ok(pfa)
    }

    /// Checks Eq. 1 on every state; the constructor already enforces this,
    /// so this is primarily for property tests and post-mutation checks.
    ///
    /// # Errors
    ///
    /// [`PfaError::NotNormalized`] or [`PfaError::DeadNonFinal`].
    pub fn validate(&self) -> Result<(), PfaError> {
        for (state, out) in self.transitions.iter().enumerate() {
            if out.is_empty() {
                if !self.accepting[state] {
                    return Err(PfaError::DeadNonFinal { state });
                }
                continue;
            }
            let sum: f64 = out.iter().map(|(_, _, p)| p).sum();
            if (sum - 1.0).abs() > NORMALIZATION_EPS {
                return Err(PfaError::NotNormalized { state, sum });
            }
        }
        Ok(())
    }

    /// The alphabet Σ.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The initial state `q0`.
    #[must_use]
    pub fn start(&self) -> DfaStateId {
        self.start
    }

    /// Number of states |Q|.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the PFA has no states (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Whether `state` ∈ F.
    #[must_use]
    pub fn is_accepting(&self, state: DfaStateId) -> bool {
        self.accepting[state]
    }

    /// Outgoing `(symbol, target, probability)` triples of `state`.
    #[must_use]
    pub fn transitions_from(&self, state: DfaStateId) -> &[(Sym, DfaStateId, f64)] {
        &self.transitions[state]
    }

    /// The probability `P(state, sym, ·)`, or 0 if no such transition.
    #[must_use]
    pub fn probability(&self, state: DfaStateId, sym: Sym) -> f64 {
        self.transitions[state]
            .iter()
            .find(|(s, _, _)| *s == sym)
            .map_or(0.0, |(_, _, p)| *p)
    }

    /// `MakeChoice` of Algorithm 2: samples one outgoing transition.
    /// Returns `None` at absorbing states.
    ///
    /// Sampling goes through the sampler compiled at construction: an
    /// O(1) alias-table lookup for wide states, the inline cumulative
    /// scan for narrow ones (where the early-exit scan measures faster;
    /// see the crate-private `sampler` module). Either way it is
    /// stream-identical to [`Pfa::make_choice_reference`]: the same RNG
    /// state yields the same transition *and* leaves the RNG in the same
    /// state, so seeds reproduce byte-identical patterns across both
    /// samplers.
    #[inline]
    pub fn make_choice<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        state: DfaStateId,
    ) -> Option<(Sym, DfaStateId)> {
        let out = &self.transitions[state];
        match out.len() {
            0 => None,
            // Algorithm 2 line 10-13: no probabilistic choice to make.
            1 => Some((out[0].0, out[0].1)),
            _ => {
                let roll: f64 = rng.random();
                // `out.len()` is already in a register; comparing it to
                // the compilation threshold (rather than asking the table
                // whether it exists) keeps narrow states from touching
                // the sampler storage at all. Construction guarantees a
                // compiled table exactly when the threshold is met.
                if out.len() >= ALIAS_MIN_OUT_DEGREE {
                    let (sym, target, _) = out[self.samplers[state].sample(roll)];
                    return Some((sym, target));
                }
                // Narrow state: the inline cumulative scan (identical to
                // the reference semantics) is faster than a table lookup.
                let mut acc = 0.0;
                for &(sym, target, p) in out {
                    acc += p;
                    if roll < acc {
                        return Some((sym, target));
                    }
                }
                // Floating-point slack: take the last transition.
                let last = out.last().expect("non-empty");
                Some((last.0, last.1))
            }
        }
    }

    /// The retained reference implementation of `MakeChoice`: the linear
    /// cumulative scan the paper's Algorithm 2 describes. Kept as the
    /// ground truth the alias table is property-tested against, and as
    /// the baseline the perf harness measures speedups over.
    pub fn make_choice_reference<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        state: DfaStateId,
    ) -> Option<(Sym, DfaStateId)> {
        let out = &self.transitions[state];
        match out.len() {
            0 => None,
            // Algorithm 2 line 10-13: no probabilistic choice to make.
            1 => Some((out[0].0, out[0].1)),
            _ => {
                let roll: f64 = rng.random();
                let mut acc = 0.0;
                for &(sym, target, p) in out {
                    acc += p;
                    if roll < acc {
                        return Some((sym, target));
                    }
                }
                // Floating-point slack: take the last transition.
                let last = out.last().expect("non-empty");
                Some((last.0, last.1))
            }
        }
    }

    /// Algorithm 2: generates one test pattern by walking the PFA.
    ///
    /// Emits up to `opts.size` symbols; stops early at an absorbing final
    /// state unless `opts.restart_on_final` is set, in which case the walk
    /// restarts from `q0` (repeated task life cycles).
    pub fn generate<R: Rng + ?Sized>(&self, rng: &mut R, opts: GenerateOptions) -> Vec<Sym> {
        let mut pattern = Vec::with_capacity(opts.size);
        self.generate_into(rng, opts, &mut pattern);
        pattern
    }

    /// [`Pfa::generate`] into a caller-owned buffer: clears `pattern` and
    /// fills it with one walk. Trial loops that generate thousands of
    /// patterns reuse one buffer per worker instead of allocating a fresh
    /// `Vec` per pattern — the zero-allocation hot path.
    pub fn generate_into<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        opts: GenerateOptions,
        pattern: &mut Vec<Sym>,
    ) {
        pattern.clear();
        pattern.reserve(opts.size);
        let mut q = self.start;
        while pattern.len() < opts.size {
            match self.make_choice(rng, q) {
                Some((sym, next)) => {
                    pattern.push(sym);
                    q = next;
                }
                None => {
                    if opts.restart_on_final {
                        q = self.start;
                    } else {
                        break;
                    }
                }
            }
        }
    }

    /// [`Pfa::generate`] through the retained reference sampler
    /// ([`Pfa::make_choice_reference`]); produces byte-identical patterns
    /// to [`Pfa::generate`] for the same seed.
    pub fn generate_reference<R: Rng + ?Sized>(
        &self,
        rng: &mut R,
        opts: GenerateOptions,
    ) -> Vec<Sym> {
        let mut pattern = Vec::with_capacity(opts.size);
        let mut q = self.start;
        while pattern.len() < opts.size {
            match self.make_choice_reference(rng, q) {
                Some((sym, next)) => {
                    pattern.push(sym);
                    q = next;
                }
                None => {
                    if opts.restart_on_final {
                        q = self.start;
                    } else {
                        break;
                    }
                }
            }
        }
        pattern
    }

    /// The probability of the PFA emitting exactly this symbol sequence
    /// along its (deterministic) path; 0 if the sequence leaves the
    /// skeleton.
    #[must_use]
    pub fn sequence_probability(&self, seq: &[Sym]) -> f64 {
        let mut q = self.start;
        let mut p = 1.0;
        for &sym in seq {
            let Some(&(_, target, prob)) = self.transitions[q].iter().find(|(s, _, _)| *s == sym)
            else {
                return 0.0;
            };
            p *= prob;
            q = target;
        }
        p
    }

    /// Expected number of symbols until absorption, by fixed-point
    /// iteration on `E[q] = 1 + Σ p·E[q′]`. Returns `None` if the
    /// expectation does not converge within `max_iter` iterations (e.g. a
    /// probability-1 cycle that never reaches a final state).
    #[must_use]
    pub fn expected_pattern_length(&self, max_iter: usize, tol: f64) -> Option<f64> {
        let n = self.transitions.len();
        let mut e = vec![0.0f64; n];
        for _ in 0..max_iter {
            let mut next = vec![0.0f64; n];
            let mut delta: f64 = 0.0;
            for q in 0..n {
                if self.transitions[q].is_empty() {
                    next[q] = 0.0;
                } else {
                    let mut acc = 1.0;
                    for &(_, target, p) in &self.transitions[q] {
                        acc += p * e[target];
                    }
                    next[q] = acc;
                }
                delta = delta.max((next[q] - e[q]).abs());
            }
            e = next;
            if delta < tol {
                return Some(e[self.start]);
            }
        }
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fig3() -> (Regex, Pfa) {
        let re = Regex::parse("(a c* d) | b").unwrap();
        let dfa = Dfa::from_regex(&re).minimize();
        let pd = ProbabilityAssignment::weights([("a", 0.6), ("b", 0.4), ("c", 0.3), ("d", 0.7)]);
        let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &pd).unwrap();
        (re, pfa)
    }

    #[test]
    fn fig3_probabilities_match_paper() {
        let (re, pfa) = fig3();
        let a = re.alphabet().sym("a").unwrap();
        let b = re.alphabet().sym("b").unwrap();
        let c = re.alphabet().sym("c").unwrap();
        let d = re.alphabet().sym("d").unwrap();
        let q0 = pfa.start();
        assert!((pfa.probability(q0, a) - 0.6).abs() < 1e-12);
        assert!((pfa.probability(q0, b) - 0.4).abs() < 1e-12);
        let q1 = pfa
            .transitions_from(q0)
            .iter()
            .find(|(s, _, _)| *s == a)
            .map(|(_, t, _)| *t)
            .unwrap();
        assert!((pfa.probability(q1, c) - 0.3).abs() < 1e-12);
        assert!((pfa.probability(q1, d) - 0.7).abs() < 1e-12);
        pfa.validate().unwrap();
    }

    #[test]
    fn sequence_probabilities_multiply() {
        let (re, pfa) = fig3();
        let sym = |n: &str| re.alphabet().sym(n).unwrap();
        let p_b = pfa.sequence_probability(&[sym("b")]);
        assert!((p_b - 0.4).abs() < 1e-12);
        let p_ad = pfa.sequence_probability(&[sym("a"), sym("d")]);
        assert!((p_ad - 0.6 * 0.7).abs() < 1e-12);
        let p_acd = pfa.sequence_probability(&[sym("a"), sym("c"), sym("d")]);
        assert!((p_acd - 0.6 * 0.3 * 0.7).abs() < 1e-12);
        assert_eq!(pfa.sequence_probability(&[sym("b"), sym("b")]), 0.0);
    }

    #[test]
    fn generated_patterns_follow_the_skeleton() {
        let (re, pfa) = fig3();
        let dfa = Dfa::from_regex(&re).minimize();
        let mut rng = StdRng::seed_from_u64(42);
        for _ in 0..500 {
            let p = pfa.generate(&mut rng, GenerateOptions::sized(16));
            assert!(
                dfa.is_valid_prefix(&p),
                "illegal pattern {:?}",
                re.alphabet().render(&p)
            );
            // Absorption means every completed fig-3 walk is a full word.
            assert!(
                dfa.accepts(&p),
                "fig3 walks always absorb: {:?}",
                re.alphabet().render(&p)
            );
        }
    }

    #[test]
    fn empirical_branch_frequencies_approach_pd() {
        let (re, pfa) = fig3();
        let a = re.alphabet().sym("a").unwrap();
        let mut rng = StdRng::seed_from_u64(7);
        let n = 20_000;
        let mut starts_with_a = 0;
        for _ in 0..n {
            let p = pfa.generate(&mut rng, GenerateOptions::sized(64));
            if p.first() == Some(&a) {
                starts_with_a += 1;
            }
        }
        let freq = f64::from(starts_with_a) / f64::from(n);
        assert!((freq - 0.6).abs() < 0.02, "empirical {freq} vs 0.6");
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let (_, pfa) = fig3();
        let mut r1 = StdRng::seed_from_u64(99);
        let mut r2 = StdRng::seed_from_u64(99);
        for _ in 0..50 {
            assert_eq!(
                pfa.generate(&mut r1, GenerateOptions::sized(32)),
                pfa.generate(&mut r2, GenerateOptions::sized(32))
            );
        }
    }

    #[test]
    fn cyclic_generation_fills_requested_size() {
        let (_, pfa) = fig3();
        let mut rng = StdRng::seed_from_u64(3);
        for _ in 0..100 {
            let p = pfa.generate(&mut rng, GenerateOptions::cyclic(40));
            assert_eq!(p.len(), 40);
        }
    }

    #[test]
    fn expected_length_matches_analytic_value() {
        let (_, pfa) = fig3();
        // E = P(b)*1 + P(a)*(1 + E_q1); E_q1 = 1/(1-0.3) = 1/0.7.
        let analytic = 0.4 + 0.6 * (1.0 + 1.0 / 0.7);
        let e = pfa.expected_pattern_length(10_000, 1e-12).unwrap();
        assert!((e - analytic).abs() < 1e-9, "{e} vs {analytic}");
    }

    #[test]
    fn uniform_assignment_splits_evenly() {
        let re = Regex::pcore_task_lifecycle();
        let dfa = Dfa::from_regex(&re).minimize();
        let pfa =
            Pfa::from_dfa(&dfa, re.alphabet().clone(), &ProbabilityAssignment::Uniform).unwrap();
        let running = {
            let (_, t, p) = pfa.transitions_from(pfa.start())[0];
            assert!((p - 1.0).abs() < 1e-12, "TC is the only start transition");
            t
        };
        // running has 4 outgoing (TCH, TS, TD, TY) at 0.25 each.
        let out = pfa.transitions_from(running);
        assert_eq!(out.len(), 4);
        for &(_, _, p) in out {
            assert!((p - 0.25).abs() < 1e-12);
        }
    }

    #[test]
    fn explicit_assignment_must_cover_and_normalize() {
        let re = Regex::parse("a | b").unwrap();
        let dfa = Dfa::from_regex(&re).minimize();
        let mut map = HashMap::new();
        map.insert((dfa.start(), "a".to_owned()), 0.5);
        let err = Pfa::from_dfa(
            &dfa,
            re.alphabet().clone(),
            &ProbabilityAssignment::Explicit(map.clone()),
        )
        .unwrap_err();
        assert!(matches!(err, PfaError::MissingProbability { .. }));

        map.insert((dfa.start(), "b".to_owned()), 0.2);
        let err = Pfa::from_dfa(
            &dfa,
            re.alphabet().clone(),
            &ProbabilityAssignment::Explicit(map.clone()),
        )
        .unwrap_err();
        assert!(matches!(err, PfaError::NotNormalized { .. }));

        map.insert((dfa.start(), "b".to_owned()), 0.5);
        let pfa = Pfa::from_dfa(
            &dfa,
            re.alphabet().clone(),
            &ProbabilityAssignment::Explicit(map),
        )
        .unwrap();
        pfa.validate().unwrap();
    }

    #[test]
    fn negative_weight_rejected() {
        let re = Regex::parse("a | b").unwrap();
        let dfa = Dfa::from_regex(&re).minimize();
        let err = Pfa::from_dfa(
            &dfa,
            re.alphabet().clone(),
            &ProbabilityAssignment::weights([("a", -1.0), ("b", 1.0)]),
        )
        .unwrap_err();
        assert!(matches!(err, PfaError::BadWeight { .. }));
    }

    #[test]
    fn spinning_pfa_expected_length_diverges() {
        // a* b with P(a) → 1 cycle never absorbs if we weight b to ~0...
        // Build a pure cycle instead: `a a*`? Simplest: a* where the star
        // state is final, so absorption happens only via the stop choice —
        // with SymbolWeights the self-loop keeps probability 1 and the
        // expectation diverges.
        let re = Regex::parse("a a*").unwrap();
        let dfa = Dfa::from_regex(&re).minimize();
        let pfa =
            Pfa::from_dfa(&dfa, re.alphabet().clone(), &ProbabilityAssignment::Uniform).unwrap();
        // State after `a` is accepting but has a self-loop with p=1.0; the
        // walk never stops by itself.
        assert_eq!(pfa.expected_pattern_length(1_000, 1e-12), None);
    }
}
