//! Interned symbol alphabets.
//!
//! The paper's automata range over kernel-service abbreviations (`TC`,
//! `TCH`, …) rather than characters, so symbols here are interned strings:
//! an [`Alphabet`] maps between the string form and a compact [`Sym`]
//! index used by the automata.

use std::collections::HashMap;
use std::fmt;

/// An interned symbol: an index into an [`Alphabet`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Sym(pub u16);

impl fmt::Display for Sym {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "#{}", self.0)
    }
}

/// A finite alphabet of named symbols (Σ in Definition 1).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Alphabet {
    names: Vec<String>,
    index: HashMap<String, Sym>,
}

impl Alphabet {
    /// An empty alphabet.
    #[must_use]
    pub fn new() -> Alphabet {
        Alphabet::default()
    }

    /// Interns `name`, returning its symbol (existing or fresh).
    ///
    /// # Panics
    ///
    /// Panics if more than `u16::MAX` distinct symbols are interned.
    pub fn intern(&mut self, name: &str) -> Sym {
        if let Some(&s) = self.index.get(name) {
            return s;
        }
        assert!(
            self.names.len() < usize::from(u16::MAX),
            "alphabet overflow"
        );
        let s = Sym(self.names.len() as u16);
        self.names.push(name.to_owned());
        self.index.insert(name.to_owned(), s);
        s
    }

    /// Looks up an already-interned symbol.
    #[must_use]
    pub fn sym(&self, name: &str) -> Option<Sym> {
        self.index.get(name).copied()
    }

    /// The string form of a symbol.
    #[must_use]
    pub fn name(&self, sym: Sym) -> Option<&str> {
        self.names.get(usize::from(sym.0)).map(String::as_str)
    }

    /// Number of distinct symbols.
    #[must_use]
    pub fn len(&self) -> usize {
        self.names.len()
    }

    /// Whether the alphabet has no symbols.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.names.is_empty()
    }

    /// Iterates over `(Sym, name)` pairs in interning order.
    pub fn iter(&self) -> impl Iterator<Item = (Sym, &str)> {
        self.names
            .iter()
            .enumerate()
            .map(|(i, n)| (Sym(i as u16), n.as_str()))
    }

    /// Renders a symbol sequence as space-separated names (unknown
    /// symbols render as `?`).
    #[must_use]
    pub fn render(&self, seq: &[Sym]) -> String {
        seq.iter()
            .map(|&s| self.name(s).unwrap_or("?"))
            .collect::<Vec<_>>()
            .join(" ")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intern_is_idempotent() {
        let mut a = Alphabet::new();
        let tc1 = a.intern("TC");
        let tch = a.intern("TCH");
        let tc2 = a.intern("TC");
        assert_eq!(tc1, tc2);
        assert_ne!(tc1, tch);
        assert_eq!(a.len(), 2);
    }

    #[test]
    fn lookup_roundtrip() {
        let mut a = Alphabet::new();
        let s = a.intern("TS");
        assert_eq!(a.sym("TS"), Some(s));
        assert_eq!(a.name(s), Some("TS"));
        assert_eq!(a.sym("TX"), None);
        assert_eq!(a.name(Sym(99)), None);
    }

    #[test]
    fn render_sequences() {
        let mut a = Alphabet::new();
        let tc = a.intern("TC");
        let td = a.intern("TD");
        assert_eq!(a.render(&[tc, td]), "TC TD");
        assert_eq!(a.render(&[tc, Sym(42)]), "TC ?");
        assert_eq!(a.render(&[]), "");
    }

    #[test]
    fn iter_preserves_order() {
        let mut a = Alphabet::new();
        a.intern("x");
        a.intern("y");
        let names: Vec<&str> = a.iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["x", "y"]);
    }
}
