//! # ptest-automata — regular expressions, NFAs, DFAs and PFAs
//!
//! The pattern generator of pTest (paper §III) interprets a regular
//! expression over slave-system services, converts it to an NFA, attaches
//! a probability distribution to obtain a **probabilistic finite-state
//! automaton** (PFA, Definition 1), and walks the PFA to emit test
//! patterns (Algorithm 2). This crate is that pipeline:
//!
//! ```text
//! Regex::parse ──► Nfa::from_regex ──► Dfa::from_nfa (+ minimize)
//!                                        │
//!                 ProbabilityAssignment ─┴─► Pfa::from_dfa ──► generate
//! ```
//!
//! * [`Regex`] — whitespace-separated symbol regexes; parses the paper's
//!   Eq. 2 verbatim.
//! * [`Nfa`] — Thompson construction with ε-transitions.
//! * [`Dfa`] — subset construction plus partition-refinement
//!   minimization; doubles as the *legality oracle* for generated
//!   patterns.
//! * [`Pfa`] — Definition 1 with Eq. 1 validation, `MakeChoice` sampling,
//!   sequence probabilities and expected pattern length.
//! * [`train`] — learning a [`ProbabilityAssignment`] from profiled
//!   traces (the paper's "learned through system profiling").
//!
//! ## Example: the paper's Figure 3
//!
//! ```
//! use ptest_automata::{Dfa, GenerateOptions, Pfa, ProbabilityAssignment, Regex};
//! use rand::SeedableRng;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let re = Regex::parse("(a c* d) | b")?;
//! let dfa = Dfa::from_regex(&re).minimize();
//! let pd = ProbabilityAssignment::weights([("a", 0.6), ("b", 0.4), ("c", 0.3), ("d", 0.7)]);
//! let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &pd)?;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(2009);
//! let pattern = pfa.generate(&mut rng, GenerateOptions::sized(8));
//! assert!(dfa.is_valid_prefix(&pattern));
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod alphabet;
mod dfa;
pub mod dot;
mod nfa;
mod pfa;
mod regex;
mod sampler;
pub mod train;

pub use alphabet::{Alphabet, Sym};
pub use dfa::{Dfa, DfaStateId};
pub use dot::{dfa_to_dot, pfa_to_dot};
pub use nfa::{Nfa, NfaStateId};
pub use pfa::{GenerateOptions, Pfa, PfaError, ProbabilityAssignment};
pub use regex::{Ast, ParseRegexError, Regex};
pub use train::{learn_assignment, TrainError, TransitionCounts};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::Regex>();
        assert_send_sync::<super::Nfa>();
        assert_send_sync::<super::Dfa>();
        assert_send_sync::<super::Pfa>();
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Strategy: random regexes over a 4-symbol alphabet, depth-bounded.
    fn arb_regex_src() -> impl Strategy<Value = String> {
        let leaf = prop_oneof![
            Just("a".to_owned()),
            Just("b".to_owned()),
            Just("c".to_owned()),
            Just("d".to_owned()),
        ];
        leaf.prop_recursive(4, 32, 3, |inner| {
            prop_oneof![
                (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} {r})")),
                (inner.clone(), inner.clone()).prop_map(|(l, r)| format!("({l} | {r})")),
                inner.clone().prop_map(|x| format!("({x})*")),
                inner.prop_map(|x| format!("({x})?")),
            ]
        })
    }

    proptest! {
        /// The DFA accepts exactly what the NFA accepts, on random words.
        #[test]
        fn dfa_equals_nfa(src in arb_regex_src(), word in proptest::collection::vec(0u16..4, 0..12)) {
            let re = Regex::parse(&src).unwrap();
            let nfa = Nfa::from_regex(&re);
            let dfa = Dfa::from_regex(&re);
            let min = dfa.minimize();
            // Map word indices onto interned symbols (skip unknown ones).
            let seq: Vec<Sym> = word
                .iter()
                .filter_map(|&i| re.alphabet().name(Sym(i)).map(|_| Sym(i)))
                .collect();
            prop_assert_eq!(nfa.accepts(&seq), dfa.accepts(&seq));
            prop_assert_eq!(dfa.accepts(&seq), min.accepts(&seq));
        }

        /// Every PFA built on a random skeleton passes Eq. 1 validation,
        /// and every generated pattern is a valid prefix of the language.
        #[test]
        fn generated_patterns_are_valid_prefixes(src in arb_regex_src(), seed in 0u64..1_000) {
            let re = Regex::parse(&src).unwrap();
            let dfa = Dfa::from_regex(&re).minimize();
            let pfa = match Pfa::from_dfa(&dfa, re.alphabet().clone(), &ProbabilityAssignment::Uniform) {
                Ok(p) => p,
                Err(PfaError::DeadNonFinal { .. }) => return Ok(()), // degenerate skeleton
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            };
            pfa.validate().unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let pattern = pfa.generate(&mut rng, GenerateOptions::sized(24));
            prop_assert!(dfa.is_valid_prefix(&pattern));
        }

        /// The alias-table sampler is stream-identical to the retained
        /// cumulative-scan reference: for any skeleton, probability
        /// assignment, seed and pattern size — including degenerate
        /// one-transition states — both samplers emit byte-identical
        /// patterns and leave the RNG in the same state.
        #[test]
        fn alias_sampler_stream_identical_to_reference(
            src in arb_regex_src(),
            weights in proptest::array::uniform4(1u32..1_000),
            seed in 0u64..10_000,
            size in 0usize..200,
            cyclic in any::<bool>(),
        ) {
            let re = Regex::parse(&src).unwrap();
            let dfa = Dfa::from_regex(&re).minimize();
            let pd = ProbabilityAssignment::weights(
                ["a", "b", "c", "d"]
                    .iter()
                    .zip(weights)
                    .map(|(s, w)| ((*s).to_owned(), f64::from(w))),
            );
            let pfa = match Pfa::from_dfa(&dfa, re.alphabet().clone(), &pd) {
                Ok(p) => p,
                Err(PfaError::DeadNonFinal { .. }) => return Ok(()), // degenerate skeleton
                Err(e) => return Err(TestCaseError::fail(format!("unexpected: {e}"))),
            };
            let opts = if cyclic {
                // Cyclic walks on an all-absorbing skeleton would loop on
                // zero-length life cycles forever; bound by size instead.
                GenerateOptions::cyclic(size)
            } else {
                GenerateOptions::sized(size)
            };
            let mut alias_rng = StdRng::seed_from_u64(seed);
            let mut reference_rng = StdRng::seed_from_u64(seed);
            for _ in 0..4 {
                let via_alias = pfa.generate(&mut alias_rng, opts);
                let via_reference = pfa.generate_reference(&mut reference_rng, opts);
                prop_assert_eq!(&via_alias, &via_reference);
            }
            // The RNGs consumed identical draw counts: their next outputs
            // agree.
            prop_assert_eq!(
                rand::Rng::random::<u64>(&mut alias_rng),
                rand::Rng::random::<u64>(&mut reference_rng)
            );
        }

        /// Stream identity holds for adversarial near-zero-weight states:
        /// cumulative boundaries crowd into single alias buckets and force
        /// the guided-scan fallback.
        #[test]
        fn alias_sampler_stream_identical_with_near_zero_weights(
            seed in 0u64..10_000,
            tiny_exp in 1u32..300,
        ) {
            let re = Regex::parse("(a | b | c | d)*").unwrap();
            let dfa = Dfa::from_regex(&re).minimize();
            let tiny = f64::powi(10.0, -(tiny_exp as i32));
            let pd = ProbabilityAssignment::weights([
                ("a", 1.0),
                ("b", tiny),
                ("c", tiny),
                ("d", tiny),
            ]);
            let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &pd).unwrap();
            let mut alias_rng = StdRng::seed_from_u64(seed);
            let mut reference_rng = StdRng::seed_from_u64(seed);
            let opts = GenerateOptions::cyclic(128);
            prop_assert_eq!(
                pfa.generate(&mut alias_rng, opts),
                pfa.generate_reference(&mut reference_rng, opts)
            );
        }

        /// Stream identity through `Pfa::generate` on a state wide
        /// enough (8-way) to actually engage the alias table, with
        /// minimum-probability tails: the compiled sampler and
        /// `make_choice_reference` agree roll for roll. (The 4-way
        /// near-zero test above stays below `ALIAS_MIN_OUT_DEGREE` and
        /// exercises the inline scan instead.)
        #[test]
        fn alias_sampler_stream_identical_on_wide_degenerate_tails(
            seed in 0u64..10_000,
            tiny_exp in 1u32..300,
            dominant in any::<bool>(),
        ) {
            let names: Vec<String> = (0..8).map(|i| format!("s{i}")).collect();
            let src = format!("({})*", names.join(" | "));
            let re = Regex::parse(&src).unwrap();
            let dfa = Dfa::from_regex(&re).minimize();
            let tiny = f64::powi(10.0, -(tiny_exp as i32));
            // Either one dominant branch with an all-minimum tail, or
            // every branch at the shared minimum (renormalizing to
            // uniform — the all-minimum-probability state).
            let pd = ProbabilityAssignment::weights(names.iter().enumerate().map(|(i, n)| {
                (n.clone(), if dominant && i == 0 { 1.0 } else { tiny })
            }));
            let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &pd).unwrap();
            let mut alias_rng = StdRng::seed_from_u64(seed);
            let mut reference_rng = StdRng::seed_from_u64(seed);
            let opts = GenerateOptions::cyclic(128);
            prop_assert_eq!(
                pfa.generate(&mut alias_rng, opts),
                pfa.generate_reference(&mut reference_rng, opts)
            );
        }

        /// Sequence probability of a generated pattern is positive.
        #[test]
        fn generated_patterns_have_positive_probability(seed in 0u64..2_000) {
            let re = Regex::pcore_task_lifecycle();
            let dfa = Dfa::from_regex(&re).minimize();
            let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &ProbabilityAssignment::Uniform).unwrap();
            let mut rng = StdRng::seed_from_u64(seed);
            let pattern = pfa.generate(&mut rng, GenerateOptions::sized(16));
            prop_assert!(pfa.sequence_probability(&pattern) > 0.0);
        }
    }
}
