//! O(1) transition sampling: a Walker-style alias table that is
//! **exactly** stream-identical to Algorithm 2's cumulative scan.
//!
//! `MakeChoice` historically resolved a uniform roll `r ∈ [0, 1)` by
//! scanning the state's transition list and accumulating probabilities —
//! O(out-degree) per emitted symbol. This module compiles each state's
//! distribution into a bucket table at [`Pfa`](crate::Pfa) construction
//! so the common case is a single indexed lookup.
//!
//! ## Exactness, not resemblance
//!
//! A textbook alias table repartitions probability mass across buckets,
//! which changes *which* outcome a given roll maps to — breaking
//! seed-for-seed reproducibility against the retained reference sampler.
//! This table is built differently: the unit interval is cut into
//! `m = 2^k` equal buckets (`m ≥ 2·out_degree`), and each bucket stores
//! the reference scan's own cumulative partial sums as its split point.
//! Because `m` is a power of two and rolls are dyadic rationals
//! (`rng.random::<f64>()` yields `j/2^53`), the bucket index
//! `⌊r·m⌋` is computed without rounding error, and every comparison a
//! lookup performs is a comparison the reference scan would also have
//! performed — so for every representable roll the sampled transition is
//! **identical** to the reference implementation's, by construction.
//!
//! Buckets fall into three cases:
//!
//! * no cumulative boundary inside the bucket → every roll in it maps to
//!   one outcome (stored; zero comparisons beyond the split test);
//! * exactly one distinct boundary → the bucket is a two-outcome alias
//!   cell: `roll < split ? left : right`;
//! * two or more boundaries (only possible when several near-zero
//!   probabilities crowd within `1/m`) → the bucket degrades to a guide
//!   table: the scan resumes from the bucket's first outcome, which is
//!   still exactly the reference result because cumulative sums are
//!   monotone.
//!
//! The stream-identity property is pinned by dense-grid unit tests here
//! and by the `alias_sampler_stream_identical_*` property tests in the
//! crate root.

/// Out-degree at which the alias table takes over from the inline
/// cumulative scan. Below this, the branchy early-exit scan wins on real
/// hardware: the paper's distributions are small and skewed (e.g. the
/// pCore running state, 4-way at 0.6/0.2/0.1/0.1), so the scan exits
/// after ~1.7 predicted iterations while a table lookup stalls on a
/// dependent memory load. Measured on the perf harness's `gen_*` suites:
/// the scan is ~25% faster at out-degree 4, the table ~20% faster at 16.
pub(crate) const ALIAS_MIN_OUT_DEGREE: usize = 8;

/// Sentinel in [`Bucket::right`]: resolve by scanning `cum` from `left`.
const SCAN: u32 = u32::MAX;

/// One bucket of the table: rolls in `[i/m, (i+1)/m)` resolve to `left`
/// when `roll < split`, to `right` otherwise (or by a short guided scan
/// when `right == SCAN`).
#[derive(Debug, Clone, Copy, PartialEq)]
struct Bucket {
    split: f64,
    left: u32,
    right: u32,
}

/// The compiled sampler of one PFA state with out-degree ≥ 2.
///
/// States with zero or one outgoing transition never consume randomness
/// (Algorithm 2 lines 10–13) and carry an empty table.
#[derive(Debug, Clone, PartialEq, Default)]
pub(crate) struct AliasTable {
    /// Cumulative partial sums of the transition probabilities, in
    /// transition order, folded exactly like the reference scan folds
    /// them (`acc += p`) so comparisons agree bit-for-bit.
    cum: Vec<f64>,
    /// Bucket count as `f64` (`m`), precomputed so the hot path never
    /// pays an integer→float conversion.
    scale: f64,
    buckets: Vec<Bucket>,
}

impl AliasTable {
    /// Compiles the table for one state's transition probabilities.
    /// Returns an empty table for out-degrees 0 and 1 (never sampled).
    pub(crate) fn build(probabilities: &[f64]) -> AliasTable {
        let n = probabilities.len();
        if n < 2 {
            return AliasTable::default();
        }
        // The reference fold: cum[k] = p_0 + p_1 + … + p_k in order.
        let mut cum = Vec::with_capacity(n);
        let mut acc = 0.0f64;
        for &p in probabilities {
            acc += p;
            cum.push(acc);
        }
        let m = (2 * n).next_power_of_two();
        let m_f = m as f64;
        let outcome_at = |x: f64| AliasTable::reference_outcome(&cum, x);
        let mut buckets = Vec::with_capacity(m);
        for i in 0..m {
            // Exact: m is a power of two, so these divisions only shift
            // the exponent.
            let lo = i as f64 / m_f;
            let hi = (i + 1) as f64 / m_f;
            let left = outcome_at(lo);
            // Distinct cumulative boundaries strictly inside (lo, hi);
            // only cum[0..n-1] can change the outcome (the final sum
            // cannot — beyond it the reference takes the last transition
            // either way).
            let mut boundary: Option<f64> = None;
            let mut crowded = false;
            for &c in &cum[..n - 1] {
                if lo < c && c < hi {
                    match boundary {
                        None => boundary = Some(c),
                        Some(b) if b == c => {}
                        Some(_) => {
                            crowded = true;
                            break;
                        }
                    }
                }
            }
            let bucket = if crowded {
                Bucket {
                    split: f64::NEG_INFINITY,
                    left,
                    right: SCAN,
                }
            } else if let Some(b) = boundary {
                Bucket {
                    split: b,
                    left,
                    right: outcome_at(b),
                }
            } else {
                Bucket {
                    split: f64::INFINITY,
                    left,
                    right: left,
                }
            };
            buckets.push(bucket);
        }
        AliasTable {
            cum,
            scale: m_f,
            buckets,
        }
    }

    /// Whether the table was compiled (out-degree ≥ 2).
    pub(crate) fn is_compiled(&self) -> bool {
        !self.buckets.is_empty()
    }

    /// The reference scan's answer for roll `x` over cumulative sums
    /// `cum`, spelled out so its equivalence to
    /// [`Pfa::make_choice_reference`](crate::Pfa::make_choice_reference)
    /// is structural rather than incidental.
    ///
    /// The reference scans *all* `n` entries for the first `k` with
    /// `x < cum[k]` and falls back to the last transition when none
    /// matches. This form scans only `cum[..n-1]` and clamps `None` to
    /// `n - 1`; the two agree on **every** `x`, including degenerate
    /// tails, because index `n - 1` is the answer either way once
    /// `cum[..n-1]` has no entry above `x`:
    ///
    /// * if `x < cum[n-1]`, the reference's final iteration returns
    ///   `n - 1`;
    /// * if `x >= cum[n-1]` — reachable when the sums are
    ///   under-normalized, e.g. an all-minimum-probability state whose
    ///   total mass rounds below 1 — the reference's fallback returns
    ///   `n - 1` too.
    ///
    /// Duplicated cumulative values (zero-width segments from
    /// minimum-probability flooring) are also handled identically: both
    /// forms skip every segment with `cum[k] <= x`, so a roll landing on
    /// a duplicated boundary resolves past the entire zero-width run,
    /// exactly like the reference. The property test
    /// `alias_table_matches_the_reference_scan_on_degenerate_tails`
    /// pins all of this against the reference semantics.
    fn reference_outcome(cum: &[f64], x: f64) -> u32 {
        let n = cum.len();
        match cum[..n - 1].iter().position(|&c| x < c) {
            Some(k) => k as u32,
            None => (n - 1) as u32,
        }
    }

    /// Resolves `roll ∈ [0, 1)` to a transition index — the same index
    /// the reference cumulative scan returns for the same roll.
    ///
    /// The common path is branch-light on purpose: the two-way bucket
    /// resolve compiles to a conditional move (no data-dependent branch
    /// to mispredict), and the only real branch — the guided-scan
    /// fallback for crowded buckets — is rare and predictably not taken.
    #[inline]
    pub(crate) fn sample(&self, roll: f64) -> usize {
        // Single-outcome (and empty) states have no compiled table and
        // no probabilistic choice to make: the only sound answer is
        // transition 0. `Pfa::make_choice` never reaches here for them
        // (it short-circuits out-degree ≤ 1), but the table is total
        // anyway — an uncompiled table must not index below zero.
        if !self.is_compiled() {
            return 0;
        }
        // Exact for dyadic rolls; min() guards hypothetical roll == 1.0.
        let i = ((roll * self.scale) as usize).min(self.buckets.len() - 1);
        let b = self.buckets[i];
        let idx = if roll < b.split { b.left } else { b.right };
        if idx != SCAN {
            return idx as usize;
        }
        // Guided reference scan from the bucket's first outcome. SCAN
        // buckets carry `split == -inf`, so `left` (the guide index) is
        // never selected by the resolve above.
        let n = self.cum.len();
        let mut k = b.left as usize;
        while k < n - 1 && roll >= self.cum[k] {
            k += 1;
        }
        k
    }

    /// Bucket count of the compiled table (0 for 0/1-out states).
    #[cfg(test)]
    fn bucket_count(&self) -> usize {
        self.buckets.len()
    }

    /// How many buckets degraded to guided scans.
    #[cfg(test)]
    fn scan_buckets(&self) -> usize {
        self.buckets.iter().filter(|b| b.right == SCAN).count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// The retained reference semantics, spelled out independently of
    /// `Pfa::make_choice_reference` so this module is self-checking.
    fn reference(probabilities: &[f64], roll: f64) -> usize {
        let mut acc = 0.0;
        for (k, &p) in probabilities.iter().enumerate() {
            acc += p;
            if roll < acc {
                return k;
            }
        }
        probabilities.len() - 1
    }

    /// Dense dyadic grid plus the exact boundary values and their
    /// neighbours — the rolls where alias/reference disagreement would
    /// hide.
    fn assert_identical_on_grid(probabilities: &[f64]) {
        let table = AliasTable::build(probabilities);
        assert!(table.is_compiled());
        let grid = 1 << 14;
        for j in 0..grid {
            let roll = j as f64 / grid as f64;
            assert_eq!(
                table.sample(roll),
                reference(probabilities, roll),
                "roll {roll} over {probabilities:?}"
            );
        }
        let mut acc = 0.0;
        for &p in probabilities {
            acc += p;
            for roll in [acc.next_down(), acc, acc.next_up()] {
                if (0.0..1.0).contains(&roll) {
                    assert_eq!(
                        table.sample(roll),
                        reference(probabilities, roll),
                        "boundary roll {roll} over {probabilities:?}"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_and_one_out_states_have_no_table() {
        assert!(!AliasTable::build(&[]).is_compiled());
        assert!(!AliasTable::build(&[1.0]).is_compiled());
    }

    #[test]
    fn uniform_distributions_match_reference() {
        for n in 2..=9 {
            let probabilities = vec![1.0 / n as f64; n];
            assert_identical_on_grid(&probabilities);
        }
    }

    #[test]
    fn skewed_distributions_match_reference() {
        assert_identical_on_grid(&[0.6, 0.4]);
        assert_identical_on_grid(&[0.3, 0.7]);
        assert_identical_on_grid(&[0.6, 0.2, 0.1, 0.1]);
        assert_identical_on_grid(&[0.05, 0.9, 0.05]);
        assert_identical_on_grid(&[0.97, 0.01, 0.01, 0.01]);
    }

    #[test]
    fn near_zero_weights_degrade_to_guided_scan_and_stay_identical() {
        // Several boundaries crowd into single buckets: the degenerate
        // case the guide fallback exists for.
        let tiny = 1e-12;
        let head = 1.0 - 6.0 * tiny;
        let probabilities = [head, tiny, tiny, tiny, tiny, tiny, tiny];
        let table = AliasTable::build(&probabilities);
        assert!(
            table.scan_buckets() > 0,
            "crowded boundaries must produce scan buckets"
        );
        assert_identical_on_grid(&probabilities);
    }

    #[test]
    fn bucket_count_is_a_power_of_two_at_least_twice_the_out_degree() {
        for n in 2..=17 {
            let table = AliasTable::build(&vec![1.0 / n as f64; n]);
            let m = table.bucket_count();
            assert!(m.is_power_of_two());
            assert!(m >= 2 * n);
        }
    }

    #[test]
    fn unnormalized_sums_keep_the_last_transition_fallback() {
        // Floating-point slack can leave cum[n-1] slightly below 1; rolls
        // beyond it must take the last transition, like the reference.
        let probabilities = [0.1, 0.2, 0.7 - 1e-12];
        assert_identical_on_grid(&probabilities);
    }

    #[test]
    fn all_minimum_probability_states_match_reference() {
        // Every transition at the same tiny mass: the whole cumulative
        // range collapses near 0 and almost every roll exercises the
        // `None => n - 1` clamp. Both the literally-degenerate
        // unnormalized form and its floored/renormalized cousins must
        // track the reference exactly.
        for n in 2..=12 {
            assert_identical_on_grid(&vec![1e-9; n]);
            assert_identical_on_grid(&vec![1e-300; n]);
            assert_identical_on_grid(&vec![1.0 / n as f64; n]);
        }
    }

    #[test]
    fn single_outcome_states_sample_totally() {
        // Out-degree 0/1 states never consume randomness, but the table
        // must still be total: a hypothetical lookup resolves to the only
        // transition instead of underflowing the bucket index.
        for table in [AliasTable::build(&[]), AliasTable::build(&[1.0])] {
            assert!(!table.is_compiled());
            for roll in [0.0, 0.25, 0.999] {
                assert_eq!(table.sample(roll), 0);
            }
        }
    }
}

#[cfg(test)]
mod proptests {
    use super::*;
    use proptest::prelude::*;

    /// `Pfa::make_choice_reference`'s scan, restated over a cumulative
    /// array (it folds `acc += p; roll < acc` in transition order and
    /// falls back to the last transition).
    fn reference(probabilities: &[f64], roll: f64) -> usize {
        let mut acc = 0.0;
        for (k, &p) in probabilities.iter().enumerate() {
            acc += p;
            if roll < acc {
                return k;
            }
        }
        probabilities.len() - 1
    }

    /// Distributions biased toward the degenerate corners the clamp has
    /// to survive: every mass an arbitrary power of ten down to
    /// subnormal territory, including all-equal-minimum vectors and
    /// single-outcome states.
    fn arb_degenerate() -> impl Strategy<Value = Vec<f64>> {
        prop_oneof![
            // All transitions at one shared minimum mass.
            (1usize..12, 1i32..320).prop_map(|(n, e)| vec![f64::powi(10.0, -e); n]),
            // One dominant mass with a minimum-probability tail.
            (2usize..12, 1i32..320).prop_map(|(n, e)| {
                let tiny = f64::powi(10.0, -e);
                let mut v = vec![tiny; n];
                v[0] = 1.0 - tiny * (n as f64 - 1.0);
                v
            }),
            // Arbitrary positive masses (normalized and not).
            proptest::collection::vec(1u32..1_000, 1..12)
                .prop_map(|ws| ws.into_iter().map(f64::from).collect()),
        ]
    }

    proptest! {
        /// The satellite pin: for degenerate tails — all-minimum-
        /// probability and single-outcome states — every dyadic roll
        /// resolves through the alias table to exactly the outcome
        /// `make_choice_reference`'s scan yields.
        #[test]
        fn alias_table_matches_the_reference_scan_on_degenerate_tails(
            probabilities in arb_degenerate(),
            grid_seed in 0u64..1_000,
        ) {
            let table = AliasTable::build(&probabilities);
            // Deterministic pseudo-grid of dyadic rolls derived from the
            // seed, plus every cumulative boundary's neighbourhood.
            let mut x = grid_seed;
            for _ in 0..256 {
                x = x.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let roll = (x >> 11) as f64 / (1u64 << 53) as f64;
                prop_assert_eq!(
                    table.sample(roll),
                    reference(&probabilities, roll),
                    "roll {} over {:?}", roll, &probabilities
                );
            }
            let mut acc = 0.0;
            for &p in &probabilities {
                acc += p;
                for roll in [acc.next_down(), acc, acc.next_up()] {
                    if (0.0..1.0).contains(&roll) {
                        prop_assert_eq!(
                            table.sample(roll),
                            reference(&probabilities, roll),
                            "boundary {} over {:?}", roll, &probabilities
                        );
                    }
                }
            }
        }
    }
}
