//! Regular expressions over symbol alphabets.
//!
//! Syntax (whitespace-separated, as in the paper's Eq. 2):
//!
//! ```text
//! RE  := ALT
//! ALT := CAT ('|' CAT)*
//! CAT := REP REP*                 (juxtaposition = concatenation)
//! REP := ATOM ('*' | '+' | '?')*
//! ATOM:= SYMBOL | '(' ALT ')' | '$'
//! ```
//!
//! Symbols are identifiers (`TC`, `TCH`, `a`, …). The paper's
//! end-of-pattern marker `$` is accepted and treated as ε — in
//! `(TD$ | TY$)` it asserts that the pattern ends, which the automaton's
//! final states already express.
//!
//! The paper's pCore expression parses directly:
//!
//! ```
//! use ptest_automata::Regex;
//! let re = Regex::parse("TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)").unwrap();
//! assert_eq!(re.alphabet().len(), 6);
//! ```

use std::fmt;

use crate::alphabet::{Alphabet, Sym};

/// A parsed regular expression together with its alphabet.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Regex {
    ast: Ast,
    alphabet: Alphabet,
    source: String,
}

/// Regular-expression abstract syntax.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Ast {
    /// The empty string ε (also used for `$`).
    Epsilon,
    /// A single symbol.
    Symbol(Sym),
    /// Concatenation.
    Concat(Box<Ast>, Box<Ast>),
    /// Alternation.
    Alt(Box<Ast>, Box<Ast>),
    /// Kleene star.
    Star(Box<Ast>),
}

/// Error parsing a regular expression.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseRegexError {
    message: String,
    /// Byte offset in the source where the error was detected.
    pub at: usize,
}

impl fmt::Display for ParseRegexError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "regex parse error at byte {}: {}", self.at, self.message)
    }
}

impl std::error::Error for ParseRegexError {}

#[derive(Debug, Clone, PartialEq, Eq)]
enum Token {
    Symbol(String),
    Pipe,
    Star,
    Plus,
    Question,
    LParen,
    RParen,
    Dollar,
}

fn tokenize(src: &str) -> Result<Vec<(usize, Token)>, ParseRegexError> {
    let mut tokens = Vec::new();
    let bytes = src.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        let c = bytes[i] as char;
        match c {
            ' ' | '\t' | '\n' | '\r' => i += 1,
            '|' => {
                tokens.push((i, Token::Pipe));
                i += 1;
            }
            '*' => {
                tokens.push((i, Token::Star));
                i += 1;
            }
            '+' => {
                tokens.push((i, Token::Plus));
                i += 1;
            }
            '?' => {
                tokens.push((i, Token::Question));
                i += 1;
            }
            '(' => {
                tokens.push((i, Token::LParen));
                i += 1;
            }
            ')' => {
                tokens.push((i, Token::RParen));
                i += 1;
            }
            '$' => {
                tokens.push((i, Token::Dollar));
                i += 1;
            }
            c if c.is_ascii_alphanumeric() || c == '_' => {
                let start = i;
                while i < bytes.len()
                    && ((bytes[i] as char).is_ascii_alphanumeric() || bytes[i] == b'_')
                {
                    i += 1;
                }
                tokens.push((start, Token::Symbol(src[start..i].to_owned())));
            }
            other => {
                return Err(ParseRegexError {
                    message: format!("unexpected character `{other}`"),
                    at: i,
                })
            }
        }
    }
    Ok(tokens)
}

struct Parser<'t> {
    tokens: &'t [(usize, Token)],
    pos: usize,
    alphabet: Alphabet,
    src_len: usize,
}

impl Parser<'_> {
    fn peek(&self) -> Option<&Token> {
        self.tokens.get(self.pos).map(|(_, t)| t)
    }

    fn at(&self) -> usize {
        self.tokens
            .get(self.pos)
            .map_or(self.src_len, |(at, _)| *at)
    }

    fn bump(&mut self) -> Option<Token> {
        let t = self.tokens.get(self.pos).map(|(_, t)| t.clone());
        if t.is_some() {
            self.pos += 1;
        }
        t
    }

    fn parse_alt(&mut self) -> Result<Ast, ParseRegexError> {
        let mut lhs = self.parse_concat()?;
        while self.peek() == Some(&Token::Pipe) {
            self.bump();
            let rhs = self.parse_concat()?;
            lhs = Ast::Alt(Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn starts_atom(token: &Token) -> bool {
        matches!(token, Token::Symbol(_) | Token::LParen | Token::Dollar)
    }

    fn parse_concat(&mut self) -> Result<Ast, ParseRegexError> {
        let mut parts = Vec::new();
        while let Some(tok) = self.peek() {
            if !Self::starts_atom(tok) {
                break;
            }
            parts.push(self.parse_repeat()?);
        }
        let mut iter = parts.into_iter();
        let Some(first) = iter.next() else {
            return Ok(Ast::Epsilon);
        };
        Ok(iter.fold(first, |acc, p| Ast::Concat(Box::new(acc), Box::new(p))))
    }

    fn parse_repeat(&mut self) -> Result<Ast, ParseRegexError> {
        let mut node = self.parse_atom()?;
        loop {
            match self.peek() {
                Some(Token::Star) => {
                    self.bump();
                    node = Ast::Star(Box::new(node));
                }
                Some(Token::Plus) => {
                    self.bump();
                    // x+ = x x*
                    node = Ast::Concat(Box::new(node.clone()), Box::new(Ast::Star(Box::new(node))));
                }
                Some(Token::Question) => {
                    self.bump();
                    // x? = x | ε
                    node = Ast::Alt(Box::new(node), Box::new(Ast::Epsilon));
                }
                _ => break,
            }
        }
        Ok(node)
    }

    fn parse_atom(&mut self) -> Result<Ast, ParseRegexError> {
        let at = self.at();
        match self.bump() {
            Some(Token::Symbol(name)) => Ok(Ast::Symbol(self.alphabet.intern(&name))),
            Some(Token::Dollar) => Ok(Ast::Epsilon),
            Some(Token::LParen) => {
                let inner = self.parse_alt()?;
                if self.bump() != Some(Token::RParen) {
                    return Err(ParseRegexError {
                        message: "expected `)`".to_owned(),
                        at: self.at(),
                    });
                }
                Ok(inner)
            }
            other => Err(ParseRegexError {
                message: format!("expected symbol, `(` or `$`, found {other:?}"),
                at,
            }),
        }
    }
}

impl Regex {
    /// Parses a regular expression.
    ///
    /// # Errors
    ///
    /// [`ParseRegexError`] on syntax errors (with a byte offset).
    pub fn parse(src: &str) -> Result<Regex, ParseRegexError> {
        let tokens = tokenize(src)?;
        let mut parser = Parser {
            tokens: &tokens,
            pos: 0,
            alphabet: Alphabet::new(),
            src_len: src.len(),
        };
        let ast = parser.parse_alt()?;
        if parser.pos != tokens.len() {
            return Err(ParseRegexError {
                message: "trailing input".to_owned(),
                at: parser.at(),
            });
        }
        Ok(Regex {
            ast,
            alphabet: parser.alphabet,
            source: src.to_owned(),
        })
    }

    /// The paper's Eq. 2: the task life cycle of pCore.
    ///
    /// `TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)`
    #[must_use]
    pub fn pcore_task_lifecycle() -> Regex {
        Regex::parse("TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)")
            .expect("the paper's RE is well-formed")
    }

    /// The syntax tree.
    #[must_use]
    pub fn ast(&self) -> &Ast {
        &self.ast
    }

    /// The alphabet collected while parsing.
    #[must_use]
    pub fn alphabet(&self) -> &Alphabet {
        &self.alphabet
    }

    /// The original source text.
    #[must_use]
    pub fn source(&self) -> &str {
        &self.source
    }
}

impl fmt::Display for Regex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.source)
    }
}

impl std::str::FromStr for Regex {
    type Err = ParseRegexError;

    fn from_str(s: &str) -> Result<Regex, ParseRegexError> {
        Regex::parse(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_single_symbol() {
        let re = Regex::parse("TC").unwrap();
        assert!(matches!(re.ast(), Ast::Symbol(_)));
        assert_eq!(re.alphabet().len(), 1);
    }

    #[test]
    fn parses_fig3_regex() {
        // (ac*d) | b — written with explicit spacing.
        let re = Regex::parse("(a c* d) | b").unwrap();
        assert_eq!(re.alphabet().len(), 4);
        assert!(matches!(re.ast(), Ast::Alt(_, _)));
    }

    #[test]
    fn parses_paper_eq2() {
        let re = Regex::pcore_task_lifecycle();
        let names: Vec<&str> = re.alphabet().iter().map(|(_, n)| n).collect();
        assert_eq!(names, vec!["TC", "TCH", "TS", "TR", "TD", "TY"]);
    }

    #[test]
    fn plus_and_question_desugar() {
        let plus = Regex::parse("a+").unwrap();
        assert!(matches!(plus.ast(), Ast::Concat(_, _)));
        let q = Regex::parse("a?").unwrap();
        assert!(matches!(q.ast(), Ast::Alt(_, _)));
    }

    #[test]
    fn dollar_is_epsilon() {
        let re = Regex::parse("a$").unwrap();
        // a$ = Concat(a, ε)
        match re.ast() {
            Ast::Concat(l, r) => {
                assert!(matches!(**l, Ast::Symbol(_)));
                assert!(matches!(**r, Ast::Epsilon));
            }
            other => panic!("unexpected ast {other:?}"),
        }
    }

    #[test]
    fn empty_input_is_epsilon() {
        let re = Regex::parse("").unwrap();
        assert!(matches!(re.ast(), Ast::Epsilon));
    }

    #[test]
    fn reports_errors_with_position() {
        let err = Regex::parse("a %").unwrap_err();
        assert_eq!(err.at, 2);
        assert!(err.to_string().contains('%'));

        let err = Regex::parse("(a").unwrap_err();
        assert!(err.to_string().contains(")"));

        let err = Regex::parse("a ) b").unwrap_err();
        assert!(err.to_string().contains("trailing"));

        // A leading `*` has no atom to repeat; the parser stops before it
        // and reports the leftover input.
        let err = Regex::parse("* a").unwrap_err();
        assert!(err.to_string().contains("trailing"));
        assert_eq!(err.at, 0);
    }

    #[test]
    fn display_and_fromstr_roundtrip() {
        let src = "TC (TCH)* TD";
        let re: Regex = src.parse().unwrap();
        assert_eq!(re.to_string(), src);
    }

    #[test]
    fn symbols_are_shared_across_occurrences() {
        let re = Regex::parse("a a a").unwrap();
        assert_eq!(re.alphabet().len(), 1);
    }
}
