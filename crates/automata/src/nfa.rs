//! Thompson construction: regular expression → NFA with ε-transitions.
//!
//! This is the `ConvertToNFA` step of the paper's Algorithm 2.

use std::collections::BTreeSet;

use crate::alphabet::Sym;
use crate::regex::{Ast, Regex};

/// An NFA state index.
pub type NfaStateId = usize;

/// A nondeterministic finite automaton with ε-transitions and a single
/// accepting state (the Thompson normal form).
#[derive(Debug, Clone)]
pub struct Nfa {
    /// `transitions[q]` = list of `(label, target)`; `None` = ε.
    transitions: Vec<Vec<(Option<Sym>, NfaStateId)>>,
    start: NfaStateId,
    accept: NfaStateId,
}

impl Nfa {
    /// Builds the Thompson NFA of a regular expression.
    #[must_use]
    pub fn from_regex(re: &Regex) -> Nfa {
        let mut builder = Builder {
            transitions: Vec::new(),
        };
        let (start, accept) = builder.compile(re.ast());
        Nfa {
            transitions: builder.transitions,
            start,
            accept,
        }
    }

    /// The initial state.
    #[must_use]
    pub fn start(&self) -> NfaStateId {
        self.start
    }

    /// The unique accepting state.
    #[must_use]
    pub fn accept(&self) -> NfaStateId {
        self.accept
    }

    /// Number of states.
    #[must_use]
    pub fn len(&self) -> usize {
        self.transitions.len()
    }

    /// Whether the NFA has no states (never true after construction).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.transitions.is_empty()
    }

    /// Outgoing transitions of `state`.
    #[must_use]
    pub fn transitions_from(&self, state: NfaStateId) -> &[(Option<Sym>, NfaStateId)] {
        &self.transitions[state]
    }

    /// The ε-closure of a set of states.
    #[must_use]
    pub fn epsilon_closure(&self, states: &BTreeSet<NfaStateId>) -> BTreeSet<NfaStateId> {
        let mut closure = states.clone();
        let mut stack: Vec<NfaStateId> = states.iter().copied().collect();
        while let Some(q) = stack.pop() {
            for &(label, target) in &self.transitions[q] {
                if label.is_none() && closure.insert(target) {
                    stack.push(target);
                }
            }
        }
        closure
    }

    /// States reachable from `states` on symbol `sym` (before closure).
    #[must_use]
    pub fn step(&self, states: &BTreeSet<NfaStateId>, sym: Sym) -> BTreeSet<NfaStateId> {
        let mut out = BTreeSet::new();
        for &q in states {
            for &(label, target) in &self.transitions[q] {
                if label == Some(sym) {
                    out.insert(target);
                }
            }
        }
        out
    }

    /// Whether the NFA accepts the symbol sequence (reference semantics
    /// for testing the DFA construction against).
    #[must_use]
    pub fn accepts(&self, seq: &[Sym]) -> bool {
        let mut current = self.epsilon_closure(&BTreeSet::from([self.start]));
        for &sym in seq {
            let stepped = self.step(&current, sym);
            if stepped.is_empty() {
                return false;
            }
            current = self.epsilon_closure(&stepped);
        }
        current.contains(&self.accept)
    }
}

struct Builder {
    transitions: Vec<Vec<(Option<Sym>, NfaStateId)>>,
}

impl Builder {
    fn fresh(&mut self) -> NfaStateId {
        self.transitions.push(Vec::new());
        self.transitions.len() - 1
    }

    fn edge(&mut self, from: NfaStateId, label: Option<Sym>, to: NfaStateId) {
        self.transitions[from].push((label, to));
    }

    /// Compiles `ast` into a fragment, returning `(start, accept)`.
    fn compile(&mut self, ast: &Ast) -> (NfaStateId, NfaStateId) {
        match ast {
            Ast::Epsilon => {
                let s = self.fresh();
                let a = self.fresh();
                self.edge(s, None, a);
                (s, a)
            }
            Ast::Symbol(sym) => {
                let s = self.fresh();
                let a = self.fresh();
                self.edge(s, Some(*sym), a);
                (s, a)
            }
            Ast::Concat(l, r) => {
                let (ls, la) = self.compile(l);
                let (rs, ra) = self.compile(r);
                self.edge(la, None, rs);
                (ls, ra)
            }
            Ast::Alt(l, r) => {
                let (ls, la) = self.compile(l);
                let (rs, ra) = self.compile(r);
                let s = self.fresh();
                let a = self.fresh();
                self.edge(s, None, ls);
                self.edge(s, None, rs);
                self.edge(la, None, a);
                self.edge(ra, None, a);
                (s, a)
            }
            Ast::Star(inner) => {
                let (is, ia) = self.compile(inner);
                let s = self.fresh();
                let a = self.fresh();
                self.edge(s, None, is);
                self.edge(s, None, a);
                self.edge(ia, None, is);
                self.edge(ia, None, a);
                (s, a)
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::regex::Regex;

    fn syms(re: &Regex, names: &[&str]) -> Vec<Sym> {
        names
            .iter()
            .map(|n| {
                re.alphabet()
                    .sym(n)
                    .unwrap_or_else(|| panic!("no symbol {n}"))
            })
            .collect()
    }

    #[test]
    fn accepts_single_symbol() {
        let re = Regex::parse("a").unwrap();
        let nfa = Nfa::from_regex(&re);
        assert!(nfa.accepts(&syms(&re, &["a"])));
        assert!(!nfa.accepts(&[]));
        assert!(!nfa.accepts(&syms(&re, &["a", "a"])));
    }

    #[test]
    fn accepts_fig3_language() {
        // (ac*d)|b
        let re = Regex::parse("(a c* d) | b").unwrap();
        let nfa = Nfa::from_regex(&re);
        assert!(nfa.accepts(&syms(&re, &["b"])));
        assert!(nfa.accepts(&syms(&re, &["a", "d"])));
        assert!(nfa.accepts(&syms(&re, &["a", "c", "d"])));
        assert!(nfa.accepts(&syms(&re, &["a", "c", "c", "c", "d"])));
        assert!(!nfa.accepts(&syms(&re, &["a"])));
        assert!(!nfa.accepts(&syms(&re, &["a", "b"])));
        assert!(!nfa.accepts(&syms(&re, &["c", "d"])));
        assert!(!nfa.accepts(&syms(&re, &["b", "b"])));
    }

    #[test]
    fn accepts_pcore_lifecycles() {
        let re = Regex::pcore_task_lifecycle();
        let nfa = Nfa::from_regex(&re);
        assert!(nfa.accepts(&syms(&re, &["TC", "TD"])));
        assert!(nfa.accepts(&syms(&re, &["TC", "TY"])));
        assert!(nfa.accepts(&syms(&re, &["TC", "TCH", "TCH", "TD"])));
        assert!(nfa.accepts(&syms(&re, &["TC", "TS", "TR", "TD"])));
        assert!(nfa.accepts(&syms(&re, &["TC", "TS", "TR", "TCH", "TS", "TR", "TY"])));
        // Illegal orders from the paper: resume without suspend, etc.
        assert!(!nfa.accepts(&syms(&re, &["TC", "TR", "TD"])));
        assert!(!nfa.accepts(&syms(&re, &["TC", "TS", "TD"])));
        assert!(!nfa.accepts(&syms(&re, &["TD"])));
        assert!(!nfa.accepts(&syms(&re, &["TC"])));
        assert!(!nfa.accepts(&syms(&re, &["TC", "TD", "TD"])));
    }

    #[test]
    fn epsilon_closure_includes_self() {
        let re = Regex::parse("a*").unwrap();
        let nfa = Nfa::from_regex(&re);
        let closure = nfa.epsilon_closure(&std::collections::BTreeSet::from([nfa.start()]));
        assert!(closure.contains(&nfa.start()));
        assert!(closure.contains(&nfa.accept()), "a* accepts ε");
    }

    #[test]
    fn empty_regex_accepts_only_empty() {
        let re = Regex::parse("").unwrap();
        let nfa = Nfa::from_regex(&re);
        assert!(nfa.accepts(&[]));
    }

    #[test]
    fn plus_requires_one() {
        let re = Regex::parse("a+").unwrap();
        let nfa = Nfa::from_regex(&re);
        let a = re.alphabet().sym("a").unwrap();
        assert!(!nfa.accepts(&[]));
        assert!(nfa.accepts(&[a]));
        assert!(nfa.accepts(&[a, a, a]));
    }

    #[test]
    fn question_is_optional() {
        let re = Regex::parse("a? b").unwrap();
        let nfa = Nfa::from_regex(&re);
        assert!(nfa.accepts(&syms(&re, &["b"])));
        assert!(nfa.accepts(&syms(&re, &["a", "b"])));
        assert!(!nfa.accepts(&syms(&re, &["a"])));
    }
}
