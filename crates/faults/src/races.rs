//! Schedule-sensitive cross-core races: bugs that are **unreachable
//! under the lock-step schedule** no matter which patterns the PFA
//! generates, and only manifest when a
//! [`RandomPriorityScheduler`](ptest_master::RandomPriorityScheduler)
//! lets one kernel run far ahead of another.
//!
//! Both scenarios couple two slave kernels through SRAM-mirrored shared
//! variables ([`MultiCoreSystem::share_var`]) and synchronize their
//! tasks with a bounded spin barrier, so the interesting window starts
//! from an aligned instant regardless of when the committer's
//! `task_create` commands land. From there:
//!
//! * [`OrderViolationScenario`] — slave 1 initializes a payload 40
//!   cycles after the barrier; slave 0 consumes it ~340 cycles after.
//!   Lock-step advances both kernels at the same rate, so the 300-cycle
//!   margin makes initialize-before-use invariant. A randomized-priority
//!   schedule can starve slave 1 down to the fairness backstop
//!   (64× slower), the consumer overtakes the initializer, reads the
//!   uninitialized payload, and hits its guard — a task fault
//!   ([`BugKind::TaskFault`](ptest_core::BugKind)) the detector reports
//!   and the `(seed, schedule_seed)` pair replays.
//! * [`AtomicityRaceScenario`] — both slaves run read-modify-write
//!   rounds over a mirrored counter with phase-staggered critical
//!   windows (~3 cycles of RMW inside a 43-cycle period, half a period
//!   apart). Lock-step keeps the relative phase fixed, so the windows
//!   never overlap and no increment is ever lost. Under a randomized
//!   schedule the kernels drift, windows collide, increments vanish
//!   (lost update / stale read), and slave 0's final-value check trips
//!   the same task-fault guard.
//!
//! Each scenario has a `fixed` variant with real synchronization — a
//! cross-core semaphore hand-off ordering the accesses for the order
//! violation, a circulating token serializing the critical sections for
//! the atomicity race — which stays clean under *any* schedule; the
//! integration tests pin all four quadrants (variant × schedule).

use ptest_core::{AdaptiveTestConfig, MergeOp, Scenario, ScheduleSpec};
use ptest_master::{MultiCoreSystem, SystemConfig};
use ptest_pcore::{Op, ProgramBuilder, ProgramId, VarId};

/// Barrier flag announced by slave 0's task (SRAM-mirrored).
pub const RACE_READY0: VarId = VarId(8);
/// Barrier flag announced by slave 1's task (SRAM-mirrored).
pub const RACE_READY1: VarId = VarId(9);
/// The racy payload / counter (SRAM-mirrored).
pub const RACE_SHARED: VarId = VarId(10);
/// Completion flag of slave 1's writer (SRAM-mirrored).
pub const RACE_DONE1: VarId = VarId(11);

/// SRAM offsets of the mirror words, above the race-scenario windows of
/// `ptest_faults::multicore`.
const MIRROR_BASE: usize = 0x3_1000;

/// The payload value the order-violation initializer publishes.
const PAYLOAD: i64 = 42;

/// Iterations a task spins on a barrier/completion flag before giving
/// up benignly (exiting without running its check). Bounding the spin
/// keeps mutilated protocols — e.g. a peer task deleted by a `TD` in
/// the test pattern — from reading as livelock.
const SPIN_BUDGET: i64 = 30_000;

/// A `StackProbe` far beyond any configured stack: the deterministic
/// "the race manifested" symptom, killed by the kernel as a
/// stack-overflow task fault and picked up by the detector.
const GUARD_TRIP: u32 = 1 << 20;

/// Buggy (unsynchronized) or fixed (properly synchronized) variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RaceVariant {
    /// No cross-core synchronization: correctness rests on relative
    /// kernel speed, which only the lock-step schedule guarantees.
    Buggy,
    /// Real synchronization through a cross-core semaphore hand-off;
    /// clean under every schedule.
    Fixed,
}

/// Appends a bounded spin until `var == value`, falling through to the
/// label `go`; gives up (plain `Exit`) after [`SPIN_BUDGET`] iterations.
/// `scratch` is the register used for the countdown.
fn bounded_spin(b: &mut ProgramBuilder, var: VarId, value: i64, scratch: u8, go: &str) {
    let spin = format!("spin_{var}_{go}");
    let give_up = format!("give_up_{var}_{go}");
    b.push(Op::AddReg {
        reg: scratch,
        delta: SPIN_BUDGET,
    });
    b.bind(&spin);
    b.branch_if_var_eq(var, value, go);
    b.push(Op::AddReg {
        reg: scratch,
        delta: -1,
    });
    b.branch_if_reg_eq(scratch, 0, &give_up);
    b.jump_to(&spin);
    b.bind(&give_up);
    b.push(Op::Exit);
    b.bind(go);
}

/// The two-sided barrier prologue: announce `mine`, await `theirs`.
fn barrier(b: &mut ProgramBuilder, mine: VarId, theirs: VarId) {
    b.push(Op::WriteVar {
        var: mine,
        value: 1,
    });
    bounded_spin(b, theirs, 1, 7, "after_barrier");
}

/// The guard epilogue: fault unless register `reg` holds `expected`.
fn guard(b: &mut ProgramBuilder, reg: u8, expected: i64) {
    b.branch_if_reg_eq(reg, expected, "guard_ok");
    b.push(Op::StackProbe(GUARD_TRIP));
    b.bind("guard_ok");
    b.push(Op::Exit);
}

/// An initialize-before-use race across kernels. See the [module
/// docs](self).
#[derive(Debug, Clone, Copy)]
pub struct OrderViolationScenario {
    /// Buggy (timing-dependent) or fixed (semaphore-ordered) variant.
    pub variant: RaceVariant,
}

impl OrderViolationScenario {
    /// The unsynchronized variant.
    #[must_use]
    pub fn buggy() -> OrderViolationScenario {
        OrderViolationScenario {
            variant: RaceVariant::Buggy,
        }
    }

    /// The semaphore-ordered control variant.
    #[must_use]
    pub fn fixed() -> OrderViolationScenario {
        OrderViolationScenario {
            variant: RaceVariant::Fixed,
        }
    }
}

/// The shared base configuration of both race scenarios: two slaves,
/// two patterns (one controlled task per kernel), a lifecycle
/// distribution that almost never suspends or deletes mid-protocol
/// (suspension stalls a task without the scheduler's involvement, which
/// would blur what the schedule axis is being tested for), and the
/// randomized-priority schedule as the default exploration mode.
fn race_base_config() -> AdaptiveTestConfig {
    AdaptiveTestConfig {
        n: 2,
        s: 6,
        op: MergeOp::cyclic(),
        inter_command_gap: 30,
        pd: ptest_automata::ProbabilityAssignment::weights([
            ("TC", 1.0),
            ("TCH", 1.0),
            ("TS", 1e-4),
            ("TD", 1e-4),
            ("TY", 0.05),
            ("TR", 1.0),
        ]),
        max_cycles: 250_000,
        drain_cycles: 80_000,
        // A starved-but-backstopped slave legitimately takes tens of
        // thousands of cycles to finish the protocol; widen the
        // no-progress window so schedule-induced slowness is not
        // misread as livelock before the guard resolves.
        detector: ptest_core::DetectorConfig {
            progress_window: ptest_soc::Cycles::new(60_000),
            ..ptest_core::DetectorConfig::default()
        },
        schedule: ScheduleSpec::random_priority(),
        system: SystemConfig::with_slaves(2),
        ..AdaptiveTestConfig::default()
    }
}

impl Scenario for OrderViolationScenario {
    fn name(&self) -> &str {
        match self.variant {
            RaceVariant::Buggy => "order-violation-buggy",
            RaceVariant::Fixed => "order-violation-fixed",
        }
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        race_base_config()
    }

    fn setup(&self, sys: &mut MultiCoreSystem) -> Vec<ProgramId> {
        assert_eq!(sys.slave_count(), 2, "the race couples exactly two slaves");
        for (i, var) in [RACE_READY0, RACE_READY1, RACE_SHARED].iter().enumerate() {
            sys.share_var(*var, MIRROR_BASE + 8 * i)
                .expect("mirror words fit the OMAP SRAM");
        }
        // Fixed variant: the initializer hands a token to the consumer
        // after publishing, and the consumer waits for it before reading.
        let ready_out = sys.kernel_of_mut(1).create_semaphore(0);
        let ready_in = sys.kernel_of_mut(0).create_semaphore(0);
        sys.link_semaphores(1, ready_out, 0, ready_in)
            .expect("distinct slaves");

        // Slave 0: the consumer — and the trial's drain anchor, so the
        // run keeps simulating until the consumer's check has resolved.
        let consumer = {
            let mut b = ProgramBuilder::new();
            barrier(&mut b, RACE_READY0, RACE_READY1);
            match self.variant {
                RaceVariant::Buggy => {
                    // "Plenty of time": 340 cycles for the peer's 40.
                    // Only a lock-step schedule actually honours it.
                    b.push(Op::Compute(340));
                }
                RaceVariant::Fixed => {
                    b.push(Op::Compute(340));
                    b.push(Op::SemWait(ready_in));
                }
            }
            b.push(Op::ReadVar {
                var: RACE_SHARED,
                reg: 0,
            });
            guard(&mut b, 0, PAYLOAD);
            b.build().expect("consumer program is valid")
        };
        // Slave 1: the initializer.
        let initializer = {
            let mut b = ProgramBuilder::new();
            barrier(&mut b, RACE_READY1, RACE_READY0);
            b.push(Op::Compute(40));
            b.push(Op::WriteVar {
                var: RACE_SHARED,
                value: PAYLOAD,
            });
            if self.variant == RaceVariant::Fixed {
                b.push(Op::SemPost(ready_out));
            }
            b.push(Op::Exit);
            b.build().expect("initializer program is valid")
        };
        vec![
            sys.kernel_of_mut(0).register_program(consumer),
            sys.kernel_of_mut(1).register_program(initializer),
        ]
    }
}

/// A cross-core atomicity violation on a mirrored counter. See the
/// [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct AtomicityRaceScenario {
    /// Buggy (phase-staggered) or fixed (token-serialized) variant.
    pub variant: RaceVariant,
    /// Read-modify-write rounds each slave performs.
    pub rounds: i64,
}

impl AtomicityRaceScenario {
    /// The unsynchronized variant at the default round count.
    #[must_use]
    pub fn buggy() -> AtomicityRaceScenario {
        AtomicityRaceScenario {
            variant: RaceVariant::Buggy,
            rounds: 8,
        }
    }

    /// The token-serialized control variant.
    #[must_use]
    pub fn fixed() -> AtomicityRaceScenario {
        AtomicityRaceScenario {
            variant: RaceVariant::Fixed,
            ..AtomicityRaceScenario::buggy()
        }
    }
}

/// One read-modify-write round over the mirrored counter, padded to a
/// fixed period so lock-step keeps both slaves' critical windows
/// phase-locked. In the fixed variant the round is bracketed by the
/// circulating token instead of relying on phase.
fn rmw_loop(
    b: &mut ProgramBuilder,
    rounds: i64,
    pad: u32,
    token: Option<(ptest_pcore::SemId, ptest_pcore::SemId)>,
) {
    b.bind("rmw");
    if let Some((token_in, _)) = token {
        b.push(Op::SemWait(token_in));
    }
    b.push(Op::ReadVar {
        var: RACE_SHARED,
        reg: 0,
    });
    b.push(Op::AddReg { reg: 0, delta: 1 });
    b.push(Op::WriteVarReg {
        var: RACE_SHARED,
        reg: 0,
    });
    if let Some((_, token_out)) = token {
        b.push(Op::SemPost(token_out));
    }
    b.push(Op::Compute(pad));
    b.push(Op::AddReg { reg: 1, delta: 1 });
    b.branch_if_reg_eq(1, rounds, "rmw_done");
    b.jump_to("rmw");
    b.bind("rmw_done");
}

impl Scenario for AtomicityRaceScenario {
    fn name(&self) -> &str {
        match self.variant {
            RaceVariant::Buggy => "atomicity-race-buggy",
            RaceVariant::Fixed => "atomicity-race-fixed",
        }
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        race_base_config()
    }

    fn setup(&self, sys: &mut MultiCoreSystem) -> Vec<ProgramId> {
        assert_eq!(sys.slave_count(), 2, "the race couples exactly two slaves");
        for (i, var) in [RACE_READY0, RACE_READY1, RACE_SHARED, RACE_DONE1]
            .iter()
            .enumerate()
        {
            sys.share_var(*var, MIRROR_BASE + 0x100 + 8 * i)
                .expect("mirror words fit the OMAP SRAM");
        }
        // Fixed variant: one token circulating 0 -> 1 -> 0 serializes
        // the critical sections. Slave 0's inbox starts with the token.
        let in0 = sys.kernel_of_mut(0).create_semaphore(1);
        let out0 = sys.kernel_of_mut(0).create_semaphore(0);
        let in1 = sys.kernel_of_mut(1).create_semaphore(0);
        let out1 = sys.kernel_of_mut(1).create_semaphore(0);
        sys.link_semaphores(0, out0, 1, in1).expect("distinct");
        sys.link_semaphores(1, out1, 0, in0).expect("distinct");
        let token = |slave: usize| match self.variant {
            RaceVariant::Buggy => None,
            RaceVariant::Fixed => Some(if slave == 0 { (in0, out0) } else { (in1, out1) }),
        };

        // Slave 0: writer A + final-value checker (drain anchor).
        let writer_a = {
            let mut b = ProgramBuilder::new();
            barrier(&mut b, RACE_READY0, RACE_READY1);
            // Period 43: RMW window at phase [0, 3).
            rmw_loop(&mut b, self.rounds, 37, token(0));
            bounded_spin(&mut b, RACE_DONE1, 1, 6, "check");
            b.push(Op::Compute(4)); // let the last mirror epoch settle
            b.push(Op::ReadVar {
                var: RACE_SHARED,
                reg: 2,
            });
            guard(&mut b, 2, 2 * self.rounds);
            b.build().expect("writer A program is valid")
        };
        // Slave 1: writer B, phase-shifted by half a period.
        let writer_b = {
            let mut b = ProgramBuilder::new();
            barrier(&mut b, RACE_READY1, RACE_READY0);
            b.push(Op::Compute(21));
            rmw_loop(&mut b, self.rounds, 37, token(1));
            b.push(Op::WriteVar {
                var: RACE_DONE1,
                value: 1,
            });
            b.push(Op::Exit);
            b.build().expect("writer B program is valid")
        };
        vec![
            sys.kernel_of_mut(0).register_program(writer_a),
            sys.kernel_of_mut(1).register_program(writer_b),
        ]
    }
}

/// Whether a report contains the races' manifestation symptom: the
/// guard's stack-probe task fault on the checker task.
#[must_use]
pub fn race_manifested(report: &ptest_core::TestReport) -> bool {
    report.found(|k| {
        matches!(
            k,
            ptest_core::BugKind::TaskFault {
                fault: ptest_pcore::TaskFault::StackOverflow,
                ..
            }
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::{AdaptiveTest, Configured, TrialEngine, TrialScratch};

    /// Runs `scenario` under an explicit schedule spec at a seed pair.
    fn run_scheduled(
        scenario: &dyn Scenario,
        spec: ScheduleSpec,
        seed: u64,
        schedule_seed: u64,
    ) -> ptest_core::TestReport {
        let mut cfg = scenario.base_config();
        cfg.schedule = spec;
        let engine = TrialEngine::new(cfg).expect("valid scenario config");
        engine
            .run_scenario_trial_scheduled(scenario, seed, schedule_seed, &mut TrialScratch::new())
            .expect("trial runs")
    }

    /// The first `(seed, schedule_seed)` pair (small search) at which
    /// the scenario manifests under randomized priorities.
    fn find_manifestation(scenario: &dyn Scenario) -> Option<(u64, u64)> {
        for seed in 0..4 {
            for schedule_seed in 0..8 {
                let report = run_scheduled(
                    scenario,
                    ScheduleSpec::random_priority(),
                    seed,
                    schedule_seed,
                );
                if race_manifested(&report) {
                    return Some((seed, schedule_seed));
                }
            }
        }
        None
    }

    #[test]
    fn order_violation_is_unreachable_under_lock_step() {
        for seed in 0..6 {
            let report = run_scheduled(
                &OrderViolationScenario::buggy(),
                ScheduleSpec::LockStep,
                seed,
                seed ^ 0xABCD,
            );
            assert!(
                !race_manifested(&report),
                "seed {seed}: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn order_violation_manifests_under_random_priorities_and_replays() {
        let (seed, schedule_seed) = find_manifestation(&OrderViolationScenario::buggy())
            .expect("some seed pair must expose the order violation");
        let spec = ScheduleSpec::random_priority();
        let a = run_scheduled(&OrderViolationScenario::buggy(), spec, seed, schedule_seed);
        let b = run_scheduled(&OrderViolationScenario::buggy(), spec, seed, schedule_seed);
        assert!(race_manifested(&a));
        assert_eq!(a.bugs.len(), b.bugs.len());
        for (x, y) in a.bugs.iter().zip(&b.bugs) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.detected_at, y.detected_at, "seed-pair replay is exact");
        }
    }

    #[test]
    fn fixed_order_violation_is_clean_under_random_priorities() {
        assert!(
            find_manifestation(&OrderViolationScenario::fixed()).is_none(),
            "the semaphore-ordered variant must never trip its guard"
        );
    }

    #[test]
    fn atomicity_race_is_unreachable_under_lock_step() {
        for seed in 0..6 {
            let report = run_scheduled(
                &AtomicityRaceScenario::buggy(),
                ScheduleSpec::LockStep,
                seed,
                seed ^ 0xEF01,
            );
            assert!(
                !race_manifested(&report),
                "seed {seed}: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn atomicity_race_manifests_under_random_priorities_and_replays() {
        let (seed, schedule_seed) = find_manifestation(&AtomicityRaceScenario::buggy())
            .expect("some seed pair must expose the lost update");
        let spec = ScheduleSpec::random_priority();
        let a = run_scheduled(&AtomicityRaceScenario::buggy(), spec, seed, schedule_seed);
        let b = run_scheduled(&AtomicityRaceScenario::buggy(), spec, seed, schedule_seed);
        assert!(race_manifested(&a));
        assert_eq!(
            a.bugs.iter().map(|x| x.detected_at).collect::<Vec<_>>(),
            b.bugs.iter().map(|x| x.detected_at).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fixed_atomicity_race_is_clean_under_random_priorities() {
        assert!(
            find_manifestation(&AtomicityRaceScenario::fixed()).is_none(),
            "the token-serialized variant must never lose an update"
        );
    }

    #[test]
    fn run_scenario_uses_the_scenarios_randomized_schedule_by_default() {
        // base_config carries ScheduleSpec::random_priority(); the plain
        // single-seed entry point derives the schedule seed from the
        // pattern seed, so this is still fully reproducible.
        let report = AdaptiveTest::run_scenario(&OrderViolationScenario::buggy(), 1).unwrap();
        assert_eq!(
            report.schedule_seed,
            ptest_core::derived_schedule_seed(1),
            "{}",
            report.summary()
        );
        let again = AdaptiveTest::run_scenario(&OrderViolationScenario::buggy(), 1).unwrap();
        assert_eq!(report.bugs.len(), again.bugs.len());
        assert_eq!(report.cycles, again.cycles);
    }

    #[test]
    fn lock_step_configured_variant_still_completes_the_protocol() {
        // Sanity: under lock-step the buggy order violation's consumer
        // reads the initialized payload — the guard passes and the
        // protocol drains (no spin-budget bailout).
        let scenario = Configured::adjust(OrderViolationScenario::buggy(), |cfg| {
            cfg.schedule = ScheduleSpec::LockStep;
        });
        let report = AdaptiveTest::run_scenario(&scenario, 2).unwrap();
        assert!(!race_manifested(&report), "{}", report.summary());
    }
}
