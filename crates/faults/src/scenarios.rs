//! Additional fault scenarios beyond the paper's two case studies:
//! starvation, priority inversion, and a lost-update race. These feed the
//! baseline-comparison experiment (which bug classes does each testing
//! strategy catch?) and the extended examples.

use ptest_master::{DualCoreSystem, SystemConfig};
use ptest_pcore::{Op, Priority, Program, ProgramBuilder, SvcReply, SvcRequest, TaskId, VarId};
use ptest_soc::Cycles;

/// The shared counter used by the lost-update race.
pub const RACE_COUNTER: VarId = VarId(4);

/// A spinning task that never yields or terminates: any lower-priority
/// task starves behind it (CPU starvation).
#[must_use]
pub fn cpu_hog_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.bind("top");
    b.push(Op::Compute(1_000));
    b.jump_to("top");
    b.build().expect("hog program is valid")
}

/// A well-behaved worker: computes and exits.
#[must_use]
pub fn worker_program(work: u32) -> Program {
    Program::new(vec![Op::Compute(work.max(1)), Op::Exit]).expect("worker program is valid")
}

/// Builds the starvation scenario: a high-priority hog and a low-priority
/// worker. Returns `(system, hog_task, worker_task)`.
///
/// # Panics
///
/// Panics if setup commands fail (cannot happen on a default kernel).
#[must_use]
pub fn starvation_system() -> (DualCoreSystem, TaskId, TaskId) {
    let mut sys = DualCoreSystem::new(SystemConfig::default());
    let kernel = sys.kernel_mut();
    let hog = kernel.register_program(cpu_hog_program());
    let worker = kernel.register_program(worker_program(100));
    let SvcReply::Created(hog_task) = kernel
        .dispatch(
            SvcRequest::Create {
                program: hog,
                priority: Priority::new(200),
                stack_bytes: None,
            },
            Cycles::ZERO,
        )
        .expect("create hog")
    else {
        unreachable!()
    };
    let SvcReply::Created(worker_task) = kernel
        .dispatch(
            SvcRequest::Create {
                program: worker,
                priority: Priority::new(10),
                stack_bytes: None,
            },
            Cycles::ZERO,
        )
        .expect("create worker")
    else {
        unreachable!()
    };
    (sys, hog_task, worker_task)
}

/// Builds the priority-inversion scenario: low holds a mutex, high blocks
/// on it, medium spins and keeps low off the CPU, so high waits
/// unboundedly (pCore has no priority inheritance).
///
/// Returns `(system, low, medium, high)`.
///
/// # Panics
///
/// Panics if setup commands fail (cannot happen on a default kernel).
#[must_use]
pub fn priority_inversion_system() -> (DualCoreSystem, TaskId, TaskId, TaskId) {
    let mut sys = DualCoreSystem::new(SystemConfig::default());
    let kernel = sys.kernel_mut();
    let mutex = kernel.create_mutex();

    // Low: grab the mutex, then do long work before releasing.
    let low_prog = {
        let mut b = ProgramBuilder::new();
        b.push(Op::MutexLock(mutex));
        b.push(Op::Compute(100_000));
        b.push(Op::MutexUnlock(mutex));
        b.push(Op::Exit);
        kernel.register_program(b.build().expect("valid"))
    };
    // High: started a bit later, needs the same mutex.
    let high_prog = {
        let mut b = ProgramBuilder::new();
        b.push(Op::SleepFor(50)); // let low acquire first
        b.push(Op::MutexLock(mutex));
        b.push(Op::Compute(10));
        b.push(Op::MutexUnlock(mutex));
        b.push(Op::Exit);
        kernel.register_program(b.build().expect("valid"))
    };
    // Medium: pure spin, no mutex involvement.
    let medium_prog = {
        let mut b = ProgramBuilder::new();
        b.push(Op::SleepFor(60)); // arrive after high blocks
        b.bind("top");
        b.push(Op::Compute(1_000));
        b.jump_to("top");
        kernel.register_program(b.build().expect("valid"))
    };

    let create = |kernel: &mut ptest_pcore::Kernel, prog, prio| {
        let SvcReply::Created(t) = kernel
            .dispatch(
                SvcRequest::Create {
                    program: prog,
                    priority: Priority::new(prio),
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .expect("create")
        else {
            unreachable!()
        };
        t
    };
    let low = create(kernel, low_prog, 10);
    let high = create(kernel, high_prog, 200);
    let medium = create(kernel, medium_prog, 100);
    (sys, low, medium, high)
}

/// Builds the lost-update race: `writers` tasks each add 1 to a shared
/// counter `rounds` times *without synchronization* (read, compute,
/// write back). Returns the system and the task ids.
///
/// After all writers exit, the counter should equal `writers × rounds`;
/// any smaller value is a lost update. Note that pTest's bug detector
/// does **not** flag this class — the final-value oracle
/// [`lost_updates`] must be consulted — which is exactly the boundary
/// the paper draws around hang/crash anomalies.
///
/// # Panics
///
/// Panics if setup commands fail (cannot happen on a default kernel).
#[must_use]
pub fn race_system(writers: usize, rounds: u16) -> (DualCoreSystem, Vec<TaskId>) {
    let mut sys = DualCoreSystem::new(SystemConfig::default());
    let kernel = sys.kernel_mut();
    let mut tasks = Vec::new();
    for w in 0..writers {
        let prog = {
            let mut b = ProgramBuilder::new();
            b.push(Op::AddReg {
                reg: 1,
                delta: i64::from(rounds),
            });
            b.bind("loop");
            // read counter -> r0; yield inside the window; write r0+1 back
            b.push(Op::ReadVar {
                var: RACE_COUNTER,
                reg: 0,
            });
            b.push(Op::Yield); // the race window
            b.push(Op::AddReg { reg: 0, delta: 1 });
            b.push(Op::WriteVarReg {
                var: RACE_COUNTER,
                reg: 0,
            });
            b.push(Op::AddReg { reg: 1, delta: -1 });
            b.branch_if_reg_eq(1, 0, "done");
            b.jump_to("loop");
            b.bind("done");
            b.push(Op::Exit);
            kernel.register_program(b.build().expect("valid"))
        };
        let SvcReply::Created(t) = kernel
            .dispatch(
                SvcRequest::Create {
                    program: prog,
                    priority: Priority::new((10 + w) as u8),
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .expect("create writer")
        else {
            unreachable!()
        };
        tasks.push(t);
    }
    (sys, tasks)
}

/// The lost-update oracle: how many increments went missing.
#[must_use]
pub fn lost_updates(sys: &DualCoreSystem, writers: usize, rounds: u16) -> i64 {
    let expected = (writers as i64) * i64::from(rounds);
    let actual = sys.kernel().var(RACE_COUNTER).unwrap_or(0);
    expected - actual
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::{BugDetector, BugKind, DetectorConfig};
    use ptest_pcore::TaskState;

    #[test]
    fn starvation_is_detected() {
        let (mut sys, _hog, worker) = starvation_system();
        let mut detector = BugDetector::new(DetectorConfig {
            progress_window: Cycles::new(5_000),
            ..DetectorConfig::default()
        });
        let mut found = None;
        for i in 0..100_000u64 {
            sys.step();
            if i % 500 == 0 {
                for bug in detector.observe(&sys, None, true) {
                    if let BugKind::Starvation { task, runnable } = bug.kind {
                        found = Some((task, runnable));
                    }
                }
            }
            if found.is_some() {
                break;
            }
        }
        let (task, runnable) = found.expect("worker must be reported starved");
        assert_eq!(task, worker);
        assert!(runnable, "CPU starvation: ready but never scheduled");
    }

    #[test]
    fn priority_inversion_starves_high() {
        let (mut sys, _low, _medium, high) = priority_inversion_system();
        let mut detector = BugDetector::new(DetectorConfig {
            progress_window: Cycles::new(5_000),
            ..DetectorConfig::default()
        });
        let mut starved_high = false;
        for i in 0..200_000u64 {
            sys.step();
            if i % 500 == 0 {
                for bug in detector.observe(&sys, None, true) {
                    if let BugKind::Starvation { task, runnable } = bug.kind {
                        if task == high {
                            starved_high = true;
                            assert!(!runnable, "high is blocked on the inverted mutex");
                        }
                    }
                }
            }
            if starved_high {
                break;
            }
        }
        assert!(starved_high, "priority inversion must starve the high task");
        // High never completed.
        assert!(!matches!(
            sys.kernel().task_state(high),
            Some(TaskState::Terminated(_))
        ));
    }

    #[test]
    fn lost_update_race_fires_under_yield_window() {
        let (mut sys, tasks) = race_system(2, 50);
        for _ in 0..200_000u64 {
            sys.step();
            if tasks
                .iter()
                .all(|&t| matches!(sys.kernel().task_state(t), Some(TaskState::Terminated(_))))
            {
                break;
            }
        }
        let lost = lost_updates(&sys, 2, 50);
        assert!(lost > 0, "yield window must lose updates, lost {lost}");
    }

    #[test]
    fn race_oracle_counts_correctly_for_single_writer() {
        let (mut sys, tasks) = race_system(1, 20);
        for _ in 0..100_000u64 {
            sys.step();
            if tasks
                .iter()
                .all(|&t| matches!(sys.kernel().task_state(t), Some(TaskState::Terminated(_))))
            {
                break;
            }
        }
        assert_eq!(
            lost_updates(&sys, 1, 20),
            0,
            "one writer cannot race itself"
        );
    }
}
