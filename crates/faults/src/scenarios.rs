//! Additional fault scenarios beyond the paper's two case studies:
//! starvation, priority inversion, and a lost-update race. These feed the
//! baseline-comparison experiment (which bug classes does each testing
//! strategy catch?) and the extended examples.

use ptest_core::{AdaptiveTestConfig, MergeOp, Scenario};
use ptest_master::{DualCoreSystem, SystemConfig};
use ptest_pcore::{
    Op, Priority, Program, ProgramBuilder, ProgramId, SvcReply, SvcRequest, TaskId, VarId,
};
use ptest_soc::Cycles;

/// The shared counter used by the lost-update race.
pub const RACE_COUNTER: VarId = VarId(4);

/// A spinning task that never yields or terminates: any lower-priority
/// task starves behind it (CPU starvation).
#[must_use]
pub fn cpu_hog_program() -> Program {
    let mut b = ProgramBuilder::new();
    b.bind("top");
    b.push(Op::Compute(1_000));
    b.jump_to("top");
    b.build().expect("hog program is valid")
}

/// A well-behaved worker: computes and exits.
#[must_use]
pub fn worker_program(work: u32) -> Program {
    Program::new(vec![Op::Compute(work.max(1)), Op::Exit]).expect("worker program is valid")
}

/// Builds the starvation scenario: a high-priority hog and a low-priority
/// worker. Returns `(system, hog_task, worker_task)`.
///
/// # Panics
///
/// Panics if setup commands fail (cannot happen on a default kernel).
#[must_use]
pub fn starvation_system() -> (DualCoreSystem, TaskId, TaskId) {
    let mut sys = DualCoreSystem::new(SystemConfig::default());
    let kernel = sys.kernel_mut();
    let hog = kernel.register_program(cpu_hog_program());
    let worker = kernel.register_program(worker_program(100));
    let SvcReply::Created(hog_task) = kernel
        .dispatch(
            SvcRequest::Create {
                program: hog,
                priority: Priority::new(200),
                stack_bytes: None,
            },
            Cycles::ZERO,
        )
        .expect("create hog")
    else {
        unreachable!()
    };
    let SvcReply::Created(worker_task) = kernel
        .dispatch(
            SvcRequest::Create {
                program: worker,
                priority: Priority::new(10),
                stack_bytes: None,
            },
            Cycles::ZERO,
        )
        .expect("create worker")
    else {
        unreachable!()
    };
    (sys, hog_task, worker_task)
}

/// Builds the priority-inversion scenario: low holds a mutex, high blocks
/// on it, medium spins and keeps low off the CPU, so high waits
/// unboundedly (pCore has no priority inheritance).
///
/// Returns `(system, low, medium, high)`.
///
/// # Panics
///
/// Panics if setup commands fail (cannot happen on a default kernel).
#[must_use]
pub fn priority_inversion_system() -> (DualCoreSystem, TaskId, TaskId, TaskId) {
    let mut sys = DualCoreSystem::new(SystemConfig::default());
    let kernel = sys.kernel_mut();
    let mutex = kernel.create_mutex();

    // Low: grab the mutex, then do long work before releasing.
    let low_prog = {
        let mut b = ProgramBuilder::new();
        b.push(Op::MutexLock(mutex));
        b.push(Op::Compute(100_000));
        b.push(Op::MutexUnlock(mutex));
        b.push(Op::Exit);
        kernel.register_program(b.build().expect("valid"))
    };
    // High: started a bit later, needs the same mutex.
    let high_prog = {
        let mut b = ProgramBuilder::new();
        b.push(Op::SleepFor(50)); // let low acquire first
        b.push(Op::MutexLock(mutex));
        b.push(Op::Compute(10));
        b.push(Op::MutexUnlock(mutex));
        b.push(Op::Exit);
        kernel.register_program(b.build().expect("valid"))
    };
    // Medium: pure spin, no mutex involvement.
    let medium_prog = {
        let mut b = ProgramBuilder::new();
        b.push(Op::SleepFor(60)); // arrive after high blocks
        b.bind("top");
        b.push(Op::Compute(1_000));
        b.jump_to("top");
        kernel.register_program(b.build().expect("valid"))
    };

    let create = |kernel: &mut ptest_pcore::Kernel, prog, prio| {
        let SvcReply::Created(t) = kernel
            .dispatch(
                SvcRequest::Create {
                    program: prog,
                    priority: Priority::new(prio),
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .expect("create")
        else {
            unreachable!()
        };
        t
    };
    let low = create(kernel, low_prog, 10);
    let high = create(kernel, high_prog, 200);
    let medium = create(kernel, medium_prog, 100);
    (sys, low, medium, high)
}

/// The unsynchronized counter-increment program of the lost-update race:
/// `rounds` iterations of read → yield (the race window) → write-back.
#[must_use]
pub fn race_writer_program(rounds: u16) -> Program {
    let mut b = ProgramBuilder::new();
    b.push(Op::AddReg {
        reg: 1,
        delta: i64::from(rounds),
    });
    b.bind("loop");
    // read counter -> r0; yield inside the window; write r0+1 back
    b.push(Op::ReadVar {
        var: RACE_COUNTER,
        reg: 0,
    });
    b.push(Op::Yield); // the race window
    b.push(Op::AddReg { reg: 0, delta: 1 });
    b.push(Op::WriteVarReg {
        var: RACE_COUNTER,
        reg: 0,
    });
    b.push(Op::AddReg { reg: 1, delta: -1 });
    b.branch_if_reg_eq(1, 0, "done");
    b.jump_to("loop");
    b.bind("done");
    b.push(Op::Exit);
    b.build().expect("race writer program is valid")
}

/// Builds the lost-update race: `writers` tasks each add 1 to a shared
/// counter `rounds` times *without synchronization* (read, compute,
/// write back). Returns the system and the task ids.
///
/// After all writers exit, the counter should equal `writers × rounds`;
/// any smaller value is a lost update. Note that pTest's bug detector
/// does **not** flag this class — the final-value oracle
/// [`lost_updates`] must be consulted — which is exactly the boundary
/// the paper draws around hang/crash anomalies.
///
/// # Panics
///
/// Panics if setup commands fail (cannot happen on a default kernel).
#[must_use]
pub fn race_system(writers: usize, rounds: u16) -> (DualCoreSystem, Vec<TaskId>) {
    let mut sys = DualCoreSystem::new(SystemConfig::default());
    let kernel = sys.kernel_mut();
    let mut tasks = Vec::new();
    for w in 0..writers {
        let prog = kernel.register_program(race_writer_program(rounds));
        let SvcReply::Created(t) = kernel
            .dispatch(
                SvcRequest::Create {
                    program: prog,
                    priority: Priority::new((10 + w) as u8),
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .expect("create writer")
        else {
            unreachable!()
        };
        tasks.push(t);
    }
    (sys, tasks)
}

/// The lost-update oracle: how many increments went missing.
#[must_use]
pub fn lost_updates(sys: &DualCoreSystem, writers: usize, rounds: u16) -> i64 {
    let expected = (writers as i64) * i64::from(rounds);
    let actual = sys.kernel().var(RACE_COUNTER).unwrap_or(0);
    expected - actual
}

/// The lost-update race as a campaign-ready [`Scenario`]: each test
/// pattern controls one unsynchronized counter writer. The adaptive
/// detector does not flag lost updates — consult [`lost_updates`] after
/// the run — but the scenario exercises the engine on a workload whose
/// tasks interleave through a real shared-memory window.
#[derive(Debug, Clone, Copy)]
pub struct RaceWorkloadScenario {
    /// Concurrent writer tasks (= patterns).
    pub writers: usize,
    /// Increments per writer.
    pub rounds: u16,
}

impl Default for RaceWorkloadScenario {
    fn default() -> RaceWorkloadScenario {
        RaceWorkloadScenario {
            writers: 3,
            rounds: 20,
        }
    }
}

impl Scenario for RaceWorkloadScenario {
    fn name(&self) -> &str {
        "lost-update-race"
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        AdaptiveTestConfig {
            n: self.writers,
            s: 8,
            op: MergeOp::cyclic(),
            inter_command_gap: 30,
            ..AdaptiveTestConfig::default()
        }
    }

    fn setup(&self, sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        (0..self.writers)
            .map(|_| {
                sys.kernel_mut()
                    .register_program(race_writer_program(self.rounds))
            })
            .collect()
    }
}

/// CPU starvation as a campaign-ready [`Scenario`]: pattern 0 starts a
/// well-behaved worker, pattern 1 a non-yielding hog in a *higher*
/// priority band. Once the merged pattern is delivered, the hog keeps
/// spinning and the worker never runs — the detector reports starvation
/// (and the hog's no-termination livelock).
#[derive(Debug, Clone, Copy, Default)]
pub struct StarvationScenario;

impl Scenario for StarvationScenario {
    fn name(&self) -> &str {
        "cpu-starvation"
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        AdaptiveTestConfig {
            n: 2,
            s: 6,
            op: MergeOp::cyclic(),
            detector: ptest_core::DetectorConfig {
                progress_window: Cycles::new(10_000),
                ..ptest_core::DetectorConfig::default()
            },
            max_cycles: 400_000,
            ..AdaptiveTestConfig::default()
        }
    }

    fn setup(&self, sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        let kernel = sys.kernel_mut();
        let worker = kernel.register_program(worker_program(100));
        let hog = kernel.register_program(cpu_hog_program());
        // Pattern 1 draws from the higher priority band, so the hog
        // outranks the worker exactly as in `starvation_system`.
        vec![worker, hog]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::{BugDetector, BugKind, DetectorConfig};
    use ptest_pcore::TaskState;

    #[test]
    fn starvation_is_detected() {
        let (mut sys, _hog, worker) = starvation_system();
        let mut detector = BugDetector::new(DetectorConfig {
            progress_window: Cycles::new(5_000),
            ..DetectorConfig::default()
        });
        let mut found = None;
        for i in 0..100_000u64 {
            sys.step();
            if i % 500 == 0 {
                for bug in detector.observe(&sys, None, true) {
                    if let BugKind::Starvation { task, runnable } = bug.kind {
                        found = Some((task, runnable));
                    }
                }
            }
            if found.is_some() {
                break;
            }
        }
        let (task, runnable) = found.expect("worker must be reported starved");
        assert_eq!(task, worker);
        assert!(runnable, "CPU starvation: ready but never scheduled");
    }

    #[test]
    fn priority_inversion_starves_high() {
        let (mut sys, _low, _medium, high) = priority_inversion_system();
        let mut detector = BugDetector::new(DetectorConfig {
            progress_window: Cycles::new(5_000),
            ..DetectorConfig::default()
        });
        let mut starved_high = false;
        for i in 0..200_000u64 {
            sys.step();
            if i % 500 == 0 {
                for bug in detector.observe(&sys, None, true) {
                    if let BugKind::Starvation { task, runnable } = bug.kind {
                        if task == high {
                            starved_high = true;
                            assert!(!runnable, "high is blocked on the inverted mutex");
                        }
                    }
                }
            }
            if starved_high {
                break;
            }
        }
        assert!(starved_high, "priority inversion must starve the high task");
        // High never completed.
        assert!(!matches!(
            sys.kernel().task_state(high),
            Some(TaskState::Terminated(_))
        ));
    }

    #[test]
    fn lost_update_race_fires_under_yield_window() {
        let (mut sys, tasks) = race_system(2, 50);
        for _ in 0..200_000u64 {
            sys.step();
            if tasks
                .iter()
                .all(|&t| matches!(sys.kernel().task_state(t), Some(TaskState::Terminated(_))))
            {
                break;
            }
        }
        let lost = lost_updates(&sys, 2, 50);
        assert!(lost > 0, "yield window must lose updates, lost {lost}");
    }

    #[test]
    fn starvation_scenario_is_detected_by_the_adaptive_engine() {
        use ptest_core::AdaptiveTest;
        let scenario = StarvationScenario;
        let mut found = false;
        for seed in 0..8 {
            let report = AdaptiveTest::run_scenario(&scenario, seed).unwrap();
            if report.found(|k| matches!(k, BugKind::Starvation { .. } | BugKind::Livelock { .. }))
            {
                found = true;
                break;
            }
        }
        assert!(found, "the hog must starve the worker for some seed");
    }

    #[test]
    fn race_scenario_runs_and_stays_legal() {
        use ptest_core::AdaptiveTest;
        let report = AdaptiveTest::run_scenario(&RaceWorkloadScenario::default(), 4).unwrap();
        assert_eq!(report.ordering_errors(), 0);
        assert!(report.commands_issued > 0);
    }

    #[test]
    fn race_oracle_counts_correctly_for_single_writer() {
        let (mut sys, tasks) = race_system(1, 20);
        for _ in 0..100_000u64 {
            sys.step();
            if tasks
                .iter()
                .all(|&t| matches!(sys.kernel().task_state(t), Some(TaskState::Terminated(_))))
            {
                break;
            }
        }
        assert_eq!(
            lost_updates(&sys, 1, 20),
            0,
            "one writer cannot race itself"
        );
    }
}
