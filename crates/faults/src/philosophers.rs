//! The dining-philosophers deadlock of case study 2.
//!
//! "The algorithm consisted of three concurrent tasks in pCore and three
//! shared resources that were mutually exclusive. A task needed two
//! shared resources to resume its execution." In the buggy version every
//! philosopher grabs its left fork first; a cyclic interleaving leaves
//! each holding one fork and waiting for the next — a deadlock that
//! pTest's wait-for-graph detector reports. The corrected version breaks
//! the cycle by reversing one philosopher's acquisition order.

use ptest_core::{AdaptiveTestConfig, DetectorConfig, MergeOp, Scenario};
use ptest_master::DualCoreSystem;
use ptest_pcore::{MutexId, Op, Program, ProgramBuilder, ProgramId};
use ptest_soc::Cycles;

/// Number of philosophers (and forks) in the paper's case study.
pub const PHILOSOPHERS: usize = 3;

/// Whether to build the buggy (deadlocking) or corrected variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Variant {
    /// All philosophers take their left fork first — deadlock-prone.
    Buggy,
    /// The last philosopher takes its right fork first — deadlock-free.
    Fixed,
}

/// Builds philosopher `i`'s program over the given fork mutexes.
///
/// The `Yield` between the two acquisitions is the scheduling point that
/// lets the cyclic interleaving form (on real hardware, any preemption
/// between the locks plays this role).
#[must_use]
pub fn philosopher_program(i: usize, forks: &[MutexId], variant: Variant) -> Program {
    let left = forks[i];
    let right = forks[(i + 1) % forks.len()];
    let (first, second) = match variant {
        Variant::Buggy => (left, right),
        Variant::Fixed if i == forks.len() - 1 => (right, left),
        Variant::Fixed => (left, right),
    };
    let mut b = ProgramBuilder::new();
    b.push(Op::MutexLock(first));
    // Hold the first fork while the rest of the table is being created —
    // the race window that lets the cyclic acquisition form (on the real
    // target, the work a philosopher does between its two acquisitions).
    // 40 cycles ≈ one remote command of master latency: only back-to-back
    // creates (the strict-alternation merge) land inside it, which is why
    // the paper had to *set* the merger to force cyclic sequences.
    b.push(Op::Compute(40));
    b.push(Op::Yield); // a scheduling point between the two locks
    b.push(Op::MutexLock(second));
    b.push(Op::Compute(20)); // eat
    b.push(Op::MutexUnlock(second));
    b.push(Op::MutexUnlock(first));
    b.push(Op::Exit);
    b.build().expect("philosopher program is valid")
}

/// Scenario setup for [`AdaptiveTest::run`]: creates the three forks and
/// registers the three philosopher programs, returning one program per
/// test pattern.
///
/// [`AdaptiveTest::run`]: ptest_core::AdaptiveTest::run
pub fn setup(variant: Variant) -> impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId> {
    move |sys: &mut DualCoreSystem| {
        let kernel = sys.kernel_mut();
        let forks: Vec<MutexId> = (0..PHILOSOPHERS).map(|_| kernel.create_mutex()).collect();
        (0..PHILOSOPHERS)
            .map(|i| kernel.register_program(philosopher_program(i, &forks, variant)))
            .collect()
    }
}

/// The pTest configuration the paper's case study corresponds to: three
/// patterns whose merged interleaving keeps all three tasks alive
/// concurrently ("cyclic execution sequences"), with a fast detector
/// cadence so the formed deadlock is observed before a `task_delete`
/// breaks it.
#[must_use]
pub fn case2_config(seed: u64) -> AdaptiveTestConfig {
    AdaptiveTestConfig {
        n: PHILOSOPHERS,
        s: 12,
        op: MergeOp::cyclic(),
        seed,
        check_interval: 25,
        // Realistic master-side command latency: the philosophers must
        // get CPU time between commands for the interleaving to matter.
        inter_command_gap: 30,
        // A TCH-heavy distribution keeps the created tasks alive (late
        // TD/TY), giving the cyclic acquisition time to form — the
        // "probability distributions … for different testing scenarios"
        // the paper's future work asks about, used here deliberately.
        pd: ptest_automata::ProbabilityAssignment::weights([
            ("TC", 1.0),
            ("TCH", 0.8),
            ("TS", 0.08),
            ("TD", 0.06),
            ("TY", 0.06),
            ("TR", 1.0),
        ]),
        detector: DetectorConfig {
            progress_window: Cycles::new(30_000),
            ..DetectorConfig::default()
        },
        max_cycles: 500_000,
        ..AdaptiveTestConfig::default()
    }
}

/// Case study 2 as a campaign-ready [`Scenario`]: three philosopher
/// programs over three fork mutexes, under [`case2_config`].
#[derive(Debug, Clone, Copy)]
pub struct PhilosophersScenario {
    /// Buggy (left-first) or corrected lock order.
    pub variant: Variant,
}

impl PhilosophersScenario {
    /// The paper's deadlock-prone variant.
    #[must_use]
    pub fn buggy() -> PhilosophersScenario {
        PhilosophersScenario {
            variant: Variant::Buggy,
        }
    }

    /// The corrected control variant.
    #[must_use]
    pub fn fixed() -> PhilosophersScenario {
        PhilosophersScenario {
            variant: Variant::Fixed,
        }
    }
}

impl Scenario for PhilosophersScenario {
    fn name(&self) -> &str {
        match self.variant {
            Variant::Buggy => "philosophers-buggy",
            Variant::Fixed => "philosophers-fixed",
        }
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        case2_config(0)
    }

    fn setup(&self, sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        let kernel = sys.kernel_mut();
        let forks: Vec<MutexId> = (0..PHILOSOPHERS).map(|_| kernel.create_mutex()).collect();
        (0..PHILOSOPHERS)
            .map(|i| kernel.register_program(philosopher_program(i, &forks, self.variant)))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::{AdaptiveTest, BugKind};

    #[test]
    fn buggy_variant_deadlocks_under_cyclic_merge() {
        // Sweep a few seeds; the cyclic merge forms the deadlock whenever
        // all three lifecycles overlap, which is the common case.
        let mut found = false;
        for seed in 0..10 {
            let report = AdaptiveTest::run(case2_config(seed), setup(Variant::Buggy)).unwrap();
            if report.found(|k| matches!(k, BugKind::Deadlock { .. })) {
                found = true;
                let bug = report
                    .bugs
                    .iter()
                    .find(|b| matches!(b.kind, BugKind::Deadlock { .. }))
                    .unwrap();
                if let BugKind::Deadlock { cycle } = &bug.kind {
                    // Usually the full three-way cycle; a concurrent
                    // suspend/delete can shrink it to two.
                    assert!(
                        (2..=3).contains(&cycle.len()),
                        "cycle among philosophers: {cycle:?}"
                    );
                }
                assert!(!bug.state_records.is_empty());
                break;
            }
        }
        assert!(
            found,
            "cyclic merge must uncover the deadlock within 10 seeds"
        );
    }

    #[test]
    fn fixed_variant_never_deadlocks() {
        for seed in 0..5 {
            let report = AdaptiveTest::run(case2_config(seed), setup(Variant::Fixed)).unwrap();
            assert!(
                !report.found(|k| matches!(k, BugKind::Deadlock { .. })),
                "seed {seed}: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn sequential_merge_hides_the_deadlock() {
        // The ablation the merger exists for: without interleaving the
        // lifecycles never overlap and the bug cannot fire.
        for seed in 0..5 {
            let mut cfg = case2_config(seed);
            cfg.op = MergeOp::Sequential;
            let report = AdaptiveTest::run(cfg, setup(Variant::Buggy)).unwrap();
            assert!(
                !report.found(|k| matches!(k, BugKind::Deadlock { .. })),
                "seed {seed}: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn scenario_setup_matches_closure_setup() {
        let scenario = PhilosophersScenario::buggy();
        let mut a = DualCoreSystem::new(scenario.base_config().system);
        let mut b = DualCoreSystem::new(case2_config(0).system);
        assert_eq!(scenario.setup(&mut a), setup(Variant::Buggy)(&mut b));
        let report = AdaptiveTest::run_scenario(&scenario, 3).unwrap();
        let direct = AdaptiveTest::run(case2_config(3), setup(Variant::Buggy)).unwrap();
        assert_eq!(report.commands_issued, direct.commands_issued);
        assert_eq!(report.bugs.len(), direct.bugs.len());
    }

    #[test]
    fn programs_differ_only_in_lock_order() {
        let forks = vec![MutexId(0), MutexId(1), MutexId(2)];
        let buggy = philosopher_program(2, &forks, Variant::Buggy);
        let fixed = philosopher_program(2, &forks, Variant::Fixed);
        assert_ne!(buggy, fixed);
        assert_eq!(
            philosopher_program(0, &forks, Variant::Buggy),
            philosopher_program(0, &forks, Variant::Fixed),
            "only the last philosopher changes"
        );
    }
}
