//! Memory-model-sensitive cross-core races: bugs that are **invisible
//! under sequentially consistent propagation** no matter which schedule
//! or patterns drive the trial, and only manifest when a
//! [`StoreBufferModel`](ptest_master::StoreBufferModel) delays store
//! visibility per observer.
//!
//! Both scenarios couple slave kernels through SRAM-mirrored shared
//! variables and align their tasks with bounded spin barriers, exactly
//! like [`races`](crate::races) — but where those bugs need a hostile
//! *schedule*, these need hostile *store visibility*:
//!
//! * [`StoreVisibilityScenario`] — Dekker's flag protocol on two
//!   slaves: each announces its flag, computes briefly, then reads the
//!   peer's flag and enters a critical section only when the peer's
//!   flag still reads zero. Under sequential consistency at most one
//!   task can miss the other's announcement (a cycle-counting argument
//!   independent of the schedule), so mutual exclusion holds. A store
//!   buffer can delay *both* announcements past *both* reads; both
//!   tasks enter, each then observes the other inside the critical
//!   section and trips its guard — a stack-probe task fault the
//!   detector reports and the `(pattern, schedule, memory)` seed triple
//!   replays byte for byte.
//! * [`IriwScenario`] — independent reads of independent writes across
//!   four slaves: two writers publish `X` and `Y` from a common
//!   semaphore-aligned instant; reader 0 waits for `X` then samples
//!   `Y`; reader 1 waits for `Y` then samples `X` and publishes what it
//!   saw. Any single
//!   total store order makes the readers agree on at least one write;
//!   per-observer delivery delays (a non-multi-copy-atomic relaxation)
//!   let each reader see "its" write first and the other's late — the
//!   checker on slave 0 trips when both readers observed stale values.
//!
//! Each scenario has a `fenced` control variant using [`Op::Fence`] —
//! a cumulative barrier that drains the fencing core's own store buffer
//! *and* force-publishes every foreign store that core has already
//! observed. Fencing the writers' announcements fixes Dekker; IRIW is
//! the textbook case writer-side fences cannot fix, so its control
//! fences the *readers* between their two loads. Both controls stay
//! clean under every memory seed; the integration tests pin all four
//! quadrants (variant × memory model).

use ptest_core::{AdaptiveTestConfig, MemoryModelSpec, MergeOp, Scenario, ScheduleSpec};
use ptest_master::{MultiCoreSystem, SystemConfig};
use ptest_pcore::{Op, ProgramBuilder, ProgramId, VarId};

/// Barrier / handshake flag of slave 0 (SRAM-mirrored).
pub const WEAK_READY0: VarId = VarId(12);
/// Barrier / handshake flag of slave 1 (SRAM-mirrored).
pub const WEAK_READY1: VarId = VarId(13);
/// Dekker: slave 0's intent flag (SRAM-mirrored).
pub const WEAK_FLAG0: VarId = VarId(14);
/// Dekker: slave 1's intent flag (SRAM-mirrored).
pub const WEAK_FLAG1: VarId = VarId(15);
/// Dekker: slave 0's in-critical-section marker (SRAM-mirrored).
pub const WEAK_IN0: VarId = VarId(16);
/// Dekker: slave 1's in-critical-section marker (SRAM-mirrored).
pub const WEAK_IN1: VarId = VarId(17);

/// IRIW: the first independent write (SRAM-mirrored).
pub const IRIW_X: VarId = VarId(12);
/// IRIW: the second independent write (SRAM-mirrored).
pub const IRIW_Y: VarId = VarId(13);
/// IRIW: reader 1's published observation — 0 pending, 1 saw stale
/// `X`, 2 saw `X` written (SRAM-mirrored).
pub const IRIW_OBS: VarId = VarId(14);

/// SRAM offsets of the mirror words, above the `races` windows.
const MIRROR_BASE: usize = 0x3_2000;

/// Iterations a task spins on a flag before giving up benignly (exiting
/// without running its check) — keeps pattern-mutilated protocols from
/// reading as livelock.
const SPIN_BUDGET: i64 = 30_000;

/// A `StackProbe` far beyond any configured stack: the deterministic
/// "the reordering manifested" symptom, killed by the kernel as a
/// stack-overflow task fault and picked up by the detector.
const GUARD_TRIP: u32 = 1 << 20;

/// Cycles each Dekker task computes between announcing its flag and
/// reading the peer's. Any value ≥ 1 makes the mutual-exclusion
/// violation unreachable under sequential consistency; keeping it small
/// maximises the store-buffer window.
const FLAG_GAP: u32 = 2;

/// Cycles each Dekker task dwells inside the critical section before
/// checking for company. Longer than any default store-buffer delay
/// (plus barrier skew), so if *both* tasks entered, both reliably see
/// each other's marker.
const CS_DWELL: u32 = 96;

/// Unfenced (reordering-prone) or fenced (control) variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum WeakMemVariant {
    /// No fences: correctness rests on store visibility order, which
    /// only sequentially consistent propagation guarantees.
    Unfenced,
    /// [`Op::Fence`] at the protocol's linearization points; clean
    /// under every memory model and seed.
    Fenced,
}

/// Appends a bounded spin until `var == value`, falling through to the
/// label `go`; gives up (plain `Exit`) after [`SPIN_BUDGET`] iterations.
fn bounded_spin(b: &mut ProgramBuilder, var: VarId, value: i64, scratch: u8, go: &str) {
    let spin = format!("spin_{var}_{go}");
    let give_up = format!("give_up_{var}_{go}");
    b.push(Op::AddReg {
        reg: scratch,
        delta: SPIN_BUDGET,
    });
    b.bind(&spin);
    b.branch_if_var_eq(var, value, go);
    b.push(Op::AddReg {
        reg: scratch,
        delta: -1,
    });
    b.branch_if_reg_eq(scratch, 0, &give_up);
    b.jump_to(&spin);
    b.bind(&give_up);
    b.push(Op::Exit);
    b.bind(go);
}

/// The two-sided barrier prologue: announce `mine`, await `theirs`.
fn barrier(b: &mut ProgramBuilder, mine: VarId, theirs: VarId) {
    b.push(Op::WriteVar {
        var: mine,
        value: 1,
    });
    bounded_spin(b, theirs, 1, 7, "after_barrier");
}

/// The shared base configuration of the weak-memory scenarios: one
/// controlled task per kernel, a lifecycle distribution that almost
/// never suspends or deletes mid-protocol, the **lock-step** schedule
/// (keeping the schedule axis quiet so the memory axis is what's under
/// test), and the default store buffer as the exploration mode.
fn weakmem_base_config(slaves: usize) -> AdaptiveTestConfig {
    AdaptiveTestConfig {
        n: slaves,
        s: 6,
        op: MergeOp::cyclic(),
        inter_command_gap: 30,
        pd: ptest_automata::ProbabilityAssignment::weights([
            ("TC", 1.0),
            ("TCH", 1.0),
            ("TS", 1e-4),
            ("TD", 1e-4),
            ("TY", 0.05),
            ("TR", 1.0),
        ]),
        max_cycles: 250_000,
        drain_cycles: 80_000,
        // A spin-bounded protocol under delayed visibility takes longer
        // to settle than the defaults anticipate; keep schedule-axis
        // margins anyway so nothing is misread as livelock.
        detector: ptest_core::DetectorConfig {
            progress_window: ptest_soc::Cycles::new(60_000),
            ..ptest_core::DetectorConfig::default()
        },
        schedule: ScheduleSpec::LockStep,
        memory: MemoryModelSpec::store_buffer(),
        system: SystemConfig::with_slaves(slaves),
        ..AdaptiveTestConfig::default()
    }
}

/// Dekker's store-buffer visibility race on two slaves. See the
/// [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct StoreVisibilityScenario {
    /// Unfenced (racy) or fenced (control) variant.
    pub variant: WeakMemVariant,
}

impl StoreVisibilityScenario {
    /// The unfenced variant.
    #[must_use]
    pub fn buggy() -> StoreVisibilityScenario {
        StoreVisibilityScenario {
            variant: WeakMemVariant::Unfenced,
        }
    }

    /// The fenced control variant.
    #[must_use]
    pub fn fenced() -> StoreVisibilityScenario {
        StoreVisibilityScenario {
            variant: WeakMemVariant::Fenced,
        }
    }
}

impl Scenario for StoreVisibilityScenario {
    fn name(&self) -> &str {
        match self.variant {
            WeakMemVariant::Unfenced => "store-visibility-buggy",
            WeakMemVariant::Fenced => "store-visibility-fenced",
        }
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        weakmem_base_config(2)
    }

    fn setup(&self, sys: &mut MultiCoreSystem) -> Vec<ProgramId> {
        assert_eq!(sys.slave_count(), 2, "Dekker couples exactly two slaves");
        for (i, var) in [
            WEAK_READY0,
            WEAK_READY1,
            WEAK_FLAG0,
            WEAK_FLAG1,
            WEAK_IN0,
            WEAK_IN1,
        ]
        .iter()
        .enumerate()
        {
            sys.share_var(*var, MIRROR_BASE + 8 * i)
                .expect("mirror words fit the OMAP SRAM");
        }
        let contender = |mine: [VarId; 3], theirs: [VarId; 3], variant: WeakMemVariant| {
            let [ready_mine, flag_mine, in_mine] = mine;
            let [ready_theirs, flag_theirs, in_theirs] = theirs;
            let mut b = ProgramBuilder::new();
            barrier(&mut b, ready_mine, ready_theirs);
            b.push(Op::WriteVar {
                var: flag_mine,
                value: 1,
            });
            if variant == WeakMemVariant::Fenced {
                // Publish my intent to everyone before I sample the
                // peer's — the store→load ordering Dekker rests on.
                b.push(Op::Fence);
            }
            b.push(Op::Compute(FLAG_GAP));
            b.push(Op::ReadVar {
                var: flag_theirs,
                reg: 0,
            });
            b.branch_if_reg_eq(0, 0, "enter_cs");
            // The peer got there first: back off benignly.
            b.push(Op::Exit);
            b.bind("enter_cs");
            b.push(Op::WriteVar {
                var: in_mine,
                value: 1,
            });
            b.push(Op::Compute(CS_DWELL));
            b.push(Op::ReadVar {
                var: in_theirs,
                reg: 1,
            });
            b.branch_if_reg_eq(1, 0, "guard_ok");
            b.push(Op::StackProbe(GUARD_TRIP));
            b.bind("guard_ok");
            b.push(Op::Exit);
            b.build().expect("contender program is valid")
        };
        let p0 = contender(
            [WEAK_READY0, WEAK_FLAG0, WEAK_IN0],
            [WEAK_READY1, WEAK_FLAG1, WEAK_IN1],
            self.variant,
        );
        let p1 = contender(
            [WEAK_READY1, WEAK_FLAG1, WEAK_IN1],
            [WEAK_READY0, WEAK_FLAG0, WEAK_IN0],
            self.variant,
        );
        vec![
            sys.kernel_of_mut(0).register_program(p0),
            sys.kernel_of_mut(1).register_program(p1),
        ]
    }
}

/// Independent reads of independent writes across four slaves. See the
/// [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct IriwScenario {
    /// Unfenced (racy) or reader-fenced (control) variant.
    pub variant: WeakMemVariant,
}

impl IriwScenario {
    /// The unfenced variant.
    #[must_use]
    pub fn buggy() -> IriwScenario {
        IriwScenario {
            variant: WeakMemVariant::Unfenced,
        }
    }

    /// The reader-fenced control variant.
    #[must_use]
    pub fn fenced() -> IriwScenario {
        IriwScenario {
            variant: WeakMemVariant::Fenced,
        }
    }
}

impl Scenario for IriwScenario {
    fn name(&self) -> &str {
        match self.variant {
            WeakMemVariant::Unfenced => "iriw-buggy",
            WeakMemVariant::Fenced => "iriw-fenced",
        }
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        weakmem_base_config(4)
    }

    fn setup(&self, sys: &mut MultiCoreSystem) -> Vec<ProgramId> {
        assert_eq!(sys.slave_count(), 4, "IRIW takes two writers, two readers");
        for (i, var) in [IRIW_X, IRIW_Y, IRIW_OBS].iter().enumerate() {
            sys.share_var(*var, MIRROR_BASE + 0x100 + 8 * i)
                .expect("mirror words fit the OMAP SRAM");
        }
        // The writers align through cross-core semaphore links — 1-cycle
        // deterministic latency, *not* subject to the memory model — so
        // the two independent stores land within a couple of cycles of
        // each other. A shared-variable barrier would skew the writes by
        // a full store-buffer delivery delay, which correlates the
        // readers' views and hides the IRIW window.
        let go2 = sys.kernel_of_mut(2).create_semaphore(0);
        let out2 = sys.kernel_of_mut(2).create_semaphore(0);
        let go3 = sys.kernel_of_mut(3).create_semaphore(0);
        let out3 = sys.kernel_of_mut(3).create_semaphore(0);
        sys.link_semaphores(2, out2, 3, go3)
            .expect("distinct slaves");
        sys.link_semaphores(3, out3, 2, go2)
            .expect("distinct slaves");
        // Slave 0: reader of X-then-Y, and the verdict checker — the
        // trial's drain anchor, so the run keeps simulating until the
        // cross-reader comparison has resolved.
        let checker = {
            let mut b = ProgramBuilder::new();
            bounded_spin(&mut b, IRIW_X, 1, 7, "saw_x");
            if self.variant == WeakMemVariant::Fenced {
                // Cumulative: force-publish the X I just observed (and
                // everything else I have seen) before sampling Y.
                b.push(Op::Fence);
            }
            b.push(Op::ReadVar {
                var: IRIW_Y,
                reg: 0,
            });
            // Await the peer's verdict (1 or 2; 0 means still pending).
            b.push(Op::AddReg {
                reg: 6,
                delta: SPIN_BUDGET,
            });
            b.bind("spin_obs");
            b.branch_if_var_eq(IRIW_OBS, 1, "obs_in");
            b.branch_if_var_eq(IRIW_OBS, 2, "obs_in");
            b.push(Op::AddReg { reg: 6, delta: -1 });
            b.branch_if_reg_eq(6, 0, "give_up_obs");
            b.jump_to("spin_obs");
            b.bind("give_up_obs");
            b.push(Op::Exit);
            b.bind("obs_in");
            b.push(Op::ReadVar {
                var: IRIW_OBS,
                reg: 1,
            });
            // The violation: I saw X before Y, the peer saw Y before X.
            b.branch_if_reg_eq(0, 1, "guard_ok");
            b.branch_if_reg_eq(1, 2, "guard_ok");
            b.push(Op::StackProbe(GUARD_TRIP));
            b.bind("guard_ok");
            b.push(Op::Exit);
            b.build().expect("checker program is valid")
        };
        // Slave 1: reader of Y-then-X; publishes which side of history
        // it saw through IRIW_OBS.
        let reporter = {
            let mut b = ProgramBuilder::new();
            bounded_spin(&mut b, IRIW_Y, 1, 7, "saw_y");
            if self.variant == WeakMemVariant::Fenced {
                b.push(Op::Fence);
            }
            b.push(Op::ReadVar {
                var: IRIW_X,
                reg: 0,
            });
            b.branch_if_reg_eq(0, 0, "stale_x");
            b.push(Op::WriteVar {
                var: IRIW_OBS,
                value: 2,
            });
            b.push(Op::Exit);
            b.bind("stale_x");
            b.push(Op::WriteVar {
                var: IRIW_OBS,
                value: 1,
            });
            b.push(Op::Exit);
            b.build().expect("reporter program is valid")
        };
        // Slaves 2 and 3: the independent writers, semaphore-aligned so
        // both stores land in the same narrow window.
        let writer = |post: ptest_pcore::SemId, wait: ptest_pcore::SemId, target: VarId| {
            let mut b = ProgramBuilder::new();
            b.push(Op::SemPost(post));
            b.push(Op::SemWait(wait));
            b.push(Op::WriteVar {
                var: target,
                value: 1,
            });
            b.push(Op::Exit);
            b.build().expect("writer program is valid")
        };
        vec![
            sys.kernel_of_mut(0).register_program(checker),
            sys.kernel_of_mut(1).register_program(reporter),
            sys.kernel_of_mut(2)
                .register_program(writer(out2, go2, IRIW_X)),
            sys.kernel_of_mut(3)
                .register_program(writer(out3, go3, IRIW_Y)),
        ]
    }
}

/// Whether a report contains the reordering's manifestation symptom:
/// the guard's stack-probe task fault on a checker task (the same
/// symptom shape as [`races::race_manifested`](crate::races)).
#[must_use]
pub fn reordering_manifested(report: &ptest_core::TestReport) -> bool {
    crate::races::race_manifested(report)
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::{TrialEngine, TrialScratch};

    /// Runs `scenario` under an explicit memory spec at a seed triple
    /// (lock-step schedule — the memory axis is what varies here).
    fn run_modeled(
        scenario: &dyn Scenario,
        memory: MemoryModelSpec,
        seed: u64,
        memory_seed: u64,
    ) -> ptest_core::TestReport {
        let mut cfg = scenario.base_config();
        cfg.memory = memory;
        let engine = TrialEngine::new(cfg).expect("valid scenario config");
        engine
            .run_scenario_trial_explored(scenario, seed, 0, memory_seed, &mut TrialScratch::new())
            .expect("trial runs")
    }

    /// The first `(seed, memory_seed)` pair (small search) at which the
    /// scenario manifests under the default store buffer.
    fn find_manifestation(scenario: &dyn Scenario) -> Option<(u64, u64)> {
        for seed in 0..3 {
            for memory_seed in 0..16 {
                let report =
                    run_modeled(scenario, MemoryModelSpec::store_buffer(), seed, memory_seed);
                if reordering_manifested(&report) {
                    return Some((seed, memory_seed));
                }
            }
        }
        None
    }

    #[test]
    fn dekker_is_invisible_under_sequential_consistency() {
        for seed in 0..4 {
            for memory_seed in [0, 1, 0xDEAD] {
                let report = run_modeled(
                    &StoreVisibilityScenario::buggy(),
                    MemoryModelSpec::SeqCst,
                    seed,
                    memory_seed,
                );
                assert!(
                    !reordering_manifested(&report),
                    "seed {seed}/{memory_seed}: {}",
                    report.summary()
                );
            }
        }
    }

    #[test]
    fn dekker_manifests_under_a_store_buffer_and_replays() {
        let (seed, memory_seed) = find_manifestation(&StoreVisibilityScenario::buggy())
            .expect("some seed pair must expose the visibility race");
        let spec = MemoryModelSpec::store_buffer();
        let a = run_modeled(&StoreVisibilityScenario::buggy(), spec, seed, memory_seed);
        let b = run_modeled(&StoreVisibilityScenario::buggy(), spec, seed, memory_seed);
        assert!(reordering_manifested(&a));
        assert_eq!(a.bugs.len(), b.bugs.len());
        for (x, y) in a.bugs.iter().zip(&b.bugs) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.detected_at, y.detected_at, "seed-triple replay is exact");
        }
    }

    #[test]
    fn fenced_dekker_is_clean_under_a_store_buffer() {
        assert!(
            find_manifestation(&StoreVisibilityScenario::fenced()).is_none(),
            "the fenced variant must never trip its guard"
        );
    }

    #[test]
    fn iriw_is_invisible_under_sequential_consistency() {
        for seed in 0..4 {
            for memory_seed in [0, 1, 0xBEEF] {
                let report = run_modeled(
                    &IriwScenario::buggy(),
                    MemoryModelSpec::SeqCst,
                    seed,
                    memory_seed,
                );
                assert!(
                    !reordering_manifested(&report),
                    "seed {seed}/{memory_seed}: {}",
                    report.summary()
                );
            }
        }
    }

    #[test]
    fn iriw_manifests_under_a_store_buffer_and_replays() {
        let (seed, memory_seed) = find_manifestation(&IriwScenario::buggy())
            .expect("some seed pair must expose the IRIW disagreement");
        let spec = MemoryModelSpec::store_buffer();
        let a = run_modeled(&IriwScenario::buggy(), spec, seed, memory_seed);
        let b = run_modeled(&IriwScenario::buggy(), spec, seed, memory_seed);
        assert!(reordering_manifested(&a));
        assert_eq!(
            a.bugs.iter().map(|x| x.detected_at).collect::<Vec<_>>(),
            b.bugs.iter().map(|x| x.detected_at).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn fenced_iriw_is_clean_under_a_store_buffer() {
        assert!(
            find_manifestation(&IriwScenario::fenced()).is_none(),
            "the reader-fenced variant must never trip its guard"
        );
    }
}
