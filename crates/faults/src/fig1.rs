//! The concurrency fault of the paper's Figure 1.
//!
//! Two slave processes spin-wait on each other's shared variables:
//!
//! ```text
//! Process S1              Process S2
//! a: x = 1                f: y = 1
//! b: while (y == 1)       g: while (x == 1)
//! c:     yield();         h:     yield();
//! d: x = 0;               i: y = 0;
//! e: end;                 j: end;
//! ```
//!
//! Both start suspended; master processes `M1`/`M2` resume them with
//! remote commands. Resuming **S2 first** lets everything finish
//! (`L → f g → K → i j → a b d e`); resuming **S1 first** lands `L`
//! inside S1's window between `a` and `b`, after which both processes
//! yield to each other forever (`K a L f g h b c g h …`) — the paper's
//! synchronization anomaly.
//!
//! The window between `a` and `b` is modelled explicitly as
//! [`Fig1Scenario::window`] compute cycles: on the real OMAP the code
//! between the two statements takes time; the simulator must be told how
//! much.

use ptest_core::{AdaptiveTestConfig, BugDetector, BugKind, DetectorConfig, MergeOp, Scenario};
use ptest_master::{DualCoreSystem, SystemConfig};
use ptest_pcore::{
    Op, Priority, Program, ProgramBuilder, ProgramId, SvcReply, SvcRequest, TaskId, TaskState,
    VarId,
};
use ptest_soc::Cycles;

/// Shared variable `x` of Figure 1.
pub const VAR_X: VarId = VarId(0);
/// Shared variable `y` of Figure 1.
pub const VAR_Y: VarId = VarId(1);

/// Which resume command the master issues first.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Fig1Order {
    /// `K` before `L` (resume S1 first) — the fault order.
    S1First,
    /// `L` before `K` (resume S2 first) — the completing order.
    S2First,
}

/// Parameters of the Figure 1 scenario.
#[derive(Debug, Clone, Copy)]
pub struct Fig1Scenario {
    /// Resume order.
    pub order: Fig1Order,
    /// Compute cycles between S1's `a:` and `b:` statements (the race
    /// window the second resume must land in for the fault to fire).
    pub window: u32,
    /// Extra cycles the master waits between the two resume commands
    /// (0 = back-to-back, the tightest schedule). A gap larger than the
    /// window lets S1 escape its loop before S2 starts.
    pub resume_gap: u64,
    /// Simulation budget.
    pub max_cycles: u64,
}

impl Default for Fig1Scenario {
    fn default() -> Fig1Scenario {
        Fig1Scenario {
            order: Fig1Order::S1First,
            window: 64,
            resume_gap: 0,
            max_cycles: 200_000,
        }
    }
}

/// Outcome of a Figure 1 run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Fig1Outcome {
    /// Both processes terminated (`d e` / `i j` reached).
    Completed {
        /// Cycle at which the second process terminated.
        cycles: u64,
    },
    /// The processes yielded to each other until the budget ran out; the
    /// listed tasks never terminated.
    Livelock {
        /// The spinning tasks.
        tasks: Vec<TaskId>,
    },
}

/// Builds S1's program: `a: x=1; (window); b: while (y==1) c: yield(); d:
/// x=0; e: end`.
#[must_use]
pub fn s1_program(window: u32) -> Program {
    spin_program(VAR_X, VAR_Y, window)
}

/// Builds S2's program: `f: y=1; g: while (x==1) h: yield(); i: y=0; j:
/// end`.
#[must_use]
pub fn s2_program() -> Program {
    spin_program(VAR_Y, VAR_X, 0)
}

fn spin_program(mine: VarId, theirs: VarId, window: u32) -> Program {
    let mut b = ProgramBuilder::new();
    b.push(Op::WriteVar {
        var: mine,
        value: 1,
    }); // a / f
    if window > 0 {
        b.push(Op::Compute(window));
    }
    b.bind("test"); // b / g
    b.branch_if_var_eq(theirs, 1, "spin");
    b.jump_to("done");
    b.bind("spin"); // c / h
    b.push(Op::Yield);
    b.jump_to("test");
    b.bind("done"); // d / i
    b.push(Op::WriteVar {
        var: mine,
        value: 0,
    });
    b.push(Op::Exit); // e / j
    b.build().expect("fig1 program is valid")
}

/// Runs the scenario and classifies the outcome.
///
/// The run is fully deterministic: outcome depends only on the scenario
/// parameters.
///
/// # Panics
///
/// Panics if the scenario setup commands fail (cannot happen with a
/// default-configured kernel).
#[must_use]
pub fn run(scenario: Fig1Scenario) -> Fig1Outcome {
    let mut sys = DualCoreSystem::new(SystemConfig::default());

    // Scenario setup at time zero: both processes exist and are
    // suspended before the first kernel tick, as in the paper's figure.
    let (s1, s2) = {
        let kernel = sys.kernel_mut();
        let p1 = kernel.register_program(s1_program(scenario.window));
        let p2 = kernel.register_program(s2_program());
        let SvcReply::Created(s1) = kernel
            .dispatch(
                SvcRequest::Create {
                    program: p1,
                    priority: Priority::new(2), // S1 has the lower priority
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .expect("create S1")
        else {
            unreachable!("create returns Created")
        };
        let SvcReply::Created(s2) = kernel
            .dispatch(
                SvcRequest::Create {
                    program: p2,
                    priority: Priority::new(9), // S2 has the higher priority
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .expect("create S2")
        else {
            unreachable!("create returns Created")
        };
        kernel
            .dispatch(SvcRequest::Suspend { task: s1 }, Cycles::ZERO)
            .expect("suspend S1");
        kernel
            .dispatch(SvcRequest::Suspend { task: s2 }, Cycles::ZERO)
            .expect("suspend S2");
        (s1, s2)
    };

    // The master's two remote commands, in the chosen order (the paper's
    // K and L), each awaited like the committer would.
    let resumes = match scenario.order {
        Fig1Order::S1First => [s1, s2],
        Fig1Order::S2First => [s2, s1],
    };
    let mut first = true;
    for task in resumes {
        if !first {
            sys.run(scenario.resume_gap);
        }
        first = false;
        sys.issue(SvcRequest::Resume { task })
            .expect("issue resume");
        // Await the response so command order = slave observation order.
        loop {
            sys.step();
            if !sys.take_responses().is_empty() {
                break;
            }
        }
    }

    // Let the system run; watch for termination of both processes.
    let mut detector = BugDetector::new(DetectorConfig {
        progress_window: Cycles::new(10_000),
        ..DetectorConfig::default()
    });
    for cycle in 0..scenario.max_cycles {
        sys.step();
        let both_done = [s1, s2]
            .iter()
            .all(|&t| matches!(sys.kernel().task_state(t), Some(TaskState::Terminated(_))));
        if both_done {
            return Fig1Outcome::Completed { cycles: cycle };
        }
        if cycle % 200 == 0 {
            for bug in detector.observe(&sys, None, true) {
                if let BugKind::Livelock { tasks } = bug.kind {
                    return Fig1Outcome::Livelock { tasks };
                }
            }
        }
    }
    // Budget exhausted without termination: the live tasks are spinning.
    let live: Vec<TaskId> = sys
        .snapshot()
        .tasks
        .iter()
        .filter(|t| !matches!(t.state, TaskState::Terminated(_)))
        .map(|t| t.id)
        .collect();
    Fig1Outcome::Livelock { tasks: live }
}

/// The scripted-master variant: the paper's `M1`/`M2` processes as real
/// master threads under the time-sharing scheduler, each issuing its
/// resume via `remote_cmd` (`K` in M1, `L` in M2). The thread added first
/// is scheduled first, so the add order plays the role of the execution
/// order of Figure 1.
///
/// Returns the same outcome classification as [`run`].
///
/// # Panics
///
/// Panics if scenario setup commands fail (cannot happen on a default
/// kernel).
#[must_use]
pub fn run_with_master_threads(scenario: Fig1Scenario) -> Fig1Outcome {
    use ptest_master::MasterOp;

    let mut sys = DualCoreSystem::new(SystemConfig::default());
    let (s1, s2) = {
        let kernel = sys.kernel_mut();
        let p1 = kernel.register_program(s1_program(scenario.window));
        let p2 = kernel.register_program(s2_program());
        let mk = |kernel: &mut ptest_pcore::Kernel, prog, prio: u8| {
            let SvcReply::Created(t) = kernel
                .dispatch(
                    SvcRequest::Create {
                        program: prog,
                        priority: Priority::new(prio),
                        stack_bytes: None,
                    },
                    Cycles::ZERO,
                )
                .expect("create")
            else {
                unreachable!("create returns Created")
            };
            kernel
                .dispatch(SvcRequest::Suspend { task: t }, Cycles::ZERO)
                .expect("suspend");
            t
        };
        let s1 = mk(kernel, p1, 2);
        let s2 = mk(kernel, p2, 9);
        (s1, s2)
    };

    // M1 issues K = Resume(S1); M2 issues L = Resume(S2). The scenario
    // order decides which thread enters the run queue first.
    let m1 = vec![
        MasterOp::IssueAndWait(SvcRequest::Resume { task: s1 }),
        MasterOp::Done,
    ];
    let m2 = vec![
        MasterOp::IssueAndWait(SvcRequest::Resume { task: s2 }),
        MasterOp::Done,
    ];
    match scenario.order {
        Fig1Order::S1First => {
            sys.add_thread("M1", m1);
            sys.add_thread("M2", m2);
        }
        Fig1Order::S2First => {
            sys.add_thread("M2", m2);
            sys.add_thread("M1", m1);
        }
    }

    for cycle in 0..scenario.max_cycles {
        sys.step();
        let both_done = [s1, s2]
            .iter()
            .all(|&t| matches!(sys.kernel().task_state(t), Some(TaskState::Terminated(_))));
        if both_done {
            return Fig1Outcome::Completed { cycles: cycle };
        }
    }
    let live: Vec<TaskId> = sys
        .snapshot()
        .tasks
        .iter()
        .filter(|t| !matches!(t.state, TaskState::Terminated(_)))
        .map(|t| t.id)
        .collect();
    Fig1Outcome::Livelock { tasks: live }
}

/// The Figure 1 fault as an adaptive-test [`Scenario`]: the committer's
/// `task_create` commands play the role of the master's `K`/`L` resumes.
/// Pattern 0 starts S1 (spin-wait on `y`, with the `a→b` compute window)
/// and pattern 1 starts S2 (spin-wait on `x`); whenever the merged
/// pattern lands both creates inside S1's window — and neither task is
/// deleted before the spin closes — the mutual yield loop forms and the
/// detector reports a livelock. Distributions that keep tasks alive
/// (pattern truncated before its terminal `TD`/`TY`) reveal the fault;
/// churn-heavy ones destroy the processes before it can form, which is
/// exactly the signal the campaign's cross-trial learning feeds on.
#[derive(Debug, Clone, Copy)]
pub struct Fig1AdaptiveScenario {
    /// Compute cycles between S1's `a:` and `b:` statements.
    pub window: u32,
}

impl Default for Fig1AdaptiveScenario {
    fn default() -> Fig1AdaptiveScenario {
        Fig1AdaptiveScenario { window: 400 }
    }
}

impl Scenario for Fig1AdaptiveScenario {
    fn name(&self) -> &str {
        "fig1-livelock"
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        AdaptiveTestConfig {
            n: 2,
            s: 8,
            op: MergeOp::cyclic(),
            check_interval: 25,
            inter_command_gap: 30,
            detector: DetectorConfig {
                progress_window: Cycles::new(20_000),
                ..DetectorConfig::default()
            },
            max_cycles: 400_000,
            ..AdaptiveTestConfig::default()
        }
    }

    fn setup(&self, sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        let kernel = sys.kernel_mut();
        let p1 = kernel.register_program(s1_program(self.window));
        let p2 = kernel.register_program(s2_program());
        vec![p1, p2]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn resuming_s2_first_completes() {
        let outcome = run(Fig1Scenario {
            order: Fig1Order::S2First,
            ..Fig1Scenario::default()
        });
        assert!(
            matches!(outcome, Fig1Outcome::Completed { .. }),
            "the paper's good order L f g K i j a b d e: {outcome:?}"
        );
    }

    #[test]
    fn resuming_s1_first_livelocks() {
        let outcome = run(Fig1Scenario::default());
        match outcome {
            Fig1Outcome::Livelock { tasks } => {
                assert_eq!(tasks.len(), 2, "both S1 and S2 spin");
            }
            other => panic!("the paper's fault order must livelock: {other:?}"),
        }
    }

    #[test]
    fn wide_resume_gap_escapes_the_race() {
        // If the master pauses between K and L for longer than S1's
        // window, S1 leaves its loop (x back to 0) before S2 starts and
        // even the bad order completes — the fault needs L to land
        // *inside* the window.
        let outcome = run(Fig1Scenario {
            order: Fig1Order::S1First,
            resume_gap: 500,
            ..Fig1Scenario::default()
        });
        assert!(
            matches!(outcome, Fig1Outcome::Completed { .. }),
            "{outcome:?}"
        );
    }

    #[test]
    fn outcome_is_deterministic() {
        let a = run(Fig1Scenario::default());
        let b = run(Fig1Scenario::default());
        assert_eq!(a, b);
    }

    #[test]
    fn programs_are_small_and_valid() {
        assert!(s1_program(10).len() <= 8);
        assert!(s2_program().len() <= 7);
    }

    #[test]
    fn master_thread_variant_reproduces_both_outcomes() {
        let good = run_with_master_threads(Fig1Scenario {
            order: Fig1Order::S2First,
            ..Fig1Scenario::default()
        });
        assert!(
            matches!(good, Fig1Outcome::Completed { .. }),
            "M2-before-M1 schedule completes: {good:?}"
        );
        let bad = run_with_master_threads(Fig1Scenario::default());
        assert!(
            matches!(bad, Fig1Outcome::Livelock { .. }),
            "M1-before-M2 schedule livelocks: {bad:?}"
        );
    }

    #[test]
    fn adaptive_scenario_finds_the_livelock_within_a_few_seeds() {
        use ptest_core::AdaptiveTest;
        let scenario = Fig1AdaptiveScenario::default();
        let mut found = false;
        for seed in 0..12 {
            let report = AdaptiveTest::run_scenario(&scenario, seed).unwrap();
            assert_eq!(report.ordering_errors(), 0, "PFA keeps orders legal");
            if report.found(|k| matches!(k, BugKind::Livelock { .. })) {
                found = true;
                break;
            }
        }
        assert!(
            found,
            "cyclic creates must land inside S1's window for some seed"
        );
    }

    #[test]
    fn master_thread_variant_agrees_with_direct_variant() {
        for order in [Fig1Order::S1First, Fig1Order::S2First] {
            let scenario = Fig1Scenario {
                order,
                ..Fig1Scenario::default()
            };
            let direct = run(scenario);
            let threaded = run_with_master_threads(scenario);
            assert_eq!(
                std::mem::discriminant(&direct),
                std::mem::discriminant(&threaded),
                "{order:?}: direct {direct:?} vs threaded {threaded:?}"
            );
        }
    }
}
