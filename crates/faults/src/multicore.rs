//! Multi-slave fault scenarios: cross-core bugs that *cannot exist* on
//! the dual-core platform.
//!
//! Two scenarios exercise the N-slave generalization of the platform:
//!
//! * [`CrossCorePipelineScenario`] — a ring of pipeline stages, one per
//!   slave core, handing tokens to each other through the bridge's
//!   cross-core semaphore links. The buggy variant acquires its two
//!   tokens (data + flow-control credit, circulating in opposite
//!   directions) in a fixed order, so once every stage task is alive the
//!   stages block on each other across kernels — a wait-for cycle
//!   *spanning kernels*, reported as
//!   [`BugKind::CrossCoreDeadlock`](ptest_core::BugKind). Whether the
//!   deadlock forms depends on the generated test patterns: only seeds
//!   whose patterns create all stages and keep them alive (no early
//!   `task_delete`, no lingering `task_suspend`) let the cycle close.
//! * [`SramRaceScenario`] — a producer/consumer counter mirrored across
//!   all slave kernels through a window in shared SRAM. Every slave runs
//!   an unsynchronized read-modify-write loop; increments performed by
//!   two cores in the same mirroring epoch collide and the lower-indexed
//!   core's update is lost. Like the single-core lost-update race, the
//!   detector does not flag this class — the final-value oracle
//!   [`sram_race_lost_updates`] must be consulted.

use ptest_core::{AdaptiveTestConfig, MergeOp, Scenario};
use ptest_master::{MultiCoreSystem, SystemConfig};
use ptest_pcore::{Op, ProgramBuilder, ProgramId, SemId, VarId};

use crate::scenarios::race_writer_program;

/// The shared counter of the cross-slave SRAM race (mirrored in every
/// kernel).
pub const SRAM_RACE_COUNTER: VarId = VarId(6);

/// SRAM offset of the race counter's mirror word, far above the
/// per-slave bridge windows.
pub const SRAM_RACE_MIRROR_OFFSET: usize = 0x3_0000;

/// Buggy or corrected token-acquisition order of the pipeline stages.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PipelineVariant {
    /// Every stage waits for its data token *and* its credit token before
    /// doing any work — the crossed acquisition that deadlocks across
    /// cores.
    Buggy,
    /// Every stage forwards its data token before waiting for the
    /// credit, so the rings always drain — deadlock-free.
    Fixed,
}

/// The per-slave semaphores of one pipeline stage.
#[derive(Debug, Clone, Copy)]
struct StageSems {
    /// Data tokens flowing forward (stage `i` → stage `i+1`).
    data_in: SemId,
    data_out: SemId,
    /// Credit tokens flowing backward (stage `i` → stage `i-1`).
    credit_in: SemId,
    credit_out: SemId,
}

fn stage_program(sems: StageSems, rounds: i64, variant: PipelineVariant) -> ptest_pcore::Program {
    let mut b = ProgramBuilder::new();
    b.push(Op::AddReg {
        reg: 1,
        delta: rounds,
    });
    b.bind("loop");
    match variant {
        PipelineVariant::Buggy => {
            // Grab both tokens up front; with the credit ring rotating the
            // other way, stages end up each holding one token the next
            // stage needs.
            b.push(Op::SemWait(sems.data_in));
            b.push(Op::SemWait(sems.credit_in));
            b.push(Op::Compute(20));
            b.push(Op::SemPost(sems.data_out));
            b.push(Op::SemPost(sems.credit_out));
        }
        PipelineVariant::Fixed => {
            // Forward the data token before acquiring the credit: the data
            // ring keeps draining, so the credit always arrives.
            b.push(Op::SemWait(sems.data_in));
            b.push(Op::Compute(20));
            b.push(Op::SemPost(sems.data_out));
            b.push(Op::SemWait(sems.credit_in));
            b.push(Op::SemPost(sems.credit_out));
        }
    }
    b.push(Op::AddReg { reg: 1, delta: -1 });
    b.branch_if_reg_eq(1, 0, "done");
    b.jump_to("loop");
    b.bind("done");
    b.push(Op::Exit);
    b.build().expect("stage program is valid")
}

/// A ring pipeline with one stage per slave core, handing data tokens
/// forward and credit tokens backward through cross-core semaphore
/// links. See the [module docs](self) for the failure mode.
#[derive(Debug, Clone, Copy)]
pub struct CrossCorePipelineScenario {
    /// Pipeline stages = slave cores (≥ 2; the paper-style evaluation
    /// uses 3).
    pub stages: usize,
    /// Hand-offs each stage performs before exiting.
    pub rounds: i64,
    /// Buggy or corrected acquisition order.
    pub variant: PipelineVariant,
}

impl CrossCorePipelineScenario {
    /// The deadlock-prone three-slave pipeline.
    #[must_use]
    pub fn buggy() -> CrossCorePipelineScenario {
        CrossCorePipelineScenario {
            stages: 3,
            rounds: 4,
            variant: PipelineVariant::Buggy,
        }
    }

    /// The corrected control variant.
    #[must_use]
    pub fn fixed() -> CrossCorePipelineScenario {
        CrossCorePipelineScenario {
            variant: PipelineVariant::Fixed,
            ..CrossCorePipelineScenario::buggy()
        }
    }
}

impl Scenario for CrossCorePipelineScenario {
    fn name(&self) -> &str {
        match self.variant {
            PipelineVariant::Buggy => "cross-core-pipeline-buggy",
            PipelineVariant::Fixed => "cross-core-pipeline-fixed",
        }
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        AdaptiveTestConfig {
            n: self.stages,
            s: 8,
            op: MergeOp::cyclic(),
            inter_command_gap: 30,
            // A TCH-heavy distribution keeps the stage tasks alive (late
            // TD/TY), giving every stage time to block on its neighbours.
            pd: ptest_automata::ProbabilityAssignment::weights([
                ("TC", 1.0),
                ("TCH", 0.8),
                ("TS", 0.05),
                ("TD", 0.04),
                ("TY", 0.06),
                ("TR", 1.0),
            ]),
            max_cycles: 400_000,
            system: SystemConfig::with_slaves(self.stages),
            ..AdaptiveTestConfig::default()
        }
    }

    fn setup(&self, sys: &mut MultiCoreSystem) -> Vec<ProgramId> {
        let n = self.stages;
        assert!(n >= 2, "a cross-core pipeline needs at least two stages");
        assert_eq!(sys.slave_count(), n, "one stage per slave core");
        // Per-stage semaphores. Both initial tokens start at stage 0: the
        // buggy order lets stage 0 consume both and run ahead, leaving the
        // remaining stages holding crossed dependencies.
        let sems: Vec<StageSems> = (0..n)
            .map(|i| {
                let kernel = sys.kernel_of_mut(i);
                let initial = u32::from(i == 0);
                StageSems {
                    data_in: kernel.create_semaphore(initial),
                    data_out: kernel.create_semaphore(0),
                    credit_in: kernel.create_semaphore(initial),
                    credit_out: kernel.create_semaphore(0),
                }
            })
            .collect();
        for i in 0..n {
            let next = (i + 1) % n;
            let prev = (i + n - 1) % n;
            sys.link_semaphores(i, sems[i].data_out, next, sems[next].data_in)
                .expect("distinct stages");
            sys.link_semaphores(i, sems[i].credit_out, prev, sems[prev].credit_in)
                .expect("distinct stages");
        }
        (0..n)
            .map(|i| {
                sys.kernel_of_mut(i).register_program(stage_program(
                    sems[i],
                    self.rounds,
                    self.variant,
                ))
            })
            .collect()
    }
}

/// The cross-slave lost-update race: every slave core runs an
/// unsynchronized increment loop over [`SRAM_RACE_COUNTER`], which the
/// system mirrors across kernels through shared SRAM once per cycle.
#[derive(Debug, Clone, Copy)]
pub struct SramRaceScenario {
    /// Slave cores, each running one writer (= patterns).
    pub slaves: usize,
    /// Increments per writer.
    pub rounds: u16,
}

impl Default for SramRaceScenario {
    fn default() -> SramRaceScenario {
        SramRaceScenario {
            slaves: 2,
            rounds: 24,
        }
    }
}

impl Scenario for SramRaceScenario {
    fn name(&self) -> &str {
        "sram-race"
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        AdaptiveTestConfig {
            n: self.slaves,
            s: 8,
            op: MergeOp::cyclic(),
            inter_command_gap: 30,
            system: SystemConfig::with_slaves(self.slaves),
            ..AdaptiveTestConfig::default()
        }
    }

    fn setup(&self, sys: &mut MultiCoreSystem) -> Vec<ProgramId> {
        assert_eq!(sys.slave_count(), self.slaves, "one writer per slave");
        sys.share_var(SRAM_RACE_COUNTER, SRAM_RACE_MIRROR_OFFSET)
            .expect("mirror word fits the OMAP SRAM");
        (0..self.slaves)
            .map(|i| {
                sys.kernel_of_mut(i)
                    .register_program(race_writer_for(self.rounds))
            })
            .collect()
    }
}

/// The writer program of the SRAM race: the single-core lost-update
/// writer re-targeted at the mirrored counter.
fn race_writer_for(rounds: u16) -> ptest_pcore::Program {
    retarget(race_writer_program(rounds))
}

/// Rewrites the single-core race writer's variable accesses from
/// [`crate::scenarios::RACE_COUNTER`] to the mirrored
/// [`SRAM_RACE_COUNTER`].
fn retarget(program: ptest_pcore::Program) -> ptest_pcore::Program {
    let ops: Vec<Op> = program
        .iter()
        .map(|op| match *op {
            Op::ReadVar { var, reg } if var == crate::scenarios::RACE_COUNTER => Op::ReadVar {
                var: SRAM_RACE_COUNTER,
                reg,
            },
            Op::WriteVarReg { var, reg } if var == crate::scenarios::RACE_COUNTER => {
                Op::WriteVarReg {
                    var: SRAM_RACE_COUNTER,
                    reg,
                }
            }
            other => other,
        })
        .collect();
    ptest_pcore::Program::new(ops).expect("retargeted program is valid")
}

/// The cross-slave lost-update oracle: how many increments the mirrored
/// counter is missing after the run.
#[must_use]
pub fn sram_race_lost_updates(sys: &MultiCoreSystem, slaves: usize, rounds: u16) -> i64 {
    let expected = (slaves as i64) * i64::from(rounds);
    let actual = sys.kernel_of(0).var(SRAM_RACE_COUNTER).unwrap_or(0);
    expected - actual
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::{AdaptiveTest, BugKind};
    use ptest_pcore::{Priority, SvcRequest, TaskState};
    use ptest_soc::CoreId;

    /// Drives the raw system (no committer): create every stage task
    /// directly and run.
    fn run_pipeline_raw(variant: PipelineVariant) -> (MultiCoreSystem, Vec<ProgramId>) {
        let scenario = CrossCorePipelineScenario {
            variant,
            ..CrossCorePipelineScenario::buggy()
        };
        let mut sys = MultiCoreSystem::new(SystemConfig::with_slaves(scenario.stages));
        let programs = scenario.setup(&mut sys);
        for (slave, &program) in programs.iter().enumerate() {
            sys.issue_to(
                slave,
                SvcRequest::Create {
                    program,
                    priority: Priority::new(5),
                    stack_bytes: None,
                },
            )
            .unwrap();
        }
        (sys, programs)
    }

    #[test]
    fn fixed_pipeline_drains_and_terminates() {
        let (mut sys, _) = run_pipeline_raw(PipelineVariant::Fixed);
        assert!(
            sys.run_until_quiescent(200_000),
            "corrected ordering must let every stage finish its rounds"
        );
    }

    #[test]
    fn buggy_pipeline_deadlocks_across_kernels() {
        let (mut sys, _) = run_pipeline_raw(PipelineVariant::Buggy);
        assert!(!sys.run_until_quiescent(100_000), "stages must wedge");
        let mut detector = ptest_core::BugDetector::new(ptest_core::DetectorConfig::default());
        let bugs = detector.observe(&sys, None, true);
        let cycle = bugs
            .iter()
            .find_map(|b| match &b.kind {
                BugKind::CrossCoreDeadlock { cycle } => Some(cycle.clone()),
                _ => None,
            })
            .expect("cross-core deadlock must be reported");
        let cores: std::collections::BTreeSet<CoreId> = cycle.iter().map(|(c, _)| *c).collect();
        assert!(cores.len() >= 2, "cycle spans kernels: {cycle:?}");
    }

    #[test]
    fn adaptive_engine_reveals_the_cross_core_deadlock() {
        let scenario = CrossCorePipelineScenario::buggy();
        let mut found_seed = None;
        for seed in 0..10 {
            let report = AdaptiveTest::run_scenario(&scenario, seed).unwrap();
            if report.found(|k| matches!(k, BugKind::CrossCoreDeadlock { .. })) {
                found_seed = Some((seed, report));
                break;
            }
        }
        let (seed, report) =
            found_seed.expect("some seed within 10 must close the cross-core cycle");
        // The bug is reproducible from its seed: re-running the scenario
        // at the same seed reports the same cycle at the same time.
        let again = AdaptiveTest::run_scenario(&scenario, seed).unwrap();
        let pick = |r: &ptest_core::TestReport| {
            r.bugs
                .iter()
                .find(|b| matches!(b.kind, BugKind::CrossCoreDeadlock { .. }))
                .map(|b| (b.kind.clone(), b.detected_at))
        };
        assert_eq!(pick(&report), pick(&again), "bit-for-bit reproduction");
        // And the cycle genuinely spans kernels.
        let (BugKind::CrossCoreDeadlock { cycle }, _) = pick(&report).unwrap() else {
            unreachable!()
        };
        let cores: std::collections::BTreeSet<CoreId> = cycle.iter().map(|(c, _)| *c).collect();
        assert!(cores.len() >= 2, "{cycle:?}");
    }

    #[test]
    fn fixed_pipeline_scenario_reports_no_cross_core_deadlock() {
        let scenario = CrossCorePipelineScenario::fixed();
        for seed in 0..5 {
            let report = AdaptiveTest::run_scenario(&scenario, seed).unwrap();
            assert!(
                !report.found(|k| matches!(k, BugKind::CrossCoreDeadlock { .. })),
                "seed {seed}: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn sram_race_loses_updates_across_slaves() {
        let scenario = SramRaceScenario::default();
        let mut sys = MultiCoreSystem::new(SystemConfig::with_slaves(scenario.slaves));
        let programs = scenario.setup(&mut sys);
        for (slave, &program) in programs.iter().enumerate() {
            sys.issue_to(
                slave,
                SvcRequest::Create {
                    program,
                    priority: Priority::new(5),
                    stack_bytes: None,
                },
            )
            .unwrap();
        }
        for _ in 0..400_000u64 {
            sys.step();
            let done = (0..scenario.slaves).all(|s| {
                sys.snapshot_of(s)
                    .tasks
                    .iter()
                    .all(|t| matches!(t.state, TaskState::Terminated(_)))
            });
            if done {
                break;
            }
        }
        let lost = sram_race_lost_updates(&sys, scenario.slaves, scenario.rounds);
        assert!(
            lost > 0,
            "same-epoch increments from two cores must collide, lost {lost}"
        );
        // The mirror kept every kernel's view converged.
        let v0 = sys.kernel_of(0).var(SRAM_RACE_COUNTER);
        let v1 = sys.kernel_of(1).var(SRAM_RACE_COUNTER);
        assert_eq!(v0, v1, "mirrored variable must agree across kernels");
    }

    #[test]
    fn sram_race_scenario_runs_under_the_adaptive_engine() {
        let report = AdaptiveTest::run_scenario(&SramRaceScenario::default(), 3).unwrap();
        assert_eq!(report.ordering_errors(), 0);
        assert!(report.commands_issued > 0);
    }

    #[test]
    fn single_writer_cannot_race_itself_even_mirrored() {
        let mut sys = MultiCoreSystem::new(SystemConfig::with_slaves(2));
        sys.share_var(SRAM_RACE_COUNTER, SRAM_RACE_MIRROR_OFFSET)
            .unwrap();
        let prog = sys
            .kernel_of_mut(0)
            .register_program(super::race_writer_for(20));
        sys.issue_to(
            0,
            SvcRequest::Create {
                program: prog,
                priority: Priority::new(5),
                stack_bytes: None,
            },
        )
        .unwrap();
        assert!(sys.run_until_quiescent(200_000));
        assert_eq!(sram_race_lost_updates(&sys, 1, 20), 0);
    }
}
