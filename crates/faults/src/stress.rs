//! The stress scenario of case study 1.
//!
//! "pTest kept the number of active tasks at 16 in pCore … All of 16
//! active tasks performed the same quick-sort algorithm to individually
//! sort 128 integer elements. The size of integer data is 2 bytes and the
//! stack size of each task is 512 bytes. pTest continued to create tasks
//! and removed them when their work was done. During the first testing
//! period, pTest detected the crash of pCore that was caused by the
//! failure of garbage collection."

use ptest_core::{AdaptiveTestConfig, MergeOp, Scenario};
use ptest_master::DualCoreSystem;
use ptest_pcore::workloads::{quicksort, QuicksortSpec};
use ptest_pcore::{GcFaultMode, ProgramId};

/// Parameters of the case-study-1 stress test.
#[derive(Debug, Clone, Copy)]
pub struct StressSpec {
    /// Concurrent task patterns (the paper keeps 16 active tasks).
    pub tasks: usize,
    /// Elements each task sorts (paper: 128).
    pub elements: usize,
    /// Element size in bytes (paper: 2).
    pub elem_bytes: u32,
    /// Task stack size (paper: 512).
    pub stack_bytes: u32,
    /// Life cycles per pattern (create/delete churn depth).
    pub lifecycles: usize,
    /// The GC defect under test ([`GcFaultMode::None`] = healthy control).
    pub gc_fault: GcFaultMode,
    /// Kernel heap size; small enough that sustained churn requires the
    /// GC to actually work.
    pub heap_bytes: u32,
    /// Master seed.
    pub seed: u64,
}

impl StressSpec {
    /// The paper's parameters with the injected GC leak.
    #[must_use]
    pub fn paper(seed: u64) -> StressSpec {
        StressSpec {
            tasks: 16,
            elements: 128,
            elem_bytes: 2,
            stack_bytes: 512,
            lifecycles: 12,
            gc_fault: GcFaultMode::LeakDeadBlocks { leak_every: 1 },
            heap_bytes: 24 * 1024,
            seed,
        }
    }

    /// The same stress with a healthy GC (the control run).
    #[must_use]
    pub fn healthy(seed: u64) -> StressSpec {
        StressSpec {
            gc_fault: GcFaultMode::None,
            ..StressSpec::paper(seed)
        }
    }
}

/// The adaptive-test configuration for a stress spec: `n = tasks`
/// cyclically generated patterns so every pattern churns through several
/// create/delete life cycles, staggered merging to keep the task count
/// near the limit.
#[must_use]
pub fn stress_config(spec: &StressSpec) -> AdaptiveTestConfig {
    let mut cfg = AdaptiveTestConfig {
        n: spec.tasks,
        // ~4 services per lifecycle on the paper distribution.
        s: spec.lifecycles * 4,
        op: MergeOp::RoundRobin { chunk: 1 },
        seed: spec.seed,
        cyclic_generation: true,
        stack_bytes: Some(spec.stack_bytes),
        max_cycles: 30_000_000,
        check_interval: 1_000,
        ..AdaptiveTestConfig::default()
    };
    cfg.system.kernel.heap_bytes = spec.heap_bytes;
    cfg.system.kernel.gc_fault = spec.gc_fault;
    cfg
}

/// Scenario setup: registers one quick-sort program per pattern (each
/// with its own input permutation, as 16 independent tasks would have).
pub fn stress_setup(spec: StressSpec) -> impl FnOnce(&mut DualCoreSystem) -> Vec<ProgramId> {
    move |sys: &mut DualCoreSystem| {
        (0..spec.tasks)
            .map(|i| {
                let (program, _) = quicksort(QuicksortSpec {
                    elements: spec.elements,
                    elem_bytes: spec.elem_bytes,
                    seed: spec.seed.wrapping_add(i as u64),
                    worst_case: false,
                });
                sys.kernel_mut().register_program(program)
            })
            .collect()
    }
}

/// Case study 1 as a campaign-ready [`Scenario`]: `spec.tasks` quick-sort
/// programs churned under [`stress_config`]. The quicksort input
/// permutations derive from `spec.seed` (fixed per campaign); the
/// per-trial seed varies the generated service patterns.
#[derive(Debug, Clone, Copy)]
pub struct StressScenario {
    /// The stress parameters.
    pub spec: StressSpec,
}

impl StressScenario {
    /// The paper's faulty-GC stress.
    #[must_use]
    pub fn paper() -> StressScenario {
        StressScenario {
            spec: StressSpec::paper(1),
        }
    }

    /// The healthy-GC control.
    #[must_use]
    pub fn healthy() -> StressScenario {
        StressScenario {
            spec: StressSpec::healthy(1),
        }
    }

    /// A lightened variant (fewer lifecycles, fewer tasks) for benches
    /// and smoke tests where the full 16-task churn is overkill.
    #[must_use]
    pub fn light() -> StressScenario {
        StressScenario {
            spec: StressSpec {
                tasks: 4,
                lifecycles: 4,
                heap_bytes: 8 * 1024,
                ..StressSpec::paper(1)
            },
        }
    }
}

impl Scenario for StressScenario {
    fn name(&self) -> &str {
        match self.spec.gc_fault {
            GcFaultMode::None => "stress-healthy-gc",
            _ => "stress-faulty-gc",
        }
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        stress_config(&self.spec)
    }

    fn setup(&self, sys: &mut DualCoreSystem) -> Vec<ProgramId> {
        (0..self.spec.tasks)
            .map(|i| {
                let (program, _) = quicksort(QuicksortSpec {
                    elements: self.spec.elements,
                    elem_bytes: self.spec.elem_bytes,
                    seed: self.spec.seed.wrapping_add(i as u64),
                    worst_case: false,
                });
                sys.kernel_mut().register_program(program)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::{AdaptiveTest, BugKind};

    #[test]
    fn faulty_gc_crashes_under_stress() {
        let spec = StressSpec::paper(1);
        let report = AdaptiveTest::run(stress_config(&spec), stress_setup(spec)).unwrap();
        assert!(
            report.found(|k| matches!(
                k,
                BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
            )),
            "paper's case study 1 outcome: {}",
            report.summary()
        );
    }

    #[test]
    fn healthy_gc_survives_the_same_stress() {
        let spec = StressSpec::healthy(1);
        let report = AdaptiveTest::run(stress_config(&spec), stress_setup(spec)).unwrap();
        assert!(
            !report.found(|k| matches!(k, BugKind::SlaveCrash { .. })),
            "control run must survive: {}",
            report.summary()
        );
    }

    #[test]
    fn scenario_reproduces_the_gc_crash() {
        let scenario = StressScenario::paper();
        let report = AdaptiveTest::run_scenario(&scenario, 1).unwrap();
        assert!(
            report.found(|k| matches!(
                k,
                BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
            )),
            "{}",
            report.summary()
        );
        assert_eq!(scenario.name(), "stress-faulty-gc");
        assert_eq!(StressScenario::healthy().name(), "stress-healthy-gc");
    }

    #[test]
    fn spec_constructors_match_paper_numbers() {
        let s = StressSpec::paper(0);
        assert_eq!(s.tasks, 16);
        assert_eq!(s.elements, 128);
        assert_eq!(s.elem_bytes, 2);
        assert_eq!(s.stack_bytes, 512);
        assert!(matches!(s.gc_fault, GcFaultMode::LeakDeadBlocks { .. }));
        assert!(matches!(StressSpec::healthy(0).gc_fault, GcFaultMode::None));
    }
}
