//! # ptest-faults — the fault scenarios of the pTest evaluation
//!
//! The concrete buggy (and control) programs the paper tests pCore with,
//! plus extra scenarios used by the baseline-comparison experiments:
//!
//! * [`fig1`] — Figure 1's two spin-waiting slave processes whose fate
//!   depends on the master's resume order (completing vs livelock).
//! * [`philosophers`] — case study 2: the three-task dining-philosophers
//!   deadlock and its corrected variant.
//! * [`stress`] — case study 1: 16 quick-sorting tasks under
//!   create/delete churn over a garbage-collected heap with an
//!   injectable GC defect.
//! * [`scenarios`] — starvation, priority inversion, and a lost-update
//!   race (with its final-value oracle).
//! * [`multicore`] — multi-slave scenarios over the N-slave platform: a
//!   cross-core pipeline whose semaphore hand-off deadlocks *across
//!   kernels*, and a shared-SRAM producer/consumer race between slaves.
//! * [`races`] — schedule-sensitive cross-core races, unreachable under
//!   lock-step and exposed by the randomized-priority scheduler.
//! * [`timers`] — preemption-sensitive timer/ISR faults, invisible
//!   under non-preemptive lock-step and exposed by deterministic
//!   interrupt injection and quantum time-slicing.
//! * [`weakmem`] — memory-model-sensitive races (Dekker store
//!   visibility, IRIW), invisible under sequential consistency and
//!   exposed by the store-buffer memory model.
//!
//! Everything is deterministic; each scenario documents the exact
//! schedule window its bug needs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod fig1;
pub mod multicore;
pub mod philosophers;
pub mod races;
pub mod scenarios;
pub mod stress;
pub mod timers;
pub mod weakmem;

#[cfg(test)]
mod tests {
    #[test]
    fn scenario_constants_are_consistent() {
        assert_eq!(super::philosophers::PHILOSOPHERS, 3);
        assert_ne!(super::fig1::VAR_X, super::fig1::VAR_Y);
    }
}
