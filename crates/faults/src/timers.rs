//! Preemption-sensitive timer/ISR faults: bugs that are **invisible
//! under non-preemptive lock-step execution** no matter which patterns
//! the PFA generates or how the cross-kernel schedule paces the cores,
//! and only manifest when the preemption axis
//! ([`PreemptionSpec`]) is explored —
//! deterministic interrupt injection for one, quantum time-slicing for
//! the other.
//!
//! * [`IsrSharedVarScenario`] — a task runs read-modify-write rounds
//!   over a kernel variable that the timer ISR also increments. Without
//!   an [`InterruptConfig`] no interrupt
//!   ever fires and the final tally is trivially consistent. With
//!   injections enabled, an ISR that fires inside the task's RMW window
//!   (after the read, before the write-back) has its increment
//!   overwritten by the task's stale write — a classic lost update
//!   between task and interrupt context. The task tallies ISR runs in a
//!   second variable and checks `counter == rounds + isr_increments`
//!   with interrupts masked; a lost update trips the guard as a
//!   deterministic task fault the `(pattern, schedule, memory, irq)`
//!   quadruple replays. The `fixed` variant brackets each RMW window
//!   with [`Op::IrqMask`]/[`Op::IrqUnmask`], deferring injections past
//!   the window — clean under *any* interrupt plan.
//! * [`QuantumAtomicityScenario`] — two tasks in different priority
//!   bands on one kernel run RMW rounds over a shared counter. The
//!   non-preemptive kernel picks strictly by priority, so the
//!   higher-band task runs its loop to completion while the lower one
//!   spins at the barrier; the loops serialize and the final count is
//!   exact. A [`QuantumConfig`] rotates the
//!   core between the bands at slice boundaries, the loops overlap, a
//!   slice that expires inside a critical window splits read from
//!   write-back, and increments vanish. The `fixed` variant wraps the
//!   window in a kernel mutex, which keeps the windows whole across
//!   slice rotation — clean under *any* quantum.
//!
//! Both scenarios follow the [`races`](crate::races) discipline: bounded
//! spins so pattern-mutilated protocols (a `TD` deleting a peer task)
//! exit benignly instead of reading as livelock, and a stack-probe guard
//! as the detector-visible manifestation symptom.

use ptest_core::{
    AdaptiveTestConfig, InterruptConfig, MergeOp, PreemptionSpec, QuantumConfig, Scenario,
};
use ptest_master::{MultiCoreSystem, SystemConfig};
use ptest_pcore::{Op, ProgramBuilder, ProgramId, VarId};

/// The shared counter both task and ISR (or both tasks) increment.
pub const TIMER_SHARED: VarId = VarId(4);
/// Tally of ISR increments, maintained by the ISR itself.
pub const TIMER_ISR_COUNT: VarId = VarId(5);
/// Barrier flag announced by the low-band task.
pub const TIMER_READY0: VarId = VarId(6);
/// Barrier flag announced by the high-band task.
pub const TIMER_READY1: VarId = VarId(7);
/// Completion flag of the high-band writer.
pub const TIMER_DONE1: VarId = VarId(8);

/// Iterations a task spins on a flag before giving up benignly (exiting
/// without running its check) — see [`crate::races`].
const SPIN_BUDGET: i64 = 30_000;

/// A `StackProbe` far beyond any configured stack: the deterministic
/// "the fault manifested" symptom, killed by the kernel as a
/// stack-overflow task fault and picked up by the detector.
const GUARD_TRIP: u32 = 1 << 20;

/// Buggy (unprotected window) or fixed (window protected) variant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TimerVariant {
    /// The RMW window is open to preemption mid-flight.
    Buggy,
    /// The window is protected — interrupts masked across it, or the
    /// window bracketed by a mutex — and stays whole under exploration.
    Fixed,
}

/// Appends a bounded spin until `var == value`, falling through to the
/// label `go`; gives up (plain `Exit`) after [`SPIN_BUDGET`] iterations.
fn bounded_spin(b: &mut ProgramBuilder, var: VarId, value: i64, scratch: u8, go: &str) {
    let spin = format!("spin_{var}_{go}");
    let give_up = format!("give_up_{var}_{go}");
    b.push(Op::AddReg {
        reg: scratch,
        delta: SPIN_BUDGET,
    });
    b.bind(&spin);
    b.branch_if_var_eq(var, value, go);
    b.push(Op::AddReg {
        reg: scratch,
        delta: -1,
    });
    b.branch_if_reg_eq(scratch, 0, &give_up);
    b.jump_to(&spin);
    b.bind(&give_up);
    b.push(Op::Exit);
    b.bind(go);
}

/// The guard epilogue: fault unless register `reg` holds `expected`.
fn guard(b: &mut ProgramBuilder, reg: u8, expected: i64) {
    b.branch_if_reg_eq(reg, expected, "guard_ok");
    b.push(Op::StackProbe(GUARD_TRIP));
    b.bind("guard_ok");
    b.push(Op::Exit);
}

/// The shared single-slave base configuration of both timer scenarios:
/// lock-step schedule (the preemption axis is what these scenarios
/// probe — the cross-kernel schedule stays at its fast path), one slave
/// so every planned injection lands on the kernel under test, and the
/// same anti-mutilation pattern distribution as [`crate::races`].
fn timer_base_config(n: usize, preemption: PreemptionSpec) -> AdaptiveTestConfig {
    AdaptiveTestConfig {
        n,
        s: 6,
        op: MergeOp::cyclic(),
        inter_command_gap: 30,
        pd: ptest_automata::ProbabilityAssignment::weights([
            ("TC", 1.0),
            ("TCH", 1.0),
            ("TS", 1e-4),
            ("TD", 1e-4),
            ("TY", 0.05),
            ("TR", 1.0),
        ]),
        max_cycles: 250_000,
        drain_cycles: 80_000,
        detector: ptest_core::DetectorConfig {
            progress_window: ptest_soc::Cycles::new(60_000),
            ..ptest_core::DetectorConfig::default()
        },
        preemption,
        system: SystemConfig::with_slaves(1),
        ..AdaptiveTestConfig::default()
    }
}

/// A task-vs-ISR lost update on a shared variable. See the [module
/// docs](self).
#[derive(Debug, Clone, Copy)]
pub struct IsrSharedVarScenario {
    /// Buggy (open window) or fixed (mask-bracketed) variant.
    pub variant: TimerVariant,
    /// Read-modify-write rounds the task performs.
    pub rounds: i64,
}

impl IsrSharedVarScenario {
    /// The unprotected variant at the default round count.
    #[must_use]
    pub fn buggy() -> IsrSharedVarScenario {
        IsrSharedVarScenario {
            variant: TimerVariant::Buggy,
            rounds: 40,
        }
    }

    /// The mask-bracketed control variant.
    #[must_use]
    pub fn fixed() -> IsrSharedVarScenario {
        IsrSharedVarScenario {
            variant: TimerVariant::Fixed,
            ..IsrSharedVarScenario::buggy()
        }
    }

    /// The interrupt plan this scenario explores by default: enough
    /// injections across the task's active window that some seed's plan
    /// lands one mid-RMW.
    #[must_use]
    pub fn default_interrupts() -> InterruptConfig {
        InterruptConfig {
            count: 12,
            horizon: 900,
            ..InterruptConfig::default()
        }
    }
}

impl Scenario for IsrSharedVarScenario {
    fn name(&self) -> &str {
        match self.variant {
            TimerVariant::Buggy => "isr-shared-var-buggy",
            TimerVariant::Fixed => "isr-shared-var-fixed",
        }
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        timer_base_config(
            1,
            PreemptionSpec {
                interrupts: Some(IsrSharedVarScenario::default_interrupts()),
                ..PreemptionSpec::default()
            },
        )
    }

    fn setup(&self, sys: &mut MultiCoreSystem) -> Vec<ProgramId> {
        // The timer ISR: atomically (interrupt context preempts tasks,
        // never the reverse) increment the shared counter and its own
        // run tally.
        let isr = {
            let mut b = ProgramBuilder::new();
            b.push(Op::ReadVar {
                var: TIMER_SHARED,
                reg: 0,
            });
            b.push(Op::AddReg { reg: 0, delta: 1 });
            b.push(Op::WriteVarReg {
                var: TIMER_SHARED,
                reg: 0,
            });
            b.push(Op::ReadVar {
                var: TIMER_ISR_COUNT,
                reg: 1,
            });
            b.push(Op::AddReg { reg: 1, delta: 1 });
            b.push(Op::WriteVarReg {
                var: TIMER_ISR_COUNT,
                reg: 1,
            });
            b.push(Op::Exit);
            b.build().expect("isr program is valid")
        };
        let isr = sys.kernel_mut().register_program(isr);
        sys.kernel_mut().set_isr_program(isr);

        // The worker: `rounds` RMW rounds with a deliberately padded
        // window between read and write-back, then a masked final check
        // that `counter - rounds - isr_increments == 0` (computed by
        // counting `isr_increments` down against the surplus).
        let worker = {
            let mut b = ProgramBuilder::new();
            b.bind("rmw");
            if self.variant == TimerVariant::Fixed {
                b.push(Op::IrqMask);
            }
            b.push(Op::ReadVar {
                var: TIMER_SHARED,
                reg: 0,
            });
            b.push(Op::Compute(6)); // the exposed half-open window
            b.push(Op::AddReg { reg: 0, delta: 1 });
            b.push(Op::WriteVarReg {
                var: TIMER_SHARED,
                reg: 0,
            });
            if self.variant == TimerVariant::Fixed {
                b.push(Op::IrqUnmask);
            }
            b.push(Op::Compute(4)); // breathing room for deferred irqs
            b.push(Op::AddReg { reg: 1, delta: 1 });
            b.branch_if_reg_eq(1, self.rounds, "check");
            b.jump_to("rmw");
            b.bind("check");
            // Mask before sampling both tallies: an ISR between the two
            // reads would skew the comparison in either variant.
            b.push(Op::IrqMask);
            b.push(Op::ReadVar {
                var: TIMER_SHARED,
                reg: 2,
            });
            b.push(Op::AddReg {
                reg: 2,
                delta: -self.rounds,
            });
            b.push(Op::ReadVar {
                var: TIMER_ISR_COUNT,
                reg: 3,
            });
            // r2 -= r3, one step at a time (the ISA has no reg-reg sub).
            b.bind("drain");
            b.branch_if_reg_eq(3, 0, "verify");
            b.push(Op::AddReg { reg: 3, delta: -1 });
            b.push(Op::AddReg { reg: 2, delta: -1 });
            b.jump_to("drain");
            b.bind("verify");
            guard(&mut b, 2, 0);
            b.build().expect("worker program is valid")
        };
        vec![sys.kernel_mut().register_program(worker)]
    }
}

/// A quantum-expiry atomicity violation between two priority bands. See
/// the [module docs](self).
#[derive(Debug, Clone, Copy)]
pub struct QuantumAtomicityScenario {
    /// Buggy (open window) or fixed (mutex-bracketed) variant.
    pub variant: TimerVariant,
    /// Read-modify-write rounds each task performs.
    pub rounds: i64,
}

impl QuantumAtomicityScenario {
    /// The unprotected variant at the default round count.
    #[must_use]
    pub fn buggy() -> QuantumAtomicityScenario {
        QuantumAtomicityScenario {
            variant: TimerVariant::Buggy,
            rounds: 8,
        }
    }

    /// The mutex-bracketed control variant.
    #[must_use]
    pub fn fixed() -> QuantumAtomicityScenario {
        QuantumAtomicityScenario {
            variant: TimerVariant::Fixed,
            ..QuantumAtomicityScenario::buggy()
        }
    }

    /// The quantum this scenario explores by default: shorter than the
    /// RMW window, so a slice boundary must land inside it once the
    /// loops overlap.
    #[must_use]
    pub fn default_quantum() -> QuantumConfig {
        QuantumConfig { cycles: 5 }
    }
}

impl Scenario for QuantumAtomicityScenario {
    fn name(&self) -> &str {
        match self.variant {
            TimerVariant::Buggy => "quantum-atomicity-buggy",
            TimerVariant::Fixed => "quantum-atomicity-fixed",
        }
    }

    fn base_config(&self) -> AdaptiveTestConfig {
        timer_base_config(
            2,
            PreemptionSpec {
                quantum: Some(QuantumAtomicityScenario::default_quantum()),
                ..PreemptionSpec::default()
            },
        )
    }

    fn setup(&self, sys: &mut MultiCoreSystem) -> Vec<ProgramId> {
        let guard_mutex = sys.kernel_mut().create_mutex();
        let bracket = self.variant == TimerVariant::Fixed;

        // One RMW loop body, shared by both writers. The window is wider
        // than the default quantum, so slice rotation must split it.
        let rmw_loop = |b: &mut ProgramBuilder, rounds: i64| {
            b.bind("rmw");
            if bracket {
                b.push(Op::MutexLock(guard_mutex));
            }
            b.push(Op::ReadVar {
                var: TIMER_SHARED,
                reg: 0,
            });
            b.push(Op::Compute(6));
            b.push(Op::AddReg { reg: 0, delta: 1 });
            b.push(Op::WriteVarReg {
                var: TIMER_SHARED,
                reg: 0,
            });
            if bracket {
                b.push(Op::MutexUnlock(guard_mutex));
            }
            b.push(Op::AddReg { reg: 1, delta: 1 });
            b.branch_if_reg_eq(1, rounds, "rmw_done");
            b.jump_to("rmw");
            b.bind("rmw_done");
        };

        // Pattern 0 (low priority band): announce, await the peer,
        // loop, then await the peer's completion and check. Without a
        // quantum the higher band runs its whole loop while this task
        // spins, so the serial total is exact.
        let checker = {
            let mut b = ProgramBuilder::new();
            b.push(Op::WriteVar {
                var: TIMER_READY0,
                value: 1,
            });
            bounded_spin(&mut b, TIMER_READY1, 1, 7, "go");
            rmw_loop(&mut b, self.rounds);
            bounded_spin(&mut b, TIMER_DONE1, 1, 6, "check");
            b.push(Op::Compute(4)); // let the peer's last write settle
            b.push(Op::ReadVar {
                var: TIMER_SHARED,
                reg: 2,
            });
            guard(&mut b, 2, 2 * self.rounds);
            b.build().expect("checker program is valid")
        };
        // Pattern 1 (high priority band): announce, await the peer,
        // loop, signal completion.
        let writer = {
            let mut b = ProgramBuilder::new();
            b.push(Op::WriteVar {
                var: TIMER_READY1,
                value: 1,
            });
            bounded_spin(&mut b, TIMER_READY0, 1, 7, "go");
            rmw_loop(&mut b, self.rounds);
            b.push(Op::WriteVar {
                var: TIMER_DONE1,
                value: 1,
            });
            b.push(Op::Exit);
            b.build().expect("writer program is valid")
        };
        vec![
            sys.kernel_mut().register_program(checker),
            sys.kernel_mut().register_program(writer),
        ]
    }
}

/// Whether a report contains the timer faults' manifestation symptom:
/// the guard's stack-probe task fault on the checking task.
#[must_use]
pub fn timer_fault_manifested(report: &ptest_core::TestReport) -> bool {
    report.found(|k| {
        matches!(
            k,
            ptest_core::BugKind::TaskFault {
                fault: ptest_pcore::TaskFault::StackOverflow,
                ..
            }
        )
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_core::{TrialEngine, TrialOverrides, TrialScratch};

    /// Runs `scenario` under an explicit preemption spec at a seed
    /// quadruple (schedule and memory stay at the scenario's lock-step /
    /// seq-cst base).
    fn run_preempted(
        scenario: &dyn Scenario,
        preemption: PreemptionSpec,
        seed: u64,
        irq_seed: u64,
    ) -> ptest_core::TestReport {
        let engine = TrialEngine::new(scenario.base_config()).expect("valid scenario config");
        engine
            .run_scenario_trial_overridden(
                scenario,
                seed,
                seed,
                seed,
                TrialOverrides {
                    preemption: Some(preemption),
                    irq_seed: Some(irq_seed),
                    ..TrialOverrides::default()
                },
                &mut TrialScratch::new(),
            )
            .expect("trial runs")
    }

    /// The first `(seed, irq_seed)` pair (small search) at which the
    /// scenario manifests under its own preemption spec.
    fn find_manifestation(scenario: &dyn Scenario) -> Option<(u64, u64)> {
        let spec = scenario.base_config().preemption;
        for seed in 0..4 {
            for irq_seed in 0..8 {
                let report = run_preempted(scenario, spec, seed, irq_seed);
                if timer_fault_manifested(&report) {
                    return Some((seed, irq_seed));
                }
            }
        }
        None
    }

    #[test]
    fn isr_race_is_invisible_without_interrupt_injection() {
        for seed in 0..6 {
            let report = run_preempted(
                &IsrSharedVarScenario::buggy(),
                PreemptionSpec::default(),
                seed,
                seed ^ 0xABCD,
            );
            assert!(
                !timer_fault_manifested(&report),
                "seed {seed}: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn isr_race_manifests_under_injection_and_replays_from_the_quadruple() {
        let scenario = IsrSharedVarScenario::buggy();
        let (seed, irq_seed) =
            find_manifestation(&scenario).expect("some quadruple must expose the ISR lost update");
        let spec = scenario.base_config().preemption;
        let a = run_preempted(&scenario, spec, seed, irq_seed);
        let b = run_preempted(&scenario, spec, seed, irq_seed);
        assert!(timer_fault_manifested(&a));
        assert_eq!(a.irq_seed, irq_seed, "the quadruple is recorded");
        assert_eq!(a.bugs.len(), b.bugs.len());
        for (x, y) in a.bugs.iter().zip(&b.bugs) {
            assert_eq!(x.kind, y.kind);
            assert_eq!(x.detected_at, y.detected_at, "quadruple replay is exact");
        }
        assert_eq!(
            format!("{:?}", a.machine_summary()),
            format!("{:?}", b.machine_summary()),
        );
    }

    #[test]
    fn masked_isr_race_is_clean_under_any_injection_plan() {
        assert!(
            find_manifestation(&IsrSharedVarScenario::fixed()).is_none(),
            "the mask-bracketed variant must never lose an update"
        );
    }

    #[test]
    fn quantum_atomicity_is_invisible_without_a_quantum() {
        for seed in 0..6 {
            let report = run_preempted(
                &QuantumAtomicityScenario::buggy(),
                PreemptionSpec::default(),
                seed,
                seed ^ 0xEF01,
            );
            assert!(
                !timer_fault_manifested(&report),
                "seed {seed}: {}",
                report.summary()
            );
        }
    }

    #[test]
    fn quantum_atomicity_manifests_under_a_quantum_and_replays() {
        let scenario = QuantumAtomicityScenario::buggy();
        let (seed, irq_seed) =
            find_manifestation(&scenario).expect("some quadruple must expose the split window");
        let spec = scenario.base_config().preemption;
        let a = run_preempted(&scenario, spec, seed, irq_seed);
        let b = run_preempted(&scenario, spec, seed, irq_seed);
        assert!(timer_fault_manifested(&a));
        assert_eq!(
            a.bugs.iter().map(|x| x.detected_at).collect::<Vec<_>>(),
            b.bugs.iter().map(|x| x.detected_at).collect::<Vec<_>>(),
        );
    }

    #[test]
    fn mutex_bracketed_quantum_variant_is_clean_under_any_quantum() {
        assert!(
            find_manifestation(&QuantumAtomicityScenario::fixed()).is_none(),
            "the mutex-bracketed variant must never lose an update"
        );
    }

    #[test]
    fn minimization_shrinks_the_injection_mask_of_the_isr_race() {
        use ptest_core::{minimize_scenario_trial, replay_minimized, MinimizeConfig};
        let scenario = IsrSharedVarScenario::buggy();
        let (seed, irq_seed) =
            find_manifestation(&scenario).expect("some quadruple must expose the ISR lost update");
        let base = scenario.base_config();
        let engine = TrialEngine::new(base.clone()).expect("valid scenario config");
        let mut scratch = TrialScratch::new();
        let repro = minimize_scenario_trial(
            &engine,
            &scenario,
            seed,
            seed,
            seed,
            irq_seed,
            base.schedule,
            base.memory,
            base.preemption,
            None,
            &MinimizeConfig::default(),
            &mut scratch,
        )
        .expect("a manifesting trial minimizes");
        assert_eq!(repro.irq_seed, irq_seed);
        assert!(
            repro.minimized_injections <= repro.original_injections,
            "ddmin never grows the injection set"
        );
        assert!(
            repro.minimized_injections >= 1,
            "the fault needs at least one injection"
        );
        let replayed = replay_minimized(&engine, &scenario, &repro, &mut scratch)
            .expect("the shrunk reproducer replays");
        assert_eq!(
            format!("{:?}", replayed.machine_summary()),
            format!("{:?}", repro.summary),
            "the reproducer replays byte-identically from its stored parts"
        );
    }
}
