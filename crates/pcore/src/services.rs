//! The pCore task-management kernel services (paper Table I).

use std::fmt;
use std::str::FromStr;

/// One of the six task-management kernel services of pCore.
///
/// This is exactly the paper's Table I:
///
/// | service | abbreviation | description |
/// |---|---|---|
/// | `task_create`   | TC  | Create a task |
/// | `task_delete`   | TD  | Delete a task |
/// | `task_suspend`  | TS  | Suspend a task |
/// | `task_resume`   | TR  | Resume a task |
/// | `task_chanprio` | TCH | Change the priority of a task |
/// | `task_yield`    | TY  | Terminate the current running task |
///
/// The abbreviations are the alphabet of the regular expression (paper
/// Eq. 2) that the PFA is built from.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum Service {
    /// `task_create` — create a task (abbreviated **TC**).
    Create,
    /// `task_delete` — delete a task (abbreviated **TD**).
    Delete,
    /// `task_suspend` — suspend a task (abbreviated **TS**).
    Suspend,
    /// `task_resume` — resume a task (abbreviated **TR**).
    Resume,
    /// `task_chanprio` — change the priority of a task (abbreviated **TCH**).
    ChangePriority,
    /// `task_yield` — terminate the current running task (abbreviated **TY**).
    Yield,
}

impl Service {
    /// All six services, in Table I order.
    pub const ALL: [Service; 6] = [
        Service::Create,
        Service::Delete,
        Service::Suspend,
        Service::Resume,
        Service::ChangePriority,
        Service::Yield,
    ];

    /// The paper's abbreviation for this service (`"TC"`, `"TD"`, …).
    #[must_use]
    pub fn abbrev(self) -> &'static str {
        match self {
            Service::Create => "TC",
            Service::Delete => "TD",
            Service::Suspend => "TS",
            Service::Resume => "TR",
            Service::ChangePriority => "TCH",
            Service::Yield => "TY",
        }
    }

    /// The full kernel-service name (`"task_create"`, …).
    #[must_use]
    pub fn full_name(self) -> &'static str {
        match self {
            Service::Create => "task_create",
            Service::Delete => "task_delete",
            Service::Suspend => "task_suspend",
            Service::Resume => "task_resume",
            Service::ChangePriority => "task_chanprio",
            Service::Yield => "task_yield",
        }
    }

    /// The Table I description of this service.
    #[must_use]
    pub fn description(self) -> &'static str {
        match self {
            Service::Create => "Create a task",
            Service::Delete => "Delete a task",
            Service::Suspend => "Suspend a task",
            Service::Resume => "Resume a task",
            Service::ChangePriority => "Change the priority of a task",
            Service::Yield => "Terminate the current running task",
        }
    }

    /// A stable wire code used by the bridge protocol.
    #[must_use]
    pub fn wire_code(self) -> u8 {
        match self {
            Service::Create => 1,
            Service::Delete => 2,
            Service::Suspend => 3,
            Service::Resume => 4,
            Service::ChangePriority => 5,
            Service::Yield => 6,
        }
    }

    /// Decodes a wire code produced by [`Service::wire_code`].
    #[must_use]
    pub fn from_wire_code(code: u8) -> Option<Service> {
        Service::ALL.into_iter().find(|s| s.wire_code() == code)
    }

    /// Whether this service ends a task's life cycle (the `TD$ | TY$`
    /// suffix of the paper's regular expression).
    #[must_use]
    pub fn is_terminal(self) -> bool {
        matches!(self, Service::Delete | Service::Yield)
    }
}

impl fmt::Display for Service {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.abbrev())
    }
}

/// Error parsing a service abbreviation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseServiceError {
    input: String,
}

impl fmt::Display for ParseServiceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "unknown pCore service abbreviation `{}` (expected one of TC, TD, TS, TR, TCH, TY)",
            self.input
        )
    }
}

impl std::error::Error for ParseServiceError {}

impl FromStr for Service {
    type Err = ParseServiceError;

    fn from_str(s: &str) -> Result<Service, ParseServiceError> {
        Service::ALL
            .into_iter()
            .find(|svc| svc.abbrev() == s || svc.full_name() == s)
            .ok_or_else(|| ParseServiceError {
                input: s.to_owned(),
            })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_one_is_complete() {
        assert_eq!(Service::ALL.len(), 6);
        let abbrevs: Vec<&str> = Service::ALL.iter().map(|s| s.abbrev()).collect();
        assert_eq!(abbrevs, vec!["TC", "TD", "TS", "TR", "TCH", "TY"]);
    }

    #[test]
    fn abbreviations_parse_back() {
        for svc in Service::ALL {
            assert_eq!(svc.abbrev().parse::<Service>().unwrap(), svc);
            assert_eq!(svc.full_name().parse::<Service>().unwrap(), svc);
        }
    }

    #[test]
    fn unknown_abbreviation_is_an_error() {
        let err = "TX".parse::<Service>().unwrap_err();
        assert!(err.to_string().contains("TX"));
    }

    #[test]
    fn wire_codes_roundtrip() {
        for svc in Service::ALL {
            assert_eq!(Service::from_wire_code(svc.wire_code()), Some(svc));
        }
        assert_eq!(Service::from_wire_code(0), None);
        assert_eq!(Service::from_wire_code(200), None);
    }

    #[test]
    fn terminal_services_match_regex_suffix() {
        assert!(Service::Delete.is_terminal());
        assert!(Service::Yield.is_terminal());
        assert!(!Service::Create.is_terminal());
        assert!(!Service::Suspend.is_terminal());
        assert!(!Service::Resume.is_terminal());
        assert!(!Service::ChangePriority.is_terminal());
    }

    #[test]
    fn descriptions_match_table_one() {
        assert_eq!(
            Service::Yield.description(),
            "Terminate the current running task"
        );
        assert_eq!(Service::Create.description(), "Create a task");
    }
}
