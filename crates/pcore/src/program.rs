//! The work-model ISA interpreted by the simulated kernel.
//!
//! Real pCore tasks run C55x DSP machine code. Reproducing that is neither
//! feasible nor necessary: what the paper's evaluation needs from task code
//! is its *observable behaviour* — compute load, heap/stack pressure,
//! synchronization operations and shared-variable traffic. The work-model
//! ISA captures exactly those effects as a small deterministic instruction
//! set, so scenarios like Figure 1's spin loops or the quick-sort stress
//! workload can be expressed precisely and replayed bit-for-bit.

use std::fmt;

use crate::ids::{MutexId, SemId, VarId};

/// Number of general-purpose registers per task.
pub const NUM_REGS: usize = 8;

/// A register index (`0..NUM_REGS`).
pub type Reg = u8;

/// One work-model instruction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Op {
    /// Busy-compute for the given number of cycles.
    Compute(u32),
    /// Allocate `bytes` from the kernel heap; the block handle is written
    /// to register `reg`. Allocation failure triggers a garbage collection;
    /// if that also fails the kernel panics (out of memory).
    Alloc {
        /// Number of bytes requested.
        bytes: u32,
        /// Destination register for the block handle.
        reg: Reg,
    },
    /// Free the heap block whose handle is in register `reg`. Freeing an
    /// invalid handle is a task fault.
    Free {
        /// Register holding the block handle.
        reg: Reg,
    },
    /// Model a peak stack usage of `bytes`; exceeding the task's stack
    /// size is a task fault (stack overflow).
    StackProbe(u32),
    /// Load shared variable `var` into register `reg`.
    ReadVar {
        /// Source shared variable.
        var: VarId,
        /// Destination register.
        reg: Reg,
    },
    /// Store the immediate `value` to shared variable `var`.
    WriteVar {
        /// Destination shared variable.
        var: VarId,
        /// Immediate value to store.
        value: i64,
    },
    /// Store register `reg` to shared variable `var`.
    WriteVarReg {
        /// Destination shared variable.
        var: VarId,
        /// Source register.
        reg: Reg,
    },
    /// Add the immediate `delta` to register `reg`.
    AddReg {
        /// Register to modify.
        reg: Reg,
        /// Amount to add (may be negative).
        delta: i64,
    },
    /// Jump to instruction `target` if shared variable `var == value`.
    BranchIfVarEq {
        /// Shared variable to test.
        var: VarId,
        /// Value to compare against.
        value: i64,
        /// Jump target (instruction index).
        target: u16,
    },
    /// Jump to instruction `target` if register `reg == value`.
    BranchIfRegEq {
        /// Register to test.
        reg: Reg,
        /// Value to compare against.
        value: i64,
        /// Jump target (instruction index).
        target: u16,
    },
    /// Unconditional jump to instruction `target`.
    Jump(u16),
    /// Yield the processor to other ready tasks (the `yield()` of Fig. 1).
    Yield,
    /// Wait on (decrement) a counting semaphore; blocks while its count is
    /// zero.
    SemWait(SemId),
    /// Post to (increment) a counting semaphore, waking the highest-
    /// priority waiter.
    SemPost(SemId),
    /// Acquire a mutex; blocks while another task holds it. Recursive
    /// locking is a task fault.
    MutexLock(MutexId),
    /// Release a mutex; releasing a mutex the task does not own is a task
    /// fault.
    MutexUnlock(MutexId),
    /// Block for the given number of cycles.
    SleepFor(u32),
    /// Memory fence: drains this core's store buffer, making every
    /// buffered shared-variable write globally visible before the next
    /// instruction. Cumulative — foreign stores this core has already
    /// observed are forced out with it. A no-op under sequentially
    /// consistent propagation, where every store is already visible.
    Fence,
    /// Disable interrupt delivery on this core: pending interrupts stay
    /// queued and no ISR preempts until [`Op::IrqUnmask`]. Models the
    /// critical-section `HWI_disable()` of the embedded kernels the
    /// paper targets.
    IrqMask,
    /// Re-enable interrupt delivery on this core; a queued interrupt is
    /// serviced at the next kernel tick.
    IrqUnmask,
    /// Terminate this task normally.
    Exit,
}

impl Op {
    /// The base cycle cost of executing this instruction once.
    ///
    /// `Compute(n)` and `SleepFor(n)` consume `n` additional cycles beyond
    /// the base cost.
    #[must_use]
    pub fn base_cost(&self) -> u64 {
        match self {
            Op::Compute(_) | Op::Jump(_) | Op::AddReg { .. } | Op::Fence => 1,
            Op::IrqMask | Op::IrqUnmask => 1,
            Op::ReadVar { .. }
            | Op::WriteVar { .. }
            | Op::WriteVarReg { .. }
            | Op::BranchIfVarEq { .. }
            | Op::BranchIfRegEq { .. }
            | Op::StackProbe(_) => 1,
            Op::Yield | Op::SleepFor(_) | Op::Exit => 2,
            Op::SemWait(_) | Op::SemPost(_) | Op::MutexLock(_) | Op::MutexUnlock(_) => 3,
            Op::Alloc { .. } | Op::Free { .. } => 8,
        }
    }
}

impl fmt::Display for Op {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Op::Compute(n) => write!(f, "compute {n}"),
            Op::Alloc { bytes, reg } => write!(f, "alloc {bytes}B -> r{reg}"),
            Op::Free { reg } => write!(f, "free r{reg}"),
            Op::StackProbe(b) => write!(f, "stackprobe {b}B"),
            Op::ReadVar { var, reg } => write!(f, "read {var} -> r{reg}"),
            Op::WriteVar { var, value } => write!(f, "write {var} = {value}"),
            Op::WriteVarReg { var, reg } => write!(f, "write {var} = r{reg}"),
            Op::AddReg { reg, delta } => write!(f, "add r{reg} += {delta}"),
            Op::BranchIfVarEq { var, value, target } => {
                write!(f, "if {var} == {value} goto {target}")
            }
            Op::BranchIfRegEq { reg, value, target } => {
                write!(f, "if r{reg} == {value} goto {target}")
            }
            Op::Jump(t) => write!(f, "goto {t}"),
            Op::Yield => write!(f, "yield"),
            Op::SemWait(s) => write!(f, "sem_wait {s}"),
            Op::SemPost(s) => write!(f, "sem_post {s}"),
            Op::MutexLock(m) => write!(f, "lock {m}"),
            Op::MutexUnlock(m) => write!(f, "unlock {m}"),
            Op::SleepFor(n) => write!(f, "sleep {n}"),
            Op::Fence => write!(f, "fence"),
            Op::IrqMask => write!(f, "irq_mask"),
            Op::IrqUnmask => write!(f, "irq_unmask"),
            Op::Exit => write!(f, "exit"),
        }
    }
}

/// Error validating a [`Program`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ProgramError {
    /// A branch or jump targets an instruction index outside the program.
    BranchOutOfRange {
        /// Index of the offending instruction.
        at: usize,
        /// The invalid target.
        target: u16,
        /// Program length.
        len: usize,
    },
    /// An instruction names a register `>= NUM_REGS`.
    BadRegister {
        /// Index of the offending instruction.
        at: usize,
        /// The invalid register.
        reg: Reg,
    },
    /// The program is empty.
    Empty,
    /// The program exceeds the maximum encodable length (`u16::MAX` ops).
    TooLong {
        /// Actual length.
        len: usize,
    },
}

impl fmt::Display for ProgramError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ProgramError::BranchOutOfRange { at, target, len } => write!(
                f,
                "instruction {at} branches to {target} but program length is {len}"
            ),
            ProgramError::BadRegister { at, reg } => {
                write!(
                    f,
                    "instruction {at} uses register r{reg} (max r{})",
                    NUM_REGS - 1
                )
            }
            ProgramError::Empty => write!(f, "program has no instructions"),
            ProgramError::TooLong { len } => {
                write!(f, "program has {len} instructions (max {})", u16::MAX)
            }
        }
    }
}

impl std::error::Error for ProgramError {}

/// A validated, immutable sequence of work-model instructions.
///
/// ```
/// use ptest_pcore::{Op, Program, VarId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let program = Program::new(vec![
///     Op::WriteVar { var: VarId(0), value: 1 },
///     Op::Compute(10),
///     Op::Exit,
/// ])?;
/// assert_eq!(program.len(), 3);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Program {
    ops: Vec<Op>,
}

impl Program {
    /// Validates and wraps an instruction sequence.
    ///
    /// # Errors
    ///
    /// Returns a [`ProgramError`] if the program is empty, too long, names
    /// an out-of-range register, or branches out of range.
    pub fn new(ops: Vec<Op>) -> Result<Program, ProgramError> {
        if ops.is_empty() {
            return Err(ProgramError::Empty);
        }
        if ops.len() > usize::from(u16::MAX) {
            return Err(ProgramError::TooLong { len: ops.len() });
        }
        for (at, op) in ops.iter().enumerate() {
            let target = match op {
                Op::BranchIfVarEq { target, .. }
                | Op::BranchIfRegEq { target, .. }
                | Op::Jump(target) => Some(*target),
                _ => None,
            };
            if let Some(t) = target {
                if usize::from(t) >= ops.len() {
                    return Err(ProgramError::BranchOutOfRange {
                        at,
                        target: t,
                        len: ops.len(),
                    });
                }
            }
            let reg = match op {
                Op::Alloc { reg, .. }
                | Op::Free { reg }
                | Op::ReadVar { reg, .. }
                | Op::WriteVarReg { reg, .. }
                | Op::AddReg { reg, .. }
                | Op::BranchIfRegEq { reg, .. } => Some(*reg),
                _ => None,
            };
            if let Some(r) = reg {
                if usize::from(r) >= NUM_REGS {
                    return Err(ProgramError::BadRegister { at, reg: r });
                }
            }
        }
        Ok(Program { ops })
    }

    /// The instruction at index `pc`, if in range.
    #[must_use]
    pub fn op(&self, pc: u16) -> Option<Op> {
        self.ops.get(usize::from(pc)).copied()
    }

    /// Number of instructions.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the program has no instructions (never true: construction
    /// rejects empty programs).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }

    /// Iterates over the instructions in order.
    pub fn iter(&self) -> impl Iterator<Item = &Op> {
        self.ops.iter()
    }

    /// A trivial program that exits immediately.
    #[must_use]
    pub fn exit_immediately() -> Program {
        Program {
            ops: vec![Op::Exit],
        }
    }
}

/// A builder with symbolic labels for writing branchy programs by hand.
///
/// ```
/// use ptest_pcore::{Op, ProgramBuilder, VarId};
///
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// // Fig. 1's S1: a: x=1; b: while (y==1) c: yield(); d: x=0; e: end
/// let mut b = ProgramBuilder::new();
/// b.push(Op::WriteVar { var: VarId(0), value: 1 });          // a
/// let test = b.label();                                       // b
/// b.branch_if_var_eq(VarId(1), 1, "spin");                    //   y==1 ?
/// b.jump_to("done");                                          //   else d
/// b.bind("spin");
/// b.push(Op::Yield);                                          // c
/// b.jump(test);                                               //   back to b
/// b.bind("done");
/// b.push(Op::WriteVar { var: VarId(0), value: 0 });           // d
/// b.push(Op::Exit);                                           // e
/// let program = b.build()?;
/// assert_eq!(program.len(), 7);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Default)]
pub struct ProgramBuilder {
    ops: Vec<Op>,
    /// (op index, label name) pairs whose targets are patched in `build`.
    fixups: Vec<(usize, String)>,
    bound: std::collections::HashMap<String, u16>,
}

impl ProgramBuilder {
    /// An empty builder.
    #[must_use]
    pub fn new() -> ProgramBuilder {
        ProgramBuilder::default()
    }

    /// Appends an instruction.
    pub fn push(&mut self, op: Op) -> &mut Self {
        self.ops.push(op);
        self
    }

    /// The index of the *next* instruction; usable as a raw jump target.
    #[must_use]
    pub fn label(&self) -> u16 {
        self.ops.len() as u16
    }

    /// Binds `name` to the index of the next instruction.
    pub fn bind(&mut self, name: &str) -> &mut Self {
        self.bound.insert(name.to_owned(), self.label());
        self
    }

    /// Appends an unconditional jump to a raw target.
    pub fn jump(&mut self, target: u16) -> &mut Self {
        self.ops.push(Op::Jump(target));
        self
    }

    /// Appends an unconditional jump to a named label (bound before or
    /// after this call).
    pub fn jump_to(&mut self, name: &str) -> &mut Self {
        self.fixups.push((self.ops.len(), name.to_owned()));
        self.ops.push(Op::Jump(u16::MAX));
        self
    }

    /// Appends a conditional branch on a shared variable to a named label.
    pub fn branch_if_var_eq(&mut self, var: VarId, value: i64, name: &str) -> &mut Self {
        self.fixups.push((self.ops.len(), name.to_owned()));
        self.ops.push(Op::BranchIfVarEq {
            var,
            value,
            target: u16::MAX,
        });
        self
    }

    /// Appends a conditional branch on a register to a named label.
    pub fn branch_if_reg_eq(&mut self, reg: Reg, value: i64, name: &str) -> &mut Self {
        self.fixups.push((self.ops.len(), name.to_owned()));
        self.ops.push(Op::BranchIfRegEq {
            reg,
            value,
            target: u16::MAX,
        });
        self
    }

    /// Resolves labels and validates the finished program.
    ///
    /// # Errors
    ///
    /// [`ProgramError`] as for [`Program::new`]; an unresolved label
    /// surfaces as [`ProgramError::BranchOutOfRange`] with target
    /// `u16::MAX`.
    pub fn build(mut self) -> Result<Program, ProgramError> {
        for (at, name) in &self.fixups {
            if let Some(&target) = self.bound.get(name) {
                match &mut self.ops[*at] {
                    Op::Jump(t)
                    | Op::BranchIfVarEq { target: t, .. }
                    | Op::BranchIfRegEq { target: t, .. } => *t = target,
                    _ => unreachable!("fixup recorded for non-branch op"),
                }
            }
        }
        Program::new(self.ops)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rejects_empty_program() {
        assert_eq!(Program::new(vec![]), Err(ProgramError::Empty));
    }

    #[test]
    fn rejects_out_of_range_branch() {
        let err = Program::new(vec![Op::Jump(5), Op::Exit]).unwrap_err();
        assert!(matches!(
            err,
            ProgramError::BranchOutOfRange {
                at: 0,
                target: 5,
                len: 2
            }
        ));
    }

    #[test]
    fn rejects_bad_register() {
        let err = Program::new(vec![Op::Alloc { bytes: 4, reg: 8 }, Op::Exit]).unwrap_err();
        assert!(matches!(err, ProgramError::BadRegister { at: 0, reg: 8 }));
    }

    #[test]
    fn accepts_self_loop() {
        let p = Program::new(vec![Op::Jump(0)]).unwrap();
        assert_eq!(p.op(0), Some(Op::Jump(0)));
        assert_eq!(p.op(1), None);
    }

    #[test]
    fn builder_resolves_forward_and_backward_labels() {
        let mut b = ProgramBuilder::new();
        b.bind("top");
        b.push(Op::Compute(1));
        b.branch_if_var_eq(VarId(0), 1, "end");
        b.jump_to("top");
        b.bind("end");
        b.push(Op::Exit);
        let p = b.build().unwrap();
        assert_eq!(
            p.op(1),
            Some(Op::BranchIfVarEq {
                var: VarId(0),
                value: 1,
                target: 3
            })
        );
        assert_eq!(p.op(2), Some(Op::Jump(0)));
    }

    #[test]
    fn builder_unbound_label_fails_validation() {
        let mut b = ProgramBuilder::new();
        b.jump_to("nowhere");
        b.push(Op::Exit);
        assert!(matches!(
            b.build(),
            Err(ProgramError::BranchOutOfRange {
                target: u16::MAX,
                ..
            })
        ));
    }

    #[test]
    fn op_costs_are_positive() {
        let ops = [
            Op::Compute(5),
            Op::Alloc { bytes: 1, reg: 0 },
            Op::Free { reg: 0 },
            Op::StackProbe(16),
            Op::ReadVar {
                var: VarId(0),
                reg: 0,
            },
            Op::WriteVar {
                var: VarId(0),
                value: 0,
            },
            Op::Yield,
            Op::SemWait(SemId(0)),
            Op::MutexLock(MutexId(0)),
            Op::SleepFor(3),
            Op::Fence,
            Op::Exit,
        ];
        for op in ops {
            assert!(op.base_cost() > 0, "{op} has zero cost");
        }
    }

    #[test]
    fn display_is_informative() {
        assert_eq!(Op::Compute(7).to_string(), "compute 7");
        assert_eq!(Op::MutexLock(MutexId(2)).to_string(), "lock mtx2");
        assert_eq!(Op::Fence.to_string(), "fence");
        assert_eq!(
            Op::BranchIfVarEq {
                var: VarId(1),
                value: 0,
                target: 9
            }
            .to_string(),
            "if v1 == 0 goto 9"
        );
    }

    #[test]
    fn exit_immediately_is_valid() {
        let p = Program::exit_immediately();
        assert_eq!(p.len(), 1);
        assert_eq!(p.op(0), Some(Op::Exit));
    }
}
