//! # ptest-pcore — a simulator of the pCore microkernel
//!
//! pCore is the runtime system of the pTest paper: a microkernel for the
//! DSP (slave) core of an embedded multicore SoC, providing preemptive
//! priority-based scheduling of up to 16 tasks, the six task-management
//! kernel services of the paper's Table I, counting semaphores and
//! mutexes, and a garbage-collected kernel heap.
//!
//! This crate reproduces pCore as a deterministic simulator:
//!
//! * [`Kernel`] — the kernel itself, advanced one cycle at a time by
//!   [`Kernel::tick`] and commanded remotely through [`Kernel::dispatch`].
//! * [`Service`] — the Table I service set (`TC`, `TD`, `TS`, `TR`, `TCH`,
//!   `TY`), which is also the alphabet of the PFA the pattern generator
//!   walks.
//! * [`Program`]/[`Op`] — the *work-model ISA*: task code is expressed as
//!   a small instruction set capturing compute, heap, stack, shared-
//!   variable and synchronization behaviour (see [`program`] for why).
//! * [`Heap`]/[`GcFaultMode`] — the garbage-collected kernel heap with
//!   injectable GC defects, reproducing case study 1's "failure of
//!   garbage collection" crash.
//! * [`workloads`] — canonical workloads (the paper's 128-element
//!   quick-sort, alloc churn, compute loops).
//!
//! ## Example: boot a kernel, run a task
//!
//! ```
//! use ptest_pcore::{Kernel, KernelConfig, Priority, SvcRequest, SvcReply, TickOutcome};
//! use ptest_pcore::workloads::{quicksort, QuicksortSpec};
//! use ptest_soc::Cycles;
//!
//! # fn main() -> Result<(), Box<dyn std::error::Error>> {
//! let mut kernel = Kernel::new(KernelConfig::default());
//! let (program, _profile) = quicksort(QuicksortSpec::paper(42));
//! let pid = kernel.register_program(program);
//! let reply = kernel.dispatch(
//!     SvcRequest::Create { program: pid, priority: Priority::new(5), stack_bytes: None },
//!     Cycles::ZERO,
//! )?;
//! assert!(matches!(reply, SvcReply::Created(_)));
//! for i in 1..100_000u64 {
//!     if kernel.tick(Cycles::new(i)) == TickOutcome::Idle {
//!         break;
//!     }
//! }
//! assert_eq!(kernel.live_task_count(), 0);
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod heap;
mod ids;
mod kernel;
pub mod program;
mod services;
mod sync;
mod task;
pub mod workloads;

pub use heap::{BlockHandle, GcFaultMode, Heap, HeapError, HeapStats, Owner};
pub use ids::{MutexId, Priority, SemId, TaskId, VarId};
pub use kernel::{
    Kernel, KernelConfig, KernelPanic, KernelSnapshot, ProgramId, ResourceRef, SvcError, SvcReply,
    SvcRequest, TaskSnapshot, TickOutcome, WaitEdge,
};
pub use program::{Op, Program, ProgramBuilder, ProgramError, Reg, NUM_REGS};
pub use services::{ParseServiceError, Service};
pub use sync::{KernelMutex, LockOutcome, Semaphore};
pub use task::{ExitKind, TaskFault, TaskState, Tcb, WaitReason};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::Kernel>();
        assert_send_sync::<super::KernelSnapshot>();
        assert_send_sync::<super::Program>();
        assert_send_sync::<super::SvcError>();
    }
}
