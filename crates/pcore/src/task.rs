//! Task control blocks and task states.

use std::fmt;

use crate::heap::BlockHandle;
use crate::ids::{MutexId, Priority, SemId, TaskId};
use crate::program::{Program, NUM_REGS};

/// Why a task is blocked.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum WaitReason {
    /// Waiting on a counting semaphore.
    Semaphore(SemId),
    /// Waiting to acquire a mutex.
    Mutex(MutexId),
    /// Sleeping until a virtual-time deadline.
    Sleep {
        /// Wake-up time (raw cycles).
        until: u64,
    },
}

impl fmt::Display for WaitReason {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WaitReason::Semaphore(s) => write!(f, "wait({s})"),
            WaitReason::Mutex(m) => write!(f, "wait({m})"),
            WaitReason::Sleep { until } => write!(f, "sleep(until={until})"),
        }
    }
}

/// The scheduling state of a task.
///
/// Suspension (services TS/TR) is *orthogonal* to this state and tracked by
/// [`Tcb::suspended`]: a task may be simultaneously blocked on a mutex and
/// suspended, and it only becomes runnable when it is `Ready`, not
/// suspended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskState {
    /// Runnable (or currently running — pCore does not distinguish in the
    /// TCB; the scheduler knows which ready task occupies the core).
    Ready,
    /// Blocked on a synchronization object or timer.
    Blocked(WaitReason),
    /// Finished: exited normally, was deleted, or faulted.
    Terminated(ExitKind),
}

impl fmt::Display for TaskState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TaskState::Ready => write!(f, "ready"),
            TaskState::Blocked(w) => write!(f, "blocked:{w}"),
            TaskState::Terminated(k) => write!(f, "terminated:{k}"),
        }
    }
}

/// How a task's life ended.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExitKind {
    /// Ran its `Exit` instruction (or a remote TY landed).
    Normal,
    /// Deleted by the `task_delete` service.
    Deleted,
    /// Killed by a task-level fault.
    Faulted(TaskFault),
}

impl fmt::Display for ExitKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExitKind::Normal => write!(f, "normal"),
            ExitKind::Deleted => write!(f, "deleted"),
            ExitKind::Faulted(ft) => write!(f, "fault({ft})"),
        }
    }
}

/// A task-level fault: kills the task but not the kernel.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TaskFault {
    /// `StackProbe` exceeded the task's stack size.
    StackOverflow,
    /// `Free` on a register not holding a live block handle.
    BadFree,
    /// `MutexUnlock` on a mutex the task does not own.
    UnlockNotOwner,
    /// Recursive `MutexLock` on a mutex the task already owns.
    RecursiveLock,
    /// Reference to a nonexistent semaphore/mutex/variable.
    BadObject,
    /// The program counter ran off the end of the program.
    PcOutOfRange,
}

impl fmt::Display for TaskFault {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TaskFault::StackOverflow => "stack overflow",
            TaskFault::BadFree => "bad free",
            TaskFault::UnlockNotOwner => "unlock by non-owner",
            TaskFault::RecursiveLock => "recursive lock",
            TaskFault::BadObject => "bad kernel object",
            TaskFault::PcOutOfRange => "pc out of range",
        };
        f.write_str(s)
    }
}

/// A task control block.
#[derive(Debug, Clone)]
pub struct Tcb {
    /// The slot this task occupies.
    pub id: TaskId,
    /// Unique scheduling priority.
    pub priority: Priority,
    /// Scheduling state.
    pub state: TaskState,
    /// TS/TR suspension flag (orthogonal to `state`).
    pub suspended: bool,
    /// A remote `task_yield` arrived; the task exits at its next dispatch.
    pub yield_requested: bool,
    /// A terminated task that has been reaped by `task_delete`/`task_yield`
    /// (a second terminal command on it is an error).
    pub reaped: bool,
    /// The program this task runs.
    pub program: Program,
    /// Program counter.
    pub pc: u16,
    /// General-purpose registers.
    pub regs: [i64; NUM_REGS],
    /// Remaining cycles of the currently executing multi-cycle op.
    pub compute_remaining: u64,
    /// Stack size in bytes (the paper's stress test used 512-byte stacks).
    pub stack_bytes: u32,
    /// Peak stack usage observed via `StackProbe`.
    pub stack_peak: u32,
    /// Heap block backing this task's stack.
    pub stack_block: BlockHandle,
    /// Heap block backing this TCB itself.
    pub tcb_block: BlockHandle,
    /// Total instructions retired.
    pub ops_retired: u64,
    /// Total cycles consumed.
    pub cycles_used: u64,
    /// Mutexes currently held, in acquisition order.
    pub held_mutexes: Vec<MutexId>,
}

impl Tcb {
    /// Whether the scheduler may pick this task.
    #[must_use]
    pub fn is_runnable(&self) -> bool {
        self.state == TaskState::Ready && !self.suspended
    }

    /// Whether the task has terminated (any exit kind).
    #[must_use]
    pub fn is_terminated(&self) -> bool {
        matches!(self.state, TaskState::Terminated(_))
    }

    /// Whether the slot still counts against the 16-task limit.
    #[must_use]
    pub fn is_live(&self) -> bool {
        !self.is_terminated()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::Program;

    fn tcb() -> Tcb {
        Tcb {
            id: TaskId::new(0),
            priority: Priority::new(5),
            state: TaskState::Ready,
            suspended: false,
            yield_requested: false,
            reaped: false,
            program: Program::exit_immediately(),
            pc: 0,
            regs: [0; NUM_REGS],
            compute_remaining: 0,
            stack_bytes: 512,
            stack_peak: 0,
            stack_block: BlockHandle::from_raw(1),
            tcb_block: BlockHandle::from_raw(2),
            ops_retired: 0,
            cycles_used: 0,
            held_mutexes: Vec::new(),
        }
    }

    #[test]
    fn ready_unsuspended_is_runnable() {
        let t = tcb();
        assert!(t.is_runnable());
        assert!(t.is_live());
    }

    #[test]
    fn suspended_task_is_not_runnable() {
        let mut t = tcb();
        t.suspended = true;
        assert!(!t.is_runnable());
        assert!(t.is_live(), "suspended tasks still occupy their slot");
    }

    #[test]
    fn blocked_task_is_not_runnable() {
        let mut t = tcb();
        t.state = TaskState::Blocked(WaitReason::Mutex(MutexId(0)));
        assert!(!t.is_runnable());
    }

    #[test]
    fn terminated_task_is_not_live() {
        let mut t = tcb();
        t.state = TaskState::Terminated(ExitKind::Normal);
        assert!(!t.is_runnable());
        assert!(!t.is_live());
        assert!(t.is_terminated());
    }

    #[test]
    fn state_display() {
        assert_eq!(TaskState::Ready.to_string(), "ready");
        assert_eq!(
            TaskState::Blocked(WaitReason::Semaphore(SemId(3))).to_string(),
            "blocked:wait(sem3)"
        );
        assert_eq!(
            TaskState::Terminated(ExitKind::Faulted(TaskFault::StackOverflow)).to_string(),
            "terminated:fault(stack overflow)"
        );
    }
}
