//! The kernel heap: a first-fit allocator with a compacting garbage
//! collector and injectable GC faults.
//!
//! pCore manages the DSP's small internal memory (160 KB on the C55x of the
//! OMAP5912) itself: task control blocks, task stacks and task-requested
//! buffers all come from one arena. When an allocation fails the kernel
//! runs a *garbage collection* pass that sweeps blocks owned by dead tasks
//! and compacts the arena. The paper's first case study found a pCore crash
//! caused by "the failure of garbage collection" under create/delete churn;
//! [`GcFaultMode`] lets the same failure be injected deterministically so
//! the experiment is reproducible.

use std::collections::HashMap;
use std::fmt;

use crate::ids::TaskId;

/// A handle to an allocated heap block.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct BlockHandle(u32);

impl BlockHandle {
    /// The raw handle value (stable across compaction).
    #[must_use]
    pub fn raw(self) -> u32 {
        self.0
    }

    /// Reconstructs a handle from its raw value (e.g. from a task
    /// register). The handle is validated on use, not on construction.
    #[must_use]
    pub fn from_raw(raw: u32) -> BlockHandle {
        BlockHandle(raw)
    }
}

impl fmt::Display for BlockHandle {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "blk{}", self.0)
    }
}

/// Who owns a heap block — used by the GC sweep to decide liveness.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Owner {
    /// The kernel itself (TCBs, stacks); swept only via explicit free.
    Kernel,
    /// A task; swept automatically when the task is dead.
    Task(TaskId),
}

impl fmt::Display for Owner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Owner::Kernel => write!(f, "kernel"),
            Owner::Task(t) => write!(f, "{t}"),
        }
    }
}

/// Error from heap operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum HeapError {
    /// No contiguous region large enough, even after garbage collection.
    OutOfMemory {
        /// Bytes requested.
        requested: u32,
        /// Largest free contiguous region at failure time.
        largest_free: u32,
        /// Total free bytes (may exceed `largest_free` under
        /// fragmentation).
        total_free: u32,
    },
    /// The handle does not name a live block.
    BadHandle {
        /// The offending handle.
        handle: BlockHandle,
    },
    /// The block was already freed (double free).
    DoubleFree {
        /// The offending handle.
        handle: BlockHandle,
    },
    /// A zero-byte allocation was requested.
    ZeroSized,
}

impl fmt::Display for HeapError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            HeapError::OutOfMemory {
                requested,
                largest_free,
                total_free,
            } => write!(
                f,
                "out of memory: requested {requested} bytes, largest free {largest_free}, total free {total_free}"
            ),
            HeapError::BadHandle { handle } => write!(f, "invalid heap handle {handle}"),
            HeapError::DoubleFree { handle } => write!(f, "double free of {handle}"),
            HeapError::ZeroSized => write!(f, "zero-sized allocation"),
        }
    }
}

impl std::error::Error for HeapError {}

/// Injectable garbage-collector faults (the bug of case study 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GcFaultMode {
    /// Correct GC (default).
    #[default]
    None,
    /// Every `leak_every`-th GC pass fails to sweep blocks owned by dead
    /// tasks, permanently leaking them. Under task create/delete churn the
    /// arena fills up and the kernel eventually dies with out-of-memory —
    /// reproducing the "failure of garbage collection" crash the paper's
    /// stress test uncovered.
    LeakDeadBlocks {
        /// Period of the fault: 1 leaks on every pass.
        leak_every: u32,
    },
    /// The GC never compacts, so fragmentation accumulates; allocations
    /// can fail with plenty of total free space. A milder GC defect used
    /// in ablation experiments.
    NoCompaction,
}

/// Statistics snapshot of the heap.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct HeapStats {
    /// Arena capacity in bytes.
    pub capacity: u32,
    /// Bytes currently allocated to live blocks.
    pub used: u32,
    /// Bytes free (capacity - used - leaked).
    pub free: u32,
    /// Bytes permanently lost to injected GC leaks.
    pub leaked: u32,
    /// Number of live blocks.
    pub live_blocks: usize,
    /// Garbage collections performed so far.
    pub gc_runs: u64,
    /// Total bytes reclaimed by all GC passes.
    pub gc_reclaimed: u64,
}

#[derive(Debug, Clone)]
struct Block {
    offset: u32,
    len: u32,
    owner: Owner,
    /// Dead-task blocks awaiting a GC sweep.
    garbage: bool,
}

/// The kernel heap.
///
/// The allocator is deliberately simple (first-fit over an ordered block
/// list, compaction on GC) — the point is faithful *failure behaviour*
/// under churn, not allocator research.
///
/// ```
/// use ptest_pcore::{Heap, Owner, TaskId};
/// # fn main() -> Result<(), Box<dyn std::error::Error>> {
/// let mut heap = Heap::new(1024);
/// let block = heap.alloc(100, Owner::Task(TaskId::new(0)))?;
/// assert_eq!(heap.stats().used, 100);
/// heap.free(block)?;
/// assert_eq!(heap.stats().used, 0);
/// # Ok(())
/// # }
/// ```
#[derive(Debug, Clone)]
pub struct Heap {
    capacity: u32,
    /// Live + garbage blocks, sorted by offset.
    blocks: Vec<Block>,
    handle_of: HashMap<u32, u32>, // offset -> raw handle
    next_handle: u32,
    fault: GcFaultMode,
    stats_gc_runs: u64,
    stats_gc_reclaimed: u64,
    leaked: u32,
    raw_to_pos: HashMap<u32, usize>,
}

impl Heap {
    /// The C55x internal memory of the OMAP5912: 160 KB.
    pub const OMAP5912_DSP_BYTES: u32 = 160 * 1024;

    /// Creates a heap over an arena of `capacity` bytes.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    #[must_use]
    pub fn new(capacity: u32) -> Heap {
        assert!(capacity > 0, "heap capacity must be positive");
        Heap {
            capacity,
            blocks: Vec::new(),
            handle_of: HashMap::new(),
            next_handle: 1,
            fault: GcFaultMode::None,
            stats_gc_runs: 0,
            stats_gc_reclaimed: 0,
            leaked: 0,
            raw_to_pos: HashMap::new(),
        }
    }

    /// Sets the injected GC fault mode.
    pub fn set_fault_mode(&mut self, fault: GcFaultMode) {
        self.fault = fault;
    }

    /// The configured GC fault mode.
    #[must_use]
    pub fn fault_mode(&self) -> GcFaultMode {
        self.fault
    }

    fn rebuild_index(&mut self) {
        self.raw_to_pos.clear();
        for (i, b) in self.blocks.iter().enumerate() {
            if let Some(&raw) = self.handle_of.get(&b.offset) {
                self.raw_to_pos.insert(raw, i);
            }
        }
    }

    fn find_gap(&self, bytes: u32) -> Option<u32> {
        let mut cursor = 0u32;
        for b in &self.blocks {
            if b.offset - cursor >= bytes {
                return Some(cursor);
            }
            cursor = b.offset + b.len;
        }
        if self.capacity - cursor >= bytes {
            Some(cursor)
        } else {
            None
        }
    }

    fn largest_gap(&self) -> u32 {
        let mut largest = 0u32;
        let mut cursor = 0u32;
        for b in &self.blocks {
            largest = largest.max(b.offset - cursor);
            cursor = b.offset + b.len;
        }
        largest.max(self.capacity - cursor)
    }

    /// Allocates `bytes` for `owner`.
    ///
    /// On first-fit failure a garbage collection runs automatically; only
    /// if the retry also fails is [`HeapError::OutOfMemory`] returned.
    ///
    /// # Errors
    ///
    /// [`HeapError::ZeroSized`] for zero-byte requests;
    /// [`HeapError::OutOfMemory`] when the arena cannot satisfy the request
    /// even after collection.
    pub fn alloc(&mut self, bytes: u32, owner: Owner) -> Result<BlockHandle, HeapError> {
        if bytes == 0 {
            return Err(HeapError::ZeroSized);
        }
        if self.find_gap(bytes).is_none() {
            self.collect_garbage();
        }
        let Some(offset) = self.find_gap(bytes) else {
            let stats = self.stats();
            return Err(HeapError::OutOfMemory {
                requested: bytes,
                largest_free: self.largest_gap(),
                total_free: stats.free,
            });
        };
        let raw = self.next_handle;
        self.next_handle += 1;
        let pos = self.blocks.partition_point(|b| b.offset < offset);
        self.blocks.insert(
            pos,
            Block {
                offset,
                len: bytes,
                owner,
                garbage: false,
            },
        );
        self.handle_of.insert(offset, raw);
        self.rebuild_index();
        Ok(BlockHandle(raw))
    }

    fn position(&self, handle: BlockHandle) -> Option<usize> {
        self.raw_to_pos.get(&handle.0).copied()
    }

    /// Frees a block explicitly.
    ///
    /// # Errors
    ///
    /// [`HeapError::DoubleFree`] if the handle was live once but already
    /// freed, [`HeapError::BadHandle`] if it never existed.
    pub fn free(&mut self, handle: BlockHandle) -> Result<(), HeapError> {
        match self.position(handle) {
            Some(pos) => {
                let b = self.blocks.remove(pos);
                self.handle_of.remove(&b.offset);
                self.rebuild_index();
                Ok(())
            }
            None => {
                if handle.0 != 0 && handle.0 < self.next_handle {
                    Err(HeapError::DoubleFree { handle })
                } else {
                    Err(HeapError::BadHandle { handle })
                }
            }
        }
    }

    /// Size in bytes of a live block.
    #[must_use]
    pub fn block_len(&self, handle: BlockHandle) -> Option<u32> {
        self.position(handle).map(|p| self.blocks[p].len)
    }

    /// Marks every block owned by `task` as garbage (called on task
    /// deletion); the blocks are reclaimed by the next GC pass.
    ///
    /// Returns the number of bytes marked.
    pub fn mark_task_garbage(&mut self, task: TaskId) -> u32 {
        let mut marked = 0;
        for b in &mut self.blocks {
            if b.owner == Owner::Task(task) && !b.garbage {
                b.garbage = true;
                marked += b.len;
            }
        }
        marked
    }

    /// Runs a garbage-collection pass: sweeps garbage blocks, then
    /// compacts live blocks toward offset zero (subject to the injected
    /// [`GcFaultMode`]). Returns the number of bytes reclaimed.
    pub fn collect_garbage(&mut self) -> u32 {
        self.stats_gc_runs += 1;
        let leak_this_pass = match self.fault {
            GcFaultMode::LeakDeadBlocks { leak_every } => {
                leak_every > 0 && self.stats_gc_runs.is_multiple_of(u64::from(leak_every))
            }
            _ => false,
        };

        let mut reclaimed = 0u32;
        let mut kept = Vec::with_capacity(self.blocks.len());
        for b in self.blocks.drain(..) {
            if b.garbage {
                if leak_this_pass {
                    // Injected bug: the sweep "forgets" dead blocks. Their
                    // bytes stay occupied forever but no handle can free
                    // them any more.
                    self.leaked += b.len;
                    self.handle_of.remove(&b.offset);
                    kept.push(Block {
                        owner: Owner::Kernel,
                        garbage: false,
                        ..b
                    });
                } else {
                    reclaimed += b.len;
                    self.handle_of.remove(&b.offset);
                }
            } else {
                kept.push(b);
            }
        }
        self.blocks = kept;

        if self.fault != GcFaultMode::NoCompaction {
            // Compact: slide blocks to the lowest offsets, preserving order.
            let mut cursor = 0u32;
            let mut new_handle_of = HashMap::with_capacity(self.blocks.len());
            for b in &mut self.blocks {
                if let Some(raw) = self.handle_of.remove(&b.offset) {
                    new_handle_of.insert(cursor, raw);
                }
                b.offset = cursor;
                cursor += b.len;
            }
            self.handle_of = new_handle_of;
        }
        self.rebuild_index();
        self.stats_gc_reclaimed += u64::from(reclaimed);
        reclaimed
    }

    /// A statistics snapshot.
    #[must_use]
    pub fn stats(&self) -> HeapStats {
        let used: u32 = self.blocks.iter().map(|b| b.len).sum();
        HeapStats {
            capacity: self.capacity,
            used,
            free: self.capacity - used,
            leaked: self.leaked,
            live_blocks: self.blocks.len(),
            gc_runs: self.stats_gc_runs,
            gc_reclaimed: self.stats_gc_reclaimed,
        }
    }

    /// External fragmentation in `[0, 1]`: 1 − largest_gap / total_free
    /// (0 when the heap has no free space at all).
    #[must_use]
    pub fn fragmentation(&self) -> f64 {
        let free = f64::from(self.stats().free);
        if free == 0.0 {
            return 0.0;
        }
        1.0 - f64::from(self.largest_gap()) / free
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(id: u8) -> Owner {
        Owner::Task(TaskId::new(id))
    }

    #[test]
    fn alloc_free_roundtrip() {
        let mut h = Heap::new(100);
        let a = h.alloc(40, t(0)).unwrap();
        let b = h.alloc(40, t(1)).unwrap();
        assert_eq!(h.stats().used, 80);
        h.free(a).unwrap();
        h.free(b).unwrap();
        assert_eq!(h.stats().used, 0);
        assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn zero_sized_alloc_rejected() {
        let mut h = Heap::new(10);
        assert_eq!(h.alloc(0, Owner::Kernel), Err(HeapError::ZeroSized));
    }

    #[test]
    fn double_free_detected() {
        let mut h = Heap::new(100);
        let a = h.alloc(10, t(0)).unwrap();
        h.free(a).unwrap();
        assert_eq!(h.free(a), Err(HeapError::DoubleFree { handle: a }));
    }

    #[test]
    fn bad_handle_detected() {
        let mut h = Heap::new(100);
        let bogus = BlockHandle::from_raw(999);
        assert_eq!(h.free(bogus), Err(HeapError::BadHandle { handle: bogus }));
    }

    #[test]
    fn fragmentation_then_gc_compacts() {
        let mut h = Heap::new(100);
        let a = h.alloc(30, t(0)).unwrap();
        let _b = h.alloc(40, t(1)).unwrap();
        let c = h.alloc(20, t(2)).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        // 60 bytes free but split 30 + 30: a 40-byte alloc needs compaction.
        assert!(h.find_gap(40).is_none());
        let got = h.alloc(40, t(3));
        assert!(
            got.is_ok(),
            "GC-triggered compaction should make room: {got:?}"
        );
        assert!(h.stats().gc_runs >= 1);
    }

    #[test]
    fn oom_reports_sizes() {
        let mut h = Heap::new(50);
        let _a = h.alloc(40, t(0)).unwrap();
        match h.alloc(20, t(1)) {
            Err(HeapError::OutOfMemory {
                requested,
                largest_free,
                total_free,
            }) => {
                assert_eq!(requested, 20);
                assert_eq!(largest_free, 10);
                assert_eq!(total_free, 10);
            }
            other => panic!("expected OOM, got {other:?}"),
        }
    }

    #[test]
    fn task_garbage_is_reclaimed_by_gc() {
        let mut h = Heap::new(100);
        let _a = h.alloc(60, t(0)).unwrap();
        assert_eq!(h.mark_task_garbage(TaskId::new(0)), 60);
        assert_eq!(h.collect_garbage(), 60);
        assert_eq!(h.stats().used, 0);
    }

    #[test]
    fn leak_fault_loses_memory_permanently() {
        let mut h = Heap::new(100);
        h.set_fault_mode(GcFaultMode::LeakDeadBlocks { leak_every: 1 });
        let _a = h.alloc(60, t(0)).unwrap();
        h.mark_task_garbage(TaskId::new(0));
        assert_eq!(h.collect_garbage(), 0, "faulty GC reclaims nothing");
        assert_eq!(h.stats().leaked, 60);
        // The leaked bytes are gone: a 50-byte alloc must fail forever.
        assert!(matches!(
            h.alloc(50, t(1)),
            Err(HeapError::OutOfMemory { .. })
        ));
    }

    #[test]
    fn leak_every_n_only_faults_periodically() {
        let mut h = Heap::new(1000);
        h.set_fault_mode(GcFaultMode::LeakDeadBlocks { leak_every: 2 });
        // GC pass 1 (odd): correct. GC pass 2 (even): leaks.
        let a = h.alloc(10, t(0)).unwrap();
        h.mark_task_garbage(TaskId::new(0));
        assert_eq!(h.collect_garbage(), 10);
        assert_eq!(h.stats().leaked, 0);
        let _b = h.alloc(10, t(1)).unwrap();
        h.mark_task_garbage(TaskId::new(1));
        assert_eq!(h.collect_garbage(), 0);
        assert_eq!(h.stats().leaked, 10);
        // Handle `a` stays invalid after all of this.
        assert!(h.free(a).is_err());
    }

    #[test]
    fn no_compaction_fault_keeps_fragmentation() {
        let mut h = Heap::new(90);
        h.set_fault_mode(GcFaultMode::NoCompaction);
        let a = h.alloc(30, t(0)).unwrap();
        let _b = h.alloc(30, t(1)).unwrap();
        let c = h.alloc(30, t(2)).unwrap();
        h.free(a).unwrap();
        h.free(c).unwrap();
        // 60 free but fragmented; with compaction disabled a 40-byte
        // allocation fails even after GC.
        assert!(matches!(
            h.alloc(40, t(3)),
            Err(HeapError::OutOfMemory { .. })
        ));
        assert!(h.fragmentation() > 0.0);
    }

    #[test]
    fn stats_track_gc_counters() {
        let mut h = Heap::new(100);
        let _a = h.alloc(10, t(0)).unwrap();
        h.mark_task_garbage(TaskId::new(0));
        h.collect_garbage();
        let s = h.stats();
        assert_eq!(s.gc_runs, 1);
        assert_eq!(s.gc_reclaimed, 10);
    }

    #[test]
    fn handles_survive_compaction() {
        let mut h = Heap::new(100);
        let a = h.alloc(20, t(0)).unwrap();
        let b = h.alloc(20, t(1)).unwrap();
        h.free(a).unwrap();
        h.collect_garbage(); // b slides to offset 0
        assert_eq!(h.block_len(b), Some(20));
        h.free(b).unwrap();
        assert_eq!(h.stats().live_blocks, 0);
    }

    #[test]
    fn capacity_zero_panics() {
        let r = std::panic::catch_unwind(|| Heap::new(0));
        assert!(r.is_err());
    }
}
