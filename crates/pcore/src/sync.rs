//! Kernel synchronization objects: counting semaphores and mutexes.
//!
//! Wait queues are priority-ordered (highest priority first) and
//! deterministic: equal priorities cannot occur because pCore enforces
//! unique task priorities.

use crate::ids::{Priority, TaskId};

/// A counting semaphore.
#[derive(Debug, Clone)]
pub struct Semaphore {
    count: u32,
    /// Waiting tasks with their priorities, kept sorted descending by
    /// priority (index 0 wakes first).
    waiters: Vec<(TaskId, Priority)>,
}

impl Semaphore {
    /// Creates a semaphore with an initial count.
    #[must_use]
    pub fn new(initial: u32) -> Semaphore {
        Semaphore {
            count: initial,
            waiters: Vec::new(),
        }
    }

    /// Current count.
    #[must_use]
    pub fn count(&self) -> u32 {
        self.count
    }

    /// Tasks currently waiting, highest priority first.
    #[must_use]
    pub fn waiters(&self) -> Vec<TaskId> {
        self.waiters.iter().map(|(t, _)| *t).collect()
    }

    /// Attempts to take the semaphore for `task`. Returns `true` on
    /// success; on failure the task is queued and the caller must block it.
    pub fn wait(&mut self, task: TaskId, priority: Priority) -> bool {
        if self.count > 0 {
            self.count -= 1;
            true
        } else {
            insert_by_priority(&mut self.waiters, task, priority);
            false
        }
    }

    /// Takes one token without queueing a waiter (interrupt/bridge
    /// context, where nothing can block). Returns `true` if a token was
    /// available and consumed.
    pub fn try_take(&mut self) -> bool {
        if self.count > 0 {
            self.count -= 1;
            true
        } else {
            false
        }
    }

    /// Posts the semaphore. If a task was waiting, it is dequeued and
    /// returned (the caller must make it ready); otherwise the count is
    /// incremented.
    pub fn post(&mut self) -> Option<TaskId> {
        if self.waiters.is_empty() {
            self.count += 1;
            None
        } else {
            Some(self.waiters.remove(0).0)
        }
    }

    /// Removes `task` from the wait queue (task deleted while waiting).
    /// Returns `true` if it was queued.
    pub fn remove_waiter(&mut self, task: TaskId) -> bool {
        let before = self.waiters.len();
        self.waiters.retain(|(t, _)| *t != task);
        self.waiters.len() != before
    }

    /// Re-sorts `task` in the wait queue after a priority change.
    pub fn reprioritize(&mut self, task: TaskId, priority: Priority) {
        if self.remove_waiter(task) {
            insert_by_priority(&mut self.waiters, task, priority);
        }
    }
}

/// A non-recursive ownership mutex.
#[derive(Debug, Clone, Default)]
pub struct KernelMutex {
    owner: Option<TaskId>,
    waiters: Vec<(TaskId, Priority)>,
}

impl KernelMutex {
    /// Creates an unowned mutex.
    #[must_use]
    pub fn new() -> KernelMutex {
        KernelMutex::default()
    }

    /// Current owner, if any.
    #[must_use]
    pub fn owner(&self) -> Option<TaskId> {
        self.owner
    }

    /// Tasks currently waiting, highest priority first.
    #[must_use]
    pub fn waiters(&self) -> Vec<TaskId> {
        self.waiters.iter().map(|(t, _)| *t).collect()
    }

    /// Outcome of a lock attempt.
    #[must_use]
    pub fn lock(&mut self, task: TaskId, priority: Priority) -> LockOutcome {
        match self.owner {
            None => {
                self.owner = Some(task);
                LockOutcome::Acquired
            }
            Some(owner) if owner == task => LockOutcome::Recursive,
            Some(_) => {
                insert_by_priority(&mut self.waiters, task, priority);
                LockOutcome::MustBlock
            }
        }
    }

    /// Unlocks the mutex. On success returns the next owner (dequeued
    /// waiter) if any; the caller must make that task ready.
    ///
    /// # Errors
    ///
    /// Returns `Err(())` if `task` is not the current owner.
    #[allow(clippy::result_unit_err)]
    pub fn unlock(&mut self, task: TaskId) -> Result<Option<TaskId>, ()> {
        if self.owner != Some(task) {
            return Err(());
        }
        if self.waiters.is_empty() {
            self.owner = None;
            Ok(None)
        } else {
            let (next, _) = self.waiters.remove(0);
            self.owner = Some(next);
            Ok(Some(next))
        }
    }

    /// Removes `task` from the wait queue; returns `true` if it was queued.
    pub fn remove_waiter(&mut self, task: TaskId) -> bool {
        let before = self.waiters.len();
        self.waiters.retain(|(t, _)| *t != task);
        self.waiters.len() != before
    }

    /// Re-sorts `task` in the wait queue after a priority change.
    pub fn reprioritize(&mut self, task: TaskId, priority: Priority) {
        if self.remove_waiter(task) {
            insert_by_priority(&mut self.waiters, task, priority);
        }
    }

    /// Forcibly releases the mutex if `task` owns it (task deletion),
    /// passing ownership to the next waiter. Returns the next owner.
    pub fn force_release(&mut self, task: TaskId) -> Option<TaskId> {
        if self.owner == Some(task) {
            self.owner = None;
            if !self.waiters.is_empty() {
                let (next, _) = self.waiters.remove(0);
                self.owner = Some(next);
                return Some(next);
            }
        }
        None
    }
}

/// Result of [`KernelMutex::lock`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LockOutcome {
    /// The mutex is now owned by the caller.
    Acquired,
    /// Another task owns it; the caller was queued and must block.
    MustBlock,
    /// The caller already owns it (a task fault in pCore).
    Recursive,
}

fn insert_by_priority(queue: &mut Vec<(TaskId, Priority)>, task: TaskId, priority: Priority) {
    let pos = queue.partition_point(|(_, p)| *p >= priority);
    queue.insert(pos, (task, priority));
}

#[cfg(test)]
mod tests {
    use super::*;

    fn t(i: u8) -> TaskId {
        TaskId::new(i)
    }
    fn p(l: u8) -> Priority {
        Priority::new(l)
    }

    #[test]
    fn semaphore_counts_down_then_blocks() {
        let mut s = Semaphore::new(2);
        assert!(s.wait(t(0), p(1)));
        assert!(s.wait(t(1), p(2)));
        assert!(!s.wait(t(2), p(3)));
        assert_eq!(s.count(), 0);
        assert_eq!(s.waiters(), vec![t(2)]);
    }

    #[test]
    fn semaphore_post_wakes_highest_priority() {
        let mut s = Semaphore::new(0);
        assert!(!s.wait(t(0), p(1)));
        assert!(!s.wait(t(1), p(9)));
        assert!(!s.wait(t(2), p(5)));
        assert_eq!(s.post(), Some(t(1)));
        assert_eq!(s.post(), Some(t(2)));
        assert_eq!(s.post(), Some(t(0)));
        assert_eq!(s.post(), None);
        assert_eq!(s.count(), 1);
    }

    #[test]
    fn semaphore_remove_waiter() {
        let mut s = Semaphore::new(0);
        s.wait(t(0), p(1));
        s.wait(t(1), p(2));
        assert!(s.remove_waiter(t(0)));
        assert!(!s.remove_waiter(t(0)));
        assert_eq!(s.waiters(), vec![t(1)]);
    }

    #[test]
    fn mutex_basic_ownership() {
        let mut m = KernelMutex::new();
        assert_eq!(m.lock(t(0), p(1)), LockOutcome::Acquired);
        assert_eq!(m.owner(), Some(t(0)));
        assert_eq!(m.lock(t(1), p(2)), LockOutcome::MustBlock);
        assert_eq!(m.unlock(t(0)), Ok(Some(t(1))));
        assert_eq!(m.owner(), Some(t(1)));
        assert_eq!(m.unlock(t(1)), Ok(None));
        assert_eq!(m.owner(), None);
    }

    #[test]
    fn mutex_rejects_recursive_lock() {
        let mut m = KernelMutex::new();
        let _ = m.lock(t(0), p(1));
        assert_eq!(m.lock(t(0), p(1)), LockOutcome::Recursive);
    }

    #[test]
    fn mutex_unlock_by_non_owner_fails() {
        let mut m = KernelMutex::new();
        let _ = m.lock(t(0), p(1));
        assert_eq!(m.unlock(t(1)), Err(()));
        assert_eq!(m.unlock(t(0)), Ok(None));
        assert_eq!(m.unlock(t(0)), Err(()), "unlocking an unowned mutex fails");
    }

    #[test]
    fn mutex_handoff_respects_priority() {
        let mut m = KernelMutex::new();
        let _ = m.lock(t(0), p(1));
        let _ = m.lock(t(1), p(3));
        let _ = m.lock(t(2), p(7));
        let _ = m.lock(t(3), p(5));
        assert_eq!(m.unlock(t(0)), Ok(Some(t(2))));
        assert_eq!(m.waiters(), vec![t(3), t(1)]);
    }

    #[test]
    fn force_release_hands_off() {
        let mut m = KernelMutex::new();
        let _ = m.lock(t(0), p(1));
        let _ = m.lock(t(1), p(2));
        assert_eq!(m.force_release(t(0)), Some(t(1)));
        assert_eq!(m.owner(), Some(t(1)));
        assert_eq!(
            m.force_release(t(0)),
            None,
            "non-owner force release is a no-op"
        );
    }

    #[test]
    fn force_release_without_waiters_clears_owner() {
        let mut m = KernelMutex::new();
        let _ = m.lock(t(0), p(1));
        assert_eq!(m.force_release(t(0)), None);
        assert_eq!(m.owner(), None);
    }
}
