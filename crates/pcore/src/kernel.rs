//! The pCore kernel simulator.
//!
//! This is the *slave system* of the paper: a microkernel for the DSP core
//! providing preemptive priority-based scheduling of up to 16 tasks, the
//! six task-management services of Table I, counting semaphores and
//! mutexes, and a garbage-collected kernel heap.
//!
//! The kernel is advanced in single-instruction steps by [`Kernel::tick`];
//! remote commands from the master arrive through [`Kernel::dispatch`]
//! (called by the bridge's interrupt handler). Both are fully
//! deterministic.

use std::fmt;

use ptest_soc::{CoreId, Cycles, TraceBuffer};

use crate::heap::{BlockHandle, GcFaultMode, Heap, HeapError, HeapStats, Owner};
use crate::ids::{MutexId, Priority, SemId, TaskId, VarId};
use crate::program::{Op, Program};
use crate::services::Service;
use crate::sync::{KernelMutex, LockOutcome, Semaphore};
use crate::task::{ExitKind, TaskFault, TaskState, Tcb, WaitReason};

/// Identifies a program registered with the kernel's code registry.
///
/// On real hardware the task entry points already live in DSP memory; the
/// master names them by index when creating tasks. The registry plays that
/// role here.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ProgramId(pub u16);

impl fmt::Display for ProgramId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "prog{}", self.0)
    }
}

/// Static configuration of a kernel instance.
#[derive(Debug, Clone)]
pub struct KernelConfig {
    /// Maximum concurrent tasks (pCore supports 16).
    pub max_tasks: usize,
    /// Kernel heap arena size in bytes.
    pub heap_bytes: u32,
    /// Default task stack size (the paper's experiments use 512 bytes).
    pub default_stack_bytes: u32,
    /// Bytes charged per task control block.
    pub tcb_bytes: u32,
    /// Number of shared variables.
    pub num_vars: usize,
    /// Injected garbage-collector fault.
    pub gc_fault: GcFaultMode,
    /// Capacity of the kernel trace ring.
    pub trace_capacity: usize,
    /// Cycles a `Yield` keeps the task off the core, giving lower-priority
    /// tasks a chance to run (models pCore's cooperative `yield()`).
    pub yield_delay: u32,
    /// Trace shared-variable accesses, fences and semaphore operations
    /// (`var-read`/`var-write`/`fence`/`sem-wait`/`sem-post` events).
    /// Off by default: the per-access `String` formatting is measurable
    /// on the trial hot path, and the extra events would churn the ring
    /// ahead of the historical trace tails. Root-cause replays of
    /// minimized reproducers turn it on to reconstruct the cross-core
    /// interleaving window around a failure.
    pub trace_accesses: bool,
}

impl KernelConfig {
    /// pCore's task limit on the OMAP5912.
    pub const MAX_TASKS_PCORE: usize = 16;
}

impl Default for KernelConfig {
    fn default() -> KernelConfig {
        KernelConfig {
            max_tasks: Self::MAX_TASKS_PCORE,
            heap_bytes: 64 * 1024,
            default_stack_bytes: 512,
            tcb_bytes: 64,
            num_vars: 32,
            gc_fault: GcFaultMode::None,
            trace_capacity: TraceBuffer::DEFAULT_CAPACITY,
            yield_delay: 2,
            trace_accesses: false,
        }
    }
}

/// A fatal kernel condition; after a panic the kernel refuses all work.
///
/// This models the *crash of the slave system* that pTest's first case
/// study detects.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelPanic {
    /// The heap could not satisfy an allocation even after garbage
    /// collection (case study 1's "failure of garbage collection").
    OutOfMemory {
        /// Bytes requested by the failing allocation.
        requested: u32,
    },
}

impl fmt::Display for KernelPanic {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            KernelPanic::OutOfMemory { requested } => {
                write!(
                    f,
                    "kernel panic: out of memory ({requested} bytes requested)"
                )
            }
        }
    }
}

/// A remote service request, as decoded by the bridge.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcRequest {
    /// `task_create`: start `program` at `priority`.
    Create {
        /// Registered program to run.
        program: ProgramId,
        /// Unique priority for the new task.
        priority: Priority,
        /// Stack size override (`None` = config default).
        stack_bytes: Option<u32>,
    },
    /// `task_delete`.
    Delete {
        /// Target task.
        task: TaskId,
    },
    /// `task_suspend`.
    Suspend {
        /// Target task.
        task: TaskId,
    },
    /// `task_resume`.
    Resume {
        /// Target task.
        task: TaskId,
    },
    /// `task_chanprio`.
    ChangePriority {
        /// Target task.
        task: TaskId,
        /// New unique priority.
        priority: Priority,
    },
    /// `task_yield`: ask the task to terminate at its next dispatch.
    Yield {
        /// Target task.
        task: TaskId,
    },
    /// Debug: read a shared variable (used by the bug detector).
    PeekVar {
        /// Variable to read.
        var: VarId,
    },
    /// Debug: write a shared variable (used by scenario setup).
    PokeVar {
        /// Variable to write.
        var: VarId,
        /// Value to store.
        value: i64,
    },
}

impl SvcRequest {
    /// The Table I service this request corresponds to (`None` for the
    /// debug peek/poke requests).
    #[must_use]
    pub fn service(&self) -> Option<Service> {
        match self {
            SvcRequest::Create { .. } => Some(Service::Create),
            SvcRequest::Delete { .. } => Some(Service::Delete),
            SvcRequest::Suspend { .. } => Some(Service::Suspend),
            SvcRequest::Resume { .. } => Some(Service::Resume),
            SvcRequest::ChangePriority { .. } => Some(Service::ChangePriority),
            SvcRequest::Yield { .. } => Some(Service::Yield),
            SvcRequest::PeekVar { .. } | SvcRequest::PokeVar { .. } => None,
        }
    }

    /// The task this request targets, if any.
    #[must_use]
    pub fn target(&self) -> Option<TaskId> {
        match self {
            SvcRequest::Delete { task }
            | SvcRequest::Suspend { task }
            | SvcRequest::Resume { task }
            | SvcRequest::ChangePriority { task, .. }
            | SvcRequest::Yield { task } => Some(*task),
            _ => None,
        }
    }
}

/// Successful reply to a service request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcReply {
    /// `task_create` succeeded; the new task occupies this slot.
    Created(TaskId),
    /// The request completed with no payload.
    Done,
    /// `PeekVar` result.
    Value(i64),
}

/// Error reply to a service request.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SvcError {
    /// All task slots hold live tasks (pCore's 16-task limit).
    NoFreeSlot,
    /// Another live task already uses this priority.
    PriorityInUse(Priority),
    /// The slot has never held a task.
    NoSuchTask(TaskId),
    /// The slot's task has terminated.
    TaskNotLive(TaskId),
    /// `task_suspend` on an already-suspended task.
    AlreadySuspended(TaskId),
    /// `task_resume` on a task that is not suspended (the paper: resume
    /// "can be performed only when the corresponding task is suspended").
    NotSuspended(TaskId),
    /// The named program was never registered.
    NoSuchProgram(ProgramId),
    /// The named shared variable does not exist.
    NoSuchVar(VarId),
    /// The kernel has panicked and refuses all requests.
    KernelPanicked,
}

impl fmt::Display for SvcError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SvcError::NoFreeSlot => write!(f, "no free task slot"),
            SvcError::PriorityInUse(p) => write!(f, "priority {p} already in use"),
            SvcError::NoSuchTask(t) => write!(f, "no such task {t}"),
            SvcError::TaskNotLive(t) => write!(f, "task {t} is not live"),
            SvcError::AlreadySuspended(t) => write!(f, "task {t} already suspended"),
            SvcError::NotSuspended(t) => write!(f, "task {t} not suspended"),
            SvcError::NoSuchProgram(p) => write!(f, "no such program {p}"),
            SvcError::NoSuchVar(v) => write!(f, "no such variable {v}"),
            SvcError::KernelPanicked => write!(f, "kernel panicked"),
        }
    }
}

impl std::error::Error for SvcError {}

/// Result of one kernel tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TickOutcome {
    /// No runnable task this cycle.
    Idle,
    /// The given task consumed the cycle.
    Ran(TaskId),
    /// The interrupt-service routine consumed the cycle, preempting
    /// whatever task would otherwise have run.
    Isr,
    /// The kernel is dead; nothing ran.
    Panicked,
}

/// Execution context of the interrupt-service routine: the pc/register
/// frame of the high-priority pseudo-task that preempts the current
/// task while an interrupt is being serviced. ISRs share the task ISA
/// but run above every task priority and cannot block — the frame is
/// the only state they own.
#[derive(Debug, Clone, Copy)]
struct IsrFrame {
    pc: u16,
    regs: [i64; crate::program::NUM_REGS],
    compute_remaining: u64,
}

impl IsrFrame {
    fn new() -> IsrFrame {
        IsrFrame {
            pc: 0,
            regs: [0; crate::program::NUM_REGS],
            compute_remaining: 0,
        }
    }
}

/// A synchronization resource referenced by a wait edge.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ResourceRef {
    /// A kernel mutex.
    Mutex(MutexId),
    /// A counting semaphore.
    Semaphore(SemId),
}

impl fmt::Display for ResourceRef {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ResourceRef::Mutex(m) => write!(f, "{m}"),
            ResourceRef::Semaphore(s) => write!(f, "{s}"),
        }
    }
}

/// One blocked-on edge of the wait-for graph: `waiter` waits for
/// `resource`, currently held by `holder` (mutexes only; semaphores have
/// no owner).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WaitEdge {
    /// The blocked task.
    pub waiter: TaskId,
    /// What it waits on.
    pub resource: ResourceRef,
    /// Who currently holds the resource (mutexes only).
    pub holder: Option<TaskId>,
}

/// Point-in-time snapshot of one task, consumed by the bug detector.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TaskSnapshot {
    /// Slot id.
    pub id: TaskId,
    /// Current priority.
    pub priority: Priority,
    /// Scheduling state.
    pub state: TaskState,
    /// TS/TR suspension flag.
    pub suspended: bool,
    /// Program counter.
    pub pc: u16,
    /// Instructions retired so far.
    pub ops_retired: u64,
    /// Mutexes held, in acquisition order.
    pub held_mutexes: Vec<MutexId>,
}

/// Point-in-time snapshot of the whole kernel.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct KernelSnapshot {
    /// Kernel's current virtual time.
    pub now: Cycles,
    /// Fatal condition, if the kernel has died.
    pub panic: Option<KernelPanic>,
    /// Every slot that has ever held a task (live or terminated).
    pub tasks: Vec<TaskSnapshot>,
    /// Heap statistics.
    pub heap: HeapStats,
    /// Blocked-on edges of the wait-for graph.
    pub wait_edges: Vec<WaitEdge>,
    /// Total kernel ticks executed.
    pub ticks: u64,
    /// Ticks with no runnable task.
    pub idle_ticks: u64,
    /// Context switches performed.
    pub ctx_switches: u64,
    /// Remote service requests dispatched.
    pub svc_count: u64,
}

impl KernelSnapshot {
    /// Number of live (non-terminated) tasks.
    #[must_use]
    pub fn live_tasks(&self) -> usize {
        self.tasks
            .iter()
            .filter(|t| !matches!(t.state, TaskState::Terminated(_)))
            .count()
    }
}

/// The pCore kernel simulator. See the [crate docs](crate) for the
/// slave-system overview.
#[derive(Debug, Clone)]
pub struct Kernel {
    cfg: KernelConfig,
    core: CoreId,
    tasks: Vec<Option<Tcb>>,
    programs: Vec<Program>,
    sems: Vec<Semaphore>,
    mutexes: Vec<KernelMutex>,
    vars: Vec<i64>,
    heap: Heap,
    current: Option<TaskId>,
    panic: Option<KernelPanic>,
    trace: TraceBuffer,
    now: Cycles,
    ticks: u64,
    idle_ticks: u64,
    ctx_switches: u64,
    svc_count: u64,
    pending_fences: u64,
    /// Monotonic change epoch: bumped by every mutation that can alter a
    /// [`KernelSnapshot`] beyond its pure time scalars (`now`, `ticks`,
    /// `idle_ticks`) — see [`Kernel::change_epoch`]. Pure idle ticks do
    /// not bump it.
    epoch: u64,
    /// Incrementally maintained [`Kernel::live_task_count`]: +1 on task
    /// creation, -1 when a live task terminates.
    live_count: usize,
    /// Quantum length in executed cycles, or `None` for the classic
    /// run-to-block scheduler (the byte-identical fast path).
    quantum: Option<u32>,
    /// Executed cycles of the current task's time slice.
    slice_used: u32,
    /// Involuntary quantum-expiry switches performed.
    preemptions: u64,
    /// Program run in interrupt context, installed by the platform.
    isr_program: Option<ProgramId>,
    /// Active ISR execution frame, if an interrupt is being serviced.
    isr: Option<IsrFrame>,
    /// Interrupts raised but not yet serviced.
    irq_pending: u32,
    /// Interrupt delivery disabled ([`Op::IrqMask`]).
    irq_masked: bool,
    /// Completed ISR activations.
    isr_runs: u64,
    /// Cycles consumed in interrupt context.
    isr_cycles: u64,
}

impl Kernel {
    /// Boots a kernel with the given configuration, running on the
    /// platform's original slave core ([`CoreId::Dsp`], i.e. slave 0).
    #[must_use]
    pub fn new(cfg: KernelConfig) -> Kernel {
        Kernel::with_core(cfg, CoreId::Dsp)
    }

    /// Boots a kernel bound to a specific slave core of an N-slave
    /// platform; the core id is stamped into every kernel trace event so
    /// multicore traces stay attributable.
    ///
    /// # Panics
    ///
    /// Panics if `core` is the master — pCore only runs on slave cores.
    #[must_use]
    pub fn with_core(cfg: KernelConfig, core: CoreId) -> Kernel {
        assert!(!core.is_master(), "pCore runs on slave cores only");
        let mut heap = Heap::new(cfg.heap_bytes);
        heap.set_fault_mode(cfg.gc_fault);
        Kernel {
            core,
            tasks: (0..cfg.max_tasks).map(|_| None).collect(),
            programs: Vec::new(),
            sems: Vec::new(),
            mutexes: Vec::new(),
            vars: vec![0; cfg.num_vars],
            heap,
            current: None,
            panic: None,
            trace: TraceBuffer::new(cfg.trace_capacity),
            now: Cycles::ZERO,
            ticks: 0,
            idle_ticks: 0,
            ctx_switches: 0,
            svc_count: 0,
            pending_fences: 0,
            epoch: 0,
            live_count: 0,
            quantum: None,
            slice_used: 0,
            preemptions: 0,
            isr_program: None,
            isr: None,
            irq_pending: 0,
            irq_masked: false,
            isr_runs: 0,
            isr_cycles: 0,
            cfg,
        }
    }

    /// The active configuration.
    #[must_use]
    pub fn config(&self) -> &KernelConfig {
        &self.cfg
    }

    /// Registers a program in the code registry; tasks are created from
    /// the returned id.
    pub fn register_program(&mut self, program: Program) -> ProgramId {
        self.programs.push(program);
        ProgramId((self.programs.len() - 1) as u16)
    }

    /// Creates a counting semaphore with an initial count.
    pub fn create_semaphore(&mut self, initial: u32) -> SemId {
        self.sems.push(Semaphore::new(initial));
        SemId((self.sems.len() - 1) as u16)
    }

    /// Creates a mutex.
    pub fn create_mutex(&mut self) -> MutexId {
        self.mutexes.push(KernelMutex::new());
        MutexId((self.mutexes.len() - 1) as u16)
    }

    /// The slave core this kernel runs on.
    #[must_use]
    pub fn core(&self) -> CoreId {
        self.core
    }

    /// A semaphore's current token count, or `None` for an unknown id.
    #[must_use]
    pub fn semaphore_count(&self, sem: SemId) -> Option<u32> {
        self.sems.get(usize::from(sem.0)).map(Semaphore::count)
    }

    /// Takes one token from a semaphore without blocking — the
    /// bridge/interrupt path used by cross-core semaphore hand-off, where
    /// nothing can be queued as a waiter. Returns `true` if a token was
    /// consumed. No-op (returns `false`) on a panicked kernel or an
    /// unknown semaphore.
    pub fn take_semaphore_token(&mut self, sem: SemId) -> bool {
        if self.panic.is_some() {
            return false;
        }
        self.sems
            .get_mut(usize::from(sem.0))
            .is_some_and(Semaphore::try_take)
    }

    /// Posts a semaphore from interrupt context (the cross-core hand-off
    /// path): increments the count or wakes the highest-priority waiter,
    /// exactly like a task-level `SemPost`. Returns `false` (and drops the
    /// token) on a panicked kernel or an unknown semaphore — a dead core
    /// cannot accept hand-offs.
    pub fn post_semaphore_external(&mut self, sem: SemId) -> bool {
        if self.panic.is_some() {
            return false;
        }
        let Some(s) = self.sems.get_mut(usize::from(sem.0)) else {
            return false;
        };
        if let Some(woken) = s.post() {
            self.epoch += 1;
            if let Some(t) = self.tcb_mut(woken) {
                if matches!(
                    t.state,
                    TaskState::Blocked(WaitReason::Semaphore(s2)) if s2 == sem
                ) {
                    t.state = TaskState::Ready;
                }
            }
            self.trace.record(
                self.now,
                self.core,
                "isr",
                format!("external post {sem} wakes {woken}"),
            );
        }
        true
    }

    /// Writes a shared variable directly (bridge/scenario convenience —
    /// the shared-SRAM mirroring path of multicore systems). Unknown
    /// variables are ignored.
    pub fn set_var(&mut self, var: VarId, value: i64) {
        if let Some(v) = self.vars.get_mut(usize::from(var.0)) {
            if self.cfg.trace_accesses && *v != value {
                self.trace
                    .record(self.now, self.core, "var-mirror", format!("{var}={value}"));
            }
            *v = value;
        }
    }

    /// The fatal condition, if the kernel has died.
    #[must_use]
    pub fn panic(&self) -> Option<KernelPanic> {
        self.panic
    }

    /// The kernel trace ring (appended by every service and scheduler
    /// decision).
    #[must_use]
    pub fn trace(&self) -> &TraceBuffer {
        &self.trace
    }

    /// Reads a shared variable directly (test/scenario convenience).
    #[must_use]
    pub fn var(&self, var: VarId) -> Option<i64> {
        self.vars.get(usize::from(var.0)).copied()
    }

    /// Drains the count of [`Op::Fence`] ops retired since the last
    /// call. Polled once per cycle by the platform's memory model;
    /// under sequential consistency nothing reads it and fences stay
    /// no-ops.
    pub fn take_fences(&mut self) -> u64 {
        std::mem::take(&mut self.pending_fences)
    }

    /// Number of live tasks. O(1): maintained incrementally on task
    /// creation and termination.
    #[must_use]
    pub fn live_task_count(&self) -> usize {
        self.live_count
    }

    /// The kernel's change epoch: a counter bumped by every mutation
    /// that can alter a [`KernelSnapshot`] beyond its pure time scalars
    /// (`now`, `ticks`, `idle_ticks`) — service dispatches, executed
    /// task cycles, sleeper wake-ups, external semaphore hand-offs,
    /// panics. Observers holding a snapshot taken at a given epoch can
    /// skip re-serializing a kernel whose epoch is unchanged and refresh
    /// just the scalars with [`Kernel::scalars_into`].
    #[must_use]
    pub fn change_epoch(&self) -> u64 {
        self.epoch
    }

    /// Earliest wake deadline among sleeping tasks, suspended sleepers
    /// included (their wake still flips the snapshot-visible state to
    /// `Ready`), or `None` when no task sleeps.
    #[must_use]
    pub fn next_sleeper_wake(&self) -> Option<u64> {
        self.tasks
            .iter()
            .flatten()
            .filter_map(|t| match t.state {
                TaskState::Blocked(WaitReason::Sleep { until }) => Some(until),
                _ => None,
            })
            .min()
    }

    /// Number of retired [`Op::Fence`]s not yet drained by the
    /// platform's memory model.
    #[must_use]
    pub fn pending_fence_count(&self) -> u64 {
        self.pending_fences
    }

    /// Refreshes only the pure time scalars of a cached snapshot — the
    /// fields an idle tick moves. Combined with [`Kernel::change_epoch`]
    /// this keeps a cached snapshot exactly equal to a fresh
    /// [`Kernel::snapshot_into`] while the epoch is unchanged.
    pub fn scalars_into(&self, snap: &mut KernelSnapshot) {
        snap.now = self.now;
        snap.ticks = self.ticks;
        snap.idle_ticks = self.idle_ticks;
    }

    /// Applies `count` consecutive idle ticks arithmetically, leaving
    /// the kernel in exactly the state `count` calls of
    /// [`Kernel::tick`] would have produced given that each would have
    /// found no dispatchable work: time moves to `final_now` (the time
    /// of the last skipped tick) and the tick/idle counters advance; no
    /// trace is recorded and the change epoch stays put, just like real
    /// idle ticks. On a panicked kernel only `now` moves, matching
    /// [`Kernel::tick`]'s early return.
    pub fn fast_forward_idle(&mut self, count: u64, final_now: Cycles) {
        self.now = final_now;
        if self.panic.is_some() {
            return;
        }
        self.ticks += count;
        self.idle_ticks += count;
    }

    /// Whether a [`Kernel::tick`] at `now` could make task-level progress:
    /// a runnable task exists, a sleeper's deadline has passed so the
    /// tick would wake it, an ISR is mid-flight, or an unmasked interrupt
    /// is pending (the tick would enter its ISR). Schedule exploration
    /// uses this to tell which kernels are worth advancing — skipping a
    /// kernel for which this is `false` is observationally free (the tick
    /// would only bump idle counters). Always `false` on a panicked
    /// kernel.
    #[must_use]
    pub fn has_dispatchable_work(&self, now: Cycles) -> bool {
        if self.panic.is_some() {
            return false;
        }
        if self.isr.is_some() || (self.irq_pending > 0 && !self.irq_masked) {
            return true;
        }
        self.tasks.iter().flatten().any(|t| {
            t.is_runnable()
                || matches!(
                    t.state,
                    TaskState::Blocked(WaitReason::Sleep { until }) if until <= now.get()
                )
        })
    }

    /// Sets the scheduling quantum: `Some(q)` preempts the running task
    /// after `q` consecutive executed cycles, handing the core to the
    /// highest-priority *other* runnable task for the next slice; `None`
    /// (the default) restores the classic run-to-block behaviour, which
    /// is the byte-identical fast path golden fixtures pin.
    pub fn set_quantum(&mut self, quantum: Option<u32>) {
        self.quantum = quantum;
        self.slice_used = 0;
    }

    /// The active scheduling quantum, if any.
    #[must_use]
    pub fn quantum(&self) -> Option<u32> {
        self.quantum
    }

    /// Installs the program run in interrupt context. Until a handler is
    /// installed, [`Kernel::raise_interrupt`] is refused — a core with
    /// no ISR vector cannot take interrupts.
    pub fn set_isr_program(&mut self, program: ProgramId) {
        self.isr_program = Some(program);
    }

    /// The installed interrupt-service program, if any.
    #[must_use]
    pub fn isr_program(&self) -> Option<ProgramId> {
        self.isr_program
    }

    /// Queues one interrupt for this core (the platform's deterministic
    /// injection path). The ISR is entered at the next [`Kernel::tick`]
    /// with interrupts unmasked. Returns `false` — and drops the
    /// interrupt — on a panicked kernel or when no handler is installed.
    pub fn raise_interrupt(&mut self) -> bool {
        if self.panic.is_some() || self.isr_program.is_none() {
            return false;
        }
        self.irq_pending += 1;
        true
    }

    /// Interrupts raised but not yet serviced.
    #[must_use]
    pub fn irq_pending(&self) -> u32 {
        self.irq_pending
    }

    /// Whether interrupt delivery is currently masked ([`Op::IrqMask`]).
    #[must_use]
    pub fn irq_masked(&self) -> bool {
        self.irq_masked
    }

    /// Whether an ISR is mid-flight.
    #[must_use]
    pub fn isr_active(&self) -> bool {
        self.isr.is_some()
    }

    /// Completed ISR activations.
    #[must_use]
    pub fn isr_runs(&self) -> u64 {
        self.isr_runs
    }

    /// Cycles consumed in interrupt context.
    #[must_use]
    pub fn isr_cycles(&self) -> u64 {
        self.isr_cycles
    }

    /// Involuntary quantum-expiry switches performed.
    #[must_use]
    pub fn preemption_count(&self) -> u64 {
        self.preemptions
    }

    /// The state of a task slot, if it ever held a task.
    #[must_use]
    pub fn task_state(&self, task: TaskId) -> Option<TaskState> {
        self.tcb(task).map(|t| t.state)
    }

    /// Whether `task` is currently suspended.
    #[must_use]
    pub fn is_suspended(&self, task: TaskId) -> Option<bool> {
        self.tcb(task).map(|t| t.suspended)
    }

    fn tcb(&self, task: TaskId) -> Option<&Tcb> {
        self.tasks.get(task.index()).and_then(Option::as_ref)
    }

    fn tcb_mut(&mut self, task: TaskId) -> Option<&mut Tcb> {
        self.tasks.get_mut(task.index()).and_then(Option::as_mut)
    }

    fn live_tcb(&self, task: TaskId) -> Result<&Tcb, SvcError> {
        match self.tcb(task) {
            None => Err(SvcError::NoSuchTask(task)),
            Some(t) if !t.is_live() => Err(SvcError::TaskNotLive(task)),
            Some(t) => Ok(t),
        }
    }

    fn trace_svc(&mut self, detail: String) {
        self.trace.record(self.now, self.core, "svc", detail);
    }

    /// Handles a remote service request (called from the bridge's
    /// interrupt context).
    ///
    /// # Errors
    ///
    /// Any [`SvcError`]; the error is reported back to the master over the
    /// response mailbox and never kills the kernel (except that a panicked
    /// kernel answers everything with [`SvcError::KernelPanicked`]).
    pub fn dispatch(&mut self, req: SvcRequest, now: Cycles) -> Result<SvcReply, SvcError> {
        self.now = now;
        if self.panic.is_some() {
            return Err(SvcError::KernelPanicked);
        }
        self.svc_count += 1;
        self.epoch += 1;
        let result = self.dispatch_inner(req);
        match &result {
            Ok(reply) => self.trace_svc(format!("{req:?} -> {reply:?}")),
            Err(err) => self.trace_svc(format!("{req:?} -> err {err}")),
        }
        result
    }

    fn dispatch_inner(&mut self, req: SvcRequest) -> Result<SvcReply, SvcError> {
        match req {
            SvcRequest::Create {
                program,
                priority,
                stack_bytes,
            } => self.svc_create(program, priority, stack_bytes),
            SvcRequest::Delete { task } => self.terminal_svc(task, ExitKind::Deleted),
            SvcRequest::Suspend { task } => {
                let t = self.live_tcb(task)?;
                if t.suspended {
                    return Err(SvcError::AlreadySuspended(task));
                }
                self.tcb_mut(task).expect("checked live").suspended = true;
                if self.current == Some(task) {
                    self.current = None;
                }
                Ok(SvcReply::Done)
            }
            SvcRequest::Resume { task } => {
                let t = self.live_tcb(task)?;
                if !t.suspended {
                    return Err(SvcError::NotSuspended(task));
                }
                self.tcb_mut(task).expect("checked live").suspended = false;
                Ok(SvcReply::Done)
            }
            SvcRequest::ChangePriority { task, priority } => {
                self.live_tcb(task)?;
                if self.priority_in_use(priority, Some(task)) {
                    return Err(SvcError::PriorityInUse(priority));
                }
                let t = self.tcb_mut(task).expect("checked live");
                t.priority = priority;
                for s in &mut self.sems {
                    s.reprioritize(task, priority);
                }
                for m in &mut self.mutexes {
                    m.reprioritize(task, priority);
                }
                Ok(SvcReply::Done)
            }
            SvcRequest::Yield { task } => {
                // A live task terminates at its next dispatch; a zombie
                // (already exited on its own) is simply reaped — remote
                // terminal commands legitimately race with self-exit.
                match self.tcb(task) {
                    None => Err(SvcError::NoSuchTask(task)),
                    Some(t) if t.is_live() => {
                        self.tcb_mut(task).expect("checked live").yield_requested = true;
                        Ok(SvcReply::Done)
                    }
                    Some(t) if !t.reaped => {
                        self.tcb_mut(task).expect("present").reaped = true;
                        Ok(SvcReply::Done)
                    }
                    Some(_) => Err(SvcError::TaskNotLive(task)),
                }
            }
            SvcRequest::PeekVar { var } => self
                .vars
                .get(usize::from(var.0))
                .copied()
                .map(SvcReply::Value)
                .ok_or(SvcError::NoSuchVar(var)),
            SvcRequest::PokeVar { var, value } => match self.vars.get_mut(usize::from(var.0)) {
                Some(slot) => {
                    *slot = value;
                    Ok(SvcReply::Done)
                }
                None => Err(SvcError::NoSuchVar(var)),
            },
        }
    }

    /// `task_delete` (and, for zombies, `task_yield`): terminate a live
    /// task or reap an already-terminated one. Only a second terminal
    /// command on the same corpse is an error.
    fn terminal_svc(&mut self, task: TaskId, kind: ExitKind) -> Result<SvcReply, SvcError> {
        match self.tcb(task) {
            None => Err(SvcError::NoSuchTask(task)),
            Some(t) if t.is_live() => {
                self.terminate(task, kind);
                Ok(SvcReply::Done)
            }
            Some(t) if !t.reaped => {
                self.tcb_mut(task).expect("present").reaped = true;
                Ok(SvcReply::Done)
            }
            Some(_) => Err(SvcError::TaskNotLive(task)),
        }
    }

    fn priority_in_use(&self, priority: Priority, exclude: Option<TaskId>) -> bool {
        self.tasks
            .iter()
            .flatten()
            .any(|t| t.is_live() && t.priority == priority && Some(t.id) != exclude)
    }

    fn svc_create(
        &mut self,
        program: ProgramId,
        priority: Priority,
        stack_bytes: Option<u32>,
    ) -> Result<SvcReply, SvcError> {
        if self.live_task_count() >= self.cfg.max_tasks {
            return Err(SvcError::NoFreeSlot);
        }
        if self.priority_in_use(priority, None) {
            return Err(SvcError::PriorityInUse(priority));
        }
        let prog = self
            .programs
            .get(usize::from(program.0))
            .cloned()
            .ok_or(SvcError::NoSuchProgram(program))?;
        let slot = self
            .tasks
            .iter()
            .position(|t| t.as_ref().is_none_or(|t| !t.is_live()))
            .ok_or(SvcError::NoFreeSlot)?;
        let id = TaskId::new(slot as u8);
        let stack = stack_bytes.unwrap_or(self.cfg.default_stack_bytes);

        let tcb_block = self.kernel_alloc(self.cfg.tcb_bytes, Owner::Task(id))?;
        let stack_block = match self.kernel_alloc(stack, Owner::Task(id)) {
            Ok(b) => b,
            Err(e) => {
                // Roll back the TCB allocation if the panic path was not
                // taken (a panicked kernel keeps everything as-is for the
                // post-mortem dump).
                if self.panic.is_none() {
                    let _ = self.heap.free(tcb_block);
                }
                return Err(e);
            }
        };
        self.tasks[slot] = Some(Tcb {
            id,
            priority,
            state: TaskState::Ready,
            suspended: false,
            yield_requested: false,
            reaped: false,
            program: prog,
            pc: 0,
            regs: [0; crate::program::NUM_REGS],
            compute_remaining: 0,
            stack_bytes: stack,
            stack_peak: 0,
            stack_block,
            tcb_block,
            ops_retired: 0,
            cycles_used: 0,
            held_mutexes: Vec::new(),
        });
        self.live_count += 1;
        Ok(SvcReply::Created(id))
    }

    /// Allocates kernel-side memory, converting exhaustion into a kernel
    /// panic (the slave-system crash of case study 1).
    fn kernel_alloc(&mut self, bytes: u32, owner: Owner) -> Result<BlockHandle, SvcError> {
        match self.heap.alloc(bytes, owner) {
            Ok(b) => Ok(b),
            Err(HeapError::OutOfMemory { requested, .. }) => {
                self.panic = Some(KernelPanic::OutOfMemory { requested });
                self.trace.record(
                    self.now,
                    self.core,
                    "panic",
                    format!("out of memory allocating {requested} bytes"),
                );
                Err(SvcError::KernelPanicked)
            }
            Err(e) => {
                // ZeroSized / bad handles cannot occur for kernel-computed
                // sizes; treat defensively as panic-free internal error.
                self.trace
                    .record(self.now, self.core, "heap", format!("internal: {e}"));
                Err(SvcError::KernelPanicked)
            }
        }
    }

    fn terminate(&mut self, task: TaskId, kind: ExitKind) {
        // Remove from all wait queues.
        for s in &mut self.sems {
            s.remove_waiter(task);
        }
        let mut woken = Vec::new();
        for (i, m) in self.mutexes.iter_mut().enumerate() {
            m.remove_waiter(task);
            if let Some(next) = m.force_release(task) {
                woken.push((MutexId(i as u16), next));
            }
        }
        for (mid, next) in woken {
            self.grant_mutex(next, mid);
        }
        if let Some(t) = self.tcb_mut(task) {
            let was_live = t.is_live();
            t.state = TaskState::Terminated(kind);
            t.held_mutexes.clear();
            if was_live {
                self.live_count -= 1;
            }
        }
        if self.current == Some(task) {
            self.current = None;
        }
        // The task's memory (TCB, stack, task allocations) becomes garbage
        // for the next GC pass — this is the churn that exposes the GC bug.
        let marked = self.heap.mark_task_garbage(task);
        self.trace.record(
            self.now,
            self.core,
            "task",
            format!("{task} terminated ({kind}); {marked}B garbage"),
        );
    }

    /// Makes `task` the owner of `mutex` after a handoff and unblocks it.
    fn grant_mutex(&mut self, task: TaskId, mutex: MutexId) {
        if let Some(t) = self.tcb_mut(task) {
            if matches!(t.state, TaskState::Blocked(WaitReason::Mutex(m)) if m == mutex) {
                t.state = TaskState::Ready;
            }
            t.held_mutexes.push(mutex);
        }
    }

    fn fault(&mut self, task: TaskId, fault: TaskFault) {
        self.trace
            .record(self.now, self.core, "fault", format!("{task}: {fault}"));
        self.terminate(task, ExitKind::Faulted(fault));
    }

    fn pick_next(&self) -> Option<TaskId> {
        self.tasks
            .iter()
            .flatten()
            .filter(|t| t.is_runnable())
            .max_by_key(|t| t.priority)
            .map(|t| t.id)
    }

    /// [`Kernel::pick_next`] under quantum scheduling: the running task
    /// keeps the core until its slice of `quantum` executed cycles
    /// expires (preemption happens at slice boundaries, not the instant
    /// a higher priority becomes ready); on expiry the leader is demoted
    /// for one pick and the highest-priority *other* runnable task gets
    /// the next slice, falling back to a renewed slice when it is alone.
    fn pick_next_quantum(&mut self, quantum: u32) -> Option<TaskId> {
        let current_runnable = self
            .current
            .and_then(|c| self.tcb(c))
            .is_some_and(Tcb::is_runnable);
        if !current_runnable {
            return self.pick_next();
        }
        if self.slice_used < quantum {
            return self.current;
        }
        let demoted = self.current;
        let next = self
            .tasks
            .iter()
            .flatten()
            .filter(|t| t.is_runnable() && Some(t.id) != demoted)
            .max_by_key(|t| t.priority)
            .map(|t| t.id);
        match next {
            Some(next) => {
                self.preemptions += 1;
                self.trace.record(
                    self.now,
                    self.core,
                    "sched",
                    format!("quantum expires: preempt for {next}"),
                );
                Some(next)
            }
            None => {
                // Alone on the core: the slice renews in place.
                self.slice_used = 0;
                demoted
            }
        }
    }

    fn wake_sleepers(&mut self) -> bool {
        let now = self.now.get();
        let mut woke = false;
        for t in self.tasks.iter_mut().flatten() {
            if let TaskState::Blocked(WaitReason::Sleep { until }) = t.state {
                if until <= now {
                    t.state = TaskState::Ready;
                    woke = true;
                }
            }
        }
        woke
    }

    /// Advances the kernel by one cycle of virtual time.
    pub fn tick(&mut self, now: Cycles) -> TickOutcome {
        self.now = now;
        if self.panic.is_some() {
            return TickOutcome::Panicked;
        }
        self.ticks += 1;
        if self.wake_sleepers() {
            self.epoch += 1;
        }

        // Interrupt entry: a pending, unmasked interrupt activates the
        // ISR frame, preempting whatever task would otherwise run. The
        // preempted task's slice is frozen, not consumed — it resumes
        // where it left off when the ISR exits.
        if self.isr.is_none() && self.irq_pending > 0 && !self.irq_masked {
            self.irq_pending -= 1;
            self.isr = Some(IsrFrame::new());
            self.trace
                .record(self.now, self.core, "isr", "enter".to_owned());
        }
        if self.isr.is_some() {
            self.epoch += 1;
            self.isr_cycles += 1;
            self.run_isr_cycle();
            if self.panic.is_some() {
                return TickOutcome::Panicked;
            }
            return TickOutcome::Isr;
        }

        let picked = match self.quantum {
            Some(q) => self.pick_next_quantum(q),
            None => self.pick_next(),
        };
        let Some(next) = picked else {
            self.idle_ticks += 1;
            return TickOutcome::Idle;
        };
        self.epoch += 1;
        if self.current != Some(next) {
            self.ctx_switches += 1;
            self.trace
                .record(self.now, self.core, "sched", format!("run {next}"));
            self.current = Some(next);
            self.slice_used = 0;
        }
        self.run_one(next);
        self.slice_used = self.slice_used.wrapping_add(1);
        if self.panic.is_some() {
            return TickOutcome::Panicked;
        }
        TickOutcome::Ran(next)
    }

    /// Executes one cycle of the active ISR frame. ISRs share the task
    /// ISA but run in interrupt context: they own only their frame, may
    /// not block, sleep or touch the heap (such ops end the ISR as a
    /// handler bug, traced), and exit via [`Op::Exit`].
    fn run_isr_cycle(&mut self) {
        let mut frame = self.isr.expect("run_isr_cycle without active frame");
        if frame.compute_remaining > 0 {
            frame.compute_remaining -= 1;
            self.isr = Some(frame);
            return;
        }
        let program = self
            .isr_program
            .expect("ISR frame active without a handler installed");
        let op = self
            .programs
            .get(usize::from(program.0))
            .and_then(|p| p.op(frame.pc));
        let Some(op) = op else {
            self.isr_exit("pc out of range");
            return;
        };
        match op {
            Op::Compute(n) => {
                frame.compute_remaining = u64::from(n.saturating_sub(1));
                frame.pc += 1;
            }
            Op::ReadVar { var, reg } => {
                let Some(value) = self.vars.get(usize::from(var.0)).copied() else {
                    self.isr_exit("bad var");
                    return;
                };
                frame.regs[usize::from(reg)] = value;
                frame.pc += 1;
            }
            Op::WriteVar { var, value } => {
                if self.isr_write_var(var, value).is_err() {
                    return;
                }
                frame.pc += 1;
            }
            Op::WriteVarReg { var, reg } => {
                let value = frame.regs[usize::from(reg)];
                if self.isr_write_var(var, value).is_err() {
                    return;
                }
                frame.pc += 1;
            }
            Op::AddReg { reg, delta } => {
                let r = &mut frame.regs[usize::from(reg)];
                *r = r.wrapping_add(delta);
                frame.pc += 1;
            }
            Op::BranchIfVarEq { var, value, target } => {
                let Some(current) = self.vars.get(usize::from(var.0)).copied() else {
                    self.isr_exit("bad var");
                    return;
                };
                frame.pc = if current == value {
                    target
                } else {
                    frame.pc + 1
                };
            }
            Op::BranchIfRegEq { reg, value, target } => {
                let current = frame.regs[usize::from(reg)];
                frame.pc = if current == value {
                    target
                } else {
                    frame.pc + 1
                };
            }
            Op::Jump(target) => frame.pc = target,
            Op::Fence => {
                self.pending_fences += 1;
                frame.pc += 1;
            }
            Op::SemPost(sem) => {
                // The interrupt-context post: identical to the external
                // hand-off path, so ISRs can signal tasks.
                if let Some(s) = self.sems.get_mut(usize::from(sem.0)) {
                    if let Some(woken) = s.post() {
                        if let Some(t) = self.tcb_mut(woken) {
                            if matches!(
                                t.state,
                                TaskState::Blocked(WaitReason::Semaphore(s2)) if s2 == sem
                            ) {
                                t.state = TaskState::Ready;
                            }
                        }
                    }
                    frame.pc += 1;
                } else {
                    self.isr_exit("bad semaphore");
                    return;
                }
            }
            Op::IrqMask => {
                self.irq_masked = true;
                frame.pc += 1;
            }
            Op::IrqUnmask => {
                self.irq_masked = false;
                frame.pc += 1;
            }
            Op::Exit => {
                self.isr = None;
                self.isr_runs += 1;
                self.trace
                    .record(self.now, self.core, "isr", "exit".to_owned());
                return;
            }
            Op::Alloc { .. }
            | Op::Free { .. }
            | Op::StackProbe(_)
            | Op::Yield
            | Op::SemWait(_)
            | Op::MutexLock(_)
            | Op::MutexUnlock(_)
            | Op::SleepFor(_) => {
                self.isr_exit("blocking op in interrupt context");
                return;
            }
        }
        self.isr = Some(frame);
    }

    /// Ends the active ISR on a handler bug, tracing the reason.
    fn isr_exit(&mut self, reason: &str) {
        self.isr = None;
        self.isr_runs += 1;
        self.trace
            .record(self.now, self.core, "isr", format!("abort: {reason}"));
    }

    /// A shared-variable store from interrupt context. `Err` means the
    /// variable was unknown and the ISR was aborted.
    fn isr_write_var(&mut self, var: VarId, value: i64) -> Result<(), ()> {
        let Some(slot) = self.vars.get_mut(usize::from(var.0)) else {
            self.isr_exit("bad var");
            return Err(());
        };
        *slot = value;
        if self.cfg.trace_accesses {
            self.trace.record(
                self.now,
                self.core,
                "var-write",
                format!("isr {var}={value}"),
            );
        }
        Ok(())
    }

    #[allow(clippy::too_many_lines)]
    fn run_one(&mut self, task: TaskId) {
        let (op, yield_requested) = {
            let t = self.tcb_mut(task).expect("scheduled task exists");
            t.cycles_used += 1;
            if t.yield_requested {
                (None, true)
            } else if t.compute_remaining > 0 {
                t.compute_remaining -= 1;
                return;
            } else {
                (t.program.op(t.pc), false)
            }
        };

        if yield_requested {
            self.terminate(task, ExitKind::Normal);
            return;
        }
        let Some(op) = op else {
            self.fault(task, TaskFault::PcOutOfRange);
            return;
        };

        // Default: advance past this op; branch ops overwrite below.
        let advance = |k: &mut Kernel| {
            if let Some(t) = k.tcb_mut(task) {
                t.pc += 1;
                t.ops_retired += 1;
            }
        };

        match op {
            Op::Compute(n) => {
                if let Some(t) = self.tcb_mut(task) {
                    t.compute_remaining = u64::from(n.saturating_sub(1));
                }
                advance(self);
            }
            Op::Alloc { bytes, reg } => {
                if bytes == 0 {
                    self.fault(task, TaskFault::BadObject);
                    return;
                }
                match self.kernel_alloc(bytes, Owner::Task(task)) {
                    Ok(handle) => {
                        if let Some(t) = self.tcb_mut(task) {
                            t.regs[usize::from(reg)] = i64::from(handle.raw());
                        }
                        advance(self);
                    }
                    Err(_) => {
                        // Kernel panicked (OOM); nothing more to do.
                    }
                }
            }
            Op::Free { reg } => {
                let raw = {
                    let t = self.tcb(task).expect("scheduled task exists");
                    t.regs[usize::from(reg)]
                };
                let handle = u32::try_from(raw).ok().map(BlockHandle::from_raw);
                match handle {
                    Some(h) if self.heap.free(h).is_ok() => advance(self),
                    _ => self.fault(task, TaskFault::BadFree),
                }
            }
            Op::StackProbe(bytes) => {
                let overflow = {
                    let t = self.tcb_mut(task).expect("scheduled task exists");
                    t.stack_peak = t.stack_peak.max(bytes);
                    bytes > t.stack_bytes
                };
                if overflow {
                    self.fault(task, TaskFault::StackOverflow);
                } else {
                    advance(self);
                }
            }
            Op::ReadVar { var, reg } => {
                let Some(value) = self.vars.get(usize::from(var.0)).copied() else {
                    self.fault(task, TaskFault::BadObject);
                    return;
                };
                if let Some(t) = self.tcb_mut(task) {
                    t.regs[usize::from(reg)] = value;
                }
                if self.cfg.trace_accesses {
                    self.trace.record(
                        self.now,
                        self.core,
                        "var-read",
                        format!("{task} {var}={value}"),
                    );
                }
                advance(self);
            }
            Op::WriteVar { var, value } => {
                let Some(slot) = self.vars.get_mut(usize::from(var.0)) else {
                    self.fault(task, TaskFault::BadObject);
                    return;
                };
                *slot = value;
                if self.cfg.trace_accesses {
                    self.trace.record(
                        self.now,
                        self.core,
                        "var-write",
                        format!("{task} {var}={value}"),
                    );
                }
                advance(self);
            }
            Op::WriteVarReg { var, reg } => {
                let value = self.tcb(task).expect("scheduled task exists").regs[usize::from(reg)];
                let Some(slot) = self.vars.get_mut(usize::from(var.0)) else {
                    self.fault(task, TaskFault::BadObject);
                    return;
                };
                *slot = value;
                if self.cfg.trace_accesses {
                    self.trace.record(
                        self.now,
                        self.core,
                        "var-write",
                        format!("{task} {var}={value}"),
                    );
                }
                advance(self);
            }
            Op::AddReg { reg, delta } => {
                if let Some(t) = self.tcb_mut(task) {
                    let r = &mut t.regs[usize::from(reg)];
                    *r = r.wrapping_add(delta);
                }
                advance(self);
            }
            Op::BranchIfVarEq { var, value, target } => {
                let Some(current) = self.vars.get(usize::from(var.0)).copied() else {
                    self.fault(task, TaskFault::BadObject);
                    return;
                };
                let t = self.tcb_mut(task).expect("scheduled task exists");
                t.ops_retired += 1;
                t.pc = if current == value { target } else { t.pc + 1 };
            }
            Op::BranchIfRegEq { reg, value, target } => {
                let t = self.tcb_mut(task).expect("scheduled task exists");
                t.ops_retired += 1;
                let current = t.regs[usize::from(reg)];
                t.pc = if current == value { target } else { t.pc + 1 };
            }
            Op::Jump(target) => {
                let t = self.tcb_mut(task).expect("scheduled task exists");
                t.ops_retired += 1;
                t.pc = target;
            }
            Op::Fence => {
                // The kernel itself has no store buffer; it records the
                // fence for the platform's memory model to drain at the
                // end of the cycle. A no-op under sequential consistency.
                self.pending_fences += 1;
                if self.cfg.trace_accesses {
                    self.trace
                        .record(self.now, self.core, "fence", format!("{task} fence"));
                }
                advance(self);
            }
            Op::Yield => {
                let delay = u64::from(self.cfg.yield_delay);
                let until = self.now.get() + delay;
                let t = self.tcb_mut(task).expect("scheduled task exists");
                t.state = TaskState::Blocked(WaitReason::Sleep { until });
                t.pc += 1;
                t.ops_retired += 1;
                self.current = None;
            }
            Op::SemWait(sem) => {
                let priority = self.tcb(task).expect("scheduled task exists").priority;
                let Some(s) = self.sems.get_mut(usize::from(sem.0)) else {
                    self.fault(task, TaskFault::BadObject);
                    return;
                };
                if s.wait(task, priority) {
                    if self.cfg.trace_accesses {
                        self.trace.record(
                            self.now,
                            self.core,
                            "sem-wait",
                            format!("{task} acquires {sem}"),
                        );
                    }
                    advance(self);
                } else {
                    let t = self.tcb_mut(task).expect("scheduled task exists");
                    t.state = TaskState::Blocked(WaitReason::Semaphore(sem));
                    t.pc += 1;
                    t.ops_retired += 1;
                    self.current = None;
                    if self.cfg.trace_accesses {
                        self.trace.record(
                            self.now,
                            self.core,
                            "sem-wait",
                            format!("{task} blocks on {sem}"),
                        );
                    }
                }
            }
            Op::SemPost(sem) => {
                let Some(s) = self.sems.get_mut(usize::from(sem.0)) else {
                    self.fault(task, TaskFault::BadObject);
                    return;
                };
                let woken = s.post();
                if let Some(w) = woken {
                    if let Some(t) = self.tcb_mut(w) {
                        if matches!(
                            t.state,
                            TaskState::Blocked(WaitReason::Semaphore(s2)) if s2 == sem
                        ) {
                            t.state = TaskState::Ready;
                        }
                    }
                }
                if self.cfg.trace_accesses {
                    let detail = match woken {
                        Some(w) => format!("{task} posts {sem} wakes {w}"),
                        None => format!("{task} posts {sem}"),
                    };
                    self.trace.record(self.now, self.core, "sem-post", detail);
                }
                advance(self);
            }
            Op::MutexLock(mutex) => {
                let priority = self.tcb(task).expect("scheduled task exists").priority;
                let Some(m) = self.mutexes.get_mut(usize::from(mutex.0)) else {
                    self.fault(task, TaskFault::BadObject);
                    return;
                };
                match m.lock(task, priority) {
                    LockOutcome::Acquired => {
                        if let Some(t) = self.tcb_mut(task) {
                            t.held_mutexes.push(mutex);
                        }
                        advance(self);
                    }
                    LockOutcome::MustBlock => {
                        let t = self.tcb_mut(task).expect("scheduled task exists");
                        t.state = TaskState::Blocked(WaitReason::Mutex(mutex));
                        t.pc += 1;
                        t.ops_retired += 1;
                        self.current = None;
                        self.trace.record(
                            self.now,
                            self.core,
                            "block",
                            format!("{task} blocks on {mutex}"),
                        );
                    }
                    LockOutcome::Recursive => self.fault(task, TaskFault::RecursiveLock),
                }
            }
            Op::MutexUnlock(mutex) => {
                let Some(m) = self.mutexes.get_mut(usize::from(mutex.0)) else {
                    self.fault(task, TaskFault::BadObject);
                    return;
                };
                match m.unlock(task) {
                    Ok(next) => {
                        if let Some(t) = self.tcb_mut(task) {
                            t.held_mutexes.retain(|&h| h != mutex);
                        }
                        if let Some(next) = next {
                            self.grant_mutex(next, mutex);
                        }
                        advance(self);
                    }
                    Err(()) => self.fault(task, TaskFault::UnlockNotOwner),
                }
            }
            Op::SleepFor(n) => {
                let until = self.now.get() + u64::from(n);
                let t = self.tcb_mut(task).expect("scheduled task exists");
                t.state = TaskState::Blocked(WaitReason::Sleep { until });
                t.pc += 1;
                t.ops_retired += 1;
                self.current = None;
            }
            Op::IrqMask => {
                self.irq_masked = true;
                if self.cfg.trace_accesses {
                    self.trace
                        .record(self.now, self.core, "irq", format!("{task} masks"));
                }
                advance(self);
            }
            Op::IrqUnmask => {
                self.irq_masked = false;
                if self.cfg.trace_accesses {
                    self.trace
                        .record(self.now, self.core, "irq", format!("{task} unmasks"));
                }
                advance(self);
            }
            Op::Exit => {
                self.terminate(task, ExitKind::Normal);
            }
        }
    }

    /// Blocked-on edges of the current wait-for graph.
    #[must_use]
    pub fn wait_edges(&self) -> Vec<WaitEdge> {
        let mut edges = Vec::new();
        self.wait_edges_into(&mut edges);
        edges
    }

    /// [`Kernel::wait_edges`] into a caller-owned buffer (cleared first).
    pub fn wait_edges_into(&self, edges: &mut Vec<WaitEdge>) {
        edges.clear();
        for t in self.tasks.iter().flatten() {
            match t.state {
                TaskState::Blocked(WaitReason::Mutex(m)) => {
                    let holder = self
                        .mutexes
                        .get(usize::from(m.0))
                        .and_then(KernelMutex::owner);
                    edges.push(WaitEdge {
                        waiter: t.id,
                        resource: ResourceRef::Mutex(m),
                        holder,
                    });
                }
                TaskState::Blocked(WaitReason::Semaphore(s)) => {
                    edges.push(WaitEdge {
                        waiter: t.id,
                        resource: ResourceRef::Semaphore(s),
                        holder: None,
                    });
                }
                _ => {}
            }
        }
    }

    /// A full point-in-time snapshot for the bug detector.
    #[must_use]
    pub fn snapshot(&self) -> KernelSnapshot {
        let mut snap = KernelSnapshot::default();
        self.snapshot_into(&mut snap);
        snap
    }

    /// [`Kernel::snapshot`] into a caller-owned snapshot, reusing its
    /// task and wait-edge buffers. Observers polling every few hundred
    /// cycles (the bug detector) batch their per-kernel snapshots through
    /// this instead of allocating fresh vectors per call.
    pub fn snapshot_into(&self, snap: &mut KernelSnapshot) {
        snap.now = self.now;
        snap.panic = self.panic;
        snap.tasks.clear();
        snap.tasks
            .extend(self.tasks.iter().flatten().map(|t| TaskSnapshot {
                id: t.id,
                priority: t.priority,
                state: t.state,
                suspended: t.suspended,
                pc: t.pc,
                ops_retired: t.ops_retired,
                held_mutexes: t.held_mutexes.clone(),
            }));
        snap.heap = self.heap.stats();
        self.wait_edges_into(&mut snap.wait_edges);
        snap.ticks = self.ticks;
        snap.idle_ticks = self.idle_ticks;
        snap.ctx_switches = self.ctx_switches;
        snap.svc_count = self.svc_count;
    }

    /// Heap statistics (convenience over [`Kernel::snapshot`]).
    #[must_use]
    pub fn heap_stats(&self) -> HeapStats {
        self.heap.stats()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::program::ProgramBuilder;

    fn kernel() -> Kernel {
        Kernel::new(KernelConfig::default())
    }

    fn exit_prog(k: &mut Kernel) -> ProgramId {
        k.register_program(Program::exit_immediately())
    }

    fn create(k: &mut Kernel, prog: ProgramId, prio: u8) -> TaskId {
        match k
            .dispatch(
                SvcRequest::Create {
                    program: prog,
                    priority: Priority::new(prio),
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .unwrap()
        {
            SvcReply::Created(t) => t,
            other => panic!("unexpected reply {other:?}"),
        }
    }

    fn run(k: &mut Kernel, cycles: u64) {
        let start = k.now.get();
        for c in 0..cycles {
            k.tick(Cycles::new(start + c + 1));
        }
    }

    #[test]
    fn create_and_run_to_exit() {
        let mut k = kernel();
        let p = exit_prog(&mut k);
        let t = create(&mut k, p, 5);
        assert_eq!(k.live_task_count(), 1);
        run(&mut k, 5);
        assert_eq!(
            k.task_state(t),
            Some(TaskState::Terminated(ExitKind::Normal))
        );
        assert_eq!(k.live_task_count(), 0);
    }

    #[test]
    fn sixteen_task_limit_enforced() {
        let mut k = kernel();
        // A program that never exits, so slots stay occupied.
        let p = k.register_program(Program::new(vec![Op::Jump(0)]).unwrap());
        for i in 0..16 {
            create(&mut k, p, i + 1);
        }
        let err = k
            .dispatch(
                SvcRequest::Create {
                    program: p,
                    priority: Priority::new(100),
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, SvcError::NoFreeSlot);
    }

    #[test]
    fn unique_priorities_enforced() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Jump(0)]).unwrap());
        create(&mut k, p, 7);
        let err = k
            .dispatch(
                SvcRequest::Create {
                    program: p,
                    priority: Priority::new(7),
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .unwrap_err();
        assert_eq!(err, SvcError::PriorityInUse(Priority::new(7)));
    }

    #[test]
    fn fence_ops_retire_and_accumulate_for_the_platform() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Fence, Op::Fence, Op::Exit]).unwrap());
        create(&mut k, p, 5);
        run(&mut k, 10);
        assert_eq!(k.live_task_count(), 0, "fences must not block the task");
        assert_eq!(k.take_fences(), 2);
        assert_eq!(k.take_fences(), 0, "the counter drains on read");
    }

    #[test]
    fn highest_priority_task_runs() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Compute(1000), Op::Exit]).unwrap());
        let low = create(&mut k, p, 1);
        let high = create(&mut k, p, 9);
        run(&mut k, 10);
        let snap = k.snapshot();
        let high_cycles = snap
            .tasks
            .iter()
            .find(|t| t.id == high)
            .unwrap()
            .ops_retired;
        let low_cycles = snap.tasks.iter().find(|t| t.id == low).unwrap().ops_retired;
        assert!(high_cycles > 0);
        assert_eq!(low_cycles, 0, "low-priority task must not run");
    }

    #[test]
    fn suspend_resume_legality() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Jump(0)]).unwrap());
        let t = create(&mut k, p, 5);
        assert_eq!(
            k.dispatch(SvcRequest::Resume { task: t }, Cycles::ZERO),
            Err(SvcError::NotSuspended(t))
        );
        k.dispatch(SvcRequest::Suspend { task: t }, Cycles::ZERO)
            .unwrap();
        assert_eq!(
            k.dispatch(SvcRequest::Suspend { task: t }, Cycles::ZERO),
            Err(SvcError::AlreadySuspended(t))
        );
        k.dispatch(SvcRequest::Resume { task: t }, Cycles::ZERO)
            .unwrap();
        assert_eq!(k.is_suspended(t), Some(false));
    }

    #[test]
    fn suspended_task_does_not_run() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Compute(1000), Op::Exit]).unwrap());
        let t = create(&mut k, p, 5);
        k.dispatch(SvcRequest::Suspend { task: t }, Cycles::ZERO)
            .unwrap();
        run(&mut k, 10);
        let snap = k.snapshot();
        assert_eq!(snap.tasks[0].ops_retired, 0);
        assert_eq!(snap.idle_ticks, 10);
    }

    #[test]
    fn remote_yield_terminates_at_next_dispatch() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Jump(0)]).unwrap());
        let t = create(&mut k, p, 5);
        run(&mut k, 3);
        k.dispatch(SvcRequest::Yield { task: t }, Cycles::new(3))
            .unwrap();
        run(&mut k, 2);
        assert_eq!(
            k.task_state(t),
            Some(TaskState::Terminated(ExitKind::Normal))
        );
    }

    #[test]
    fn delete_frees_slot_for_reuse() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Jump(0)]).unwrap());
        let t = create(&mut k, p, 5);
        k.dispatch(SvcRequest::Delete { task: t }, Cycles::ZERO)
            .unwrap();
        assert_eq!(k.live_task_count(), 0);
        let t2 = create(&mut k, p, 6);
        assert_eq!(t2, t, "slot is reused");
    }

    #[test]
    fn delete_reaps_zombie_once() {
        let mut k = kernel();
        let p = exit_prog(&mut k);
        let t = create(&mut k, p, 5);
        run(&mut k, 5); // task exits on its own
                        // First terminal command reaps the zombie (delete racing with
                        // self-exit is legitimate)…
        assert_eq!(
            k.dispatch(SvcRequest::Delete { task: t }, Cycles::new(10)),
            Ok(SvcReply::Done)
        );
        // …a second one is an error.
        assert_eq!(
            k.dispatch(SvcRequest::Delete { task: t }, Cycles::new(11)),
            Err(SvcError::TaskNotLive(t))
        );
        assert_eq!(
            k.dispatch(
                SvcRequest::Delete {
                    task: TaskId::new(9)
                },
                Cycles::new(12)
            ),
            Err(SvcError::NoSuchTask(TaskId::new(9)))
        );
    }

    #[test]
    fn yield_reaps_zombie_once() {
        let mut k = kernel();
        let p = exit_prog(&mut k);
        let t = create(&mut k, p, 5);
        run(&mut k, 5);
        assert_eq!(
            k.dispatch(SvcRequest::Yield { task: t }, Cycles::new(10)),
            Ok(SvcReply::Done)
        );
        assert_eq!(
            k.dispatch(SvcRequest::Yield { task: t }, Cycles::new(11)),
            Err(SvcError::TaskNotLive(t))
        );
        // Non-terminal services never reap.
        let t2 = create(&mut k, p, 6);
        run(&mut k, 5);
        assert_eq!(
            k.dispatch(SvcRequest::Suspend { task: t2 }, Cycles::new(20)),
            Err(SvcError::TaskNotLive(t2))
        );
    }

    #[test]
    fn chanprio_respects_uniqueness_and_reorders() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Compute(1000), Op::Exit]).unwrap());
        let a = create(&mut k, p, 2);
        let b = create(&mut k, p, 5);
        assert_eq!(
            k.dispatch(
                SvcRequest::ChangePriority {
                    task: a,
                    priority: Priority::new(5)
                },
                Cycles::ZERO
            ),
            Err(SvcError::PriorityInUse(Priority::new(5)))
        );
        k.dispatch(
            SvcRequest::ChangePriority {
                task: a,
                priority: Priority::new(9),
            },
            Cycles::ZERO,
        )
        .unwrap();
        run(&mut k, 4);
        let snap = k.snapshot();
        assert!(snap.tasks.iter().find(|t| t.id == a).unwrap().ops_retired > 0);
        assert_eq!(
            snap.tasks.iter().find(|t| t.id == b).unwrap().ops_retired,
            0
        );
    }

    #[test]
    fn mutex_blocking_and_handoff() {
        let mut k = kernel();
        let m = k.create_mutex();
        let prog = {
            let mut b = ProgramBuilder::new();
            b.push(Op::MutexLock(m));
            b.push(Op::Compute(10));
            b.push(Op::MutexUnlock(m));
            b.push(Op::Exit);
            k.register_program(b.build().unwrap())
        };
        let low = create(&mut k, prog, 1);
        run(&mut k, 3); // low acquires the mutex and starts computing
        let high = create(&mut k, prog, 9);
        run(&mut k, 2); // high preempts, tries to lock, blocks
        assert!(matches!(
            k.task_state(high),
            Some(TaskState::Blocked(WaitReason::Mutex(_)))
        ));
        let edges = k.wait_edges();
        assert_eq!(edges.len(), 1);
        assert_eq!(edges[0].waiter, high);
        assert_eq!(edges[0].holder, Some(low));
        run(&mut k, 40);
        assert!(matches!(k.task_state(high), Some(TaskState::Terminated(_))));
        assert!(matches!(k.task_state(low), Some(TaskState::Terminated(_))));
    }

    #[test]
    fn semaphore_producer_consumer() {
        let mut k = kernel();
        let s = k.create_semaphore(0);
        let consumer = {
            let mut b = ProgramBuilder::new();
            b.push(Op::SemWait(s));
            b.push(Op::Exit);
            k.register_program(b.build().unwrap())
        };
        let producer = {
            let mut b = ProgramBuilder::new();
            b.push(Op::Compute(5));
            b.push(Op::SemPost(s));
            b.push(Op::Exit);
            k.register_program(b.build().unwrap())
        };
        let c = create(&mut k, consumer, 9); // high priority: waits first
        let p = create(&mut k, producer, 1);
        run(&mut k, 30);
        assert!(matches!(
            k.task_state(c),
            Some(TaskState::Terminated(ExitKind::Normal))
        ));
        assert!(matches!(
            k.task_state(p),
            Some(TaskState::Terminated(ExitKind::Normal))
        ));
    }

    #[test]
    fn stack_overflow_faults_task() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::StackProbe(100_000), Op::Exit]).unwrap());
        let t = create(&mut k, p, 5);
        run(&mut k, 3);
        assert_eq!(
            k.task_state(t),
            Some(TaskState::Terminated(ExitKind::Faulted(
                TaskFault::StackOverflow
            )))
        );
        assert!(k.panic().is_none(), "task faults do not kill the kernel");
    }

    #[test]
    fn recursive_lock_faults_task() {
        let mut k = kernel();
        let m = k.create_mutex();
        let p = k.register_program(
            Program::new(vec![Op::MutexLock(m), Op::MutexLock(m), Op::Exit]).unwrap(),
        );
        let t = create(&mut k, p, 5);
        run(&mut k, 5);
        assert_eq!(
            k.task_state(t),
            Some(TaskState::Terminated(ExitKind::Faulted(
                TaskFault::RecursiveLock
            )))
        );
    }

    #[test]
    fn unlock_not_owner_faults_task() {
        let mut k = kernel();
        let m = k.create_mutex();
        let p = k.register_program(Program::new(vec![Op::MutexUnlock(m), Op::Exit]).unwrap());
        let t = create(&mut k, p, 5);
        run(&mut k, 3);
        assert_eq!(
            k.task_state(t),
            Some(TaskState::Terminated(ExitKind::Faulted(
                TaskFault::UnlockNotOwner
            )))
        );
    }

    #[test]
    fn gc_reclaims_dead_task_memory_under_churn() {
        let cfg = KernelConfig {
            heap_bytes: 4 * 1024,
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let p = exit_prog(&mut k);
        // 4 KB heap, each task needs 64 + 512 = 576 bytes. Creating and
        // completing 100 tasks requires GC to recycle memory.
        for i in 0..100 {
            let t = create(&mut k, p, (i % 200 + 1) as u8);
            run(&mut k, 4);
            assert!(
                matches!(k.task_state(t), Some(TaskState::Terminated(_))),
                "task {i} should have exited"
            );
        }
        assert!(k.panic().is_none());
        assert!(k.heap_stats().gc_runs > 0, "churn must have triggered GC");
    }

    #[test]
    fn gc_leak_fault_eventually_panics_kernel() {
        let cfg = KernelConfig {
            heap_bytes: 4 * 1024,
            gc_fault: GcFaultMode::LeakDeadBlocks { leak_every: 1 },
            ..KernelConfig::default()
        };
        let mut k = Kernel::new(cfg);
        let p = exit_prog(&mut k);
        let mut panicked_at = None;
        for i in 0..100u32 {
            let req = SvcRequest::Create {
                program: p,
                priority: Priority::new((i % 200 + 1) as u8),
                stack_bytes: None,
            };
            match k.dispatch(req, Cycles::new(u64::from(i) * 10)) {
                Ok(_) => run(&mut k, 4),
                Err(SvcError::KernelPanicked) => {
                    panicked_at = Some(i);
                    break;
                }
                Err(e) => panic!("unexpected error {e}"),
            }
        }
        let at = panicked_at.expect("leaky GC must exhaust the 4 KB heap");
        assert!(at > 2, "should survive the first few tasks");
        assert!(matches!(k.panic(), Some(KernelPanic::OutOfMemory { .. })));
        // A dead kernel refuses everything.
        assert_eq!(
            k.dispatch(SvcRequest::PeekVar { var: VarId(0) }, Cycles::new(1)),
            Err(SvcError::KernelPanicked)
        );
        assert_eq!(k.tick(Cycles::new(1)), TickOutcome::Panicked);
    }

    #[test]
    fn peek_poke_vars() {
        let mut k = kernel();
        k.dispatch(
            SvcRequest::PokeVar {
                var: VarId(3),
                value: 42,
            },
            Cycles::ZERO,
        )
        .unwrap();
        assert_eq!(
            k.dispatch(SvcRequest::PeekVar { var: VarId(3) }, Cycles::ZERO),
            Ok(SvcReply::Value(42))
        );
        assert_eq!(
            k.dispatch(SvcRequest::PeekVar { var: VarId(999) }, Cycles::ZERO),
            Err(SvcError::NoSuchVar(VarId(999)))
        );
    }

    #[test]
    fn yield_lets_lower_priority_task_run() {
        let mut k = kernel();
        // High-priority task yields in a loop; low-priority must progress.
        let yielder = {
            let mut b = ProgramBuilder::new();
            b.bind("top");
            b.push(Op::Yield);
            b.jump_to("top");
            k.register_program(b.build().unwrap())
        };
        let worker = k.register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap());
        let _hi = create(&mut k, yielder, 9);
        let lo = create(&mut k, worker, 1);
        run(&mut k, 100);
        assert!(
            matches!(
                k.task_state(lo),
                Some(TaskState::Terminated(ExitKind::Normal))
            ),
            "low-priority worker should finish thanks to yields: {:?}",
            k.task_state(lo)
        );
    }

    #[test]
    fn deadlock_shows_in_wait_edges() {
        let mut k = kernel();
        let m0 = k.create_mutex();
        let m1 = k.create_mutex();
        let p01 = {
            let mut b = ProgramBuilder::new();
            b.push(Op::MutexLock(m0));
            b.push(Op::Yield);
            b.push(Op::MutexLock(m1));
            b.push(Op::Exit);
            k.register_program(b.build().unwrap())
        };
        let p10 = {
            let mut b = ProgramBuilder::new();
            b.push(Op::MutexLock(m1));
            b.push(Op::Yield);
            b.push(Op::MutexLock(m0));
            b.push(Op::Exit);
            k.register_program(b.build().unwrap())
        };
        create(&mut k, p01, 5);
        create(&mut k, p10, 6);
        run(&mut k, 50);
        let edges = k.wait_edges();
        assert_eq!(edges.len(), 2, "both tasks blocked: {edges:?}");
        // Each waits on a mutex held by the other: a 2-cycle.
        let holders: Vec<_> = edges.iter().filter_map(|e| e.holder).collect();
        assert_eq!(holders.len(), 2);
        assert_ne!(edges[0].waiter, edges[1].waiter);
    }

    #[test]
    fn delete_while_blocked_on_semaphore_cleans_wait_queue() {
        let mut k = kernel();
        let s = k.create_semaphore(0);
        let p = k.register_program(Program::new(vec![Op::SemWait(s), Op::Exit]).unwrap());
        let t = create(&mut k, p, 5);
        run(&mut k, 5); // t blocks on the semaphore
        assert!(matches!(
            k.task_state(t),
            Some(TaskState::Blocked(WaitReason::Semaphore(_)))
        ));
        k.dispatch(SvcRequest::Delete { task: t }, Cycles::new(10))
            .unwrap();
        assert_eq!(k.live_task_count(), 0);
        // A later post must not resurrect or wake the deleted task.
        let poster = k.register_program(Program::new(vec![Op::SemPost(s), Op::Exit]).unwrap());
        let t2 = create(&mut k, poster, 6);
        assert_eq!(t2, t, "the freed slot is reused");
        run(&mut k, 10);
        // The poster ran to completion: had the deleted task still been in
        // the wait queue, the post would have been consumed waking a
        // corpse; instead the semaphore keeps the count.
        assert!(matches!(
            k.task_state(t2),
            Some(TaskState::Terminated(ExitKind::Normal))
        ));
        assert_eq!(k.snapshot().wait_edges.len(), 0);
    }

    #[test]
    fn chanprio_reorders_mutex_wait_queue() {
        let mut k = kernel();
        let m = k.create_mutex();
        let holder = {
            let mut b = ProgramBuilder::new();
            b.push(Op::MutexLock(m));
            b.push(Op::Compute(200));
            b.push(Op::MutexUnlock(m));
            b.push(Op::Exit);
            k.register_program(b.build().unwrap())
        };
        let waiter = {
            let mut b = ProgramBuilder::new();
            b.push(Op::MutexLock(m));
            b.push(Op::WriteVar {
                var: VarId(0),
                value: 1,
            }) // mark who won
            .push(Op::MutexUnlock(m))
            .push(Op::Exit);
            k.register_program(b.build().unwrap())
        };
        let waiter2 = {
            let mut b = ProgramBuilder::new();
            b.push(Op::MutexLock(m));
            b.push(Op::WriteVar {
                var: VarId(0),
                value: 2,
            })
            .push(Op::MutexUnlock(m))
            .push(Op::Exit);
            k.register_program(b.build().unwrap())
        };
        // Low-prio holder runs first (alone), then two waiters block.
        let _h = create(&mut k, holder, 1);
        run(&mut k, 5);
        let w1 = create(&mut k, waiter, 10);
        let w2 = create(&mut k, waiter2, 20);
        run(&mut k, 10); // both block; w2 ahead (higher priority)
                         // Boost w1 above w2: the queue must reorder, so w1 wins the lock.
        k.dispatch(
            SvcRequest::ChangePriority {
                task: w1,
                priority: Priority::new(30),
            },
            Cycles::new(20),
        )
        .unwrap();
        run(&mut k, 400);
        assert!(matches!(k.task_state(w1), Some(TaskState::Terminated(_))));
        assert!(matches!(k.task_state(w2), Some(TaskState::Terminated(_))));
        assert_eq!(k.var(VarId(0)), Some(2), "w1 acquired first, w2 wrote last");
    }

    #[test]
    fn suspended_then_deleted_task_releases_mutex() {
        let mut k = kernel();
        let m = k.create_mutex();
        let p = k.register_program(
            Program::new(vec![Op::MutexLock(m), Op::Compute(1_000), Op::Exit]).unwrap(),
        );
        let t = create(&mut k, p, 5);
        run(&mut k, 5); // t holds the mutex
        k.dispatch(SvcRequest::Suspend { task: t }, Cycles::new(5))
            .unwrap();
        let p2 = k.register_program(
            Program::new(vec![Op::MutexLock(m), Op::MutexUnlock(m), Op::Exit]).unwrap(),
        );
        let t2 = create(&mut k, p2, 6);
        run(&mut k, 10);
        assert!(matches!(
            k.task_state(t2),
            Some(TaskState::Blocked(WaitReason::Mutex(_)))
        ));
        // Deleting the suspended holder hands the mutex to the waiter.
        k.dispatch(SvcRequest::Delete { task: t }, Cycles::new(20))
            .unwrap();
        run(&mut k, 20);
        assert!(matches!(
            k.task_state(t2),
            Some(TaskState::Terminated(ExitKind::Normal))
        ));
    }

    #[test]
    fn snapshot_counts_are_consistent() {
        let mut k = kernel();
        let p = exit_prog(&mut k);
        create(&mut k, p, 5);
        run(&mut k, 10);
        let s = k.snapshot();
        assert_eq!(s.ticks, 10);
        assert_eq!(s.svc_count, 1);
        assert!(s.idle_ticks > 0);
        assert_eq!(s.live_tasks(), 0);
        assert_eq!(s.tasks.len(), 1);
    }

    #[test]
    fn kernel_is_bound_to_a_core() {
        assert_eq!(kernel().core(), CoreId::Dsp);
        let k = Kernel::with_core(KernelConfig::default(), CoreId::Slave(2));
        assert_eq!(k.core(), CoreId::Slave(2));
    }

    #[test]
    #[should_panic(expected = "slave cores only")]
    fn kernel_on_the_master_core_is_rejected() {
        let _ = Kernel::with_core(KernelConfig::default(), CoreId::Master);
    }

    #[test]
    fn external_semaphore_post_wakes_a_waiter() {
        let mut k = kernel();
        let s = k.create_semaphore(0);
        let p = k.register_program(Program::new(vec![Op::SemWait(s), Op::Exit]).unwrap());
        let t = create(&mut k, p, 5);
        run(&mut k, 5);
        assert!(matches!(
            k.task_state(t),
            Some(TaskState::Blocked(WaitReason::Semaphore(_)))
        ));
        assert!(k.post_semaphore_external(s));
        assert_eq!(k.task_state(t), Some(TaskState::Ready));
        run(&mut k, 10);
        assert!(matches!(
            k.task_state(t),
            Some(TaskState::Terminated(ExitKind::Normal))
        ));
        // Posting an unknown semaphore is a rejected no-op.
        assert!(!k.post_semaphore_external(SemId(99)));
    }

    #[test]
    fn external_token_take_mirrors_counts() {
        let mut k = kernel();
        let s = k.create_semaphore(2);
        assert_eq!(k.semaphore_count(s), Some(2));
        assert!(k.take_semaphore_token(s));
        assert!(k.take_semaphore_token(s));
        assert!(!k.take_semaphore_token(s), "count exhausted");
        assert_eq!(k.semaphore_count(s), Some(0));
        assert!(k.post_semaphore_external(s));
        assert_eq!(k.semaphore_count(s), Some(1));
        assert_eq!(k.semaphore_count(SemId(9)), None);
        assert!(!k.take_semaphore_token(SemId(9)));
    }

    #[test]
    fn set_var_writes_directly() {
        let mut k = kernel();
        k.set_var(VarId(3), -7);
        assert_eq!(k.var(VarId(3)), Some(-7));
        k.set_var(VarId(60_000), 1); // unknown var: ignored
        assert_eq!(k.var(VarId(60_000)), None);
    }

    fn ops_retired_of(k: &Kernel, t: TaskId) -> u64 {
        k.snapshot()
            .tasks
            .iter()
            .find(|s| s.id == t)
            .map(|s| s.ops_retired)
            .unwrap()
    }

    #[test]
    fn quantum_expiry_rotates_between_compute_bound_tasks() {
        let mut k = kernel();
        // A self-loop retires one op per executed cycle, so ops_retired
        // counts exactly the cycles each task got.
        let p = k.register_program(Program::new(vec![Op::Jump(0)]).unwrap());
        let low = create(&mut k, p, 1);
        let high = create(&mut k, p, 9);
        k.set_quantum(Some(4));
        run(&mut k, 16);
        // Two full rotations: 4 cycles high, 4 low, 4 high, 4 low.
        let high_cycles = ops_retired_of(&k, high);
        let low_cycles = ops_retired_of(&k, low);
        assert!(
            low_cycles > 0,
            "quantum expiry must hand the starved task a slice"
        );
        assert_eq!(high_cycles + low_cycles, 16);
        assert_eq!(high_cycles, low_cycles, "4-cycle slices alternate evenly");
        assert_eq!(
            k.preemption_count(),
            3,
            "three involuntary switches in 16 cycles"
        );
    }

    #[test]
    fn without_quantum_low_priority_task_starves() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Compute(1000), Op::Exit]).unwrap());
        let low = create(&mut k, p, 1);
        create(&mut k, p, 9);
        run(&mut k, 16);
        assert_eq!(ops_retired_of(&k, low), 0);
        assert_eq!(k.preemption_count(), 0);
    }

    #[test]
    fn lone_task_renews_its_slice_in_place() {
        let mut k = kernel();
        let p = k.register_program(Program::new(vec![Op::Jump(0)]).unwrap());
        let t = create(&mut k, p, 5);
        k.set_quantum(Some(2));
        run(&mut k, 10);
        assert_eq!(ops_retired_of(&k, t), 10);
        assert_eq!(k.preemption_count(), 0, "no one to preempt for");
        assert_eq!(k.snapshot().ctx_switches, 1, "only the initial dispatch");
    }

    #[test]
    fn interrupt_runs_isr_and_preempted_task_resumes() {
        let mut k = kernel();
        let isr = k.register_program(
            Program::new(vec![
                Op::WriteVar {
                    var: VarId(0),
                    value: 99,
                },
                Op::Exit,
            ])
            .unwrap(),
        );
        let p = k.register_program(Program::new(vec![Op::Compute(100), Op::Exit]).unwrap());
        let t = create(&mut k, p, 5);
        k.set_isr_program(isr);
        run(&mut k, 3);
        let before = ops_retired_of(&k, t);
        assert!(k.raise_interrupt());
        run(&mut k, 2); // ISR: write + exit
        assert_eq!(k.var(VarId(0)), Some(99), "ISR write landed");
        assert_eq!(k.isr_runs(), 1);
        assert_eq!(k.isr_cycles(), 2);
        assert!(!k.isr_active());
        assert_eq!(
            ops_retired_of(&k, t),
            before,
            "preempted task must not retire ops while the ISR runs"
        );
        run(&mut k, 200);
        assert_eq!(
            k.task_state(t),
            Some(TaskState::Terminated(ExitKind::Normal)),
            "preempted task resumes and completes"
        );
    }

    #[test]
    fn interrupts_refused_without_a_handler() {
        let mut k = kernel();
        assert!(!k.raise_interrupt());
        assert_eq!(k.irq_pending(), 0);
    }

    #[test]
    fn irq_mask_defers_isr_until_unmask() {
        let mut k = kernel();
        let isr = k.register_program(
            Program::new(vec![
                Op::WriteVar {
                    var: VarId(0),
                    value: 1,
                },
                Op::Exit,
            ])
            .unwrap(),
        );
        // Mask, busy-spin a while, unmask, then exit.
        let p = k.register_program(
            Program::new(vec![
                Op::IrqMask,
                Op::Compute(10),
                Op::IrqUnmask,
                Op::Compute(5),
                Op::Exit,
            ])
            .unwrap(),
        );
        create(&mut k, p, 5);
        k.set_isr_program(isr);
        run(&mut k, 2); // executes IrqMask, starts Compute
        assert!(k.irq_masked());
        assert!(k.raise_interrupt());
        run(&mut k, 5);
        assert_eq!(k.var(VarId(0)), Some(0), "masked: ISR must not run yet");
        assert_eq!(k.irq_pending(), 1);
        run(&mut k, 20);
        assert_eq!(k.var(VarId(0)), Some(1), "unmask releases the queued irq");
        assert_eq!(k.irq_pending(), 0);
        assert_eq!(k.isr_runs(), 1);
    }

    #[test]
    fn pending_interrupt_counts_as_dispatchable_work() {
        let mut k = kernel();
        let isr = exit_prog(&mut k);
        assert!(!k.has_dispatchable_work(Cycles::new(5)));
        k.set_isr_program(isr);
        assert!(k.raise_interrupt());
        assert!(k.has_dispatchable_work(Cycles::new(5)));
        run(&mut k, 1); // services the (empty) ISR: Exit
        assert!(!k.has_dispatchable_work(Cycles::new(6)));
        assert_eq!(k.isr_runs(), 1);
    }

    #[test]
    fn blocking_op_in_isr_aborts_the_handler() {
        let mut k = kernel();
        let isr = k.register_program(Program::new(vec![Op::SleepFor(5), Op::Exit]).unwrap());
        k.set_isr_program(isr);
        assert!(k.raise_interrupt());
        run(&mut k, 3);
        assert!(!k.isr_active(), "blocking handler must be aborted");
        assert_eq!(k.isr_runs(), 1);
        let aborted = k
            .trace()
            .iter()
            .any(|e| e.kind == "isr" && e.detail.contains("abort"));
        assert!(aborted, "abort must be traced");
    }

    #[test]
    fn isr_sem_post_wakes_a_blocked_task() {
        let mut k = kernel();
        let s = k.create_semaphore(0);
        let isr = k.register_program(Program::new(vec![Op::SemPost(s), Op::Exit]).unwrap());
        let p = k.register_program(Program::new(vec![Op::SemWait(s), Op::Exit]).unwrap());
        let t = create(&mut k, p, 5);
        k.set_isr_program(isr);
        run(&mut k, 5);
        assert!(matches!(
            k.task_state(t),
            Some(TaskState::Blocked(WaitReason::Semaphore(_)))
        ));
        assert!(k.raise_interrupt());
        run(&mut k, 10);
        assert_eq!(
            k.task_state(t),
            Some(TaskState::Terminated(ExitKind::Normal)),
            "ISR post must wake the waiter"
        );
    }
}
