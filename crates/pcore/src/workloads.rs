//! Canonical task workloads compiled to the work-model ISA.
//!
//! The paper's first case study keeps 16 tasks alive, each quick-sorting
//! 128 two-byte integers with a 512-byte stack. [`quicksort`] lowers a
//! real quick-sort execution (on a seeded pseudo-random permutation) into
//! work-model instructions whose heap, stack and compute footprints match
//! the real algorithm: one buffer allocation of `n * elem_bytes`, one
//! `StackProbe` per recursive call reflecting true recursion depth, and
//! `Compute` cycles proportional to the partition work.

use crate::program::{Op, Program, ProgramBuilder};

/// Stack bytes consumed by the kernel entry frame of a task.
const STACK_BASE_BYTES: u32 = 48;
/// Stack bytes per quick-sort recursion frame (return address, two
/// pointers, pivot, saved registers on a C55x-like ABI).
const FRAME_BYTES: u32 = 24;

/// A tiny deterministic xorshift64* PRNG so this crate stays
/// dependency-free. Quality is irrelevant here; determinism is not.
#[derive(Debug, Clone)]
struct XorShift64 {
    state: u64,
}

impl XorShift64 {
    fn new(seed: u64) -> XorShift64 {
        XorShift64 { state: seed.max(1) }
    }

    fn next(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x << 13;
        x ^= x >> 7;
        x ^= x << 17;
        self.state = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

/// Parameters for the quick-sort workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuicksortSpec {
    /// Number of elements to sort.
    pub elements: usize,
    /// Size of each element in bytes.
    pub elem_bytes: u32,
    /// Seed for the input permutation.
    pub seed: u64,
    /// `true` = feed the sort already-sorted input, producing worst-case
    /// recursion depth (useful for stack-overflow experiments).
    pub worst_case: bool,
}

impl QuicksortSpec {
    /// The paper's case-study-1 parameters: 128 elements of 2 bytes.
    #[must_use]
    pub fn paper(seed: u64) -> QuicksortSpec {
        QuicksortSpec {
            elements: 128,
            elem_bytes: 2,
            seed,
            worst_case: false,
        }
    }
}

/// Statistics about a generated quick-sort program.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuicksortProfile {
    /// Number of partition calls (recursion events).
    pub partitions: usize,
    /// Maximum recursion depth reached.
    pub max_depth: usize,
    /// Peak modelled stack usage in bytes.
    pub peak_stack_bytes: u32,
    /// Total modelled compute cycles.
    pub compute_cycles: u64,
}

fn lomuto_events(data: &mut [u32], depth: usize, events: &mut Vec<(usize, usize)>) {
    let n = data.len();
    if n <= 1 {
        return;
    }
    events.push((depth, n));
    let pivot = data[n - 1];
    let mut i = 0;
    for j in 0..n - 1 {
        if data[j] <= pivot {
            data.swap(i, j);
            i += 1;
        }
    }
    data.swap(i, n - 1);
    let (left, rest) = data.split_at_mut(i);
    lomuto_events(left, depth + 1, events);
    lomuto_events(&mut rest[1..], depth + 1, events);
}

/// Builds the quick-sort workload program and its profile.
///
/// The returned program allocates the element buffer, performs the
/// partition sequence of a real quick-sort run on the seeded input (as
/// `StackProbe` + `Compute` pairs), frees the buffer and exits.
///
/// # Panics
///
/// Panics if `spec.elements` is zero or so large the program would exceed
/// the work-model program size limit.
#[must_use]
pub fn quicksort(spec: QuicksortSpec) -> (Program, QuicksortProfile) {
    assert!(spec.elements > 0, "cannot sort zero elements");
    let mut data: Vec<u32> = (0..spec.elements as u32).collect();
    if !spec.worst_case {
        let mut rng = XorShift64::new(spec.seed);
        for i in (1..data.len()).rev() {
            let j = rng.below((i + 1) as u64) as usize;
            data.swap(i, j);
        }
    }
    let mut events = Vec::new();
    lomuto_events(&mut data, 1, &mut events);
    debug_assert!(data.windows(2).all(|w| w[0] <= w[1]), "sort is correct");

    let mut b = ProgramBuilder::new();
    let buf_bytes = (spec.elements as u32) * spec.elem_bytes;
    b.push(Op::Alloc {
        bytes: buf_bytes,
        reg: 0,
    });
    let mut max_depth = 0usize;
    let mut compute_cycles = 0u64;
    for &(depth, len) in &events {
        max_depth = max_depth.max(depth);
        let stack = STACK_BASE_BYTES + FRAME_BYTES * depth as u32;
        // Partition work: one comparison per element plus ~len/2 swaps.
        let cost = (len + len / 2) as u32;
        compute_cycles += u64::from(cost);
        b.push(Op::StackProbe(stack));
        b.push(Op::Compute(cost));
    }
    b.push(Op::Free { reg: 0 });
    b.push(Op::Exit);
    let program = b.build().expect("generated quicksort program is valid");
    let profile = QuicksortProfile {
        partitions: events.len(),
        max_depth,
        peak_stack_bytes: STACK_BASE_BYTES + FRAME_BYTES * max_depth as u32,
        compute_cycles,
    };
    (program, profile)
}

/// A pure compute loop: busy for `cycles`, then exit.
#[must_use]
pub fn compute_loop(cycles: u32) -> Program {
    Program::new(vec![Op::Compute(cycles.max(1)), Op::Exit]).expect("compute loop program is valid")
}

/// A bounded producer/consumer pair over two counting semaphores (the
/// classic rendezvous): the producer performs `items` productions, each
/// gated on `slots`; the consumer drains them, gated on `filled`. Useful
/// as a well-synchronized control workload — unlike the dining
/// philosophers it can never deadlock, whatever the interleaving.
///
/// Returns `(producer, consumer)` programs.
///
/// # Panics
///
/// Panics if `items` is zero.
#[must_use]
pub fn producer_consumer(
    items: u16,
    slots: crate::ids::SemId,
    filled: crate::ids::SemId,
    work: u32,
) -> (Program, Program) {
    assert!(items > 0, "need at least one item");
    let producer = {
        let mut b = ProgramBuilder::new();
        b.push(Op::AddReg {
            reg: 1,
            delta: i64::from(items),
        });
        b.bind("loop");
        b.push(Op::SemWait(slots));
        b.push(Op::Compute(work.max(1))); // produce
        b.push(Op::SemPost(filled));
        b.push(Op::AddReg { reg: 1, delta: -1 });
        b.branch_if_reg_eq(1, 0, "done");
        b.jump_to("loop");
        b.bind("done");
        b.push(Op::Exit);
        b.build().expect("producer program is valid")
    };
    let consumer = {
        let mut b = ProgramBuilder::new();
        b.push(Op::AddReg {
            reg: 1,
            delta: i64::from(items),
        });
        b.bind("loop");
        b.push(Op::SemWait(filled));
        b.push(Op::Compute(work.max(1))); // consume
        b.push(Op::SemPost(slots));
        b.push(Op::AddReg { reg: 1, delta: -1 });
        b.branch_if_reg_eq(1, 0, "done");
        b.jump_to("loop");
        b.bind("done");
        b.push(Op::Exit);
        b.build().expect("consumer program is valid")
    };
    (producer, consumer)
}

/// Allocate/free churn: `rounds` iterations of allocating and freeing a
/// `bytes`-sized block with `work` compute cycles in between.
///
/// # Panics
///
/// Panics if `rounds` is zero.
#[must_use]
pub fn alloc_churn(rounds: u16, bytes: u32, work: u32) -> Program {
    assert!(rounds > 0, "alloc churn needs at least one round");
    let mut b = ProgramBuilder::new();
    b.push(Op::AddReg {
        reg: 1,
        delta: i64::from(rounds),
    });
    b.bind("loop");
    b.push(Op::Alloc { bytes, reg: 0 });
    b.push(Op::Compute(work.max(1)));
    b.push(Op::Free { reg: 0 });
    b.push(Op::AddReg { reg: 1, delta: -1 });
    b.branch_if_reg_eq(1, 0, "done");
    b.jump_to("loop");
    b.bind("done");
    b.push(Op::Exit);
    b.build().expect("alloc churn program is valid")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ids::Priority;
    use crate::kernel::{Kernel, KernelConfig, SvcReply, SvcRequest, TickOutcome};
    use crate::task::{ExitKind, TaskState};
    use ptest_soc::Cycles;

    #[test]
    fn quicksort_profile_is_plausible() {
        let (prog, profile) = quicksort(QuicksortSpec::paper(42));
        // 128 random elements: depth well below worst case, partitions < 2n.
        assert!(profile.partitions >= 64 && profile.partitions < 256);
        assert!(profile.max_depth >= 7, "at least log2(128) deep");
        assert!(profile.max_depth < 40, "random input stays shallow");
        assert!(
            profile.peak_stack_bytes <= 512,
            "fits the paper's 512 B stacks"
        );
        assert!(profile.compute_cycles > 128);
        assert!(prog.len() > 10);
    }

    #[test]
    fn quicksort_is_deterministic_per_seed() {
        let (a, pa) = quicksort(QuicksortSpec::paper(7));
        let (b, pb) = quicksort(QuicksortSpec::paper(7));
        let (c, pc) = quicksort(QuicksortSpec::paper(8));
        assert_eq!(a, b);
        assert_eq!(pa, pb);
        assert!(a != c || pa != pc, "different seeds should differ");
    }

    #[test]
    fn worst_case_depth_exceeds_paper_stack() {
        let (_, profile) = quicksort(QuicksortSpec {
            elements: 128,
            elem_bytes: 2,
            seed: 0,
            worst_case: true,
        });
        assert_eq!(profile.max_depth, 127, "sorted input degenerates");
        assert!(profile.peak_stack_bytes > 512);
    }

    #[test]
    fn quicksort_runs_to_completion_on_kernel() {
        let mut k = Kernel::new(KernelConfig::default());
        let (prog, profile) = quicksort(QuicksortSpec::paper(1));
        let pid = k.register_program(prog);
        let SvcReply::Created(t) = k
            .dispatch(
                SvcRequest::Create {
                    program: pid,
                    priority: Priority::new(5),
                    stack_bytes: None,
                },
                Cycles::ZERO,
            )
            .unwrap()
        else {
            panic!("create failed")
        };
        let mut i = 0u64;
        loop {
            i += 1;
            match k.tick(Cycles::new(i)) {
                TickOutcome::Idle => break,
                TickOutcome::Ran(_) | TickOutcome::Isr => assert!(i < 1_000_000, "runaway"),
                TickOutcome::Panicked => panic!("kernel panicked"),
            }
        }
        assert_eq!(
            k.task_state(t),
            Some(TaskState::Terminated(ExitKind::Normal))
        );
        assert!(
            i > profile.compute_cycles,
            "must have consumed at least the compute cycles"
        );
        // The sort buffer was freed explicitly; only the dead task's TCB and
        // stack remain, as garbage awaiting the next GC pass.
        assert!(k.heap_stats().used <= 64 + 512);
    }

    #[test]
    fn worst_case_quicksort_overflows_paper_stack() {
        let mut k = Kernel::new(KernelConfig::default());
        let (prog, _) = quicksort(QuicksortSpec {
            elements: 128,
            elem_bytes: 2,
            seed: 0,
            worst_case: true,
        });
        let pid = k.register_program(prog);
        let SvcReply::Created(t) = k
            .dispatch(
                SvcRequest::Create {
                    program: pid,
                    priority: Priority::new(5),
                    stack_bytes: Some(512),
                },
                Cycles::ZERO,
            )
            .unwrap()
        else {
            panic!("create failed")
        };
        for i in 1..200_000u64 {
            if k.tick(Cycles::new(i)) == TickOutcome::Idle {
                break;
            }
        }
        assert!(
            matches!(
                k.task_state(t),
                Some(TaskState::Terminated(ExitKind::Faulted(_)))
            ),
            "worst-case recursion must blow the 512 B stack: {:?}",
            k.task_state(t)
        );
    }

    #[test]
    fn compute_loop_exits() {
        let p = compute_loop(10);
        assert_eq!(p.len(), 2);
    }

    #[test]
    fn producer_consumer_completes_for_any_priority_order() {
        // Whoever runs first, the semaphore rendezvous always completes —
        // the deadlock-free control workload.
        for (pp, cp) in [(5u8, 9u8), (9, 5)] {
            let mut k = Kernel::new(KernelConfig::default());
            let slots = k.create_semaphore(4);
            let filled = k.create_semaphore(0);
            let (prod, cons) = producer_consumer(10, slots, filled, 3);
            let prod = k.register_program(prod);
            let cons = k.register_program(cons);
            let mk = |k: &mut Kernel, prog, prio| {
                let SvcReply::Created(t) = k
                    .dispatch(
                        SvcRequest::Create {
                            program: prog,
                            priority: Priority::new(prio),
                            stack_bytes: None,
                        },
                        Cycles::ZERO,
                    )
                    .unwrap()
                else {
                    panic!("create failed")
                };
                t
            };
            let p = mk(&mut k, prod, pp);
            let c = mk(&mut k, cons, cp);
            for i in 1..100_000u64 {
                if k.tick(Cycles::new(i)) == TickOutcome::Idle {
                    break;
                }
            }
            assert!(
                matches!(
                    k.task_state(p),
                    Some(TaskState::Terminated(ExitKind::Normal))
                ),
                "producer (prio {pp}) must finish"
            );
            assert!(
                matches!(
                    k.task_state(c),
                    Some(TaskState::Terminated(ExitKind::Normal))
                ),
                "consumer (prio {cp}) must finish"
            );
        }
    }

    #[test]
    fn alloc_churn_balances_heap() {
        let mut k = Kernel::new(KernelConfig::default());
        let pid = k.register_program(alloc_churn(5, 256, 2));
        k.dispatch(
            SvcRequest::Create {
                program: pid,
                priority: Priority::new(3),
                stack_bytes: None,
            },
            Cycles::ZERO,
        )
        .unwrap();
        for i in 1..10_000u64 {
            if k.tick(Cycles::new(i)) == TickOutcome::Idle {
                break;
            }
        }
        let stats = k.heap_stats();
        // All task blocks freed or garbage (TCB+stack awaiting GC).
        assert!(stats.used <= 64 + 512);
    }
}
