//! Strongly-typed identifiers used throughout the kernel.

use std::fmt;

/// A task slot index inside the kernel's fixed task table.
///
/// pCore supports up to 16 concurrent tasks (see
/// [`KernelConfig::MAX_TASKS_PCORE`]); a `TaskId` names one of those slots.
///
/// [`KernelConfig::MAX_TASKS_PCORE`]: crate::KernelConfig::MAX_TASKS_PCORE
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TaskId(u8);

impl TaskId {
    /// Creates a task id from a raw slot index.
    #[must_use]
    pub fn new(slot: u8) -> TaskId {
        TaskId(slot)
    }

    /// The raw slot index.
    #[must_use]
    pub fn index(self) -> usize {
        usize::from(self.0)
    }
}

impl fmt::Display for TaskId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u8> for TaskId {
    fn from(slot: u8) -> TaskId {
        TaskId(slot)
    }
}

/// A scheduling priority. **Higher numeric value = higher priority.**
///
/// pCore forks each task with a *unique* priority; the kernel enforces
/// uniqueness among live tasks and rejects duplicates with
/// [`SvcError::PriorityInUse`].
///
/// [`SvcError::PriorityInUse`]: crate::SvcError::PriorityInUse
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Priority(u8);

impl Priority {
    /// The lowest usable priority.
    pub const MIN: Priority = Priority(1);
    /// The highest usable priority.
    pub const MAX: Priority = Priority(255);

    /// Creates a priority from a raw level.
    ///
    /// # Panics
    ///
    /// Panics if `level` is zero — level 0 is reserved for the idle loop.
    #[must_use]
    pub fn new(level: u8) -> Priority {
        assert!(level > 0, "priority 0 is reserved for the idle loop");
        Priority(level)
    }

    /// The raw priority level.
    #[must_use]
    pub fn level(self) -> u8 {
        self.0
    }
}

impl fmt::Display for Priority {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0)
    }
}

/// Index of a kernel counting semaphore.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SemId(pub u16);

impl fmt::Display for SemId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sem{}", self.0)
    }
}

/// Index of a kernel mutex.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct MutexId(pub u16);

impl fmt::Display for MutexId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "mtx{}", self.0)
    }
}

/// Index of a shared variable visible to every task (and, via the bridge's
/// debug peek/poke commands, to the master core).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub u16);

impl fmt::Display for VarId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "v{}", self.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn task_id_roundtrip() {
        let t = TaskId::new(5);
        assert_eq!(t.index(), 5);
        assert_eq!(t.to_string(), "T5");
        assert_eq!(TaskId::from(5u8), t);
    }

    #[test]
    fn priority_ordering_is_numeric() {
        assert!(Priority::new(9) > Priority::new(3));
        assert!(Priority::MIN < Priority::MAX);
    }

    #[test]
    #[should_panic(expected = "reserved")]
    fn priority_zero_panics() {
        let _ = Priority::new(0);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Priority::new(7).to_string(), "p7");
        assert_eq!(SemId(1).to_string(), "sem1");
        assert_eq!(MutexId(2).to_string(), "mtx2");
        assert_eq!(VarId(3).to_string(), "v3");
    }
}
