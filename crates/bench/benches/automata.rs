//! Criterion benches of the automata pipeline: regex → NFA → DFA → PFA.

use criterion::{criterion_group, criterion_main, Criterion};
use ptest::automata::{learn_assignment, GenerateOptions};
use ptest::{Dfa, Pfa, ProbabilityAssignment, Regex};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn paper_pd() -> ProbabilityAssignment {
    ProbabilityAssignment::weights([
        ("TC", 1.0),
        ("TCH", 0.6),
        ("TS", 0.2),
        ("TD", 0.1),
        ("TY", 0.1),
        ("TR", 1.0),
    ])
}

/// A deliberately larger regex to show construction scaling.
const BIG_RE: &str = "I (A (B | C)* D | E (F G)* H | (A C)* (B | D | F)* E)* (X$ | Y$ | Z$)";

fn bench_construction(c: &mut Criterion) {
    let mut group = c.benchmark_group("automata_construction");
    group.bench_function("parse_eq2", |b| {
        b.iter(|| Regex::parse(black_box("TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)")).unwrap())
    });
    group.bench_function("parse_big", |b| {
        b.iter(|| Regex::parse(black_box(BIG_RE)).unwrap())
    });
    let eq2 = Regex::pcore_task_lifecycle();
    let big = Regex::parse(BIG_RE).unwrap();
    group.bench_function("dfa_eq2", |b| {
        b.iter(|| Dfa::from_regex(black_box(&eq2)).minimize())
    });
    group.bench_function("dfa_big", |b| {
        b.iter(|| Dfa::from_regex(black_box(&big)).minimize())
    });
    let dfa = Dfa::from_regex(&eq2).minimize();
    let pd = paper_pd();
    group.bench_function("pfa_attach_eq2", |b| {
        b.iter(|| Pfa::from_dfa(black_box(&dfa), eq2.alphabet().clone(), &pd).unwrap())
    });
    group.bench_function("full_pipeline_eq2", |b| {
        b.iter(|| {
            let re = Regex::parse("TC ((TCH)* | TS TR (TCH)*)* (TD$ | TY$)").unwrap();
            let dfa = Dfa::from_regex(&re).minimize();
            Pfa::from_dfa(&dfa, re.alphabet().clone(), &paper_pd()).unwrap()
        })
    });
    group.finish();
}

fn bench_training(c: &mut Criterion) {
    let re = Regex::pcore_task_lifecycle();
    let dfa = Dfa::from_regex(&re).minimize();
    let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &paper_pd()).unwrap();
    let mut rng = StdRng::seed_from_u64(5);
    let traces: Vec<Vec<_>> = (0..1_000)
        .map(|_| pfa.generate(&mut rng, GenerateOptions::sized(32)))
        .collect();
    c.bench_function("learn_pd_from_1000_traces", |b| {
        b.iter(|| {
            learn_assignment(black_box(&dfa), re.alphabet(), black_box(&traces), 0.5).unwrap()
        })
    });
}

criterion_group!(benches, bench_construction, bench_training);
criterion_main!(benches);
