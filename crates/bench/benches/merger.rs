//! Criterion benches of the pattern merger's policies.

use criterion::{criterion_group, criterion_main, Criterion};
use ptest::automata::GenerateOptions;
use ptest::{MergeOp, PatternGenerator, PatternMerger, TestPattern};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn patterns(n: usize, s: usize) -> Vec<TestPattern> {
    let generator = PatternGenerator::pcore_paper().unwrap();
    let mut rng = StdRng::seed_from_u64(1);
    generator.generate_batch(&mut rng, n, GenerateOptions::cyclic(s))
}

fn bench_merge(c: &mut Criterion) {
    let ps = patterns(16, 64);
    let merger = PatternMerger::new();
    let mut group = c.benchmark_group("merge_16x64");
    for (name, op) in [
        ("sequential", MergeOp::Sequential),
        ("round_robin_1", MergeOp::cyclic()),
        ("round_robin_4", MergeOp::RoundRobin { chunk: 4 }),
        ("random", MergeOp::RandomInterleave { seed: 9 }),
        ("staggered_8", MergeOp::Staggered { overlap: 8 }),
    ] {
        group.bench_function(name, |b| b.iter(|| merger.merge(black_box(&ps), op)));
    }
    group.finish();

    // Enumeration cost on a small space (C(9;3,3,3) = 1680).
    let small = patterns(3, 3);
    c.bench_function("enumerate_all_1680", |b| {
        b.iter(|| merger.enumerate_all(black_box(&small), 2_000))
    });
}

criterion_group!(benches, bench_merge);
criterion_main!(benches);
