//! Criterion benches of the simulated platform: kernel ticks, bridge
//! roundtrips, full system steps.

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ptest::pcore::{Kernel, KernelConfig, Op, Priority, Program, SvcRequest};
use ptest::{Cycles, DualCoreSystem, SystemConfig};
use std::hint::black_box;

fn kernel_with_tasks(n: u8, ops: Vec<Op>) -> Kernel {
    let mut k = Kernel::new(KernelConfig::default());
    let prog = k.register_program(Program::new(ops).unwrap());
    for i in 0..n {
        k.dispatch(
            SvcRequest::Create {
                program: prog,
                priority: Priority::new(i + 1),
                stack_bytes: None,
            },
            Cycles::ZERO,
        )
        .unwrap();
    }
    k
}

fn bench_kernel(c: &mut Criterion) {
    let mut group = c.benchmark_group("kernel_tick");
    group.throughput(Throughput::Elements(1));
    group.bench_function("idle", |b| {
        let mut k = Kernel::new(KernelConfig::default());
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(k.tick(Cycles::new(t)))
        })
    });
    group.bench_function("compute_bound_1_task", |b| {
        let mut k = kernel_with_tasks(1, vec![Op::Compute(1_000_000_000), Op::Exit]);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(k.tick(Cycles::new(t)))
        })
    });
    group.bench_function("yield_storm_8_tasks", |b| {
        let mut k = kernel_with_tasks(8, vec![Op::Yield, Op::Jump(0)]);
        let mut t = 0u64;
        b.iter(|| {
            t += 1;
            black_box(k.tick(Cycles::new(t)))
        })
    });
    group.finish();
}

fn bench_system(c: &mut Criterion) {
    let mut group = c.benchmark_group("system");
    group.throughput(Throughput::Elements(1));
    group.bench_function("step_idle", |b| {
        let mut sys = DualCoreSystem::new(SystemConfig::default());
        b.iter(|| sys.step())
    });
    group.bench_function("bridge_roundtrip", |b| {
        let mut sys = DualCoreSystem::new(SystemConfig::default());
        b.iter(|| {
            sys.issue(SvcRequest::PeekVar {
                var: ptest::pcore::VarId(0),
            })
            .unwrap();
            loop {
                sys.step();
                if !sys.take_responses().is_empty() {
                    break;
                }
            }
        })
    });
    group.bench_function("snapshot_16_tasks", |b| {
        let mut sys = DualCoreSystem::new(SystemConfig::default());
        let prog = sys
            .kernel_mut()
            .register_program(Program::new(vec![Op::Compute(1_000_000_000), Op::Exit]).unwrap());
        for i in 0..16 {
            sys.kernel_mut()
                .dispatch(
                    SvcRequest::Create {
                        program: prog,
                        priority: Priority::new(i + 1),
                        stack_bytes: None,
                    },
                    Cycles::ZERO,
                )
                .unwrap();
        }
        b.iter(|| black_box(sys.snapshot()))
    });
    group.finish();
}

criterion_group!(benches, bench_kernel, bench_system);
criterion_main!(benches);
