//! Criterion benches of the full adaptive testing procedure
//! (Algorithm 1 end to end on the simulated platform).

use criterion::{criterion_group, criterion_main, Criterion};
use ptest::pcore::{Op, Program};
use ptest::{AdaptiveTest, AdaptiveTestConfig, MergeOp};
use std::hint::black_box;

fn bench_adaptive(c: &mut Criterion) {
    let mut group = c.benchmark_group("adaptive_test");
    group.sample_size(10);
    group.bench_function("n4_s8_healthy", |b| {
        b.iter(|| {
            let cfg = AdaptiveTestConfig {
                n: 4,
                s: 8,
                seed: 1,
                ..AdaptiveTestConfig::default()
            };
            let report = AdaptiveTest::run(black_box(cfg), |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
            })
            .unwrap();
            black_box(report.commands_issued)
        })
    });
    group.bench_function("n16_s16_cyclic_healthy", |b| {
        b.iter(|| {
            let cfg = AdaptiveTestConfig {
                n: 16,
                s: 16,
                seed: 1,
                cyclic_generation: true,
                op: MergeOp::RoundRobin { chunk: 1 },
                ..AdaptiveTestConfig::default()
            };
            let report = AdaptiveTest::run(black_box(cfg), |sys| {
                vec![sys
                    .kernel_mut()
                    .register_program(Program::new(vec![Op::Compute(20), Op::Exit]).unwrap())]
            })
            .unwrap();
            black_box(report.commands_issued)
        })
    });
    group.finish();
}

criterion_group!(benches, bench_adaptive);
criterion_main!(benches);
