//! Criterion benches of the campaign engine: trials/sec on the stress
//! scenario at 1/2/4/8 worker threads — the repo's first perf-trajectory
//! point for the parallel layer. The aggregate result is identical at
//! every worker count (the determinism invariant); only wall-clock
//! should move.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ptest::campaign::{Campaign, CampaignConfig, LearningConfig};
use ptest::faults::stress::StressScenario;
use std::hint::black_box;

const TRIALS: usize = 8;

fn bench_campaign_workers(c: &mut Criterion) {
    let scenario = StressScenario::light();
    let mut group = c.benchmark_group("campaign_stress_trials");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRIALS as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = Campaign::run(
                        &CampaignConfig {
                            trials_per_round: TRIALS,
                            rounds: 1,
                            workers,
                            master_seed: 1,
                            learning: LearningConfig {
                                enabled: false,
                                ..LearningConfig::default()
                            },
                        },
                        black_box(&scenario),
                    )
                    .unwrap();
                    black_box(report.total_trials())
                })
            },
        );
    }
    group.finish();
}

fn bench_campaign_learning(c: &mut Criterion) {
    let scenario = StressScenario::light();
    let mut group = c.benchmark_group("campaign_learning");
    group.sample_size(10);
    group.bench_function("2_rounds_4_workers", |b| {
        b.iter(|| {
            let report = Campaign::run(
                &CampaignConfig {
                    trials_per_round: 4,
                    rounds: 2,
                    workers: 4,
                    master_seed: 1,
                    learning: LearningConfig::default(),
                },
                black_box(&scenario),
            )
            .unwrap();
            black_box(report.total_bugs())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_campaign_workers, bench_campaign_learning);
criterion_main!(benches);
