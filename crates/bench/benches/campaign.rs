//! Criterion benches of the campaign engine: trials/sec on the stress
//! scenario at 1/2/4/8 worker threads — the repo's first perf-trajectory
//! point for the parallel layer. The aggregate result is identical at
//! every worker count (the determinism invariant); only wall-clock
//! should move.
//!
//! Also hosts the pattern-generation microbench feeding the campaigns:
//! symbols/sec of the compiled (alias-table, zero-alloc) sampler against
//! the retained cumulative-scan reference, at pattern sizes 16/256/4096.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ptest::automata::GenerateOptions;
use ptest::campaign::{Campaign, CampaignConfig, LearningConfig};
use ptest::faults::stress::StressScenario;
use ptest::Sym;
use ptest_bench::perf::fan16_generator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

const TRIALS: usize = 8;

fn bench_campaign_workers(c: &mut Criterion) {
    let scenario = StressScenario::light();
    let mut group = c.benchmark_group("campaign_stress_trials");
    group.sample_size(10);
    group.throughput(Throughput::Elements(TRIALS as u64));
    for workers in [1usize, 2, 4, 8] {
        group.bench_with_input(
            BenchmarkId::from_parameter(workers),
            &workers,
            |b, &workers| {
                b.iter(|| {
                    let report = Campaign::run(
                        &CampaignConfig {
                            trials_per_round: TRIALS,
                            rounds: 1,
                            workers,
                            master_seed: 1,
                            learning: LearningConfig {
                                enabled: false,
                                ..LearningConfig::default()
                            },
                            ..CampaignConfig::default()
                        },
                        black_box(&scenario),
                    )
                    .unwrap();
                    black_box(report.total_trials())
                })
            },
        );
    }
    group.finish();
}

fn bench_campaign_learning(c: &mut Criterion) {
    let scenario = StressScenario::light();
    let mut group = c.benchmark_group("campaign_learning");
    group.sample_size(10);
    group.bench_function("2_rounds_4_workers", |b| {
        b.iter(|| {
            let report = Campaign::run(
                &CampaignConfig {
                    trials_per_round: 4,
                    rounds: 2,
                    workers: 4,
                    master_seed: 1,
                    learning: LearningConfig::default(),
                    ..CampaignConfig::default()
                },
                black_box(&scenario),
            )
            .unwrap();
            black_box(report.total_bugs())
        })
    });
    group.finish();
}

fn bench_pattern_generation(c: &mut Criterion) {
    let generator = fan16_generator();
    let mut group = c.benchmark_group("pattern_generation_fan16");
    for size in [16usize, 256, 4096] {
        group.throughput(Throughput::Elements(size as u64));
        group.bench_with_input(BenchmarkId::new("alias", size), &size, |b, &size| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut buf: Vec<Sym> = Vec::new();
            b.iter(|| {
                generator.generate_into(
                    black_box(&mut rng),
                    GenerateOptions::cyclic(size),
                    &mut buf,
                );
                black_box(buf.len())
            })
        });
        group.bench_with_input(BenchmarkId::new("reference", size), &size, |b, &size| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| {
                black_box(
                    generator
                        .pfa()
                        .generate_reference(black_box(&mut rng), GenerateOptions::cyclic(size)),
                )
                .len()
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_campaign_workers,
    bench_campaign_learning,
    bench_pattern_generation
);
criterion_main!(benches);
