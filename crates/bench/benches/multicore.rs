//! Criterion benches of the N-slave platform: `MultiCoreSystem::step`
//! throughput (simulated cycles per second) at 1, 2 and 4 slaves, with
//! every slave running a compute-bound task, and the overhead of the
//! cross-core coupling paths (semaphore links, shared-variable
//! mirroring).

use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use ptest::pcore::{Op, Priority, Program, SvcRequest, VarId};
use ptest::{MultiCoreSystem, SystemConfig};
use std::hint::black_box;

/// A system with one spinning compute task per slave, past its start-up
/// transient (commands delivered, tasks running).
fn busy_system(slaves: usize) -> MultiCoreSystem {
    let mut sys = MultiCoreSystem::new(SystemConfig::with_slaves(slaves));
    for slave in 0..slaves {
        let prog = sys
            .kernel_of_mut(slave)
            .register_program(Program::new(vec![Op::Compute(1_000_000_000), Op::Exit]).unwrap());
        sys.issue_to(
            slave,
            SvcRequest::Create {
                program: prog,
                priority: Priority::new(5),
                stack_bytes: None,
            },
        )
        .unwrap();
    }
    sys.run(100);
    sys.take_responses();
    sys
}

fn bench_step_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicore_step");
    group.throughput(Throughput::Elements(1));
    for slaves in [1usize, 2, 4] {
        group.bench_function(format!("busy_{slaves}_slaves"), |b| {
            let mut sys = busy_system(slaves);
            b.iter(|| {
                sys.step();
                black_box(sys.now())
            })
        });
    }
    group.finish();
}

fn bench_coupling_overhead(c: &mut Criterion) {
    let mut group = c.benchmark_group("multicore_coupling");
    group.throughput(Throughput::Elements(1));
    group.bench_function("step_with_idle_sem_link", |b| {
        let mut sys = busy_system(2);
        let out = sys.kernel_of_mut(0).create_semaphore(0);
        let inb = sys.kernel_of_mut(1).create_semaphore(0);
        sys.link_semaphores(0, out, 1, inb).unwrap();
        b.iter(|| {
            sys.step();
            black_box(sys.now())
        })
    });
    group.bench_function("step_with_shared_var", |b| {
        let mut sys = busy_system(2);
        sys.share_var(VarId(6), 0x3_0000).unwrap();
        b.iter(|| {
            sys.step();
            black_box(sys.now())
        })
    });
    group.finish();
}

criterion_group!(benches, bench_step_scaling, bench_coupling_overhead);
criterion_main!(benches);
