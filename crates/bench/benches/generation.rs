//! Criterion benches of test-pattern generation (Algorithm 2).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use ptest::automata::GenerateOptions;
use ptest::PatternGenerator;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn bench_generate(c: &mut Criterion) {
    let generator = PatternGenerator::pcore_paper().unwrap();
    let mut group = c.benchmark_group("pattern_generation");
    for s in [8usize, 64, 512] {
        group.throughput(Throughput::Elements(s as u64));
        group.bench_with_input(BenchmarkId::new("cyclic", s), &s, |b, &s| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| generator.generate(black_box(&mut rng), GenerateOptions::cyclic(s)))
        });
        group.bench_with_input(BenchmarkId::new("sized", s), &s, |b, &s| {
            let mut rng = StdRng::seed_from_u64(1);
            b.iter(|| generator.generate(black_box(&mut rng), GenerateOptions::sized(s)))
        });
    }
    group.finish();

    c.bench_function("generate_batch_16x32", |b| {
        let mut rng = StdRng::seed_from_u64(2);
        b.iter(|| generator.generate_batch(black_box(&mut rng), 16, GenerateOptions::cyclic(32)))
    });

    c.bench_function("pattern_probability_len64", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        let p = generator.generate(&mut rng, GenerateOptions::cyclic(64));
        b.iter(|| generator.pattern_probability(black_box(&p)))
    });
}

criterion_group!(benches, bench_generate);
criterion_main!(benches);
