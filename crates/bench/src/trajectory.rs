//! The committed perf trajectory: `BENCH_trajectory.json` at the repo
//! root maps each suite name to its measurement history, one point per
//! archived perf run.
//!
//! Where `BENCH_campaign.json` is a snapshot (overwritten by every run)
//! and `tests/fixtures/bench_baseline.json` is the gate anchor
//! (refreshed deliberately), the trajectory is append-only: the `perf`
//! binary adds one `{rev, date, trials_per_sec, patterns_per_sec}`
//! point per suite on every standard run, so throughput history is
//! reviewable in-repo rather than buried in CI artifacts. Quick runs
//! never append — their shrunken workloads would pollute the history.

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use crate::perf::BenchReport;

/// One archived measurement of one suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TrajectoryPoint {
    /// Abbreviated git revision the run measured (`unknown` when the
    /// binary ran outside a git checkout).
    pub rev: String,
    /// Civil date of the run, `YYYY-MM-DD` (UTC).
    pub date: String,
    /// Completed trials per wall-clock second at that revision.
    pub trials_per_sec: f64,
    /// Generated patterns per wall-clock second at that revision.
    pub patterns_per_sec: f64,
}

/// Suite name → measurement history, oldest first. A `BTreeMap` keeps
/// the serialized suite order stable across runs, so appends produce
/// minimal diffs.
pub type Trajectory = BTreeMap<String, Vec<TrajectoryPoint>>;

/// Appends one point per suite of `report` to `trajectory`.
pub fn append_run(trajectory: &mut Trajectory, report: &BenchReport, rev: &str, date: &str) {
    for suite in &report.suites {
        trajectory
            .entry(suite.suite.clone())
            .or_default()
            .push(TrajectoryPoint {
                rev: rev.to_owned(),
                date: date.to_owned(),
                trials_per_sec: suite.trials_per_sec,
                patterns_per_sec: suite.patterns_per_sec,
            });
    }
}

/// Serializes a trajectory as pretty JSON.
///
/// # Errors
///
/// Propagates `serde_json` errors (practically unreachable).
pub fn to_json(trajectory: &Trajectory) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(trajectory)
}

/// Parses a trajectory back from JSON.
///
/// # Errors
///
/// `serde_json` errors on malformed input.
pub fn from_json(json: &str) -> Result<Trajectory, serde_json::Error> {
    serde_json::from_str(json)
}

/// Converts seconds since the Unix epoch to a civil `YYYY-MM-DD` date
/// (UTC), via the classical days-to-civil algorithm over the 400-year
/// Gregorian era — no date dependency needed for one stamp per run.
#[must_use]
pub fn civil_date(secs_since_epoch: u64) -> String {
    let days = secs_since_epoch / 86_400;
    // Shift so the era starts 0000-03-01; leap days then fall on the
    // last day of each era year.
    let days = days + 719_468;
    let era = days / 146_097;
    let doe = days % 146_097;
    let yoe = (doe - doe / 1_460 + doe / 36_524 - doe / 146_096) / 365;
    let year = yoe + era * 400;
    let doy = doe - (365 * yoe + yoe / 4 - yoe / 100);
    let mp = (5 * doy + 2) / 153;
    let day = doy - (153 * mp + 2) / 5 + 1;
    let month = if mp < 10 { mp + 3 } else { mp - 9 };
    let year = if month <= 2 { year + 1 } else { year };
    format!("{year:04}-{month:02}-{day:02}")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::perf::{BenchEntry, BenchReport, SCHEMA};

    fn report() -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_owned(),
            suites: vec![
                BenchEntry {
                    suite: "pipeline_w2".to_owned(),
                    trials_per_sec: 12.0,
                    patterns_per_sec: 36.0,
                    steps_per_sec: 1e6,
                    wall_ms: 100.0,
                    seed: 2009,
                },
                BenchEntry {
                    suite: "gen_alias_pcore_s256".to_owned(),
                    trials_per_sec: 0.0,
                    patterns_per_sec: 5e5,
                    steps_per_sec: 1e8,
                    wall_ms: 40.0,
                    seed: 1,
                },
            ],
            scaling: None,
        }
    }

    #[test]
    fn appends_accumulate_per_suite_and_roundtrip() {
        let mut traj = Trajectory::new();
        append_run(&mut traj, &report(), "abc1234", "2026-08-08");
        append_run(&mut traj, &report(), "def5678", "2026-08-09");
        assert_eq!(traj.len(), 2);
        let history = &traj["pipeline_w2"];
        assert_eq!(history.len(), 2);
        assert_eq!(history[0].rev, "abc1234");
        assert_eq!(history[1].date, "2026-08-09");
        assert!((history[1].trials_per_sec - 12.0).abs() < 1e-9);
        let json = to_json(&traj).unwrap();
        assert_eq!(from_json(&json).unwrap(), traj);
        // BTreeMap keys serialize sorted: generation before pipeline.
        assert!(json.find("gen_alias").unwrap() < json.find("pipeline_w2").unwrap());
    }

    #[test]
    fn civil_dates_convert_correctly() {
        assert_eq!(civil_date(0), "1970-01-01");
        assert_eq!(civil_date(86_399), "1970-01-01");
        assert_eq!(civil_date(86_400), "1970-01-02");
        // 2000-02-29 00:00:00 UTC — a century leap day.
        assert_eq!(civil_date(951_782_400), "2000-02-29");
        // 2026-08-08 12:00:00 UTC.
        assert_eq!(civil_date(1_786_190_400), "2026-08-08");
    }
}
