//! Shared builders for the `exp_*` experiment binaries.
//!
//! Every experiment used to hand-roll the same worker programs, GC-fault
//! configurations, option formatting and seed loops; this library holds
//! the one copy. The binaries are thin: build a scenario, hand it to the
//! campaign engine (parallel seeds, per-round aggregation), print the
//! table.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod perf;
pub mod trajectory;

use ptest::campaign::RoundReport;
use ptest::pcore::{GcFaultMode, Op, Program};
use ptest::{
    AdaptiveTestConfig, BugKind, Campaign, CampaignConfig, CampaignReport, DualCoreSystem,
    FnScenario, LearningConfig, ProgramId, Scenario,
};

/// The machine-summary classes of the crash family (case study 1's
/// outcome): the slave died or stopped answering.
pub const CRASH_CLASSES: &[&str] = &["slave_crash", "command_timeout"];

/// Per-class detection metrics of one campaign round: how many trials
/// found a bug of one of `classes`, and the mean commands-to-first-bug
/// over exactly those trials. The round's built-in aggregates count
/// *any* bug class; experiments that claim a specific class (deadlock,
/// crash) must filter with this instead.
#[must_use]
pub fn class_detection(round: &RoundReport, classes: &[&str]) -> (usize, Option<f64>) {
    let mut hits = 0usize;
    let mut commands = 0u64;
    for trial in &round.trials {
        if trial
            .summary
            .bugs
            .iter()
            .any(|b| classes.contains(&b.class.as_str()))
        {
            hits += 1;
            // commands_to_first_bug is Some whenever a trial has bugs.
            commands += trial.commands_to_first_bug.unwrap_or(0);
        }
    }
    let mean = (hits > 0).then(|| commands as f64 / hits as f64);
    (hits, mean)
}

/// Whether a bug kind is in the crash class of case study 1 (the slave
/// died or stopped answering).
#[must_use]
pub fn crash_kind(k: &BugKind) -> bool {
    matches!(
        k,
        BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
    )
}

/// Renders an optional count, `—` when absent.
#[must_use]
pub fn fmt_count(value: Option<u64>) -> String {
    value.map_or("—".to_owned(), |v| v.to_string())
}

/// Renders an optional mean with one decimal, `—` when absent.
#[must_use]
pub fn fmt_mean(value: Option<f64>) -> String {
    value.map_or("—".to_owned(), |v| format!("{v:.1}"))
}

/// Registers one compute-and-exit worker program — the standard healthy
/// slave workload of the experiments.
pub fn register_worker(sys: &mut DualCoreSystem, work: u32) -> Vec<ProgramId> {
    vec![sys
        .kernel_mut()
        .register_program(Program::new(vec![Op::Compute(work), Op::Exit]).expect("valid"))]
}

/// A named scenario whose slave runs one compute-and-exit worker under
/// the given configuration.
pub fn worker_scenario(
    name: &str,
    work: u32,
    config: AdaptiveTestConfig,
) -> FnScenario<impl Fn(&mut DualCoreSystem) -> Vec<ProgramId> + Send + Sync> {
    FnScenario::new(name, config, move |sys| register_worker(sys, work))
}

/// Registers one sleeper-dominated worker program: `naps` short compute
/// bursts each followed by a `sleep`-cycle nap. Most of the program's
/// lifetime is blocked on wake deadlines, so the platform spends nearly
/// every cycle idle — the workload the event-driven trial loop's
/// idle-cycle fast-forward targets.
pub fn register_sleeper(sys: &mut DualCoreSystem, naps: u32, sleep: u32) -> Vec<ProgramId> {
    let mut ops = Vec::with_capacity(naps as usize * 2 + 1);
    for _ in 0..naps {
        ops.push(Op::Compute(5));
        ops.push(Op::SleepFor(sleep));
    }
    ops.push(Op::Exit);
    vec![sys
        .kernel_mut()
        .register_program(Program::new(ops).expect("valid"))]
}

/// A named scenario whose slave runs one sleeper-dominated worker under
/// the given configuration (see [`register_sleeper`]).
pub fn sleeper_scenario(
    name: &str,
    naps: u32,
    sleep: u32,
    config: AdaptiveTestConfig,
) -> FnScenario<impl Fn(&mut DualCoreSystem) -> Vec<ProgramId> + Send + Sync> {
    FnScenario::new(name, config, move |sys| register_sleeper(sys, naps, sleep))
}

/// The GC-leak adaptive configuration shared by the crash-detection
/// experiments: cyclic churn over a small heap with a leaky collector.
#[must_use]
pub fn gc_leak_config(heap_bytes: u32, leak_every: u32) -> AdaptiveTestConfig {
    let mut cfg = AdaptiveTestConfig {
        n: 4,
        s: 64,
        cyclic_generation: true,
        max_cycles: 30_000_000,
        ..AdaptiveTestConfig::default()
    };
    cfg.system.kernel.heap_bytes = heap_bytes;
    cfg.system.kernel.gc_fault = GcFaultMode::LeakDeadBlocks { leak_every };
    cfg
}

/// A campaign configuration for experiment sweeps: fixed distribution
/// (learning off) so each campaign measures exactly the scenario it was
/// given, trials fanned across the local cores.
#[must_use]
pub fn sweep_campaign(trials: usize, master_seed: u64) -> CampaignConfig {
    CampaignConfig {
        trials_per_round: trials,
        rounds: 1,
        workers: default_workers(),
        master_seed,
        learning: LearningConfig {
            enabled: false,
            ..LearningConfig::default()
        },
        ..CampaignConfig::default()
    }
}

/// A campaign configuration exercising the cross-trial feedback loop.
#[must_use]
pub fn adaptive_campaign(trials: usize, rounds: usize, master_seed: u64) -> CampaignConfig {
    CampaignConfig {
        trials_per_round: trials,
        rounds,
        workers: default_workers(),
        master_seed,
        learning: LearningConfig::default(),
        ..CampaignConfig::default()
    }
}

/// Worker threads for experiment campaigns: the machine's parallelism,
/// capped at 8 (trial counts in the experiments are small).
#[must_use]
pub fn default_workers() -> usize {
    std::thread::available_parallelism()
        .map_or(4, std::num::NonZeroUsize::get)
        .min(8)
}

/// Runs a campaign, panicking on configuration errors — experiment
/// binaries treat those as programming mistakes, not runtime conditions.
///
/// # Panics
///
/// When the scenario or campaign configuration is invalid.
#[must_use]
pub fn run_campaign(cfg: &CampaignConfig, scenario: &dyn Scenario) -> CampaignReport {
    Campaign::run(cfg, scenario).expect("experiment campaign configuration is valid")
}

/// Prints the standard per-round campaign table: detection rate, mean
/// commands to first detection, totals.
pub fn print_round_table(report: &CampaignReport) {
    println!("| round | trials with bugs | detection rate | mean commands to detection | commands | cycles |");
    println!("|---|---|---|---|---|---|");
    for round in &report.rounds {
        println!(
            "| {} | {}/{} | {:.0}% | {} | {} | {} |",
            round.round,
            round.trials_with_bugs,
            round.trials.len(),
            round.detection_rate() * 100.0,
            fmt_mean(round.mean_commands_to_first_bug),
            round.total_commands,
            round.total_cycles,
        );
    }
}

/// Dumps a campaign report as pretty JSON (the archive format) under a
/// heading.
pub fn print_campaign_json(heading: &str, report: &CampaignReport) {
    println!("\n{heading}");
    println!(
        "{}",
        ptest::campaign_report_to_json(report).expect("campaign reports serialize")
    );
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builders_produce_consistent_configs() {
        let cfg = gc_leak_config(6 * 1024, 1);
        assert!(cfg.cyclic_generation);
        assert_eq!(cfg.system.kernel.heap_bytes, 6 * 1024);
        let sweep = sweep_campaign(8, 3);
        assert!(!sweep.learning.enabled);
        assert_eq!(sweep.rounds, 1);
        let adaptive = adaptive_campaign(8, 2, 3);
        assert!(adaptive.learning.enabled);
        assert!(default_workers() >= 1);
        assert_eq!(fmt_count(None), "—");
        assert_eq!(fmt_count(Some(12)), "12");
        assert_eq!(fmt_mean(Some(1.25)), "1.2");
    }

    #[test]
    fn class_detection_filters_by_bug_class() {
        use ptest::faults::philosophers::PhilosophersScenario;
        let report = run_campaign(&sweep_campaign(4, 0), &PhilosophersScenario::buggy());
        let round = &report.rounds[0];
        let (deadlocks, mean) = class_detection(round, &["deadlock"]);
        assert!(deadlocks > 0, "cyclic merge finds the deadlock");
        assert!(mean.is_some());
        let (crashes, crash_mean) = class_detection(round, CRASH_CLASSES);
        assert_eq!(crashes, 0, "philosophers never crash the slave");
        assert!(crash_mean.is_none());
    }

    #[test]
    fn worker_scenario_runs_under_a_campaign() {
        let scenario = worker_scenario(
            "smoke",
            20,
            AdaptiveTestConfig {
                n: 2,
                s: 4,
                ..AdaptiveTestConfig::default()
            },
        );
        let report = run_campaign(&sweep_campaign(2, 1), &scenario);
        assert_eq!(report.total_trials(), 2);
        assert_eq!(report.scenario, "smoke");
    }
}
