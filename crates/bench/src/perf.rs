//! The perf harness: a fixed suite of generation and campaign workloads
//! whose throughput is archived as `BENCH_campaign.json` — the repo's
//! machine-readable perf trajectory.
//!
//! Every run measures the same workloads at the same seeds:
//!
//! * **Generation microbenches** — patterns/sec of the alias-table
//!   sampler (`Pfa::generate_into`, zero-allocation) against the
//!   retained cumulative-scan reference (`Pfa::generate_reference`), on
//!   the paper's pCore lifecycle PFA and on a 16-way fan-out PFA where
//!   sampling cost dominates.
//! * **Campaign suites** — trials/sec, patterns/sec and simulated
//!   steps/sec of the Fig. 1 adaptive campaign, the dining-philosophers
//!   campaign, and the 3-slave cross-core pipeline campaign at 1/2/4/8
//!   workers. The pipeline variants run a larger trial count
//!   ([`PerfConfig::pipeline_trials`]) so each one occupies ≥1 s of
//!   wall time — long enough for the worker-scaling ratio to be a
//!   stable measurement rather than scheduler noise.
//! * **Campaign-scaling summary** — from the `pipeline_w1/w2/w4`
//!   entries the report derives a [`ScalingSummary`] (absolute
//!   trials/sec per worker count plus the w2/w1 and w4/w1 speedup
//!   ratios and the core count of the measuring machine). With
//!   `--check`, [`scaling_gate`] fails the run when `w4/w1 <`
//!   [`MIN_SPEEDUP_W4`] — unless the machine has fewer than
//!   [`SCALING_MIN_CORES`] cores, where a parallel speedup is
//!   physically impossible and the gate skips with a warning.
//! * **Scheduler-overhead suite** — the draining pipeline campaign on
//!   the lock-step fast path (`sched_lockstep`) versus under a
//!   behaviour-identical `RandomPriorityScheduler`
//!   (`sched_random_priority`); the delta is the pure cost of schedule
//!   exploration.
//! * **Memory-model-overhead suite** — the same campaign under
//!   sequential consistency (`mem_seqcst`, the no-model fast path)
//!   versus under the `StoreBufferModel` (`mem_store_buffer`); the
//!   delta is the cost of buffering and seeded delivery of every
//!   cross-core store.
//! * **Preemption-overhead suites** — the draining pipeline campaign
//!   with quantum time-slicing on every kernel (`sched_quantum`; the
//!   delta against `sched_lockstep` and `sched_random_priority` is the
//!   pure cost of slice accounting and rotation picks), and the
//!   mask-bracketed ISR shared-variable scenario under a dense seeded
//!   interrupt plan (`irq_storm`), where throughput is bounded by ISR
//!   dispatch and deferred-injection bookkeeping.
//! * **Event-driven-loop suites** — a sleeper-dominated campaign under
//!   a default `RandomPriorityScheduler` (`sched_sleep_heavy`) and a
//!   long quiescent drain (`detector_idle_soak`): workloads where
//!   nearly every platform cycle is idle, measuring how cheaply the
//!   trial loop's idle-cycle fast-forward and dirty-tracked detection
//!   cross quiescent stretches.
//! * **Reproducer-minimization suite** — `minimize_race` times complete
//!   shrinks (pattern ddmin + schedule change-point ddmin + root-cause
//!   extraction) of a manifesting order-violation hit: completed
//!   shrinks/sec is the gated `patterns_per_sec`, candidate trials
//!   executed by the shrink loop land in `trials_per_sec`.
//!
//! The report schema is one entry per suite:
//! `{suite, trials_per_sec, patterns_per_sec, steps_per_sec, wall_ms,
//! seed}`. CI's `perf-smoke` job uploads the file as an artifact and
//! fails when `patterns_per_sec` or `trials_per_sec` regresses more
//! than [`REGRESSION_TOLERANCE`] against the committed
//! `tests/fixtures/bench_baseline.json` (zero-baseline metrics — e.g.
//! `trials_per_sec` of the generation microbenches — never gate); an
//! empty baseline is an explicit gate error, and suites missing a
//! baseline entry are surfaced as warnings.

use std::time::Instant;

use ptest::automata::{GenerateOptions, ProbabilityAssignment, Regex, Sym};
use ptest::campaign::{Campaign, CampaignConfig};
use ptest::faults::fig1::Fig1AdaptiveScenario;
use ptest::faults::multicore::CrossCorePipelineScenario;
use ptest::faults::philosophers::PhilosophersScenario;
use ptest::faults::timers::IsrSharedVarScenario;
use ptest::master::{
    InterruptConfig, MemoryModelSpec, PreemptionSpec, QuantumConfig, RandomPriorityConfig,
    ScheduleSpec,
};
use ptest::{Configured, PatternGenerator, Scenario};
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};

/// Schema tag embedded in every report. `v2` added the `scaling`
/// summary derived from the `pipeline_w*` suites.
pub const SCHEMA: &str = "ptest-bench/campaign-v2";

/// A suite fails the CI gate when its current `patterns_per_sec` drops
/// below `1 - REGRESSION_TOLERANCE` of the committed baseline.
pub const REGRESSION_TOLERANCE: f64 = 0.25;

/// Minimum `pipeline_w4 / pipeline_w1` trials/sec ratio the scaling
/// gate demands. The acceptance bar on a 4-core developer machine is
/// ≥2.5×; the gate keeps headroom below that so CI machine noise does
/// not flake the build.
pub const MIN_SPEEDUP_W4: f64 = 2.0;

/// Core count below which [`scaling_gate`] skips with a warning
/// instead of failing: on fewer than 4 cores a 4-worker campaign
/// cannot exhibit a 2× speedup no matter how good the pool is.
pub const SCALING_MIN_CORES: usize = 4;

/// Throughput of one fixed workload.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchEntry {
    /// Workload name, e.g. `pipeline_w4` or `gen_alias_fan16_s256`.
    pub suite: String,
    /// Completed trials per wall-clock second (0 for microbenches that
    /// have no trial structure).
    pub trials_per_sec: f64,
    /// Generated test patterns per wall-clock second — the gated metric.
    pub patterns_per_sec: f64,
    /// Simulated platform cycles (campaigns) or emitted symbols
    /// (generation) per wall-clock second.
    pub steps_per_sec: f64,
    /// Wall-clock time of the whole suite in milliseconds.
    pub wall_ms: f64,
    /// The seed the workload ran at (master seed for campaigns).
    pub seed: u64,
}

/// Parallel-speedup summary derived from the `pipeline_w1/w2/w4`
/// suites: how much faster the same campaign completes when the
/// persistent worker pool gets more threads. Results are bit-identical
/// across worker counts, so the ratio isolates pool efficiency.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ScalingSummary {
    /// The workload the ratios were measured on (`pipeline`).
    pub workload: String,
    /// `available_parallelism` of the measuring machine — ratios from
    /// a 1-core box are meaningless and [`scaling_gate`] skips them.
    pub cores: usize,
    /// Trials/sec of `pipeline_w1`.
    pub w1_trials_per_sec: f64,
    /// Trials/sec of `pipeline_w2`.
    pub w2_trials_per_sec: f64,
    /// Trials/sec of `pipeline_w4`.
    pub w4_trials_per_sec: f64,
    /// `w2 / w1` trial-throughput ratio.
    pub speedup_w2: f64,
    /// `w4 / w1` trial-throughput ratio — the gated number.
    pub speedup_w4: f64,
}

/// The archived perf report: schema tag plus one entry per suite.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct BenchReport {
    /// Always [`SCHEMA`].
    pub schema: String,
    /// Per-suite throughput, in fixed suite order.
    pub suites: Vec<BenchEntry>,
    /// Worker-scaling summary (absent only if the pipeline suites were
    /// somehow not measured).
    pub scaling: Option<ScalingSummary>,
}

impl BenchReport {
    /// Looks up a suite by name.
    #[must_use]
    pub fn suite(&self, name: &str) -> Option<&BenchEntry> {
        self.suites.iter().find(|e| e.suite == name)
    }
}

/// How much work each suite does; `quick` shrinks every workload for
/// smoke runs (e.g. debug builds) without changing suite names.
#[derive(Debug, Clone, Copy)]
pub struct PerfConfig {
    /// Patterns per generation microbench.
    pub gen_patterns: usize,
    /// Trials per campaign round.
    pub campaign_trials: usize,
    /// Trials per round for the `pipeline_w*` scaling suites — sized so
    /// each variant runs ≥1 s of wall time, long enough that the
    /// speedup ratios in [`ScalingSummary`] measure the pool rather
    /// than startup noise.
    pub pipeline_trials: usize,
}

impl PerfConfig {
    /// The standard workload CI and the committed baseline use.
    #[must_use]
    pub fn standard() -> PerfConfig {
        PerfConfig {
            gen_patterns: 20_000,
            campaign_trials: 32,
            pipeline_trials: 256,
        }
    }

    /// A reduced workload for smoke testing the harness itself.
    #[must_use]
    pub fn quick() -> PerfConfig {
        PerfConfig {
            gen_patterns: 2_000,
            campaign_trials: 2,
            pipeline_trials: 4,
        }
    }
}

/// A 16-way fan-out PFA: one hub state with 16 weighted self-loop
/// branches, so per-symbol sampling cost dominates the walk — the
/// workload where alias tables beat the linear scan hardest. Shared
/// with the criterion microbenches.
#[must_use]
pub fn fan16_generator() -> PatternGenerator {
    let names: Vec<String> = (0..16).map(|i| format!("s{i}")).collect();
    let source = format!("({})*", names.join(" | "));
    let regex = Regex::parse(&source).expect("fan16 regex parses");
    let pd = ProbabilityAssignment::weights(
        names
            .iter()
            .enumerate()
            .map(|(i, n)| (n.clone(), (i + 1) as f64)),
    );
    PatternGenerator::new(regex, &pd).expect("fan16 distribution is valid")
}

/// Measures one generation workload: `patterns` cyclic walks of `size`
/// symbols through `sample`, which returns the number of symbols emitted.
fn measure_generation(
    suite: &str,
    seed: u64,
    patterns: usize,
    mut sample: impl FnMut(&mut StdRng) -> usize,
) -> BenchEntry {
    // Untimed warm-up so the first measured suite doesn't absorb page
    // faults and frequency ramp-up.
    let mut warmup_rng = StdRng::seed_from_u64(seed ^ 0xDEAD_BEEF);
    for _ in 0..(patterns / 10).max(64) {
        sample(&mut warmup_rng);
    }
    let mut rng = StdRng::seed_from_u64(seed);
    let start = Instant::now();
    let mut symbols = 0usize;
    for _ in 0..patterns {
        symbols += sample(&mut rng);
    }
    let wall = start.elapsed().as_secs_f64().max(f64::EPSILON);
    BenchEntry {
        suite: suite.to_owned(),
        trials_per_sec: 0.0,
        patterns_per_sec: patterns as f64 / wall,
        steps_per_sec: symbols as f64 / wall,
        wall_ms: wall * 1e3,
        seed,
    }
}

/// Measures one campaign workload.
fn measure_campaign(suite: &str, scenario: &dyn Scenario, cfg: &CampaignConfig) -> BenchEntry {
    let patterns_per_trial = scenario.base_config().n;
    let start = Instant::now();
    let report = Campaign::run(cfg, scenario).expect("perf campaign configuration is valid");
    let wall = start.elapsed().as_secs_f64().max(f64::EPSILON);
    let trials = report.total_trials();
    let cycles: u64 = report.rounds.iter().map(|r| r.total_cycles).sum();
    BenchEntry {
        suite: suite.to_owned(),
        trials_per_sec: trials as f64 / wall,
        patterns_per_sec: (trials * patterns_per_trial) as f64 / wall,
        steps_per_sec: cycles as f64 / wall,
        wall_ms: wall * 1e3,
        seed: cfg.master_seed,
    }
}

/// Measures the reproducer-minimization workload: locates the first
/// manifesting `(seed, schedule_seed, memory_seed)` triple of the
/// order-violation race by an untimed seed scan, then times `reps`
/// complete shrinks of that hit. `trials_per_sec` is candidate trials
/// executed by the shrink loops per second (every candidate is a full
/// deterministic trial), `patterns_per_sec` is completed shrinks per
/// second (the gated metric), and `steps_per_sec` is simulated cycles
/// of the minimized replays per second.
fn measure_minimize(suite: &str, reps: usize) -> BenchEntry {
    use ptest::faults::races::OrderViolationScenario;
    use ptest::{minimize_scenario_trial, MinimizeConfig, TrialEngine, TrialScratch};

    let scenario = OrderViolationScenario::buggy();
    let base = scenario.base_config();
    let schedule = base.schedule;
    let memory = base.memory;
    let engine = TrialEngine::new(base).expect("race scenario is valid");
    let mut scratch = TrialScratch::new();
    let hit = (0..512)
        .find(|&s| {
            engine
                .run_scenario_trial_explored(&scenario, s, s, s, &mut scratch)
                .is_ok_and(|r| !r.machine_summary().bugs.is_empty())
        })
        .expect("order-violation race manifests within 512 seeds");
    let mcfg = MinimizeConfig::default();
    let reps = reps.max(1);
    let start = Instant::now();
    let mut candidates = 0usize;
    let mut cycles = 0u64;
    for _ in 0..reps {
        let repro = minimize_scenario_trial(
            &engine,
            &scenario,
            hit,
            hit,
            hit,
            hit,
            schedule,
            memory,
            ptest::PreemptionSpec::default(),
            None,
            &mcfg,
            &mut scratch,
        )
        .expect("manifesting trial minimizes");
        candidates += repro.candidates;
        cycles += repro.summary.cycles;
    }
    let wall = start.elapsed().as_secs_f64().max(f64::EPSILON);
    BenchEntry {
        suite: suite.to_owned(),
        trials_per_sec: candidates as f64 / wall,
        patterns_per_sec: reps as f64 / wall,
        steps_per_sec: cycles as f64 / wall,
        wall_ms: wall * 1e3,
        seed: hit,
    }
}

/// Runs the whole fixed suite and assembles the report.
#[must_use]
pub fn run(cfg: &PerfConfig) -> BenchReport {
    let mut suites = Vec::new();

    // --- Generation microbenches: alias table vs retained reference.
    let pcore = PatternGenerator::pcore_paper().expect("paper generator builds");
    let fan16 = fan16_generator();
    let opts = GenerateOptions::cyclic(256);
    let mut buf: Vec<Sym> = Vec::new();
    for (label, generator) in [("pcore", &pcore), ("fan16", &fan16)] {
        suites.push(measure_generation(
            &format!("gen_alias_{label}_s256"),
            1,
            cfg.gen_patterns,
            |rng| {
                generator.generate_into(rng, opts, &mut buf);
                buf.len()
            },
        ));
        suites.push(measure_generation(
            &format!("gen_reference_{label}_s256"),
            1,
            cfg.gen_patterns,
            |rng| generator.pfa().generate_reference(rng, opts).len(),
        ));
    }

    // --- Campaign suites.
    suites.push(measure_campaign(
        "fig1_adaptive",
        &Fig1AdaptiveScenario::default(),
        &crate::adaptive_campaign(cfg.campaign_trials, 2, 2009),
    ));
    suites.push(measure_campaign(
        "philosophers",
        &PhilosophersScenario::buggy(),
        &crate::sweep_campaign(cfg.campaign_trials, 2009),
    ));
    for workers in [1usize, 2, 4, 8] {
        let mut campaign = crate::sweep_campaign(cfg.pipeline_trials, 2009);
        campaign.workers = workers;
        suites.push(measure_campaign(
            &format!("pipeline_w{workers}"),
            &CrossCorePipelineScenario::buggy(),
            &campaign,
        ));
    }

    // --- Scheduler-overhead suite: the same draining 3-slave pipeline
    // campaign twice — once on the lock-step fast path (no scheduler at
    // all), once under a RandomPriorityScheduler configured to reproduce
    // lock-step behaviour exactly (zero change points, fairness window
    // 1: every runnable kernel advances every cycle). Trial outcomes are
    // identical, so the throughput delta between the two entries is the
    // pure mechanism cost of schedule exploration (per-cycle runnable
    // scan + plan call).
    let mut campaign = crate::sweep_campaign(cfg.campaign_trials, 2009);
    campaign.workers = 2;
    suites.push(measure_campaign(
        "sched_lockstep",
        &CrossCorePipelineScenario::fixed(),
        &campaign,
    ));
    let rp_identity = Configured::adjust(CrossCorePipelineScenario::fixed(), |c| {
        c.schedule = ScheduleSpec::RandomPriority(RandomPriorityConfig {
            change_points: 0,
            horizon: 1,
            fairness_window: 1,
            ..RandomPriorityConfig::default()
        });
    });
    suites.push(measure_campaign(
        "sched_random_priority",
        &rp_identity,
        &campaign,
    ));

    // --- Memory-model-overhead suite: the same draining pipeline
    // campaign twice more — once under sequential consistency (the
    // no-model fast path; trial outcomes bit-identical to
    // `sched_lockstep`) and once under the StoreBufferModel, where every
    // cross-core store is buffered and delivered per observer at a
    // seeded delay. Unlike the scheduler pair the trial outcomes may
    // differ (that is the point of the model), so the delta bounds the
    // mechanism cost of memory-model exploration rather than isolating
    // it exactly.
    suites.push(measure_campaign(
        "mem_seqcst",
        &CrossCorePipelineScenario::fixed(),
        &campaign,
    ));
    let store_buffered = Configured::adjust(CrossCorePipelineScenario::fixed(), |c| {
        c.memory = MemoryModelSpec::store_buffer();
    });
    suites.push(measure_campaign(
        "mem_store_buffer",
        &store_buffered,
        &campaign,
    ));

    // --- Preemption-overhead suites. `sched_quantum` reruns the
    // draining pipeline campaign with quantum time-slicing enabled on
    // every kernel: the delta against `sched_lockstep` (no preemption at
    // all) and `sched_random_priority` (cross-kernel exploration only)
    // is the pure mechanism cost of per-executed-cycle slice accounting
    // plus rotation picks at expiry. `irq_storm` drives the
    // mask-bracketed (clean) ISR shared-variable scenario under a dense
    // seeded interrupt plan, so the measured cost is ISR dispatch,
    // deferred-injection bookkeeping, and the preemption-aware
    // quiescent-horizon checks rather than task execution.
    let quantum_sliced = Configured::adjust(CrossCorePipelineScenario::fixed(), |c| {
        c.preemption = PreemptionSpec {
            quantum: Some(QuantumConfig::default()),
            ..PreemptionSpec::default()
        };
    });
    suites.push(measure_campaign(
        "sched_quantum",
        &quantum_sliced,
        &campaign,
    ));
    let irq_storm = Configured::adjust(IsrSharedVarScenario::fixed(), |c| {
        c.preemption = PreemptionSpec {
            interrupts: Some(InterruptConfig {
                count: 48,
                horizon: 4_000,
                ..InterruptConfig::default()
            }),
            ..PreemptionSpec::default()
        };
    });
    suites.push(measure_campaign("irq_storm", &irq_storm, &campaign));

    // --- Event-driven-loop suites: workloads where nearly every
    // platform cycle is idle, so throughput is bounded by how cheaply
    // the trial loop crosses quiescent stretches rather than by task
    // execution. `sched_sleep_heavy` is sleeper-dominated (short bursts
    // between long naps) under a default RandomPriorityScheduler, so
    // the idle skips also exercise the scheduler's bookkeeping;
    // `detector_idle_soak` parks its workers past the drain window, so
    // every trial tails off with a full `drain_cycles` quiescent drain
    // under the detector's observation cadence.
    let sleepy_cfg = ptest::AdaptiveTestConfig {
        n: 2,
        s: 6,
        ..ptest::AdaptiveTestConfig::default()
    };
    let sleep_heavy = Configured::adjust(
        crate::sleeper_scenario("sleep_heavy", 3, 8_000, sleepy_cfg.clone()),
        |c| c.schedule = ScheduleSpec::RandomPriority(RandomPriorityConfig::default()),
    );
    suites.push(measure_campaign(
        "sched_sleep_heavy",
        &sleep_heavy,
        &campaign,
    ));
    let idle_soak = crate::sleeper_scenario("idle_soak", 1, 100_000, sleepy_cfg);
    suites.push(measure_campaign(
        "detector_idle_soak",
        &idle_soak,
        &campaign,
    ));

    // --- Reproducer-minimization suite: end-to-end shrink wall-time of
    // a manifesting order-violation hit (pattern ddmin + change-point
    // ddmin + root-cause extraction), reported as completed shrinks/sec
    // plus candidate-trials/sec.
    suites.push(measure_minimize("minimize_race", cfg.campaign_trials));

    let scaling = scaling_summary(&suites);
    BenchReport {
        schema: SCHEMA.to_owned(),
        suites,
        scaling,
    }
}

/// Derives the worker-scaling summary from the `pipeline_w1/w2/w4`
/// entries, or `None` if any of the three is missing or idle.
#[must_use]
pub fn scaling_summary(suites: &[BenchEntry]) -> Option<ScalingSummary> {
    let rate = |name: &str| {
        suites
            .iter()
            .find(|e| e.suite == name)
            .map(|e| e.trials_per_sec)
            .filter(|&r| r > 0.0)
    };
    let w1 = rate("pipeline_w1")?;
    let w2 = rate("pipeline_w2")?;
    let w4 = rate("pipeline_w4")?;
    Some(ScalingSummary {
        workload: "pipeline".to_owned(),
        cores: std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get),
        w1_trials_per_sec: w1,
        w2_trials_per_sec: w2,
        w4_trials_per_sec: w4,
        speedup_w2: w2 / w1,
        speedup_w4: w4 / w1,
    })
}

/// The parallel-speedup gate: fails when the report's `w4/w1` trial
/// throughput ratio is below [`MIN_SPEEDUP_W4`].
///
/// Two outcomes are warnings instead of failures:
///
/// * measured on fewer than [`SCALING_MIN_CORES`] cores — a 4-worker
///   speedup is physically impossible there, so the gate reports what
///   it skipped and why rather than failing builds on small runners;
/// * the report predates the summary (no `pipeline_w*` suites) — the
///   regression gate already fails that as missing suites.
#[must_use]
pub fn scaling_gate(report: &BenchReport) -> GateOutcome {
    let mut outcome = GateOutcome::default();
    let Some(s) = &report.scaling else {
        outcome
            .warnings
            .push("report carries no scaling summary (pipeline_w1/w2/w4 missing or idle)".into());
        return outcome;
    };
    if s.cores < SCALING_MIN_CORES {
        outcome.warnings.push(format!(
            "scaling gate skipped: measured on {} core(s), needs >= {SCALING_MIN_CORES} for a \
             w4 speedup to be physically possible (w4/w1 = {:.2}x)",
            s.cores, s.speedup_w4
        ));
        return outcome;
    }
    if s.speedup_w4 < MIN_SPEEDUP_W4 {
        outcome.failures.push(format!(
            "parallel speedup regressed: pipeline w4/w1 = {:.2}x < required {MIN_SPEEDUP_W4:.1}x \
             (w1 {:.1} trials/s, w4 {:.1} trials/s, {} cores)",
            s.speedup_w4, s.w1_trials_per_sec, s.w4_trials_per_sec, s.cores
        ));
    }
    outcome
}

/// Serializes a report as pretty JSON.
///
/// # Errors
///
/// Propagates `serde_json` errors (practically unreachable).
pub fn report_to_json(report: &BenchReport) -> Result<String, serde_json::Error> {
    serde_json::to_string_pretty(report)
}

/// Parses a report (or the committed baseline) from JSON.
///
/// # Errors
///
/// `serde_json` errors on malformed input.
pub fn report_from_json(json: &str) -> Result<BenchReport, serde_json::Error> {
    serde_json::from_str(json)
}

/// Outcome of one gate comparison: hard failures (regressions, suites
/// that vanished from the run) and warnings (suites the baseline does
/// not cover yet — they gate nothing, but they are *surfaced* rather
/// than silently skipped, so a forgotten baseline refresh is visible in
/// the CI log).
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct GateOutcome {
    /// One line per gating failure; CI fails when non-empty.
    pub failures: Vec<String>,
    /// One line per suite measured in the current run but absent from
    /// the baseline (its numbers are unguarded until the next refresh).
    pub warnings: Vec<String>,
}

/// Error evaluating the gate at all.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GateError {
    /// The baseline has no suites (empty file, truncated JSON, or a
    /// refresh gone wrong). A suite-less baseline would vacuously pass
    /// every run — that is a broken gate, not a green one.
    EmptyBaseline,
}

impl std::fmt::Display for GateError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GateError::EmptyBaseline => {
                write!(
                    f,
                    "baseline contains no suites: the gate would pass vacuously"
                )
            }
        }
    }
}

impl std::error::Error for GateError {}

/// Compares `current` against `baseline`: one failure line per gated
/// metric (`patterns_per_sec` and `trials_per_sec`) that dropped below
/// `1 - tolerance` of the baseline value, one per baseline suite
/// missing from the current run, and one warning line per current
/// suite the baseline does not cover. Zero/negative baseline metrics
/// never gate — generation microbenches carry no trial structure, so
/// their `trials_per_sec` of 0 gates nothing.
///
/// # Errors
///
/// [`GateError::EmptyBaseline`] when the baseline has no suites at all —
/// an explicit error instead of a vacuous pass.
pub fn regressions(
    current: &BenchReport,
    baseline: &BenchReport,
    tolerance: f64,
) -> Result<GateOutcome, GateError> {
    if baseline.suites.is_empty() {
        return Err(GateError::EmptyBaseline);
    }
    let mut outcome = GateOutcome::default();
    for base in &baseline.suites {
        if base.patterns_per_sec <= 0.0 && base.trials_per_sec <= 0.0 {
            continue;
        }
        let Some(cur) = current.suite(&base.suite) else {
            outcome.failures.push(format!(
                "suite `{}` present in baseline but missing from current run",
                base.suite
            ));
            continue;
        };
        let metrics = [
            ("patterns/sec", base.patterns_per_sec, cur.patterns_per_sec),
            ("trials/sec", base.trials_per_sec, cur.trials_per_sec),
        ];
        for (metric, base_rate, cur_rate) in metrics {
            if base_rate <= 0.0 {
                continue;
            }
            let floor = base_rate * (1.0 - tolerance);
            if cur_rate < floor {
                outcome.failures.push(format!(
                    "suite `{}` regressed: {cur_rate:.1} {metric} < {floor:.1} (baseline {base_rate:.1}, tolerance {:.0}%)",
                    base.suite,
                    tolerance * 100.0
                ));
            }
        }
    }
    for cur in &current.suites {
        if baseline.suite(&cur.suite).is_none() {
            outcome.warnings.push(format!(
                "suite `{}` has no baseline entry ({:.1} patterns/sec unguarded — refresh the baseline)",
                cur.suite, cur.patterns_per_sec
            ));
        }
    }
    Ok(outcome)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn entry(suite: &str, pps: f64) -> BenchEntry {
        BenchEntry {
            suite: suite.to_owned(),
            trials_per_sec: 1.0,
            patterns_per_sec: pps,
            steps_per_sec: 10.0,
            wall_ms: 5.0,
            seed: 2009,
        }
    }

    fn report(entries: Vec<BenchEntry>) -> BenchReport {
        BenchReport {
            schema: SCHEMA.to_owned(),
            suites: entries,
            scaling: None,
        }
    }

    fn summary(cores: usize, speedup_w4: f64) -> ScalingSummary {
        ScalingSummary {
            workload: "pipeline".to_owned(),
            cores,
            w1_trials_per_sec: 100.0,
            w2_trials_per_sec: 100.0 * (1.0 + speedup_w4) / 2.0,
            w4_trials_per_sec: 100.0 * speedup_w4,
            speedup_w2: (1.0 + speedup_w4) / 2.0,
            speedup_w4,
        }
    }

    #[test]
    fn quick_suite_emits_every_workload_with_positive_throughput() {
        let out = run(&PerfConfig::quick());
        assert_eq!(out.schema, SCHEMA);
        for name in [
            "gen_alias_pcore_s256",
            "gen_reference_pcore_s256",
            "gen_alias_fan16_s256",
            "gen_reference_fan16_s256",
            "fig1_adaptive",
            "philosophers",
            "pipeline_w1",
            "pipeline_w2",
            "pipeline_w4",
            "pipeline_w8",
            "sched_lockstep",
            "sched_random_priority",
            "mem_seqcst",
            "mem_store_buffer",
            "sched_quantum",
            "irq_storm",
            "sched_sleep_heavy",
            "detector_idle_soak",
            "minimize_race",
        ] {
            let suite = out.suite(name).unwrap_or_else(|| panic!("missing {name}"));
            assert!(suite.patterns_per_sec > 0.0, "{name}");
            assert!(suite.steps_per_sec > 0.0, "{name}");
            assert!(suite.wall_ms > 0.0, "{name}");
        }
        let scaling = out
            .scaling
            .expect("pipeline suites yield a scaling summary");
        assert_eq!(scaling.workload, "pipeline");
        assert!(scaling.cores >= 1);
        assert!(scaling.w1_trials_per_sec > 0.0);
        assert!(scaling.speedup_w2 > 0.0);
        assert!(scaling.speedup_w4 > 0.0);
    }

    #[test]
    fn scaling_summary_needs_all_three_pipeline_suites() {
        let mut entries = vec![entry("pipeline_w1", 1.0), entry("pipeline_w2", 1.0)];
        assert!(scaling_summary(&entries).is_none());
        entries.push(entry("pipeline_w4", 1.0));
        let s = scaling_summary(&entries).expect("complete trio summarizes");
        assert_eq!(s.w1_trials_per_sec, 1.0);
        assert_eq!(s.speedup_w4, 1.0);
    }

    #[test]
    fn scaling_gate_fails_flat_scaling_on_big_machines() {
        let mut rep = report(vec![entry("a", 1.0)]);
        rep.scaling = Some(summary(8, 1.1));
        let outcome = scaling_gate(&rep);
        assert_eq!(outcome.failures.len(), 1, "{outcome:?}");
        assert!(outcome.failures[0].contains("w4/w1"), "{outcome:?}");

        rep.scaling = Some(summary(8, 3.2));
        let outcome = scaling_gate(&rep);
        assert!(outcome.failures.is_empty(), "{outcome:?}");
        assert!(outcome.warnings.is_empty(), "{outcome:?}");
    }

    #[test]
    fn scaling_gate_skips_small_machines_with_a_warning() {
        let mut rep = report(vec![entry("a", 1.0)]);
        // Flat scaling, but only 1 core: skip, do not fail.
        rep.scaling = Some(summary(1, 1.0));
        let outcome = scaling_gate(&rep);
        assert!(outcome.failures.is_empty(), "{outcome:?}");
        assert_eq!(outcome.warnings.len(), 1, "{outcome:?}");
        assert!(outcome.warnings[0].contains("skipped"), "{outcome:?}");
    }

    #[test]
    fn scaling_gate_warns_on_summaryless_reports() {
        let rep = report(vec![entry("a", 1.0)]);
        let outcome = scaling_gate(&rep);
        assert!(outcome.failures.is_empty(), "{outcome:?}");
        assert_eq!(outcome.warnings.len(), 1, "{outcome:?}");
    }

    #[test]
    fn scaling_summary_roundtrips_through_json() {
        let mut rep = report(vec![entry("a", 100.0)]);
        rep.scaling = Some(summary(4, 2.5));
        let json = report_to_json(&rep).unwrap();
        assert!(json.contains("\"speedup_w4\""));
        assert_eq!(report_from_json(&json).unwrap(), rep);
    }

    #[test]
    fn report_json_roundtrips() {
        let out = report(vec![entry("a", 100.0), entry("b", 5.5)]);
        let json = report_to_json(&out).unwrap();
        assert!(json.contains("\"patterns_per_sec\""));
        assert_eq!(report_from_json(&json).unwrap(), out);
    }

    #[test]
    fn regression_gate_fires_only_past_tolerance() {
        let baseline = report(vec![entry("a", 100.0), entry("b", 100.0)]);
        // Within tolerance: 80 >= 75.
        let ok = report(vec![entry("a", 80.0), entry("b", 101.0)]);
        let outcome = regressions(&ok, &baseline, REGRESSION_TOLERANCE).unwrap();
        assert!(outcome.failures.is_empty());
        assert!(outcome.warnings.is_empty());
        // Past tolerance on one suite.
        let bad = report(vec![entry("a", 60.0), entry("b", 101.0)]);
        let outcome = regressions(&bad, &baseline, REGRESSION_TOLERANCE).unwrap();
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("`a`"), "{outcome:?}");
        // Missing suite is a failure; extra current suites warn.
        let missing = report(vec![entry("b", 101.0), entry("extra", 1.0)]);
        let outcome = regressions(&missing, &baseline, REGRESSION_TOLERANCE).unwrap();
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("missing"), "{outcome:?}");
        assert_eq!(outcome.warnings.len(), 1);
        assert!(outcome.warnings[0].contains("`extra`"), "{outcome:?}");
    }

    #[test]
    fn trial_throughput_is_gated_too() {
        let baseline = report(vec![entry("a", 100.0)]);
        // Patterns hold steady but trial throughput collapses: 0.5 < 0.75.
        let mut slow = entry("a", 100.0);
        slow.trials_per_sec = 0.5;
        let outcome = regressions(&report(vec![slow]), &baseline, REGRESSION_TOLERANCE).unwrap();
        assert_eq!(outcome.failures.len(), 1);
        assert!(outcome.failures[0].contains("trials/sec"), "{outcome:?}");
    }

    #[test]
    fn zero_baselines_never_gate() {
        let baseline = report(vec![entry("a", 0.0)]);
        let current = report(vec![entry("a", 0.0)]);
        let outcome = regressions(&current, &baseline, REGRESSION_TOLERANCE).unwrap();
        assert!(outcome.failures.is_empty());
        // A microbench baseline (no trial structure) never gates trials.
        let mut micro = entry("m", 50.0);
        micro.trials_per_sec = 0.0;
        let baseline = report(vec![micro.clone()]);
        let outcome = regressions(&report(vec![micro]), &baseline, REGRESSION_TOLERANCE).unwrap();
        assert!(outcome.failures.is_empty(), "{outcome:?}");
    }

    #[test]
    fn empty_baselines_are_an_explicit_error_not_a_green_gate() {
        let baseline = report(Vec::new());
        let current = report(vec![entry("a", 100.0)]);
        assert_eq!(
            regressions(&current, &baseline, REGRESSION_TOLERANCE),
            Err(GateError::EmptyBaseline)
        );
    }

    #[test]
    fn unbaselined_suites_warn_without_failing() {
        let baseline = report(vec![entry("a", 100.0)]);
        let current = report(vec![entry("a", 100.0), entry("new_suite", 5.0)]);
        let outcome = regressions(&current, &baseline, REGRESSION_TOLERANCE).unwrap();
        assert!(outcome.failures.is_empty(), "{outcome:?}");
        assert_eq!(outcome.warnings.len(), 1);
        assert!(outcome.warnings[0].contains("`new_suite`"));
    }
}
