//! ptest-bench: experiment binaries and criterion benches live in src/bin and benches.
fn main() {
    eprintln!("run the exp_* binaries or `cargo bench` instead");
}
