//! Experiment E8 — pTest vs the ConTest-style random tester and the
//! CHESS-style systematic explorer (the paper's §I comparison, measured).
//!
//! All three testers now drive the same [`Scenario`] abstraction. Three
//! comparisons:
//!   1. legality: share of command budget wasted on illegal orders;
//!   2. the GC crash (case study 1 shape): detection across a parallel
//!      campaign vs a random-tester session with the same budget;
//!   3. a 2-task AB-BA deadlock: detection + cost, plus the systematic
//!      space explosion at paper scale.
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_baselines
//! ```

use ptest::baselines::{RandomTester, RandomTesterConfig, SystematicConfig, SystematicExplorer};
use ptest::faults::philosophers::{philosopher_program, Variant};
use ptest::{
    AdaptiveTest, AdaptiveTestConfig, BugKind, FnScenario, PatternGenerator, Scenario, TestPattern,
};
use ptest_bench::{
    class_detection, crash_kind, gc_leak_config, run_campaign, sweep_campaign, worker_scenario,
};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E8: pTest vs ConTest-style random vs CHESS-style systematic ==\n");

    // --- 1. Legality. Long-lived workers so every command targets a live
    // task: remaining rejections are pure service-order violations.
    let server = worker_scenario(
        "long-lived-server",
        5_000_000,
        AdaptiveTestConfig {
            n: 3,
            s: 16,
            cyclic_generation: true,
            ..AdaptiveTestConfig::default()
        },
    );
    println!("1) command legality on a healthy slave (same budget):");
    let ptest_report = AdaptiveTest::run_scenario(&server, 8)?;
    let random_report = RandomTester::new(RandomTesterConfig {
        command_budget: ptest_report.commands_issued.max(100),
        seed: 8,
        ..RandomTesterConfig::default()
    })
    .run_scenario(&server);
    println!("| tester | commands | ordering errors | total errors |");
    println!("|---|---|---|---|");
    println!(
        "| pTest (PFA patterns) | {} | {} | {} |",
        ptest_report.commands_issued,
        ptest_report.ordering_errors(),
        ptest_report.error_replies
    );
    println!(
        "| random (ConTest-style) | {} | {} | {} |",
        random_report.commands_issued, random_report.ordering_errors, random_report.error_replies
    );

    // --- 2. GC crash: a parallel pTest campaign vs one random session.
    println!("\n2) commands to detect the GC crash (case-study-1 shape):");
    let gc_scenario = worker_scenario("gc-crash", 30, gc_leak_config(6 * 1024, 1));
    let campaign = run_campaign(&sweep_campaign(4, 3), &gc_scenario);
    let round = &campaign.rounds[0];
    let (crashes, mean_crash_commands) = class_detection(round, ptest_bench::CRASH_CLASSES);
    let mut rcfg = RandomTesterConfig {
        command_budget: 10_000,
        seed: 3,
        max_cycles: 30_000_000,
        ..RandomTesterConfig::default()
    };
    rcfg.system = gc_scenario.base_config().system;
    let r = RandomTester::new(rcfg).run_scenario(&gc_scenario);
    println!("| tester | found? | commands issued |");
    println!("|---|---|---|");
    println!(
        "| pTest (4-trial campaign) | {}/{} trials | {} mean |",
        crashes,
        round.trials.len(),
        ptest_bench::fmt_mean(mean_crash_commands)
    );
    println!(
        "| random | {} | {} |",
        r.found(crash_kind),
        r.commands_issued
    );

    // --- 3. AB-BA deadlock + space explosion.
    println!("\n3) 2-task AB-BA deadlock (systematic is feasible here):");
    let g = PatternGenerator::pcore_paper()?;
    let a = g.regex().alphabet().clone();
    let tc = a.sym("TC").expect("TC");
    let tch = a.sym("TCH").expect("TCH");
    let td = a.sym("TD").expect("TD");
    let patterns = vec![
        TestPattern::new(vec![tc, tch, td]),
        TestPattern::new(vec![tc, tch, td]),
    ];
    let ab_ba = FnScenario::new("ab-ba", AdaptiveTestConfig::default(), |sys| {
        let kernel = sys.kernel_mut();
        let forks = vec![kernel.create_mutex(), kernel.create_mutex()];
        (0..2)
            .map(|i| kernel.register_program(philosopher_program(i, &forks, Variant::Buggy)))
            .collect::<Vec<_>>()
    });
    let explorer = SystematicExplorer::new(SystematicConfig::default());
    let sys_report = explorer.explore_scenario(&patterns, &a, &ab_ba);
    println!("| tester | found? | runs | commands |");
    println!("|---|---|---|---|");
    println!(
        "| systematic (CHESS-style) | {} | {}/{} | {} |",
        sys_report.found(|k| matches!(k, BugKind::Deadlock { .. })),
        sys_report.runs,
        sys_report
            .space_size
            .map_or("?".to_owned(), |s| s.to_string()),
        sys_report.total_commands
    );

    // Space explosion at paper scale: 16 patterns of 8 services.
    let big: Vec<TestPattern> = (0..16)
        .map(|_| TestPattern::new(vec![tc, tch, tch, tch, tch, tch, tch, td]))
        .collect();
    let worker = worker_scenario("worker", 30, AdaptiveTestConfig::default());
    let refused = explorer.explore_scenario(&big, &a, &worker);
    println!(
        "| systematic @ paper scale (16 patterns × 8) | refused: space > limit \
         (runs={}) | — | — |",
        refused.runs
    );
    println!("\nshape check: pTest wastes no budget on illegal orders (random");
    println!("does), finds the crash with fewer commands, and scales where the");
    println!("systematic explorer's interleaving space explodes — the trade-off");
    println!("triangle of the paper's introduction.");
    Ok(())
}
