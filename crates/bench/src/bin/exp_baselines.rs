//! Experiment E8 — pTest vs the ConTest-style random tester and the
//! CHESS-style systematic explorer (the paper's §I comparison, measured).
//!
//! Three scenarios:
//!   1. legality: share of command budget wasted on illegal orders;
//!   2. the GC crash (case study 1 shape): commands to detection;
//!   3. a 2-task AB-BA deadlock: detection + cost, plus the systematic
//!      space explosion at paper scale.
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_baselines
//! ```

use ptest::baselines::{RandomTester, RandomTesterConfig, SystematicConfig, SystematicExplorer};
use ptest::faults::philosophers::{philosopher_program, Variant};
use ptest::pcore::{GcFaultMode, Op, Program};
use ptest::{
    AdaptiveTest, AdaptiveTestConfig, BugKind, DualCoreSystem, PatternGenerator, ProgramId,
    TestPattern,
};

fn worker(sys: &mut DualCoreSystem) -> Vec<ProgramId> {
    vec![sys
        .kernel_mut()
        .register_program(Program::new(vec![Op::Compute(30), Op::Exit]).expect("valid"))]
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E8: pTest vs ConTest-style random vs CHESS-style systematic ==\n");

    // --- 1. Legality. Long-lived workers so every command targets a live
    // task: remaining rejections are pure service-order violations.
    let server_worker = |sys: &mut DualCoreSystem| {
        vec![sys
            .kernel_mut()
            .register_program(Program::new(vec![Op::Compute(5_000_000), Op::Exit]).expect("valid"))]
    };
    println!("1) command legality on a healthy slave (same budget):");
    let ptest_report = AdaptiveTest::run(
        AdaptiveTestConfig {
            n: 3,
            s: 16,
            seed: 8,
            cyclic_generation: true,
            ..AdaptiveTestConfig::default()
        },
        server_worker,
    )?;
    let random_report = RandomTester::new(RandomTesterConfig {
        command_budget: ptest_report.commands_issued.max(100),
        seed: 8,
        ..RandomTesterConfig::default()
    })
    .run(server_worker);
    println!("| tester | commands | ordering errors | total errors |");
    println!("|---|---|---|---|");
    println!(
        "| pTest (PFA patterns) | {} | {} | {} |",
        ptest_report.commands_issued,
        ptest_report.ordering_errors(),
        ptest_report.error_replies
    );
    println!(
        "| random (ConTest-style) | {} | {} | {} |",
        random_report.commands_issued, random_report.ordering_errors, random_report.error_replies
    );

    // --- 2. GC crash.
    println!("\n2) commands to detect the GC crash (case-study-1 shape):");
    let crash = |k: &BugKind| {
        matches!(
            k,
            BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
        )
    };
    let mut cfg = AdaptiveTestConfig {
        n: 4,
        s: 64,
        seed: 3,
        cyclic_generation: true,
        max_cycles: 30_000_000,
        ..AdaptiveTestConfig::default()
    };
    cfg.system.kernel.heap_bytes = 6 * 1024;
    cfg.system.kernel.gc_fault = GcFaultMode::LeakDeadBlocks { leak_every: 1 };
    let p = AdaptiveTest::run(cfg, worker)?;
    let mut rcfg = RandomTesterConfig {
        command_budget: 10_000,
        seed: 3,
        max_cycles: 30_000_000,
        ..RandomTesterConfig::default()
    };
    rcfg.system.kernel.heap_bytes = 6 * 1024;
    rcfg.system.kernel.gc_fault = GcFaultMode::LeakDeadBlocks { leak_every: 1 };
    let r = RandomTester::new(rcfg).run(worker);
    println!("| tester | found? | commands issued |");
    println!("|---|---|---|");
    println!("| pTest | {} | {} |", p.found(crash), p.commands_issued);
    println!("| random | {} | {} |", r.found(crash), r.commands_issued);

    // --- 3. AB-BA deadlock + space explosion.
    println!("\n3) 2-task AB-BA deadlock (systematic is feasible here):");
    let g = PatternGenerator::pcore_paper()?;
    let a = g.regex().alphabet().clone();
    let tc = a.sym("TC").expect("TC");
    let tch = a.sym("TCH").expect("TCH");
    let td = a.sym("TD").expect("TD");
    let patterns = vec![
        TestPattern::new(vec![tc, tch, td]),
        TestPattern::new(vec![tc, tch, td]),
    ];
    let ab_ba_setup = |sys: &mut DualCoreSystem| {
        let kernel = sys.kernel_mut();
        let forks = vec![kernel.create_mutex(), kernel.create_mutex()];
        (0..2)
            .map(|i| kernel.register_program(philosopher_program(i, &forks, Variant::Buggy)))
            .collect::<Vec<_>>()
    };
    let explorer = SystematicExplorer::new(SystematicConfig::default());
    let sys_report = explorer.explore(&patterns, &a, ab_ba_setup);
    println!("| tester | found? | runs | commands |");
    println!("|---|---|---|---|");
    println!(
        "| systematic (CHESS-style) | {} | {}/{} | {} |",
        sys_report.found(|k| matches!(k, BugKind::Deadlock { .. })),
        sys_report.runs,
        sys_report
            .space_size
            .map_or("?".to_owned(), |s| s.to_string()),
        sys_report.total_commands
    );

    // Space explosion at paper scale: 16 patterns of 8 services.
    let big: Vec<TestPattern> = (0..16)
        .map(|_| TestPattern::new(vec![tc, tch, tch, tch, tch, tch, tch, td]))
        .collect();
    let refused = explorer.explore(&big, &a, worker);
    println!(
        "| systematic @ paper scale (16 patterns × 8) | refused: space > limit \
         (runs={}) | — | — |",
        refused.runs
    );
    println!("\nshape check: pTest wastes no budget on illegal orders (random");
    println!("does), finds the crash with fewer commands, and scales where the");
    println!("systematic explorer's interleaving space explodes — the trade-off");
    println!("triangle of the paper's introduction.");
    Ok(())
}
