//! Experiment E1 — paper Figure 3 and Definition 1/Eq. 1.
//!
//! Rebuilds the paper's example PFA for `(ac*d) | b` with
//! `P = {a: 0.6, b: 0.4, c: 0.3, d: 0.7}`, prints its structure, and
//! validates the probabilistic semantics empirically: branch frequencies
//! over 100 000 generated patterns and the expected pattern length
//! against the analytic value.
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_fig3
//! ```

use ptest::automata::GenerateOptions;
use ptest::{Dfa, Pfa, ProbabilityAssignment, Regex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E1: Figure 3 — the simple PFA for (a c* d) | b ==\n");
    let re = Regex::parse("(a c* d) | b")?;
    let dfa = Dfa::from_regex(&re).minimize();
    let pd = ProbabilityAssignment::weights([("a", 0.6), ("b", 0.4), ("c", 0.3), ("d", 0.7)]);
    let pfa = Pfa::from_dfa(&dfa, re.alphabet().clone(), &pd)?;
    pfa.validate()?;

    println!("states |Q| = {} (paper: 3)", pfa.len());
    println!("transitions (paper: a 0.6, b 0.4, c 0.3, d 0.7):");
    for q in 0..pfa.len() {
        for &(sym, target, p) in pfa.transitions_from(q) {
            println!(
                "  q{q} --{}({p:.1})--> q{target}",
                re.alphabet().name(sym).unwrap_or("?")
            );
        }
        if pfa.is_accepting(q) {
            println!("  q{q} is final");
        }
    }

    // Empirical branch frequencies over 100k walks.
    let n = 100_000u32;
    let mut rng = StdRng::seed_from_u64(2009);
    let a_sym = re.alphabet().sym("a").expect("a interned");
    let c_sym = re.alphabet().sym("c").expect("c interned");
    let mut starts_a = 0u32;
    let mut c_after_a = 0u32;
    let mut a_walks = 0u32;
    let mut total_len = 0u64;
    let mut all_accepted = true;
    for _ in 0..n {
        let w = pfa.generate(&mut rng, GenerateOptions::sized(128));
        all_accepted &= dfa.accepts(&w);
        total_len += w.len() as u64;
        if w.first() == Some(&a_sym) {
            starts_a += 1;
            a_walks += 1;
            if w.get(1) == Some(&c_sym) {
                c_after_a += 1;
            }
        }
    }
    println!("\n| quantity | paper value | measured ({n} walks) |");
    println!("|---|---|---|");
    println!(
        "| P(first = a) | 0.600 | {:.3} |",
        f64::from(starts_a) / f64::from(n)
    );
    println!(
        "| P(c after a) | 0.300 | {:.3} |",
        f64::from(c_after_a) / f64::from(a_walks)
    );
    let analytic = 0.4 + 0.6 * (1.0 + 1.0 / 0.7);
    println!(
        "| E[pattern length] | {:.4} (analytic) | {:.4} |",
        analytic,
        total_len as f64 / f64::from(n)
    );
    println!(
        "| E[len] via fixed point | {:.4} | — |",
        pfa.expected_pattern_length(100_000, 1e-12)
            .expect("fig3 PFA absorbs")
    );
    println!(
        "| language membership | all walks in L | {} |",
        if all_accepted {
            "all accepted"
        } else {
            "VIOLATION"
        }
    );
    println!(
        "\nsequence probabilities: P(b)={:.2}  P(ad)={:.2}  P(acd)={:.3}",
        pfa.sequence_probability(&[re.alphabet().sym("b").expect("b")]),
        pfa.sequence_probability(&[a_sym, re.alphabet().sym("d").expect("d")]),
        pfa.sequence_probability(&[a_sym, c_sym, re.alphabet().sym("d").expect("d")]),
    );
    Ok(())
}
