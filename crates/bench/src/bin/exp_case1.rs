//! Experiment E4 — case study 1: the 16-task quick-sort stress test and
//! the garbage-collection crash.
//!
//! Reproduces the paper's first testing period: 16 active tasks each
//! quick-sorting 128 two-byte integers on 512-byte stacks under
//! create/delete churn. With the injected GC defect pCore crashes with
//! memory exhaustion; the healthy control survives the same command
//! stream. Also sweeps the heap size (smaller heap → earlier crash) and
//! the leak period (rarer leak → later crash).
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_case1
//! ```

use ptest::faults::stress::{stress_config, stress_setup, StressSpec};
use ptest::pcore::GcFaultMode;
use ptest::{AdaptiveTest, BugKind};

fn crashed(report: &ptest::TestReport) -> bool {
    report.found(|k| {
        matches!(
            k,
            BugKind::SlaveCrash { .. } | BugKind::CommandTimeout { .. }
        )
    })
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E4: case study 1 — GC crash under 16-task quick-sort stress ==\n");
    println!("| configuration | crash? | commands to detection | cycles |");
    println!("|---|---|---|---|");
    for (label, spec) in [
        ("faulty GC (paper)", StressSpec::paper(1)),
        ("healthy GC (control)", StressSpec::healthy(1)),
    ] {
        let report = AdaptiveTest::run(stress_config(&spec), stress_setup(spec))?;
        println!(
            "| {label} | {} | {} | {} |",
            if crashed(&report) {
                "CRASH"
            } else {
                "survived"
            },
            report
                .commands_to_first_bug()
                .map_or("—".to_owned(), |c| c.to_string()),
            report.cycles
        );
    }

    println!("\nheap-size sweep (faulty GC, seed 1): smaller heap crashes sooner");
    println!("| heap bytes | crash? | commands to detection |");
    println!("|---|---|---|");
    for kb in [12u32, 16, 24, 32, 48] {
        let mut spec = StressSpec::paper(1);
        spec.heap_bytes = kb * 1024;
        let report = AdaptiveTest::run(stress_config(&spec), stress_setup(spec))?;
        println!(
            "| {} KB | {} | {} |",
            kb,
            if crashed(&report) {
                "CRASH"
            } else {
                "survived"
            },
            report
                .commands_to_first_bug()
                .map_or("—".to_owned(), |c| c.to_string()),
        );
    }

    println!("\nleak-period sweep (24 KB heap, seed 1): rarer leaks crash later");
    println!("| leak every N-th GC | crash? | commands to detection |");
    println!("|---|---|---|");
    for period in [1u32, 2, 4, 8] {
        let mut spec = StressSpec::paper(1);
        spec.gc_fault = GcFaultMode::LeakDeadBlocks { leak_every: period };
        let report = AdaptiveTest::run(stress_config(&spec), stress_setup(spec))?;
        println!(
            "| {period} | {} | {} |",
            if crashed(&report) {
                "CRASH"
            } else {
                "survived"
            },
            report
                .commands_to_first_bug()
                .map_or("—".to_owned(), |c| c.to_string()),
        );
    }
    println!("\nshape check: crash appears only with the GC fault, earlier with");
    println!("smaller heaps and more frequent leaks — the paper's 'failure of");
    println!("garbage collection' under sustained churn.");
    Ok(())
}
