//! Experiment E4 — case study 1: the 16-task quick-sort stress test and
//! the garbage-collection crash.
//!
//! Reproduces the paper's first testing period as parallel-seed
//! campaigns: 16 active tasks each quick-sorting 128 two-byte integers
//! on 512-byte stacks under create/delete churn. With the injected GC
//! defect pCore crashes with memory exhaustion; the healthy control
//! survives the same command stream. Also sweeps the heap size (smaller
//! heap → earlier crash) and the leak period (rarer leak → later crash).
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_case1
//! ```

use ptest::faults::stress::{StressScenario, StressSpec};
use ptest::pcore::GcFaultMode;
use ptest_bench::{
    class_detection, fmt_mean, print_campaign_json, run_campaign, sweep_campaign, CRASH_CLASSES,
};

const TRIALS: usize = 6;

fn row(label: &str, spec: StressSpec) {
    let report = run_campaign(&sweep_campaign(TRIALS, 1), &StressScenario { spec });
    let round = &report.rounds[0];
    let (crashes, mean_commands) = class_detection(round, CRASH_CLASSES);
    println!(
        "| {label} | {crashes}/{} | {} | {} |",
        round.trials.len(),
        fmt_mean(mean_commands),
        round.total_cycles / round.trials.len() as u64,
    );
}

fn main() {
    println!("== E4: case study 1 — GC crash under 16-task quick-sort stress ==\n");
    println!("| configuration | crashes | mean commands to detection | mean cycles |");
    println!("|---|---|---|---|");
    row("faulty GC (paper)", StressSpec::paper(1));
    row("healthy GC (control)", StressSpec::healthy(1));

    println!("\nheap-size sweep (faulty GC): smaller heap crashes sooner");
    println!("| heap | crashes | mean commands to detection | mean cycles |");
    println!("|---|---|---|---|");
    for kb in [12u32, 16, 24, 32, 48] {
        let mut spec = StressSpec::paper(1);
        spec.heap_bytes = kb * 1024;
        row(&format!("{kb} KB"), spec);
    }

    println!("\nleak-period sweep (24 KB heap): rarer leaks crash later");
    println!("| leak every N-th GC | crashes | mean commands to detection | mean cycles |");
    println!("|---|---|---|---|");
    for period in [1u32, 2, 4, 8] {
        let mut spec = StressSpec::paper(1);
        spec.gc_fault = GcFaultMode::LeakDeadBlocks { leak_every: period };
        row(&format!("leak_every = {period}"), spec);
    }
    println!("\nshape check: crashes appear only with the GC fault, earlier with");
    println!("smaller heaps and more frequent leaks — the paper's 'failure of");
    println!("garbage collection' under sustained churn.");

    let archive = run_campaign(&sweep_campaign(TRIALS, 1), &StressScenario::paper());
    print_campaign_json("campaign archive (paper spec):", &archive);
}
