//! The perf harness binary: runs the fixed suite and writes
//! `BENCH_campaign.json` (see [`ptest_bench::perf`]).
//!
//! ```text
//! cargo run --release -p ptest-bench --bin perf -- \
//!     [--out BENCH_campaign.json] \
//!     [--trajectory BENCH_trajectory.json] \
//!     [--check tests/fixtures/bench_baseline.json] \
//!     [--scaling-advisory] \
//!     [--quick]
//! ```
//!
//! With `--check`, the run exits non-zero when any suite's
//! `patterns_per_sec` or `trials_per_sec` regressed more than
//! [`ptest_bench::perf::REGRESSION_TOLERANCE`] against the baseline,
//! or when the pipeline campaign's `w4/w1` parallel speedup falls
//! below [`ptest_bench::perf::MIN_SPEEDUP_W4`] on a machine with at
//! least [`ptest_bench::perf::SCALING_MIN_CORES`] cores — CI's perf
//! gate. `--scaling-advisory` demotes scaling-gate failures to
//! warnings (for the first CI run after introducing the gate, or on
//! runners whose core count fluctuates). `--quick` shrinks every
//! workload (harness smoke testing only; never compare a quick run
//! against the baseline).
//!
//! Standard runs also append one `{rev, date, trials_per_sec,
//! patterns_per_sec}` point per suite to the committed
//! `BENCH_trajectory.json` (see [`ptest_bench::trajectory`]); quick
//! runs skip the append so shrunken workloads never enter the history.

use std::process::ExitCode;

use ptest_bench::{perf, trajectory};

/// Abbreviated git revision of the working tree, best-effort: perf
/// history is still worth archiving from exported tarballs.
fn git_rev() -> String {
    std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|out| out.status.success())
        .and_then(|out| String::from_utf8(out.stdout).ok())
        .map(|rev| rev.trim().to_owned())
        .filter(|rev| !rev.is_empty())
        .unwrap_or_else(|| "unknown".to_owned())
}

fn append_trajectory(path: &str, report: &perf::BenchReport) -> Result<(), String> {
    let mut traj = match std::fs::read_to_string(path) {
        Ok(text) => trajectory::from_json(&text)
            .map_err(|e| format!("cannot parse trajectory {path}: {e}"))?,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => trajectory::Trajectory::new(),
        Err(e) => return Err(format!("cannot read trajectory {path}: {e}")),
    };
    let date = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map_or_else(
            |_| "unknown".to_owned(),
            |d| trajectory::civil_date(d.as_secs()),
        );
    trajectory::append_run(&mut traj, report, &git_rev(), &date);
    let json = trajectory::to_json(&traj).expect("trajectories serialize");
    std::fs::write(path, json).map_err(|e| format!("cannot write {path}: {e}"))
}

fn main() -> ExitCode {
    let mut out_path = "BENCH_campaign.json".to_owned();
    let mut trajectory_path = "BENCH_trajectory.json".to_owned();
    let mut baseline_path: Option<String> = None;
    let mut cfg = perf::PerfConfig::standard();
    let mut quick = false;
    let mut scaling_advisory = false;

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--trajectory" => trajectory_path = args.next().expect("--trajectory needs a path"),
            "--check" => baseline_path = Some(args.next().expect("--check needs a path")),
            "--scaling-advisory" => scaling_advisory = true,
            "--quick" => {
                cfg = perf::PerfConfig::quick();
                quick = true;
            }
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!(
                    "usage: perf [--out FILE] [--trajectory FILE] [--check BASELINE] \
                     [--scaling-advisory] [--quick]"
                );
                return ExitCode::FAILURE;
            }
        }
    }

    let report = perf::run(&cfg);
    for suite in &report.suites {
        println!(
            "{:<28} {:>12.1} patterns/s {:>14.1} steps/s {:>9.1} ms",
            suite.suite, suite.patterns_per_sec, suite.steps_per_sec, suite.wall_ms
        );
    }
    if let Some(s) = &report.scaling {
        println!(
            "\nscaling ({} on {} cores): w1 {:.1} trials/s, w2 {:.1} ({:.2}x), w4 {:.1} ({:.2}x)",
            s.workload,
            s.cores,
            s.w1_trials_per_sec,
            s.w2_trials_per_sec,
            s.speedup_w2,
            s.w4_trials_per_sec,
            s.speedup_w4
        );
    }
    let json = perf::report_to_json(&report).expect("bench reports serialize");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out_path}");

    if quick {
        println!("skipping {trajectory_path} (quick runs never enter the history)");
    } else if let Err(e) = append_trajectory(&trajectory_path, &report) {
        eprintln!("{e}");
        return ExitCode::FAILURE;
    } else {
        println!("appended to {trajectory_path}");
    }

    if let Some(path) = baseline_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(text) => match perf::report_from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = match perf::regressions(&report, &baseline, perf::REGRESSION_TOLERANCE) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("\nperf gate UNUSABLE against {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let mut scaling = perf::scaling_gate(&report);
        if scaling_advisory {
            for f in std::mem::take(&mut scaling.failures) {
                scaling.warnings.push(format!("{f} [advisory]"));
            }
        }
        for w in outcome.warnings.iter().chain(&scaling.warnings) {
            eprintln!("warning: {w}");
        }
        if !outcome.failures.is_empty() || !scaling.failures.is_empty() {
            eprintln!("\nperf gate FAILED against {path}:");
            for f in outcome.failures.iter().chain(&scaling.failures) {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("perf gate passed against {path}");
    }
    ExitCode::SUCCESS
}
