//! The perf harness binary: runs the fixed suite and writes
//! `BENCH_campaign.json` (see [`ptest_bench::perf`]).
//!
//! ```text
//! cargo run --release -p ptest-bench --bin perf -- \
//!     [--out BENCH_campaign.json] \
//!     [--check tests/fixtures/bench_baseline.json] \
//!     [--quick]
//! ```
//!
//! With `--check`, the run exits non-zero when any suite's
//! `patterns_per_sec` regressed more than
//! [`ptest_bench::perf::REGRESSION_TOLERANCE`] against the baseline —
//! CI's perf gate. `--quick` shrinks every workload (harness smoke
//! testing only; never compare a quick run against the baseline).

use std::process::ExitCode;

use ptest_bench::perf;

fn main() -> ExitCode {
    let mut out_path = "BENCH_campaign.json".to_owned();
    let mut baseline_path: Option<String> = None;
    let mut cfg = perf::PerfConfig::standard();

    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--out" => out_path = args.next().expect("--out needs a path"),
            "--check" => baseline_path = Some(args.next().expect("--check needs a path")),
            "--quick" => cfg = perf::PerfConfig::quick(),
            other => {
                eprintln!("unknown argument: {other}");
                eprintln!("usage: perf [--out FILE] [--check BASELINE] [--quick]");
                return ExitCode::FAILURE;
            }
        }
    }

    let report = perf::run(&cfg);
    for suite in &report.suites {
        println!(
            "{:<28} {:>12.1} patterns/s {:>14.1} steps/s {:>9.1} ms",
            suite.suite, suite.patterns_per_sec, suite.steps_per_sec, suite.wall_ms
        );
    }
    let json = perf::report_to_json(&report).expect("bench reports serialize");
    if let Err(e) = std::fs::write(&out_path, &json) {
        eprintln!("cannot write {out_path}: {e}");
        return ExitCode::FAILURE;
    }
    println!("\nwrote {out_path}");

    if let Some(path) = baseline_path {
        let baseline = match std::fs::read_to_string(&path) {
            Ok(text) => match perf::report_from_json(&text) {
                Ok(b) => b,
                Err(e) => {
                    eprintln!("cannot parse baseline {path}: {e}");
                    return ExitCode::FAILURE;
                }
            },
            Err(e) => {
                eprintln!("cannot read baseline {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        let outcome = match perf::regressions(&report, &baseline, perf::REGRESSION_TOLERANCE) {
            Ok(outcome) => outcome,
            Err(e) => {
                eprintln!("\nperf gate UNUSABLE against {path}: {e}");
                return ExitCode::FAILURE;
            }
        };
        for w in &outcome.warnings {
            eprintln!("warning: {w}");
        }
        if !outcome.failures.is_empty() {
            eprintln!("\nperf gate FAILED against {path}:");
            for f in &outcome.failures {
                eprintln!("  {f}");
            }
            return ExitCode::FAILURE;
        }
        println!("perf gate passed against {path}");
    }
    ExitCode::SUCCESS
}
