//! Experiment E5 — case study 2: the dining-philosophers deadlock and
//! the influence of the merge policy (`op`).
//!
//! For each merge policy, a 20-trial campaign (parallel seeds) of the
//! buggy three-philosopher scenario measures the deadlock detection rate
//! and mean commands to detection; the fixed variant is the control.
//! A second, learning-enabled campaign shows the cross-trial feedback
//! loop on the cyclic merge, with the per-round JSON report archived.
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_case2
//! ```

use ptest::faults::philosophers::PhilosophersScenario;
use ptest::{Configured, MergeOp};
use ptest_bench::{
    adaptive_campaign, class_detection, fmt_mean, print_campaign_json, run_campaign, sweep_campaign,
};

fn main() {
    println!("== E5: case study 2 — dining-philosophers deadlock vs merge policy ==\n");
    println!("| merge op | variant | detection rate | mean commands to detection |");
    println!("|---|---|---|---|");
    for (label, op) in [
        ("RoundRobin(1) 'cyclic'", MergeOp::cyclic()),
        ("RoundRobin(3)", MergeOp::RoundRobin { chunk: 3 }),
        ("RandomInterleave", MergeOp::RandomInterleave { seed: 7 }),
        ("Staggered(4)", MergeOp::Staggered { overlap: 4 }),
        ("Sequential", MergeOp::Sequential),
    ] {
        for scenario in [PhilosophersScenario::buggy(), PhilosophersScenario::fixed()] {
            let swept = Configured::adjust(scenario, |cfg| cfg.op = op);
            let report = run_campaign(&sweep_campaign(20, 0), &swept);
            let round = &report.rounds[0];
            let (deadlocks, mean_commands) = class_detection(round, &["deadlock"]);
            println!(
                "| {label} | {:?} | {:.0}% ({deadlocks}/{}) | {} |",
                scenario.variant,
                100.0 * deadlocks as f64 / round.trials.len() as f64,
                round.trials.len(),
                fmt_mean(mean_commands),
            );
        }
    }
    println!("\nshape check: only the strict-alternation merge lands all three");
    println!("creates inside the philosophers' acquisition window — the paper's");
    println!("'we set the pattern merger … to force cyclic execution sequences'.");
    println!("Coarser interleavings and Sequential miss the window; the Fixed");
    println!("lock order never deadlocks under any policy.");

    let adaptive = run_campaign(&adaptive_campaign(12, 2, 0), &PhilosophersScenario::buggy());
    print_campaign_json(
        "campaign archive (cyclic merge, learning on, 2 rounds):",
        &adaptive,
    );
}
