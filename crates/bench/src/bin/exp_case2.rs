//! Experiment E5 — case study 2: the dining-philosophers deadlock and
//! the influence of the merge policy (`op`).
//!
//! For each merge policy, runs 20 seeds of the buggy three-philosopher
//! scenario and reports the deadlock detection rate and mean commands to
//! detection; the fixed variant is the control.
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_case2
//! ```

use ptest::faults::philosophers::{case2_config, setup, Variant};
use ptest::{AdaptiveTest, BugKind, MergeOp};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E5: case study 2 — dining-philosophers deadlock vs merge policy ==\n");
    let seeds: Vec<u64> = (0..20).collect();
    println!("| merge op | variant | detection rate | mean commands to detection |");
    println!("|---|---|---|---|");
    for (label, op) in [
        ("RoundRobin(1) 'cyclic'", MergeOp::cyclic()),
        ("RoundRobin(3)", MergeOp::RoundRobin { chunk: 3 }),
        ("RandomInterleave", MergeOp::RandomInterleave { seed: 7 }),
        ("Staggered(4)", MergeOp::Staggered { overlap: 4 }),
        ("Sequential", MergeOp::Sequential),
    ] {
        for variant in [Variant::Buggy, Variant::Fixed] {
            let mut hits = 0u32;
            let mut cmd_sum = 0u64;
            for &seed in &seeds {
                let mut cfg = case2_config(seed);
                cfg.op = op;
                let report = AdaptiveTest::run(cfg, setup(variant))?;
                if report.found(|k| matches!(k, BugKind::Deadlock { .. })) {
                    hits += 1;
                    cmd_sum += report.commands_issued;
                }
            }
            let rate = f64::from(hits) / seeds.len() as f64;
            let mean = if hits > 0 {
                format!("{:.1}", cmd_sum as f64 / f64::from(hits))
            } else {
                "—".to_owned()
            };
            println!(
                "| {label} | {variant:?} | {:.0}% ({hits}/{}) | {mean} |",
                rate * 100.0,
                seeds.len()
            );
        }
    }
    println!("\nshape check: only the strict-alternation merge lands all three");
    println!("creates inside the philosophers' acquisition window — the paper's");
    println!("'we set the pattern merger … to force cyclic execution sequences'.");
    println!("Coarser interleavings and Sequential miss the window; the Fixed");
    println!("lock order never deadlocks under any policy.");
    Ok(())
}
