//! Experiment E2 — paper Table I, Eq. 2 and Figure 5: the pCore PFA.
//!
//! Prints Table I, the minimal DFA skeleton of the task-lifecycle regular
//! expression, the attached Figure 5 probability distribution, sample
//! test patterns at several sizes, and the legality + branch-frequency
//! validation over 100 000 generated patterns.
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_fig5
//! ```

use ptest::automata::GenerateOptions;
use ptest::pcore::Service;
use ptest::{PatternGenerator, Regex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E2: Table I + Eq. 2 + Figure 5 — the pCore PFA ==\n");

    println!("Table I — kernel services of pCore for task management:");
    println!("| service | abbrev | description |");
    println!("|---|---|---|");
    for svc in Service::ALL {
        println!(
            "| {} | {} | {} |",
            svc.full_name(),
            svc.abbrev(),
            svc.description()
        );
    }

    let re = Regex::pcore_task_lifecycle();
    println!("\nEq. 2: RE = {}", re.source());

    let generator = PatternGenerator::pcore_paper()?;
    let dfa = generator.dfa();
    println!(
        "\nminimal DFA skeleton: {} states, {} transitions",
        dfa.len(),
        dfa.transition_count()
    );
    println!("PFA (Figure 5 distribution mapped onto the skeleton):");
    let pfa = generator.pfa();
    let names = ["start", "running", "waiting", "done"]; // by construction order
    for q in 0..pfa.len() {
        let label = names.get(q).copied().unwrap_or("state");
        for &(sym, target, p) in pfa.transitions_from(q) {
            println!(
                "  {label}(q{q}) --{}({p:.2})--> q{target}",
                re.alphabet().name(sym).unwrap_or("?")
            );
        }
    }

    let mut rng = StdRng::seed_from_u64(42);
    println!("\nsample test patterns (Algorithm 2):");
    for s in [8usize, 32, 128] {
        let p = generator.generate(&mut rng, GenerateOptions::sized(s));
        let shown = p.render(re.alphabet());
        let display: String = shown.chars().take(80).collect();
        println!(
            "  s={s:<4} -> len {:<4} {}{}",
            p.len(),
            display,
            if shown.len() > 80 { " …" } else { "" }
        );
    }

    // Validation sweep.
    let n = 100_000u32;
    let mut legal = 0u32;
    let mut tch_runs = 0u64;
    let mut branch_counts = std::collections::BTreeMap::new();
    let running = dfa
        .next(dfa.start(), re.alphabet().sym("TC").expect("TC"))
        .expect("TC leaves start");
    for _ in 0..n {
        let p = generator.generate(&mut rng, GenerateOptions::sized(32));
        if generator.is_legal_prefix(p.symbols()) {
            legal += 1;
        }
        // Count the branch taken at the first visit to `running`.
        if let Some(&second) = p.symbols().get(1) {
            *branch_counts
                .entry(re.alphabet().name(second).unwrap_or("?").to_owned())
                .or_insert(0u64) += 1;
        }
        tch_runs += p
            .symbols()
            .iter()
            .filter(|&&s| re.alphabet().name(s) == Some("TCH"))
            .count() as u64;
    }
    let _ = running;
    println!("\n| check | expected | measured over {n} patterns |");
    println!("|---|---|---|");
    println!(
        "| legality (prefix of L(RE)) | 100% | {:.2}% |",
        100.0 * f64::from(legal) / f64::from(n)
    );
    for (name, expect) in [("TCH", 0.6), ("TS", 0.2), ("TD", 0.1), ("TY", 0.1)] {
        let got = branch_counts.get(name).copied().unwrap_or(0) as f64 / f64::from(n);
        println!("| P({name} after TC) | {expect:.2} | {got:.3} |");
    }
    println!(
        "| mean TCH per pattern | — | {:.2} |",
        tch_runs as f64 / f64::from(n)
    );
    println!(
        "| expected lifecycle length | {:.2} (fixed point) | — |",
        generator
            .pfa()
            .expected_pattern_length(100_000, 1e-12)
            .expect("lifecycle PFA absorbs")
    );

    println!("\nGraphviz rendering of the PFA (paste into `dot -Tpng`):\n");
    println!(
        "{}",
        ptest::automata::pfa_to_dot(generator.pfa(), "pCore task lifecycle (Fig. 5)")
    );
    Ok(())
}
