//! Experiment E6 — paper Figure 4 / Definition 2: state recording of
//! concurrent processes.
//!
//! Runs a two-pattern adaptive test, pausing mid-way and at completion to
//! dump the `(qm, qs, TP, SN, δS)` records in the paper's format
//! (`CP1 = (m2, s1, p1->p2->p3, 2, p3)`).
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_fig4
//! ```

use ptest::automata::GenerateOptions;
use ptest::pcore::{Op, Program};
use ptest::{
    Committer, CommitterConfig, DualCoreSystem, MergeOp, PatternGenerator, PatternMerger,
    SystemConfig,
};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E6: Figure 4 — state recording (Definition 2) ==\n");
    let generator = PatternGenerator::pcore_paper()?;
    let alphabet = generator.regex().alphabet().clone();
    let mut rng = StdRng::seed_from_u64(14);
    let patterns = generator.generate_batch(&mut rng, 2, GenerateOptions::sized(5));
    for (i, p) in patterns.iter().enumerate() {
        println!("TP{} = {}", i, p.render(&alphabet));
    }
    let merged = PatternMerger::new().merge(&patterns, MergeOp::cyclic());
    println!("merged = {}\n", merged.render(&alphabet));

    let mut sys = DualCoreSystem::new(SystemConfig::default());
    let prog = sys
        .kernel_mut()
        .register_program(Program::new(vec![Op::Compute(5_000), Op::Exit])?);
    let mut committer = Committer::new(
        merged,
        &alphabet,
        CommitterConfig {
            programs: vec![prog],
            inter_command_gap: 40,
            ..CommitterConfig::default()
        },
    )?;

    let checkpoints = [120u64, 300, 100_000];
    let mut at = 0u64;
    for cp in checkpoints {
        while at < cp {
            at += 1;
            sys.step();
            if committer.step(&mut sys) != ptest::CommitterStatus::Running {
                break;
            }
        }
        println!(
            "state records at cycle {at} (committer {:?}):",
            committer.status()
        );
        for r in committer.state_records(&sys) {
            println!("  {}", r.render(&alphabet));
        }
        println!();
        if committer.is_finished() {
            break;
        }
    }
    println!("fields per Definition 2: (qm, qs, TP, SN, deltaS)");
    Ok(())
}
