//! Experiment E3 — paper Figure 1: the execution-order concurrency fault.
//!
//! Runs both resume orders and sweeps the race-window and resume-gap
//! parameters, reproducing the paper's claim that the order
//! `K a L f g h b c g h …` hangs while `L f g K i j a b d e` completes.
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_fig1
//! ```

use ptest::faults::fig1::{run, Fig1AdaptiveScenario, Fig1Order, Fig1Outcome, Fig1Scenario};
use ptest_bench::{adaptive_campaign, print_round_table, run_campaign};

fn outcome_str(o: &Fig1Outcome) -> String {
    match o {
        Fig1Outcome::Completed { cycles } => format!("completed @{cycles}cy"),
        Fig1Outcome::Livelock { tasks } => format!("LIVELOCK ({} tasks spin)", tasks.len()),
    }
}

fn main() {
    println!("== E3: Figure 1 — both master resume orders ==\n");
    println!("| order | paper prediction | measured |");
    println!("|---|---|---|");
    for (label, order, prediction) in [
        (
            "L then K (resume S2 first)",
            Fig1Order::S2First,
            "completes",
        ),
        (
            "K then L (resume S1 first)",
            Fig1Order::S1First,
            "enters deadlock state",
        ),
    ] {
        let o = run(Fig1Scenario {
            order,
            ..Fig1Scenario::default()
        });
        println!("| {label} | {prediction} | {} |", outcome_str(&o));
    }

    println!("\nrace-window sweep (order = K then L, gap = 0):");
    println!("| S1 window (cycles) | outcome |");
    println!("|---|---|");
    for window in [0u32, 2, 4, 8, 16, 32, 64, 128] {
        let o = run(Fig1Scenario {
            order: Fig1Order::S1First,
            window,
            ..Fig1Scenario::default()
        });
        println!("| {window} | {} |", outcome_str(&o));
    }

    println!("\nresume-gap sweep (order = K then L, window = 64):");
    println!("| master gap K->L (cycles) | outcome |");
    println!("|---|---|");
    for gap in [0u64, 16, 32, 64, 128, 256, 512] {
        let o = run(Fig1Scenario {
            order: Fig1Order::S1First,
            resume_gap: gap,
            ..Fig1Scenario::default()
        });
        println!("| {gap} | {} |", outcome_str(&o));
    }
    println!("\nshape check: the fault fires exactly when L lands inside S1's a→b window.");

    // The same fault hunted by the campaign engine: committer-driven
    // creates play K/L, and cross-trial learning steers the distribution
    // toward long-lived patterns that keep both spinners alive.
    println!("\nadaptive campaign on the Figure 1 scenario (learning on):");
    let report = run_campaign(
        &adaptive_campaign(12, 3, 2009),
        &Fig1AdaptiveScenario::default(),
    );
    print_round_table(&report);
}
