//! Experiment E7 — the paper's future-work question, answered: how does
//! the probability distribution influence test-pattern generation and
//! fault detection?
//!
//! Sweeps PD skews over the pCore lifecycle PFA and measures (a) pattern
//! shape statistics and (b) deadlock detection rate on the philosophers
//! scenario. Distributions that keep tasks alive (TCH-heavy, late TD/TY)
//! detect the concurrency fault far more often than churn-heavy ones.
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_ablation_pd
//! ```

use ptest::automata::GenerateOptions;
use ptest::faults::philosophers::{case2_config, setup, Variant};
use ptest::{AdaptiveTest, BugKind, PatternGenerator, ProbabilityAssignment, Regex};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pd(tch: f64, ts: f64, td: f64, ty: f64) -> ProbabilityAssignment {
    ProbabilityAssignment::weights([
        ("TC", 1.0),
        ("TCH", tch),
        ("TS", ts),
        ("TD", td),
        ("TY", ty),
        ("TR", 1.0),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E7: influence of the probability distribution ==\n");
    let distributions: Vec<(&str, ProbabilityAssignment)> = vec![
        ("uniform", ProbabilityAssignment::Uniform),
        ("paper (Fig 5)", pd(0.6, 0.2, 0.1, 0.1)),
        ("long-lived (TCH 0.8)", pd(0.8, 0.08, 0.06, 0.06)),
        ("churn-heavy (TD 0.45)", pd(0.05, 0.05, 0.45, 0.45)),
        ("suspend-heavy (TS 0.6)", pd(0.2, 0.6, 0.1, 0.1)),
    ];

    println!("pattern shape (10 000 sized-16 patterns each):");
    println!("| distribution | mean lifecycle len | mean TCH | mean TS | P(end=TD) |");
    println!("|---|---|---|---|---|");
    let re = Regex::pcore_task_lifecycle();
    for (label, assignment) in &distributions {
        let g = PatternGenerator::new(Regex::pcore_task_lifecycle(), assignment)?;
        let mut rng = StdRng::seed_from_u64(1);
        let (mut len_sum, mut tch, mut ts, mut end_td, mut n_complete) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let td = re.alphabet().sym("TD").expect("TD");
        let n = 10_000;
        for _ in 0..n {
            let p = g.generate(&mut rng, GenerateOptions::sized(16));
            len_sum += p.len() as u64;
            for &s in p.symbols() {
                match re.alphabet().name(s) {
                    Some("TCH") => tch += 1,
                    Some("TS") => ts += 1,
                    _ => {}
                }
            }
            if let Some(&last) = p.symbols().last() {
                if g.dfa().accepts(p.symbols()) {
                    n_complete += 1;
                    if last == td {
                        end_td += 1;
                    }
                }
            }
        }
        println!(
            "| {label} | {:.2} | {:.2} | {:.2} | {:.2} |",
            len_sum as f64 / f64::from(n),
            tch as f64 / f64::from(n),
            ts as f64 / f64::from(n),
            if n_complete > 0 {
                end_td as f64 / n_complete as f64
            } else {
                0.0
            },
        );
    }

    println!("\ndeadlock detection on the philosophers (12 seeds each):");
    println!("| distribution | detection rate |");
    println!("|---|---|");
    for (label, assignment) in &distributions {
        let mut hits = 0;
        let seeds = 12u64;
        for seed in 0..seeds {
            let mut cfg = case2_config(seed);
            cfg.pd = assignment.clone();
            let report = AdaptiveTest::run(cfg, setup(Variant::Buggy))?;
            if report.found(|k| matches!(k, BugKind::Deadlock { .. })) {
                hits += 1;
            }
        }
        println!(
            "| {label} | {:.0}% ({hits}/{seeds}) |",
            100.0 * f64::from(hits) / seeds as f64
        );
    }
    println!("\nshape check: distributions that keep tasks alive longer (TCH-heavy)");
    println!("detect the deadlock most often; churn-heavy distributions delete the");
    println!("philosophers before the cyclic acquisition can form — the 'adaptive'");
    println!("knob the paper's title refers to.");
    Ok(())
}
