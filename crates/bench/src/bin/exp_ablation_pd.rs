//! Experiment E7 — the paper's future-work question, answered: how does
//! the probability distribution influence test-pattern generation and
//! fault detection?
//!
//! Sweeps PD skews over the pCore lifecycle PFA and measures (a) pattern
//! shape statistics and (b) deadlock detection rate on the philosophers
//! scenario, each distribution as a 12-trial parallel campaign. A final
//! learning-enabled campaign starts from the *uniform* distribution and
//! shows the feedback loop rediscovering a detection-friendly skew.
//!
//! ```sh
//! cargo run --release -p ptest-bench --bin exp_ablation_pd
//! ```

use ptest::automata::GenerateOptions;
use ptest::faults::philosophers::PhilosophersScenario;
use ptest::{Configured, PatternGenerator, ProbabilityAssignment, Regex};
use ptest_bench::{adaptive_campaign, class_detection, run_campaign, sweep_campaign};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn pd(tch: f64, ts: f64, td: f64, ty: f64) -> ProbabilityAssignment {
    ProbabilityAssignment::weights([
        ("TC", 1.0),
        ("TCH", tch),
        ("TS", ts),
        ("TD", td),
        ("TY", ty),
        ("TR", 1.0),
    ])
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("== E7: influence of the probability distribution ==\n");
    let distributions: Vec<(&str, ProbabilityAssignment)> = vec![
        ("uniform", ProbabilityAssignment::Uniform),
        ("paper (Fig 5)", pd(0.6, 0.2, 0.1, 0.1)),
        ("long-lived (TCH 0.8)", pd(0.8, 0.08, 0.06, 0.06)),
        ("churn-heavy (TD 0.45)", pd(0.05, 0.05, 0.45, 0.45)),
        ("suspend-heavy (TS 0.6)", pd(0.2, 0.6, 0.1, 0.1)),
    ];

    println!("pattern shape (10 000 sized-16 patterns each):");
    println!("| distribution | mean lifecycle len | mean TCH | mean TS | P(end=TD) |");
    println!("|---|---|---|---|---|");
    let re = Regex::pcore_task_lifecycle();
    for (label, assignment) in &distributions {
        let g = PatternGenerator::new(Regex::pcore_task_lifecycle(), assignment)?;
        let mut rng = StdRng::seed_from_u64(1);
        let (mut len_sum, mut tch, mut ts, mut end_td, mut n_complete) =
            (0u64, 0u64, 0u64, 0u64, 0u64);
        let td = re.alphabet().sym("TD").expect("TD");
        let n = 10_000;
        for _ in 0..n {
            let p = g.generate(&mut rng, GenerateOptions::sized(16));
            len_sum += p.len() as u64;
            for &s in p.symbols() {
                match re.alphabet().name(s) {
                    Some("TCH") => tch += 1,
                    Some("TS") => ts += 1,
                    _ => {}
                }
            }
            if let Some(&last) = p.symbols().last() {
                if g.dfa().accepts(p.symbols()) {
                    n_complete += 1;
                    if last == td {
                        end_td += 1;
                    }
                }
            }
        }
        println!(
            "| {label} | {:.2} | {:.2} | {:.2} | {:.2} |",
            len_sum as f64 / f64::from(n),
            tch as f64 / f64::from(n),
            ts as f64 / f64::from(n),
            if n_complete > 0 {
                end_td as f64 / n_complete as f64
            } else {
                0.0
            },
        );
    }

    println!("\ndeadlock detection on the philosophers (12-trial campaigns):");
    println!("| distribution | detection rate |");
    println!("|---|---|");
    for (label, assignment) in &distributions {
        let scenario = Configured::adjust(PhilosophersScenario::buggy(), |cfg| {
            cfg.pd = assignment.clone();
        });
        let report = run_campaign(&sweep_campaign(12, 0), &scenario);
        let round = &report.rounds[0];
        let (deadlocks, _) = class_detection(round, &["deadlock"]);
        println!(
            "| {label} | {:.0}% ({deadlocks}/{}) |",
            100.0 * deadlocks as f64 / round.trials.len() as f64,
            round.trials.len()
        );
    }
    println!("\nshape check: distributions that keep tasks alive longer (TCH-heavy)");
    println!("detect the deadlock most often; churn-heavy distributions delete the");
    println!("philosophers before the cyclic acquisition can form — the 'adaptive'");
    println!("knob the paper's title refers to.");

    // The feedback loop, starting blind: uniform PD, learning on.
    let blind = Configured::adjust(PhilosophersScenario::buggy(), |cfg| {
        cfg.pd = ProbabilityAssignment::Uniform;
    });
    let report = run_campaign(&adaptive_campaign(12, 3, 0), &blind);
    println!("\ncross-trial learning from a uniform start (12 trials/round):");
    ptest_bench::print_round_table(&report);
    Ok(())
}
