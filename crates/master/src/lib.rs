//! # ptest-master — the master-side runtime and system wiring
//!
//! The paper's *master system* is Linux on the OMAP5912's ARM core: a
//! time-sharing scheduler running one controlling thread per slave task,
//! each issuing remote commands through the pCore-Bridge middleware. This
//! crate provides:
//!
//! * [`MasterThread`]/[`MasterOp`] — scripted master threads under a
//!   round-robin quantum scheduler (Figure 1's `M1`/`M2` are two such
//!   scripts).
//! * [`DualCoreSystem`] — the fully wired platform: shared SRAM, mailbox
//!   bank, the slave [`Kernel`](ptest_pcore::Kernel), the bridge's two
//!   endpoints, and the master scheduler, all advanced in lock-step
//!   virtual time by [`DualCoreSystem::step`].
//!
//! pTest's committer drives the system through
//! [`DualCoreSystem::issue`]/[`DualCoreSystem::take_responses`]; scripted
//! threads and the committer can coexist.
//!
//! ## Example
//!
//! ```
//! use ptest_master::{DualCoreSystem, MasterOp, SystemConfig};
//! use ptest_pcore::{Priority, Program, SvcRequest};
//!
//! let mut sys = DualCoreSystem::new(SystemConfig::default());
//! let prog = sys.kernel_mut().register_program(Program::exit_immediately());
//! sys.add_thread(
//!     "M1",
//!     vec![
//!         MasterOp::IssueAndWait(SvcRequest::Create {
//!             program: prog,
//!             priority: Priority::new(5),
//!             stack_bytes: None,
//!         }),
//!         MasterOp::Done,
//!     ],
//! );
//! assert!(sys.run_until_quiescent(10_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod system;
mod thread;

pub use system::{DualCoreSystem, SystemConfig};
pub use thread::{MasterOp, MasterThread, ThreadId, ThreadState};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::DualCoreSystem>();
        assert_send_sync::<super::MasterThread>();
    }
}
