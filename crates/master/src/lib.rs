//! # ptest-master — the master-side runtime and system wiring
//!
//! The paper's *master system* is Linux on the OMAP5912's ARM core: a
//! time-sharing scheduler running one controlling thread per slave task,
//! each issuing remote commands through the pCore-Bridge middleware. This
//! crate provides:
//!
//! * [`MasterThread`]/[`MasterOp`] — scripted master threads under a
//!   round-robin quantum scheduler (Figure 1's `M1`/`M2` are two such
//!   scripts).
//! * [`MultiCoreSystem`] — the fully wired N-slave platform: shared SRAM
//!   carved into per-slave bridge windows, one mailbox block and one
//!   [`Kernel`](ptest_pcore::Kernel) per slave, the multi-lane master
//!   port, and the master scheduler, all advanced in lock-step virtual
//!   time by [`MultiCoreSystem::step`]. Slaves can be coupled through
//!   cross-core semaphore hand-off links and SRAM-mirrored shared
//!   variables — the substrate of the multi-slave fault scenarios.
//! * [`DualCoreSystem`] — the original one-slave platform, now the
//!   `n = 1` special case of [`MultiCoreSystem`] (bit-identical
//!   behaviour, same API).
//! * [`sched`] — schedule exploration: a [`Scheduler`] decides each
//!   cycle which slave kernels execute a task cycle
//!   ([`MultiCoreSystem::step_with`]). Lock-step remains the default;
//!   [`RandomPriorityScheduler`] performs a PCT-style seeded
//!   randomized-priority search over cross-core interleavings.
//! * [`mem`] — memory-model exploration: a [`MemoryModel`] replaces the
//!   sequentially-consistent shared-variable mirroring epoch
//!   ([`MultiCoreSystem::step_with_memory`],
//!   [`MultiCoreSystem::step_explored`]). Sequential consistency remains
//!   the default fast path; [`StoreBufferModel`] delays each store's
//!   visibility per observer off a memory seed, reaching reordering bugs
//!   the epoch hides by construction.
//! * [`preempt`] — the preemption/interrupt axis: quantum time slices
//!   inside each slave kernel, seeded per-slave clock skew, and a
//!   deterministic [`InterruptPlan`] injecting ISR events at
//!   schedule-controlled cycles ([`MultiCoreSystem::install_preemption`]).
//!   The inert default [`PreemptionSpec`] leaves the platform on the
//!   exact unpreempted path the golden fixtures pin.
//!
//! pTest's committer drives the system through
//! [`MultiCoreSystem::issue_to`]/[`MultiCoreSystem::take_responses`];
//! scripted threads and the committer can coexist.
//!
//! ## Topology
//!
//! ```text
//!               ARM master (threads / committer)
//!                  │ MasterPort: one lane per slave
//!       ┌──────────┼─────────────┐
//!   mailboxes   mailboxes    mailboxes        (4 FIFOs per slave)
//!   SRAM win0   SRAM win1    SRAM win2        (cmd+resp rings each)
//!       │          │             │
//!    Kernel 0   Kernel 1      Kernel 2        (pCore per slave)
//!       └── sem links / shared vars ──┘       (cross-core coupling)
//! ```
//!
//! ## Example
//!
//! ```
//! use ptest_master::{DualCoreSystem, MasterOp, SystemConfig};
//! use ptest_pcore::{Priority, Program, SvcRequest};
//!
//! let mut sys = DualCoreSystem::new(SystemConfig::default());
//! let prog = sys.kernel_mut().register_program(Program::exit_immediately());
//! sys.add_thread(
//!     "M1",
//!     vec![
//!         MasterOp::IssueAndWait(SvcRequest::Create {
//!             program: prog,
//!             priority: Priority::new(5),
//!             stack_bytes: None,
//!         }),
//!         MasterOp::Done,
//!     ],
//! );
//! assert!(sys.run_until_quiescent(10_000));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod mem;
pub mod preempt;
pub mod sched;
mod system;
#[cfg(test)]
pub(crate) mod testsupport;
mod thread;

pub use mem::{
    IdleHorizon, MemoryModel, MemoryModelSpec, SharedVarBus, StoreBufferConfig, StoreBufferModel,
};
pub use preempt::{
    ClockSkewConfig, InterruptConfig, InterruptEvent, InterruptPlan, PreemptionSpec, QuantumConfig,
};
pub use sched::{
    IdleAdvance, LockStepScheduler, RandomPriorityConfig, RandomPriorityScheduler, ScheduleSpec,
    Scheduler,
};
pub use system::{
    CouplingError, DualCoreSystem, MultiCoreSystem, SemLink, SharedVar, SnapshotCache, SystemConfig,
};
pub use thread::{MasterOp, MasterThread, ThreadId, ThreadState};

#[cfg(test)]
mod tests {
    #[test]
    fn public_types_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<super::DualCoreSystem>();
        assert_send_sync::<super::MasterThread>();
    }
}
