//! The master-side thread model.
//!
//! In the paper the master system is Linux on the ARM core, scheduling
//! threads with a *time-sharing* policy; each slave task is controlled by
//! exactly one master thread (the paper's one-to-one correspondence
//! assumption). A [`MasterThread`] here is a small script of
//! [`MasterOp`]s — issuing remote commands, waiting for their responses,
//! computing, sleeping — executed under a round-robin quantum scheduler by
//! the [`DualCoreSystem`](crate::DualCoreSystem).

use std::fmt;

use ptest_bridge::{CmdId, CmdResponse};
use ptest_pcore::{SvcRequest, TaskId};

/// Identifies a master thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct ThreadId(pub u16);

impl fmt::Display for ThreadId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "M{}", self.0)
    }
}

/// One step of a master-thread script.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MasterOp {
    /// Issue a remote command and continue without waiting (fire and
    /// forget); the response lands in the system inbox.
    Issue(SvcRequest),
    /// Issue a remote command and block until its response arrives.
    IssueAndWait(SvcRequest),
    /// Busy-compute for the given number of master cycles.
    Compute(u32),
    /// Sleep for the given number of cycles.
    SleepFor(u32),
    /// Finish the thread.
    Done,
}

/// The scheduling state of a master thread.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ThreadState {
    /// Runnable.
    Ready,
    /// Blocked until the response for this command arrives.
    Waiting(CmdId),
    /// Sleeping until the given virtual time (raw cycles).
    Sleeping {
        /// Wake-up deadline.
        until: u64,
    },
    /// Script finished.
    Done,
}

/// A master-side thread: a script plus its execution state.
#[derive(Debug, Clone)]
pub struct MasterThread {
    /// Thread identity.
    pub id: ThreadId,
    /// Human-readable name (e.g. `"M1"` in Figure 1).
    pub name: String,
    /// The script.
    pub ops: Vec<MasterOp>,
    /// Script counter.
    pub pc: usize,
    /// Scheduling state.
    pub state: ThreadState,
    /// Remaining cycles of an in-progress `Compute`.
    pub compute_remaining: u64,
    /// The slave task this thread controls, if bound (the paper's 1:1
    /// master-slave correspondence).
    pub bound_task: Option<TaskId>,
    /// The most recent response delivered to this thread.
    pub last_response: Option<CmdResponse>,
    /// Total ops retired.
    pub ops_retired: u64,
}

impl MasterThread {
    /// Creates a thread from a script.
    #[must_use]
    pub fn new(id: ThreadId, name: impl Into<String>, ops: Vec<MasterOp>) -> MasterThread {
        MasterThread {
            id,
            name: name.into(),
            ops,
            pc: 0,
            state: ThreadState::Ready,
            compute_remaining: 0,
            bound_task: None,
            last_response: None,
            ops_retired: 0,
        }
    }

    /// Whether the scheduler may run this thread at time `now`.
    #[must_use]
    pub fn is_runnable(&self, now: u64) -> bool {
        match self.state {
            ThreadState::Ready => true,
            ThreadState::Sleeping { until } => until <= now,
            ThreadState::Waiting(_) | ThreadState::Done => false,
        }
    }

    /// Whether the script has finished.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.state == ThreadState::Done
    }

    /// The op the thread would execute next, if any.
    #[must_use]
    pub fn current_op(&self) -> Option<MasterOp> {
        self.ops.get(self.pc).copied()
    }

    /// Delivers a command response; if the thread was waiting on it the
    /// thread becomes ready. Returns `true` if it was consumed.
    pub fn deliver(&mut self, response: &CmdResponse) -> bool {
        if self.state == ThreadState::Waiting(response.id) {
            self.state = ThreadState::Ready;
            if let Ok(ptest_pcore::SvcReply::Created(task)) = response.result {
                // Auto-bind: the thread now controls the task it created.
                if self.bound_task.is_none() {
                    self.bound_task = Some(task);
                }
            }
            self.last_response = Some(response.clone());
            true
        } else {
            false
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use ptest_pcore::{SvcError, SvcReply, VarId};
    use ptest_soc::Cycles;

    fn resp(id: u32, result: Result<SvcReply, SvcError>) -> CmdResponse {
        CmdResponse {
            id: CmdId(id),
            slave: 0,
            request: SvcRequest::PeekVar { var: VarId(0) },
            result,
            issued_at: Cycles::ZERO,
            completed_at: Cycles::new(1),
        }
    }

    #[test]
    fn fresh_thread_is_ready() {
        let t = MasterThread::new(ThreadId(0), "M1", vec![MasterOp::Done]);
        assert!(t.is_runnable(0));
        assert!(!t.is_done());
        assert_eq!(t.current_op(), Some(MasterOp::Done));
    }

    #[test]
    fn waiting_thread_wakes_only_on_matching_response() {
        let mut t = MasterThread::new(ThreadId(0), "M1", vec![]);
        t.state = ThreadState::Waiting(CmdId(5));
        assert!(!t.is_runnable(100));
        assert!(!t.deliver(&resp(4, Ok(SvcReply::Done))));
        assert!(t.deliver(&resp(5, Ok(SvcReply::Done))));
        assert!(t.is_runnable(100));
        assert!(t.last_response.is_some());
    }

    #[test]
    fn create_response_binds_task() {
        let mut t = MasterThread::new(ThreadId(0), "M1", vec![]);
        t.state = ThreadState::Waiting(CmdId(1));
        t.deliver(&resp(1, Ok(SvcReply::Created(TaskId::new(7)))));
        assert_eq!(t.bound_task, Some(TaskId::new(7)));
        // A second create does not rebind.
        t.state = ThreadState::Waiting(CmdId(2));
        t.deliver(&resp(2, Ok(SvcReply::Created(TaskId::new(9)))));
        assert_eq!(t.bound_task, Some(TaskId::new(7)));
    }

    #[test]
    fn sleeping_thread_wakes_at_deadline() {
        let mut t = MasterThread::new(ThreadId(0), "M1", vec![]);
        t.state = ThreadState::Sleeping { until: 50 };
        assert!(!t.is_runnable(49));
        assert!(t.is_runnable(50));
    }
}
