//! The preemption/interrupt exploration axis: quantum scheduling,
//! per-slave clock skew, and deterministic interrupt injection.
//!
//! The `Scheduler` trait decides *which kernels run each cycle*; this
//! module decides what happens *inside* a kernel's cycle — whether the
//! running task is preempted at quantum boundaries, how the slave's
//! local clock relates to system time, and at which cycles an ISR is
//! injected. Together with the pattern, schedule and memory seeds this
//! forms the fourth axis of the replay quadruple: a
//! ([`PreemptionSpec`], irq seed) pair is a pure function input, so any
//! recorded trial replays bit-for-bit.
//!
//! The default [`PreemptionSpec`] is inert — no quantum, no skew, no
//! interrupts — and installs nothing, leaving the platform on the exact
//! code path the golden fixtures pin.

use ptest_soc::seed::{splitmix64, splitmix64_next};
use ptest_soc::Cycles;

/// Quantum (time-slice) configuration applied to every slave kernel:
/// the running task is preempted after `cycles` consecutive executed
/// cycles and the highest-priority *other* runnable task gets the next
/// slice.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QuantumConfig {
    /// Slice length in executed cycles.
    pub cycles: u32,
}

impl Default for QuantumConfig {
    fn default() -> QuantumConfig {
        QuantumConfig { cycles: 8 }
    }
}

/// Per-slave independent time sources: each slave's local clock runs
/// fast relative to system time by a seeded rate of up to `max_rate`
/// parts per 1024, so cross-core deadlines (sleeps, yields, timeouts)
/// diverge deterministically the way unsynchronized hardware timers do.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ClockSkewConfig {
    /// Maximum skew rate in parts per 1024 of system time (a slave with
    /// rate `r` sees local time `c + c*r/1024` at system cycle `c`).
    pub max_rate: u32,
}

impl Default for ClockSkewConfig {
    fn default() -> ClockSkewConfig {
        ClockSkewConfig { max_rate: 16 }
    }
}

/// Deterministic interrupt injection: `count` ISR events drawn from the
/// irq seed, each at a seeded cycle within `horizon` on a seeded slave.
///
/// `injection_mask` mirrors the schedule axis's
/// [`change_point_mask`](crate::sched::RandomPriorityConfig::change_point_mask):
/// the full seeded event set is always drawn and sorted, then bit `i`
/// of the mask decides whether the `i`-th event (in firing order)
/// survives. Clearing a bit never moves the surviving events, which is
/// what lets minimization ddmin over the mask.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptConfig {
    /// Number of interrupt events drawn from the seed.
    pub count: usize,
    /// Injection cycles are drawn in `[0, horizon)`.
    pub horizon: u64,
    /// Bitmask over the sorted event set; bit `i` keeps event `i`.
    /// Events beyond bit 63 are always kept.
    pub injection_mask: u64,
}

impl Default for InterruptConfig {
    fn default() -> InterruptConfig {
        InterruptConfig {
            count: 4,
            horizon: 60_000,
            injection_mask: u64::MAX,
        }
    }
}

impl InterruptConfig {
    /// Number of events the mask keeps.
    #[must_use]
    pub fn active_injections(&self) -> usize {
        (0..self.count)
            .filter(|&i| i >= 64 || self.injection_mask & (1 << i) != 0)
            .count()
    }
}

/// The preemption axis of a trial: all `None` (the default) is inert
/// and compiles to the platform's unpreempted fast path.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct PreemptionSpec {
    /// Quantum scheduling inside each slave kernel.
    pub quantum: Option<QuantumConfig>,
    /// Seeded per-slave clock skew.
    pub clock_skew: Option<ClockSkewConfig>,
    /// Seeded interrupt injection.
    pub interrupts: Option<InterruptConfig>,
}

impl PreemptionSpec {
    /// Whether this spec changes nothing (the byte-identical fast path).
    #[must_use]
    pub fn is_inert(&self) -> bool {
        self.quantum.is_none() && self.clock_skew.is_none() && self.interrupts.is_none()
    }

    /// A human-readable label for reports, e.g. `"none"` or
    /// `"quantum(q=8)+irq(n=4)"`.
    #[must_use]
    pub fn label(&self) -> String {
        if self.is_inert() {
            return "none".to_owned();
        }
        let mut parts = Vec::new();
        if let Some(q) = self.quantum {
            parts.push(format!("quantum(q={})", q.cycles));
        }
        if let Some(s) = self.clock_skew {
            parts.push(format!("skew(r={})", s.max_rate));
        }
        if let Some(i) = self.interrupts {
            if i.injection_mask == u64::MAX {
                parts.push(format!("irq(n={})", i.count));
            } else {
                parts.push(format!("irq(n={},mask={:#b})", i.count, i.injection_mask));
            }
        }
        parts.join("+")
    }
}

/// One planned interrupt injection.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterruptEvent {
    /// System cycle at which the interrupt is raised.
    pub cycle: u64,
    /// Target slave.
    pub slave: usize,
}

/// The compiled, seeded injection schedule of one trial: a sorted queue
/// of [`InterruptEvent`]s popped as system time passes them. A pure
/// function of `(config, irq_seed, slaves)`, so replays are exact.
#[derive(Debug, Clone)]
pub struct InterruptPlan {
    /// Remaining events, *descending* by cycle (popped from the back).
    events: Vec<InterruptEvent>,
}

impl InterruptPlan {
    /// Draws and sorts the event set, then applies the injection mask.
    ///
    /// The full seeded set is always drawn — masking filters *after*
    /// sorting, so clearing a bit never shifts where the surviving
    /// events land (and the all-ones mask is identical to the unmasked
    /// plan), mirroring the schedule axis's change-point masking.
    #[must_use]
    pub fn new(cfg: &InterruptConfig, irq_seed: u64, slaves: usize) -> InterruptPlan {
        let mut stream = irq_seed;
        let mut events: Vec<InterruptEvent> = (0..cfg.count)
            .map(|_| {
                let cycle = splitmix64_next(&mut stream) % cfg.horizon.max(1);
                let slave = (splitmix64_next(&mut stream) % slaves.max(1) as u64) as usize;
                InterruptEvent { cycle, slave }
            })
            .collect();
        events.sort_by_key(|e| (e.cycle, e.slave));
        let mut events: Vec<InterruptEvent> = events
            .into_iter()
            .enumerate()
            .filter(|&(i, _)| i >= 64 || cfg.injection_mask & (1 << i) != 0)
            .map(|(_, e)| e)
            .collect();
        events.reverse();
        InterruptPlan { events }
    }

    /// An empty plan (no injections).
    #[must_use]
    pub fn empty() -> InterruptPlan {
        InterruptPlan { events: Vec::new() }
    }

    /// The cycle of the next injection, if any remain.
    #[must_use]
    pub fn next_fire(&self) -> Option<u64> {
        self.events.last().map(|e| e.cycle)
    }

    /// Pops the next event whose cycle is `<= now`, if any.
    pub fn pop_due(&mut self, now: u64) -> Option<InterruptEvent> {
        if self.events.last().is_some_and(|e| e.cycle <= now) {
            self.events.pop()
        } else {
            None
        }
    }

    /// Number of events not yet fired.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.events.len()
    }
}

/// Draws the per-slave clock-skew rates (parts per 1024) from the irq
/// seed, on a stream decorrelated from the injection draws.
#[must_use]
pub fn skew_rates(cfg: &ClockSkewConfig, irq_seed: u64, slaves: usize) -> Vec<u32> {
    const SKEW_STREAM: u64 = 0x8BB8_4B93_962E_ACC9;
    let mut stream = splitmix64(irq_seed ^ SKEW_STREAM);
    (0..slaves)
        .map(|_| (splitmix64_next(&mut stream) % (u64::from(cfg.max_rate) + 1)) as u32)
        .collect()
}

/// A slave's local time at system cycle `c` under skew rate `rate`
/// (parts per 1024): `c + c*rate/1024`, monotone and zero-preserving.
/// Rate 0 is the identity.
#[must_use]
pub fn local_time(c: Cycles, rate: u32) -> Cycles {
    if rate == 0 {
        return c;
    }
    let c = c.get();
    let skew = (u128::from(c) * u128::from(rate)) / 1024;
    Cycles::new(c + skew as u64)
}

/// The inverse of [`local_time`]: the smallest system cycle whose local
/// time is `>= target`. Used to translate kernel-local deadlines
/// (sleeper wakes) back into the system-cycle horizon.
#[must_use]
pub fn system_time_for(target: u64, rate: u32) -> u64 {
    if rate == 0 {
        return target;
    }
    let approx = ((u128::from(target) * 1024) / (1024 + u128::from(rate))) as u64;
    let mut c = approx.saturating_sub(2);
    while local_time(Cycles::new(c), rate).get() < target {
        c += 1;
    }
    c
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_spec_is_inert_with_label_none() {
        let spec = PreemptionSpec::default();
        assert!(spec.is_inert());
        assert_eq!(spec.label(), "none");
    }

    #[test]
    fn labels_name_the_active_axes() {
        let spec = PreemptionSpec {
            quantum: Some(QuantumConfig { cycles: 6 }),
            clock_skew: None,
            interrupts: Some(InterruptConfig {
                count: 3,
                ..InterruptConfig::default()
            }),
        };
        assert_eq!(spec.label(), "quantum(q=6)+irq(n=3)");
        let masked = PreemptionSpec {
            interrupts: Some(InterruptConfig {
                count: 3,
                injection_mask: 0b101,
                ..InterruptConfig::default()
            }),
            ..PreemptionSpec::default()
        };
        assert_eq!(masked.label(), "irq(n=3,mask=0b101)");
    }

    #[test]
    fn plan_is_deterministic_and_sorted() {
        let cfg = InterruptConfig {
            count: 8,
            horizon: 10_000,
            injection_mask: u64::MAX,
        };
        let a = InterruptPlan::new(&cfg, 42, 2);
        let mut b = InterruptPlan::new(&cfg, 42, 2);
        assert_eq!(a.events, b.events);
        assert_eq!(a.remaining(), 8);
        // Popping in time order yields ascending cycles within horizon.
        let mut last = 0;
        while let Some(ev) = b.pop_due(u64::MAX) {
            assert!(ev.cycle >= last);
            assert!(ev.cycle < 10_000);
            assert!(ev.slave < 2);
            last = ev.cycle;
        }
        assert_eq!(b.remaining(), 0);
        let c = InterruptPlan::new(&cfg, 43, 2);
        assert_ne!(a.events, c.events, "different seeds draw different plans");
    }

    #[test]
    fn mask_filters_after_sorting_without_moving_survivors() {
        let cfg = InterruptConfig {
            count: 6,
            horizon: 10_000,
            injection_mask: u64::MAX,
        };
        let full = InterruptPlan::new(&cfg, 7, 3);
        let masked = InterruptPlan::new(
            &InterruptConfig {
                injection_mask: 0b1010,
                ..cfg
            },
            7,
            3,
        );
        // Events 1 and 3 (firing order) survive, unmoved.
        let mut fired_full: Vec<InterruptEvent> = full.events.clone();
        fired_full.reverse();
        let mut fired_masked: Vec<InterruptEvent> = masked.events.clone();
        fired_masked.reverse();
        assert_eq!(fired_masked, vec![fired_full[1], fired_full[3]]);
        assert_eq!(
            InterruptConfig {
                injection_mask: 0b1010,
                ..cfg
            }
            .active_injections(),
            2
        );
    }

    #[test]
    fn pop_due_only_releases_past_events() {
        let cfg = InterruptConfig {
            count: 4,
            horizon: 1_000,
            injection_mask: u64::MAX,
        };
        let mut plan = InterruptPlan::new(&cfg, 9, 1);
        let first = plan.next_fire().unwrap();
        assert!(plan.pop_due(first.saturating_sub(1)).is_none());
        assert_eq!(plan.pop_due(first).unwrap().cycle, first);
    }

    #[test]
    fn skew_rates_are_seeded_and_bounded() {
        let cfg = ClockSkewConfig { max_rate: 16 };
        let a = skew_rates(&cfg, 5, 4);
        let b = skew_rates(&cfg, 5, 4);
        assert_eq!(a, b);
        assert!(a.iter().all(|&r| r <= 16));
        let c = skew_rates(&cfg, 6, 4);
        assert_ne!(a, c, "different irq seeds draw different rates");
    }

    #[test]
    fn local_time_is_monotone_and_invertible() {
        for rate in [0u32, 1, 7, 16, 128, 1024] {
            let mut prev = 0;
            for c in 0..2_000u64 {
                let l = local_time(Cycles::new(c), rate).get();
                assert!(l >= prev, "local time must be monotone");
                assert!(l >= c, "skewed clocks only run fast");
                prev = l;
            }
            for target in [0u64, 1, 999, 60_000, 1 << 40] {
                let c = system_time_for(target, rate);
                assert!(
                    local_time(Cycles::new(c), rate).get() >= target,
                    "inverse must reach the target"
                );
                if c > 0 {
                    assert!(
                        local_time(Cycles::new(c - 1), rate).get() < target,
                        "inverse must be the smallest such cycle"
                    );
                }
            }
        }
    }

    #[test]
    fn zero_rate_is_the_identity() {
        assert_eq!(local_time(Cycles::new(12_345), 0), Cycles::new(12_345));
        assert_eq!(system_time_for(12_345, 0), 12_345);
    }
}
